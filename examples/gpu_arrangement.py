#!/usr/bin/env python
"""GPU arrangement study (paper Fig. 8): naive vs bunched mesh placement.

On 4 nodes × 4 GPUs with a 4×4 SUMMA mesh, compares the two placements at
three levels:

* geometry — nodes spanned and NIC crowding per mesh row/column group;
* one collective — time of a column broadcast with all columns concurrent;
* end to end — a full 24-layer stem iteration.

The collective-level result reproduces the paper's claim (bunching halves
both the nodes involved and the cable sharing).  The end-to-end result adds
a finding the paper does not discuss: SUMMA's large *activation* blocks
travel along mesh rows, which the naive row-major placement already keeps
intra-node, so the net iteration-time difference is small at s=512 scales —
the bunched arrangement matters most for parameter-dominated (large-h,
small-b) workloads and for the embedding/LM-head column traffic.

Run:  python examples/gpu_arrangement.py
"""

from repro.experiments import fig8
from repro.hardware import (
    ClusterTopology,
    bunched_arrangement,
    frontera_rtx,
    naive_arrangement,
)
from repro.utils import format_table


def geometry_table() -> str:
    cluster = frontera_rtx(4)
    topo = ClusterTopology(cluster)
    rows = []
    for name, arr in (
        ("naive", naive_arrangement(cluster, 4)),
        ("bunched", bunched_arrangement(cluster, 4)),
    ):
        cols = [[i * 4 + j for i in range(4)] for j in range(4)]
        rws = [[i * 4 + j for j in range(4)] for i in range(4)]
        pc = topo.group_profile(cols[0], arr)
        pr = topo.group_profile(rws[0], arr)
        rows.append(
            [
                name,
                pr.nodes_spanned, topo.crowding(rws, arr),
                pc.nodes_spanned, topo.crowding(cols, arr),
            ]
        )
    return format_table(
        ["arrangement", "row: nodes", "row: crowding", "col: nodes", "col: crowding"],
        rows,
        title="Placement geometry of a 4x4 mesh on 4 nodes (Fig. 8)",
    )


def main() -> None:
    print(geometry_table())
    print()
    print(fig8.render(fig8.run()))
    print(
        "\nReading: the naive placement keeps rows intra-node but makes all"
        "\nfour column broadcasts cross all four nodes and share every NIC"
        "\n4-ways; bunching 2x2 tiles per node gives both directions 2 nodes"
        "\nand 2-way sharing — a >2x faster column broadcast (the paper's"
        "\nFig. 8), with a modest end-to-end win at these shapes."
    )


if __name__ == "__main__":
    main()
