#!/usr/bin/env python
"""Hybrid parallelism: data-parallel replicas of 2D tensor-parallel meshes.

This is how Optimus is deployed in practice (e.g. in Colossal-AI): tensor
parallelism handles the model that doesn't fit on one device, data
parallelism scales the batch across replicas.  Here we train 2 replicas of
a 2×2 mesh (8 simulated GPUs total), verify the result is bit-identical to
full-batch serial training, and look at the gradient-synchronization cost
the data-parallel dimension adds.

Run:  python examples/hybrid_data_parallel.py
"""

import numpy as np

from repro.config import ModelConfig
from repro.hybrid import DataParallel
from repro.mesh.partition import assemble_any
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer
from repro.runtime.analysis import collective_stats, format_breakdown
from repro.training import SGD, SerialSGD


def main() -> None:
    cfg = ModelConfig(vocab_size=256, hidden_size=48, num_heads=4,
                      num_layers=2, seq_len=24)
    rng = np.random.default_rng(0)
    b = 16
    ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
    labels = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))

    # hybrid: 2 data-parallel replicas x (2x2 tensor-parallel mesh)
    dp = DataParallel.build(num_replicas=2, q=2, cfg=cfg, seed=0)
    dp.sim.tracer.enabled = True
    opt = SGD(dp.parameters(), lr=0.1)

    # serial twin for verification
    params_ref = init_transformer_params(cfg, seed=0)
    ref = ReferenceTransformer(cfg, params_ref)
    sopt = SerialSGD(params_ref, lr=0.1)

    print("step | hybrid loss | serial loss | max param diff")
    for step in range(5):
        opt.zero_grad()
        loss = dp.forward_backward(ids, labels)
        opt.step()
        sloss, grads = ref.loss_and_grads(ids, labels)
        sopt.step(grads)
        w = assemble_any(dp.replica(0).named_parameters()["layer0.mlp.w1"].data)
        diff = np.abs(w - params_ref["layer0.mlp.w1"]).max()
        print(f"{step:4d} | {loss:11.6f} | {float(sloss):11.6f} | {diff:.2e}")

    stats = collective_stats(dp.sim.tracer)
    dp_traffic = sum(
        e.nbytes for e in dp.sim.tracer.events
        if e.kind == "all_reduce" and e.label == "dp"
    )
    total_traffic = sum(s.total_bytes for s in stats.values())
    print(
        f"\ngradient-sync share of all traffic: "
        f"{dp_traffic / total_traffic:.1%} "
        f"({dp_traffic / 2**20:.1f} MiB of {total_traffic / 2**20:.1f} MiB over 5 steps)"
    )
    print()
    print(format_breakdown(dp.sim, title="Per-device time breakdown (8 GPUs)"))


if __name__ == "__main__":
    main()
