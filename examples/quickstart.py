#!/usr/bin/env python
"""Quickstart: run Optimus (2D/SUMMA tensor parallelism) on a simulated mesh.

This script walks the public API end to end:

1.  build a simulated 2×2 device mesh (4 GPUs on one Frontera-style node);
2.  initialize one set of global transformer parameters;
3.  run the same forward/backward on the serial reference, on Megatron (1D)
    and on Optimus (2D) — and show that all three agree to float precision;
4.  inspect what the simulator measured: per-device FLOPs, communication
    volume/time, and peak memory for each scheme.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import ModelConfig
from repro.core import OptimusModel
from repro.megatron import MegatronModel
from repro.mesh import Mesh
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer
from repro.runtime import Simulator
from repro.utils import format_bytes, format_table


def main() -> None:
    # a small but real transformer: 2 layers, h=64, 8 heads, vocab 512
    cfg = ModelConfig(
        vocab_size=512, hidden_size=64, num_heads=8, num_layers=2, seq_len=32
    )
    params = init_transformer_params(cfg, seed=0)
    rng = np.random.default_rng(0)
    batch = 8
    ids = rng.integers(0, cfg.vocab_size, size=(batch, cfg.seq_len))
    labels = rng.integers(0, cfg.vocab_size, size=(batch, cfg.seq_len))

    # ------------------------------------------------------------------
    # 1) ground truth on a single device
    # ------------------------------------------------------------------
    reference = ReferenceTransformer(cfg, params)
    ref_loss = float(reference.forward(ids, labels))
    ref_grads = reference.backward()
    print(f"serial reference      loss = {ref_loss:.6f}")

    # ------------------------------------------------------------------
    # 2) Optimus on a 2×2 mesh (4 simulated GPUs)
    # ------------------------------------------------------------------
    sim_2d = Simulator.for_mesh(q=2)
    optimus = OptimusModel(Mesh(sim_2d, 2), cfg, params, checkpoint_activations=True)
    opt_loss = optimus.forward(ids, labels)
    optimus.backward()
    print(f"Optimus (2x2 mesh)    loss = {opt_loss:.6f}   "
          f"(diff vs serial: {abs(opt_loss - ref_loss):.2e})")

    # ------------------------------------------------------------------
    # 3) Megatron on 4 flat devices
    # ------------------------------------------------------------------
    sim_1d = Simulator.for_flat(p=4)
    megatron = MegatronModel(sim_1d, cfg, params, checkpoint_activations=True)
    meg_loss = megatron.forward(ids, labels)
    megatron.backward()
    print(f"Megatron (4 devices)  loss = {meg_loss:.6f}   "
          f"(diff vs serial: {abs(meg_loss - ref_loss):.2e})")

    # gradients agree too — spot-check one weight matrix
    from repro.mesh import assemble_blocked_2d

    g2d = assemble_blocked_2d(optimus.named_parameters()["layer0.mlp.w1"].grad)
    err = np.max(np.abs(g2d - ref_grads["layer0.mlp.w1"]))
    print(f"max |grad difference| on layer0.mlp.w1: {err:.2e}")

    # ------------------------------------------------------------------
    # 4) what did the simulated hardware see?
    # ------------------------------------------------------------------
    rows = []
    for name, sim in (("optimus", sim_2d), ("megatron", sim_1d)):
        d = sim.device(0)
        rows.append(
            [
                name,
                f"{d.flops_gemm:.3e}",
                format_bytes(d.bytes_comm),
                f"{d.comm_time * 1e3:.3f} ms",
                f"{sim.elapsed() * 1e3:.3f} ms",
                format_bytes(sim.peak_memory()),
            ]
        )
    print()
    print(
        format_table(
            ["scheme", "GEMM flops/dev", "bytes comm/dev", "comm time",
             "simulated iter", "peak mem/dev"],
            rows,
            title="Per-device accounting for one training iteration (4 devices)",
        )
    )
    print(
        "\nNote how Optimus moves its data with broadcast/reduce inside SUMMA"
        "\nwhile Megatron pays ring all-reduces on full replicated activations;"
        "\nat this toy scale Megatron is fine — the paper's effects appear at"
        "\nscale (see examples/scaling_study.py)."
    )


if __name__ == "__main__":
    main()
