#!/usr/bin/env python
"""Memory limits (paper Fig. 9): how large a batch fits on 16 GB devices?

For each weak-scaling configuration, bisects the maximum batch size against
the byte-accurate simulated allocator and prints the per-device memory
breakdown at the limit.  Reproduces the paper's §5.3 headline: Optimus
sustains an ~8× larger batch than Megatron on 64 GPUs because activations
are fully distributed instead of replicated.

Run:  python examples/memory_limits.py [--capacity-gb 16] [--optimizer adam]
"""

import argparse

from repro.config import table2_weak_scaling
from repro.experiments import fig9
from repro.perfmodel import estimate_peak_bytes, max_batch_size
from repro.utils import format_bytes, format_table


def breakdown_at_limit(capacity: float, optimizer_slots: int) -> str:
    rows = []
    for setting in table2_weak_scaling():
        p = setting["num_devices"]
        for scheme, key in (("megatron", "model_megatron"), ("optimus", "model_optimus")):
            cfg = setting[key]
            limit = max_batch_size(
                scheme, cfg, p, capacity, optimizer_slots=optimizer_slots
            )
            bd = estimate_peak_bytes(
                scheme, cfg, p, max(limit, 1), optimizer_slots=optimizer_slots
            )
            rows.append(
                [
                    p, scheme, limit,
                    format_bytes(bd.params + bd.grads + bd.optimizer),
                    format_bytes(bd.checkpoints),
                    format_bytes(bd.working),
                ]
            )
    return format_table(
        ["p", "scheme", "max b", "params+grads+opt", "checkpoints", "working set"],
        rows,
        title="Per-device memory at the batch-size limit (analytic breakdown)",
    )


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--capacity-gb", type=float, default=16.0)
    ap.add_argument(
        "--optimizer", choices=["none", "sgd", "adam"], default="none",
        help="include optimizer state (sgd: 1 slot, adam: 2 slots)",
    )
    args = ap.parse_args()
    capacity = args.capacity_gb * 1024**3
    slots = {"none": 0, "sgd": 1, "adam": 2}[args.optimizer]

    print("Searching maximum batch sizes on the simulated allocator...\n")
    rows = fig9.run(capacity_bytes=capacity, optimizer_slots=slots)
    print(fig9.render(rows))
    print(
        f"\nOptimus/Megatron ratio at 64 GPUs: {fig9.ratio_at(rows, 64):.2f}x "
        f"(paper: 8x)\n"
    )
    print(breakdown_at_limit(capacity, slots))
    print(
        "\nThe mechanism (paper §3.1.1): every Megatron working-set term is"
        "\nO(b·s·h) per device regardless of p, while Optimus divides"
        "\neverything by p = q² — so growing h with √p squeezes Megatron's"
        "\nbatch while Optimus's limit keeps rising."
    )


if __name__ == "__main__":
    main()
