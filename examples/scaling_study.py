#!/usr/bin/env python
"""Scaling study: regenerate the paper's Tables 2–3 and extrapolate beyond.

Uses the shape (dryrun) backend, so the *exact* paper-scale configurations
(h up to 8192, 64 devices, 24 layers) execute in seconds with full cost and
memory accounting but no data.  After the paper's 4–64 GPU range we keep
going to 256 devices — the regime the paper's isoefficiency analysis is
about — and print the analytic isoefficiency curve alongside.

Run:  python examples/scaling_study.py [--extended]
"""

import argparse

from repro.config import ModelConfig
from repro.experiments import table2, table3
from repro.experiments.runner import run_megatron_stem, run_optimus_stem
from repro.perfmodel import isoefficiency_work
from repro.utils import format_table


def extended_weak_scaling() -> str:
    """Continue Table 2's weak scaling to 256 devices (q = 16)."""
    rows = []
    for p, h, n, b_meg, b_opt in [
        (64, 8192, 128, 30, 384),
        (100, 10240, 160, 24, 480),
        (144, 12288, 192, 24, 576),
        (256, 16384, 256, 16, 1024),
    ]:
        cfg = ModelConfig(
            vocab_size=51200, hidden_size=h, num_heads=n, num_layers=24, seq_len=512
        )
        q = int(round(p**0.5))
        rm = run_megatron_stem(cfg, p, b_meg)
        ro = run_optimus_stem(cfg, q, b_opt)
        rows.append(
            [p, h, rm.throughput, ro.throughput, ro.throughput / rm.throughput]
        )
    return format_table(
        ["p", "h", "Megatron thr", "Optimus thr", "Optimus advantage"],
        rows,
        title="Beyond the paper: weak scaling to 256 devices",
    )


def isoefficiency_table() -> str:
    rows = []
    for p in (16, 64, 256, 1024):
        wm = isoefficiency_work("megatron", p)
        wo = isoefficiency_work("optimus", p)
        rows.append([p, wm, wo, wm / wo])
    return format_table(
        ["p", "W needed (Megatron)", "W needed (Optimus)", "ratio"],
        rows,
        title="Isoefficiency at E=0.8 (paper §3.1.2: W~p³ vs W~(√p·log p)³)",
    )


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--extended", action="store_true",
                    help="also sweep beyond the paper's 64 GPUs")
    args = ap.parse_args()

    print("Regenerating Table 2 (weak scaling)...\n")
    rows2 = table2.run()
    print(table2.render(rows2))
    tr, inf = table2.speedup_at(rows2, 64)
    print(f"\nOptimus speedup at 64 GPUs: {tr:.2f}x training / {inf:.2f}x "
          f"inference   (paper: 1.48x / 1.79x)\n")

    print("Regenerating Table 3 (strong scaling)...\n")
    print(table3.render(table3.run()))
    print()
    print(isoefficiency_table())
    if args.extended:
        print()
        print(extended_weak_scaling())


if __name__ == "__main__":
    main()
