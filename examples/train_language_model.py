#!/usr/bin/env python
"""Train a character-level language model with 2D (Optimus) parallelism.

A complete training run on the simulated mesh: byte-level next-character
modelling on a small corpus, Adam with warmup-cosine schedule and gradient
clipping, distributed activation checkpointing on.  The distributed run is
numerically identical to serial training (the test suite proves it); here we
watch the loss fall and then sample greedily from the trained model.

Run:  python examples/train_language_model.py [--steps 60] [--q 2]
"""

import argparse

import numpy as np

from repro.config import ModelConfig
from repro.core import OptimusModel
from repro.mesh import Mesh, assemble_blocked_2d
from repro.nn import init_transformer_params
from repro.runtime import Simulator
from repro.training import Adam, CharCorpus, Trainer, warmup_cosine


def sample(model: OptimusModel, corpus: CharCorpus, prompt: str, length: int) -> str:
    """Greedy decoding with the distributed model."""
    cfg = model.cfg
    if len(prompt) < cfg.seq_len:
        raise ValueError(f"prompt must be at least seq_len={cfg.seq_len} characters")
    text = prompt
    for _ in range(length):
        ids = corpus.encode(text[-cfg.seq_len :])
        # batch must be divisible by q: replicate the prompt q times
        batch = np.stack([ids] * model.mesh.q)
        logits = model.forward(batch)  # [q·s, v] DTensor
        full = assemble_blocked_2d(logits)
        next_id = int(np.argmax(full[cfg.seq_len - 1]))
        text += corpus.decode([next_id])
    return text


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--steps", type=int, default=60)
    ap.add_argument("--q", type=int, default=2, help="mesh dimension (p = q^2)")
    ap.add_argument("--batch", type=int, default=8)
    args = ap.parse_args()

    corpus = CharCorpus(vocab_size=48)
    cfg = ModelConfig(
        vocab_size=corpus.vocab_size,
        hidden_size=48,
        num_heads=4,
        num_layers=2,
        seq_len=24,
    )
    params = init_transformer_params(cfg, seed=0)
    sim = Simulator.for_mesh(q=args.q)
    model = OptimusModel(Mesh(sim, args.q), cfg, params, checkpoint_activations=True)
    optimizer = Adam(model.parameters(), lr=3e-3, sim=sim)

    trainer = Trainer(
        model,
        optimizer,
        corpus.batches(args.batch, cfg.seq_len, seed=0),
        lr_schedule=warmup_cosine(3e-3, warmup_steps=10, total_steps=args.steps),
        max_grad_norm=1.0,
        log_every=10,
    )
    print(
        f"training a {cfg.num_layers}-layer, h={cfg.hidden_size} char-LM on a "
        f"{args.q}x{args.q} simulated mesh ({args.q ** 2} devices)"
    )
    log = trainer.train_steps(args.steps)
    print(
        f"\nloss: {log.losses[0]:.3f} -> {log.losses[-1]:.3f} "
        f"after {args.steps} steps "
        f"(uniform-guess baseline = ln({cfg.vocab_size}) = "
        f"{np.log(cfg.vocab_size):.3f})"
    )
    print(f"simulated cluster time for the whole run: {sim.elapsed() * 1e3:.1f} ms")

    prompt = "lorem ipsum dolor sit am"  # seq_len characters
    completion = sample(model, corpus, prompt, length=24)
    print(f"\ngreedy sample:\n  {completion!r}")


if __name__ == "__main__":
    main()
