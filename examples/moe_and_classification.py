#!/usr/bin/env python
"""The paper's extensions in action: MoE layers (§6) and the Fig. 1
classification branch, both on the 2D mesh.

Part 1 — Mixture of Experts: a top-1 routed expert MLP whose gate lives on
mesh row 0 and whose experts are ordinary SUMMA operands.  We verify the 2D
computation against the serial reference, look at the expert load balance,
and take a few gradient steps to watch the auxiliary loss push the router
toward balance.

Part 2 — Sequence classification: token-0 pooling + a tiny dense head,
trained on a synthetic first-token task until accuracy beats chance.

Run:  python examples/moe_and_classification.py
"""

import numpy as np

from repro.config import ModelConfig
from repro.core import MoE2D, OptimusModel
from repro.core.moe import _balanced_counts  # noqa: F401 (doc pointer)
from repro.mesh import Mesh, assemble_blocked_2d, distribute_blocked_2d
from repro.nn import init_transformer_params
from repro.reference import ReferenceMoE, init_moe_params
from repro.runtime import Simulator
from repro.training import SGD


def moe_demo() -> None:
    print("=" * 64)
    print("Part 1 — 2D Mixture of Experts")
    print("=" * 64)
    h, E, T = 16, 4, 64
    rng = np.random.default_rng(0)
    params = init_moe_params(h, E, seed=3)
    x = rng.normal(size=(T, h))

    ref = ReferenceMoE(params, E)
    y_ref, aux_ref = ref.forward(x)

    sim = Simulator.for_mesh(q=2)
    mesh = Mesh(sim, 2)
    moe = MoE2D(mesh, params, E)
    y, aux = moe.forward(distribute_blocked_2d(mesh, x))
    err = np.abs(assemble_blocked_2d(y) - y_ref).max()
    print(f"2D vs serial output: max |diff| = {err:.2e}   aux loss = {aux:.4f}")
    print(f"expert load (tokens per expert): {list(ref.expert_load(x))}")

    # gate-only training on the aux loss balances the router
    opt = SGD(moe.parameters(), lr=100.0)  # only the tiny gate moves
    for step in range(30):
        opt.zero_grad()
        moe.forward(distribute_blocked_2d(mesh, x))
        moe.backward(distribute_blocked_2d(mesh, np.zeros_like(x)), d_aux=1.0)
        opt.step()
    _, aux_after = moe.forward(distribute_blocked_2d(mesh, x))
    moe.drop_caches()
    gathered = dict(params)
    gathered.update({p.name: _gather(p) for p in moe.parameters()})
    ref_after = ReferenceMoE(gathered, E)
    print(f"aux loss: {aux_ref:.4f} -> {float(aux_after):.4f} after 30 "
          f"balance-only gate steps (coef x 1.0 corresponds to balanced)")
    print(f"expert load now: {list(ref_after.expert_load(x))}\n")


def _gather(p):
    from repro.core.cls_head import assemble_row0_blockrows
    from repro.mesh.layouts import BLOCKED_2D
    from repro.mesh.partition import assemble_row0_cols

    if p.data.layout == BLOCKED_2D:
        return assemble_blocked_2d(p.data)
    if p.data.layout.kind == "row0_blockrows":
        return assemble_row0_blockrows(p.data)
    return assemble_row0_cols(p.data)


def classification_demo() -> None:
    print("=" * 64)
    print("Part 2 — sequence classification (Fig. 1 branch)")
    print("=" * 64)
    cfg = ModelConfig(vocab_size=32, hidden_size=32, num_heads=4,
                      num_layers=2, seq_len=16)
    def batch(b, seed):
        # class 1 iff the sequence's first token is in the upper half of the
        # vocabulary — learnable through the token-0 pooling path
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
        labels = (ids[:, 0] >= cfg.vocab_size // 2).astype(np.int64)
        return ids, labels

    params = init_transformer_params(cfg, seed=0, num_classes=2)
    sim = Simulator.for_mesh(q=2)
    model = OptimusModel(Mesh(sim, 2), cfg, params)
    opt = SGD(model.parameters(), lr=0.4)

    for step in range(40):
        ids, labels = batch(8, seed=step)
        opt.zero_grad()
        loss = model.forward_classification(ids, labels)
        model.backward_classification()
        opt.step()
        if (step + 1) % 10 == 0:
            print(f"step {step + 1:3d}  loss {loss:.4f}")

    ids, labels = batch(64, seed=10_000)
    from repro.mesh.partition import assemble_row_blocked

    logits = assemble_row_blocked(model.forward_classification(ids))
    acc = float((np.argmax(logits, axis=1) == labels).mean())
    print(f"\nheld-out accuracy: {acc:.2%} "
          f"(chance = {max((labels == 0).mean(), (labels == 1).mean()):.2%})")


if __name__ == "__main__":
    moe_demo()
    classification_demo()
