"""Closed-form performance and memory models (paper §2.5, §3.1, §4, Table 1).

These are the paper's own analytic expressions, kept separate from the
simulator so each can validate the other: the Table 1 benchmark checks that
the simulator's measured per-device communication volumes and GEMM MACs
match these formulas exactly, and the memory model is cross-checked against
the dryrun allocator in the test suite.
"""

from repro.perfmodel.costs import (
    TABLE1,
    layer_macs_backward,
    layer_macs_forward,
    megatron_comm_backward,
    megatron_comm_forward,
    optimus_comm_backward,
    optimus_comm_forward,
)
from repro.perfmodel.isoefficiency import (
    asymptotic_work_megatron,
    asymptotic_work_optimus,
    efficiency_megatron,
    efficiency_optimus,
    isoefficiency_hidden,
    isoefficiency_work,
)
from repro.perfmodel.memory_model import (
    MemoryBreakdown,
    estimate_peak_bytes,
    max_batch_size,
    measure_peak_bytes,
)
from repro.perfmodel.scaling import (
    amdahl_speedup,
    gustafson_speedup,
    strong_scaling_efficiency,
    weak_scaling_efficiency,
)

__all__ = [
    "megatron_comm_forward",
    "megatron_comm_backward",
    "optimus_comm_forward",
    "optimus_comm_backward",
    "layer_macs_forward",
    "layer_macs_backward",
    "TABLE1",
    "efficiency_megatron",
    "efficiency_optimus",
    "isoefficiency_hidden",
    "isoefficiency_work",
    "asymptotic_work_megatron",
    "asymptotic_work_optimus",
    "MemoryBreakdown",
    "estimate_peak_bytes",
    "measure_peak_bytes",
    "max_batch_size",
    "amdahl_speedup",
    "gustafson_speedup",
    "weak_scaling_efficiency",
    "strong_scaling_efficiency",
]
