"""Table 1 of the paper: per-layer communication and computation costs.

Communication entries are in *scalars transferred*, weighted by the
collective's stage factor exactly as in §2.5: a broadcast or reduce of B
scalars in a group of g devices counts ``log₂(g)·B`` (Eq. 4); a ring
all-reduce counts ``2(g−1)/g·B`` (Eq. 5).  Computation entries are in
scalar multiply-accumulates (MACs), as in the paper.

Derivation of the Optimus forward row (per device): the four SUMMA products
of one layer move, per Algorithm-1/2 step, one activation block
(``bsh/p``) plus one parameter block; summed over q steps with the
``log₂ q`` stage weight this is ``log₂(q)/√p · (Σ act + Σ param)`` where
Σ act = (1+1+1+4)·bsh and Σ param = (3+1+4+4)·h² — i.e. the paper's
``log(p)/(2√p)·(7bsh + 12h²)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def megatron_comm_forward(b: int, s: int, h: int, p: int) -> float:
    """Two ring all-reduces of bsh per layer: ``4(p−1)/p·bsh``."""
    if p <= 1:
        return 0.0
    return 4.0 * (p - 1) / p * b * s * h


def megatron_comm_backward(b: int, s: int, h: int, p: int) -> float:
    """Checkpointed backward: recompute (2 ARs) + input grads (2 ARs)."""
    if p <= 1:
        return 0.0
    return 8.0 * (p - 1) / p * b * s * h


def optimus_comm_forward(b: int, s: int, h: int, p: int) -> float:
    """``log₂(p)/(2√p)·(7bsh + 12h²)`` per device per layer."""
    if p <= 1:
        return 0.0
    return math.log2(p) / (2.0 * math.sqrt(p)) * (7.0 * b * s * h + 12.0 * h * h)


def optimus_comm_backward(b: int, s: int, h: int, p: int) -> float:
    """3× forward: recompute + dA + dW for every SUMMA product (Eqs. 1–3)."""
    if p <= 1:
        return 0.0
    return math.log2(p) / (2.0 * math.sqrt(p)) * (21.0 * b * s * h + 36.0 * h * h)


def layer_macs_forward(b: int, s: int, h: int) -> float:
    """``12bsh² + 2bs²h`` MACs per layer (total across devices)."""
    return 12.0 * b * s * h * h + 2.0 * b * s * s * h


def layer_macs_backward(b: int, s: int, h: int) -> float:
    """3× forward with activation checkpointing (recompute + two grads)."""
    return 3.0 * layer_macs_forward(b, s, h)


@dataclass(frozen=True)
class Table1Row:
    scheme: str
    forward_comm: object
    backward_comm: object
    forward_macs: object
    backward_macs: object


TABLE1 = {
    "megatron": Table1Row(
        scheme="megatron",
        forward_comm=megatron_comm_forward,
        backward_comm=megatron_comm_backward,
        forward_macs=lambda b, s, h, p: layer_macs_forward(b, s, h) / p,
        backward_macs=lambda b, s, h, p: layer_macs_backward(b, s, h) / p,
    ),
    "optimus": Table1Row(
        scheme="optimus",
        forward_comm=optimus_comm_forward,
        backward_comm=optimus_comm_backward,
        forward_macs=lambda b, s, h, p: layer_macs_forward(b, s, h) / p,
        backward_macs=lambda b, s, h, p: layer_macs_backward(b, s, h) / p,
    ),
}
