"""Isoefficiency analysis (paper §3.1.2).

Following the paper's setup: b and n scale proportionally to h while s and
N stay fixed, so the serial work is ``W ~ h³`` (MLP-dominated).  Efficiency
is ``E = 1 / (1 + p·T_comm/W)``.  Holding E fixed and solving for h gives
the isoefficiency curve; asymptotically

    Megatron:  W ~ p³
    Optimus:   W ~ (√p · log p)³

i.e. Optimus needs a much smaller problem to stay efficient, which is the
paper's headline scalability claim.
"""

from __future__ import annotations

import math

from scipy import optimize


def _work(h: float, s: float) -> float:
    """Serial MACs per layer with b = h (the paper's proportionality).

    The attention term ``2bs²h`` is dropped, exactly as in the paper's
    derivation ("with MLP dominating the total computation") — keeping it
    would give efficiency a nonzero floor as h → 0 and break the analysis.
    """
    return 12.0 * h * s * h * h


def _comm_megatron(h: float, s: float, p: float) -> float:
    return 4.0 * (p - 1) / p * h * s * h  # b = h


def _comm_optimus(h: float, s: float, p: float) -> float:
    return math.log2(p) / (2.0 * math.sqrt(p)) * (7.0 * h * s * h + 12.0 * h * h)


def efficiency_megatron(h: float, p: int, s: float = 512.0, beta_over_mac: float = 1.0) -> float:
    """E = 1/(1 + p·T_comm/W) with T_comm in β-weighted scalars."""
    if p <= 1:
        return 1.0
    return 1.0 / (1.0 + p * beta_over_mac * _comm_megatron(h, s, p) / _work(h, s))


def efficiency_optimus(h: float, p: int, s: float = 512.0, beta_over_mac: float = 1.0) -> float:
    if p <= 1:
        return 1.0
    return 1.0 / (1.0 + p * beta_over_mac * _comm_optimus(h, s, p) / _work(h, s))


def isoefficiency_hidden(
    scheme: str,
    p: int,
    target_efficiency: float = 0.8,
    s: float = 512.0,
    beta_over_mac: float = 1.0,
) -> float:
    """The hidden size h at which the scheme reaches the target efficiency.

    Solved with scipy's Brent root finder; E(h) is monotonically increasing
    in h for both schemes (more compute per communicated byte), so the root
    is unique.
    """
    eff = {"megatron": efficiency_megatron, "optimus": efficiency_optimus}[scheme]
    if p <= 1:
        return 1.0

    def f(log_h):
        return eff(math.exp(log_h), p, s, beta_over_mac) - target_efficiency

    lo, hi = math.log(1e-3), math.log(1e15)
    if f(hi) < 0:  # pragma: no cover - unreachable for sane targets
        raise ValueError("target efficiency unreachable")
    return math.exp(optimize.brentq(f, lo, hi, xtol=1e-12))


def isoefficiency_work(
    scheme: str,
    p: int,
    target_efficiency: float = 0.8,
    s: float = 512.0,
    beta_over_mac: float = 1.0,
) -> float:
    """W(p) on the isoefficiency curve (serial MACs per layer)."""
    h = isoefficiency_hidden(scheme, p, target_efficiency, s, beta_over_mac)
    return _work(h, s)


def asymptotic_work_megatron(p: float) -> float:
    """The paper's asymptotic law W ~ p³ (up to a constant)."""
    return float(p) ** 3


def asymptotic_work_optimus(p: float) -> float:
    """The paper's asymptotic law W ~ (√p·log p)³ (up to a constant)."""
    if p <= 1:
        return 1.0
    return (math.sqrt(p) * math.log2(p)) ** 3
