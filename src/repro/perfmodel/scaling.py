"""Scaling laws used by the paper's §5 (Amdahl, Gustafson) and the
efficiency definitions behind Fig. 7."""

from __future__ import annotations



def amdahl_speedup(serial_fraction: float, p: int) -> float:
    """Strong scaling: speedup = 1 / (a + (1−a)/p) (paper §5)."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    if p < 1:
        raise ValueError("p must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)


def gustafson_speedup(serial_fraction: float, p: int) -> float:
    """Weak scaling: speedup = a + (1−a)·p (paper §5)."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    if p < 1:
        raise ValueError("p must be >= 1")
    return serial_fraction + (1.0 - serial_fraction) * p


def weak_scaling_efficiency(
    t_serial_unit: float, t_parallel: float, work_ratio: float, p: int
) -> float:
    """Fig. 7 left: E = (work_ratio · T₁) / (p · T_p).

    ``t_serial_unit`` is the measured (or extrapolated) serial time of the
    unit problem; ``work_ratio`` is how much larger the scaled problem is
    than the unit problem (so ``work_ratio·t_serial_unit`` is the
    theoretical serial time of the scaled problem, the paper's
    "theoretical time cost for the other problem sizes").
    """
    if t_parallel <= 0 or p < 1:
        raise ValueError("invalid timing inputs")
    return work_ratio * t_serial_unit / (p * t_parallel)


def strong_scaling_efficiency(t_serial: float, t_parallel: float, p: int) -> float:
    """Fig. 7 right: E = T_serial / (p · T_p)."""
    if t_parallel <= 0 or p < 1:
        raise ValueError("invalid timing inputs")
    return t_serial / (p * t_parallel)
