"""Per-device memory model and the Fig. 9 max-batch-size search.

Ground truth is :func:`measure_peak_bytes`: a dryrun of the checkpointed
stem on the byte-accurate allocator (two layers suffice — the per-layer
working set repeats, only the checkpoint region grows with N, so deeper
stems are extrapolated exactly).  :func:`estimate_peak_bytes` is the
closed-form companion whose coefficients mirror what the implementation
actually buffers; the test suite keeps the two within tolerance.

The asymmetry the paper exploits is visible directly in the formulas: every
working-set term of Optimus carries ``1/p``, while Megatron's replicated
activations contribute ``O(bsh)`` per device no matter how many devices are
added (§3.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ModelConfig


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-device bytes by category."""

    params: float
    grads: float
    optimizer: float
    checkpoints: float
    working: float

    @property
    def total(self) -> float:
        return self.params + self.grads + self.optimizer + self.checkpoints + self.working


def _param_scalars_per_device(cfg: ModelConfig, p: int, scheme: str) -> float:
    h = cfg.hidden_size
    weights = 12.0 * h * h / p  # qkv + proj + fc1 + fc2, both schemes shard all
    if scheme == "optimus":
        vectors = 13.0 * h / p  # biases + LN affine, all split over the mesh row
    else:  # megatron replicates LN affine and the row-parallel biases
        vectors = 9.0 * h / p + 6.0 * h
    return cfg.num_layers * (weights + vectors)


def estimate_peak_bytes(
    scheme: str,
    cfg: ModelConfig,
    num_devices: int,
    batch_size: int,
    elem_size: int = 4,
    optimizer_slots: int = 0,
) -> MemoryBreakdown:
    """Closed-form per-device peak of one checkpointed fwd+bwd iteration."""
    if scheme not in ("optimus", "megatron"):
        raise ValueError(f"unknown scheme {scheme!r}")
    p = num_devices
    b, s, h, n, N = batch_size, cfg.seq_len, cfg.hidden_size, cfg.num_heads, cfg.num_layers
    bsh = float(b) * s * h
    probs = float(b) * n * s * s  # attention score tensors of one layer

    params = _param_scalars_per_device(cfg, p, scheme) * elem_size
    grads = params
    optimizer = optimizer_slots * params
    checkpoints = N * bsh / p * elem_size

    if scheme == "optimus":
        # all activation terms are distributed; coefficients mirror what the
        # modules hold in the forward/backward/workspace/conjunction regions
        working_scalars = (
            20.0 * bsh / p  # forward region of one layer
            + probs / p
            + 12.0 * bsh / p  # backward region
            + bsh / p  # conjunction hand-off
            + (4.0 * bsh + 4.0 * h * h) / p  # SUMMA workspace (largest blocks)
        )
    else:
        # replicated activations: the O(bsh) per-device wall of §3.1.1
        working_scalars = (
            6.0 * bsh  # replicated forward tensors of one layer
            + (12.0 * bsh + probs) / p  # column-sharded forward tensors
            + 2.0 * bsh  # replicated backward tensors (f-operator outputs)
            + 5.0 * bsh / p  # column-sharded backward tensors
        )
    return MemoryBreakdown(
        params=params,
        grads=grads,
        optimizer=optimizer,
        checkpoints=checkpoints,
        working=working_scalars * elem_size,
    )


def measure_peak_bytes(
    scheme: str,
    cfg: ModelConfig,
    num_devices: int,
    batch_size: int,
    optimizer_slots: int = 0,
    gpus_per_node: int = 4,
) -> float:
    """Dryrun-measured per-device peak, extrapolated to the full depth.

    Runs a 2-layer checkpointed stem on the shape backend (seconds even at
    paper scale) and adds what the deeper model would hold on top: the
    ``(N−2)·bsh/p`` checkpoint bytes, the extra layers' parameters and
    accumulated parameter gradients, and optimizer state.  Working-set
    buffers are layer-independent (the whole point of §3.2.3), so they need
    no extrapolation.
    """
    import dataclasses

    from repro.experiments.runner import run_megatron_stem, run_optimus_stem

    depth = min(cfg.num_layers, 2)
    small = dataclasses.replace(cfg, num_layers=depth)
    if scheme == "optimus":
        q = int(round(num_devices**0.5))
        if q * q != num_devices:
            raise ValueError(f"{num_devices} devices is not a square mesh")
        res = run_optimus_stem(small, q, batch_size, gpus_per_node=gpus_per_node)
    elif scheme == "megatron":
        res = run_megatron_stem(small, num_devices, batch_size, gpus_per_node=gpus_per_node)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    elem = 4  # stems run in float32
    extra_layers = cfg.num_layers - depth
    ckpt_per_layer = float(batch_size) * cfg.seq_len * cfg.hidden_size / num_devices * elem
    params_per_layer = (
        _param_scalars_per_device(cfg, num_devices, scheme) / cfg.num_layers * elem
    )
    extra = extra_layers * (ckpt_per_layer + 2 * params_per_layer)  # params + grads
    opt_state = optimizer_slots * _param_scalars_per_device(cfg, num_devices, scheme) * elem
    return res.peak_memory_bytes + extra + opt_state


def max_batch_size(
    scheme: str,
    cfg: ModelConfig,
    num_devices: int,
    capacity_bytes: float,
    granularity: int = 0,
    method: str = "measure",
    optimizer_slots: int = 0,
    max_batch: int = 4096,
) -> int:
    """Largest batch whose per-device peak fits in ``capacity_bytes`` (Fig 9).

    Exponential probe then bisection; ``granularity`` defaults to q for
    Optimus (its batch must divide over mesh rows) and 2 for Megatron.
    """
    if granularity <= 0:
        granularity = int(round(num_devices**0.5)) if scheme == "optimus" else 2

    def peak(b: int) -> float:
        if method == "measure":
            return measure_peak_bytes(scheme, cfg, num_devices, b, optimizer_slots)
        return estimate_peak_bytes(
            scheme, cfg, num_devices, b, optimizer_slots=optimizer_slots
        ).total

    if peak(granularity) > capacity_bytes:
        return 0
    lo = 1  # in units of granularity
    hi = 1
    while hi * granularity < max_batch and peak(2 * hi * granularity) <= capacity_bytes:
        hi *= 2
    lo, hi = hi, min(2 * hi, max_batch // granularity)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if peak(mid * granularity) <= capacity_bytes:
            lo = mid
        else:
            hi = mid - 1
    return lo * granularity
