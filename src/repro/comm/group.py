"""Process groups over the simulator's ranks."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.comm.cost import GroupCommModel
from repro.runtime.simulator import Simulator


class ProcessGroup:
    """An ordered set of ranks that communicate collectively.

    ``siblings`` — the rank sets of collectives that run concurrently with
    this group's (e.g. all q row groups of a mesh).  They only influence the
    priced NIC contention, never the data movement.
    """

    def __init__(
        self,
        sim: Simulator,
        ranks: Sequence[int],
        kind: str = "group",
        siblings: Optional[Sequence[Sequence[int]]] = None,
    ):
        ranks = tuple(int(r) for r in ranks)
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate ranks in group")
        for r in ranks:
            if not 0 <= r < sim.num_ranks:
                raise ValueError(f"rank {r} outside simulator of {sim.num_ranks} ranks")
        self.sim = sim
        self.ranks: Tuple[int, ...] = ranks
        self.kind = kind
        self.model = GroupCommModel.build(
            sim.topology, sim.arrangement, ranks, siblings=siblings
        )

    @property
    def size(self) -> int:
        return len(self.ranks)

    def index_of(self, rank: int) -> int:
        return self.ranks.index(rank)

    def contains(self, rank: int) -> bool:
        return rank in self.ranks

    def devices(self):
        return [self.sim.device(r) for r in self.ranks]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessGroup(kind={self.kind!r}, ranks={self.ranks})"


def make_group(
    sim: Simulator,
    ranks: Sequence[int],
    kind: str = "group",
    siblings: Optional[Sequence[Sequence[int]]] = None,
) -> ProcessGroup:
    """Convenience constructor mirroring ``torch.distributed.new_group``."""
    return ProcessGroup(sim, ranks, kind=kind, siblings=siblings)
