"""Collective operations on per-rank shards.

All functions take a :class:`~repro.comm.group.ProcessGroup` and a mapping
``{rank: local array}`` whose keys are exactly the group's ranks, perform the
real data movement (numpy mode) or shape propagation (dryrun mode), charge
α–β time, and synchronize the participating clocks (bulk-synchronous
semantics: a collective completes for everyone at the same simulated time).

The data semantics mirror MPI: ``broadcast`` copies the root's buffer to all,
``reduce``/``all_reduce`` sum elementwise, ``all_gather``/``gather``
concatenate in rank order along an axis, ``reduce_scatter`` sums then splits,
``scatter`` splits the root's buffer.

Two hot-path refinements (numerics-neutral, see ``docs/simulator.md``):

* **single-rank groups are zero-copy** — a collective over one rank moves no
  data, charges nothing, and returns the caller's buffer unchanged instead
  of copying it;
* **precosted calls** — ``broadcast``/``reduce`` accept an optional
  ``precost=(dt, nbytes, weighted)`` tuple so a caller that already knows
  the α–β price (the SUMMA plan cache) skips recomputing byte counts and
  tree-stage timing on every step.  The charged quantities are identical to
  the computed ones by construction of the plan.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import is_shape_array
from repro.comm.group import ProcessGroup

Shards = Dict[int, object]
Precost = Tuple[float, float, float]  # (dt, nbytes, weighted volume)

_REDUCE_OPS = ("sum", "max")


def _bad_reduce_op(op: str) -> ValueError:
    return ValueError(
        f"unsupported reduction op {op!r}: valid ops are {list(_REDUCE_OPS)}"
    )


# Every collective below starts with the same two inline guards, kept out of
# helper functions because this is the simulator's hottest path:
#   * reduce-op validation happens before any early return, so an invalid
#     op raises even on size-1 groups (whose zero-copy path never combines);
#   * the fault-injector check is two attribute reads and a None test —
#     the entirety of the fault machinery's cost when injection is off.


def _check_shards(group: ProcessGroup, shards: Shards, same_shape: bool = True) -> None:
    if set(shards) != set(group.ranks):
        raise ValueError(
            f"shard ranks {sorted(shards)} do not match group ranks {sorted(group.ranks)}"
        )
    if same_shape:
        shapes = {tuple(shards[r].shape) for r in group.ranks}
        if len(shapes) != 1:
            raise ValueError(f"shards must share a shape, got {shapes}")


def _copy(x):
    """Isolate buffers across ranks (placeholders are immutable, pass through)."""
    if type(x) is np.ndarray:
        # order="K" preserves the source layout exactly like np.array(x) did,
        # while skipping np.array's dtype/shape re-inference
        return x.copy(order="K")
    return x if is_shape_array(x) else np.array(x, copy=True)


def _charge(group: ProcessGroup, kind: str, dt: float, nbytes: float, weighted: float):
    sim = group.sim
    if group.size <= 1:
        return  # a single-rank group moves no data and costs nothing
    t0 = sim.sync(group.ranks)
    sim.advance(group.ranks, dt)
    for r in group.ranks:
        sim.device(r).charge_comm(dt, nbytes, weighted)
    # guard before touching the tracer: when tracing is off the hot SUMMA
    # loop must not pay for argument construction
    if sim.tracer.enabled:
        sim.tracer.record(
            kind, group.ranks, t0, t0 + dt,
            nbytes=nbytes, label=group.kind, weighted=weighted,
        )


def charge_only(group: ProcessGroup, kind: str, precost: Precost) -> None:
    """Charge a collective's α–β accounting without moving any data.

    The batched SUMMA engine computes a whole stage numerically as one
    stacked product, but must still charge clocks, byte counters, weighted
    volumes, and trace events in the exact per-rank order of the per-rank
    path.  This is that replay hook: the charged quantities are identical
    to what ``broadcast``/``reduce`` with the same ``precost`` would emit
    (including the size-1 early return, which charges nothing).
    """
    _charge(group, kind, *precost)


# ----------------------------------------------------------------------
# collectives
# ----------------------------------------------------------------------
def broadcast(
    group: ProcessGroup, src, root: int, precost: Optional[Precost] = None
) -> Shards:
    """Copy the root rank's buffer ``src`` to every rank in the group."""
    inj = group.sim.fault_injector
    if inj is not None and inj.armed:
        return inj.on_collective(
            "broadcast", group, lambda: broadcast(group, src, root, precost)
        )
    if root not in group.ranks:
        raise ValueError(f"root {root} not in group {group.ranks}")
    if group.size == 1:
        return {root: src}  # zero-copy: nothing moves, nothing is charged
    if precost is None:
        nbytes = ops.nbytes(src)
        dt = group.model.broadcast_time(nbytes)
        weighted = group.model.broadcast_weighted_volume(nbytes)
    else:
        dt, nbytes, weighted = precost
    _charge(group, "broadcast", dt, nbytes, weighted)
    return {r: (src if r == root else _copy(src)) for r in group.ranks}


def _combine(group: ProcessGroup, shards: Shards, op: str):
    first = shards[group.ranks[0]]
    if op not in _REDUCE_OPS:
        raise _bad_reduce_op(op)
    if is_shape_array(first):
        acc = first
        for r in group.ranks[1:]:
            acc = acc + shards[r] if op == "sum" else ops.maximum(acc, shards[r])
        return acc
    acc = _copy(first)
    fold = np.add if op == "sum" else np.maximum
    for r in group.ranks[1:]:
        b = shards[r]
        if (
            type(b) is np.ndarray
            and type(acc) is np.ndarray
            and b.dtype == acc.dtype
            and b.shape == acc.shape
        ):
            # same order, same dtype: in-place fold is bit-identical to the
            # out-of-place `acc = acc + b` but allocates nothing
            fold(acc, b, out=acc)
        else:  # mixed dtype/shape: keep numpy's promotion semantics
            acc = acc + b if op == "sum" else np.maximum(acc, b)
    return acc


def reduce(
    group: ProcessGroup,
    shards: Shards,
    root: int,
    op: str = "sum",
    precost: Optional[Precost] = None,
) -> Shards:
    """Elementwise-reduce all buffers onto the root rank."""
    if op not in _REDUCE_OPS:
        raise _bad_reduce_op(op)
    inj = group.sim.fault_injector
    if inj is not None and inj.armed:
        return inj.on_collective(
            "reduce", group, lambda: reduce(group, shards, root, op, precost)
        )
    if root not in group.ranks:
        raise ValueError(f"root {root} not in group {group.ranks}")
    if group.size == 1:
        if set(shards) != set(group.ranks):
            raise ValueError(
                f"shard ranks {sorted(shards)} do not match group ranks "
                f"{sorted(group.ranks)}"
            )
        return {root: shards[root]}  # zero-copy: the root already holds the sum
    _check_shards(group, shards)
    acc = _combine(group, shards, op)
    if precost is None:
        nbytes = ops.nbytes(acc)
        dt = group.model.reduce_time(nbytes)
        weighted = group.model.reduce_weighted_volume(nbytes)
    else:
        dt, nbytes, weighted = precost
    _charge(group, "reduce", dt, nbytes, weighted)
    return {root: acc}


def all_reduce(group: ProcessGroup, shards: Shards, op: str = "sum") -> Shards:
    """Ring all-reduce: every rank ends with the elementwise reduction."""
    if op not in _REDUCE_OPS:
        raise _bad_reduce_op(op)
    inj = group.sim.fault_injector
    if inj is not None and inj.armed:
        return inj.on_collective(
            "all_reduce", group, lambda: all_reduce(group, shards, op)
        )
    if group.size == 1:
        _check_shards(group, shards)
        return dict(shards)  # zero-copy
    _check_shards(group, shards)
    acc = _combine(group, shards, op)
    nbytes = ops.nbytes(acc)
    _charge(
        group,
        "all_reduce",
        group.model.all_reduce_time(nbytes),
        nbytes,
        group.model.all_reduce_weighted_volume(nbytes),
    )
    return {r: (acc if i == 0 else _copy(acc)) for i, r in enumerate(group.ranks)}


def all_gather(group: ProcessGroup, shards: Shards, axis: int = 0) -> Shards:
    """Every rank receives the rank-order concatenation along ``axis``."""
    inj = group.sim.fault_injector
    if inj is not None and inj.armed:
        return inj.on_collective(
            "all_gather", group, lambda: all_gather(group, shards, axis)
        )
    _check_shards(group, shards, same_shape=False)
    if group.size == 1:
        return dict(shards)  # zero-copy: concatenation of one part is itself
    parts = [shards[r] for r in group.ranks]
    full = ops.concatenate(parts, axis=axis)
    total = ops.nbytes(full)
    _charge(
        group,
        "all_gather",
        group.model.all_gather_time(total),
        total,
        group.model.all_gather_weighted_volume(total),
    )
    return {r: (full if i == 0 else _copy(full)) for i, r in enumerate(group.ranks)}


def reduce_scatter(group: ProcessGroup, shards: Shards, axis: int = 0) -> Shards:
    """Sum all buffers, then rank i keeps the i-th equal slice along ``axis``."""
    inj = group.sim.fault_injector
    if inj is not None and inj.armed:
        return inj.on_collective(
            "reduce_scatter", group, lambda: reduce_scatter(group, shards, axis)
        )
    _check_shards(group, shards)
    if group.size == 1:
        return dict(shards)  # zero-copy: sum of one shard, split into one piece
    g = group.size
    acc = _combine(group, shards, "sum")
    if acc.shape[axis % acc.ndim] % g != 0:
        raise ValueError(
            f"reduce_scatter axis {axis} of size {acc.shape[axis % acc.ndim]} "
            f"not divisible by group size {g}"
        )
    pieces = ops.split(acc, g, axis=axis)
    total = ops.nbytes(acc)
    _charge(
        group,
        "reduce_scatter",
        group.model.reduce_scatter_time(total),
        total,
        group.model.reduce_scatter_weighted_volume(total),
    )
    return {r: pieces[i] for i, r in enumerate(group.ranks)}


def scatter(group: ProcessGroup, full, root: int, axis: int = 0) -> Shards:
    """Split the root's buffer into equal slices, one per rank."""
    inj = group.sim.fault_injector
    if inj is not None and inj.armed:
        return inj.on_collective(
            "scatter", group, lambda: scatter(group, full, root, axis)
        )
    if root not in group.ranks:
        raise ValueError(f"root {root} not in group {group.ranks}")
    if group.size == 1:
        return {root: full}  # zero-copy
    g = group.size
    if full.shape[axis % full.ndim] % g != 0:
        raise ValueError("scatter axis not divisible by group size")
    pieces = ops.split(full, g, axis=axis)
    # scatter moves (g-1)/g of the buffer out of the root, tree-style; the
    # byte counters, the α–β time, and the weighted volume must all charge
    # this same moved volume or the comm-matrix reconciliation breaks
    moved = ops.nbytes(full) * (g - 1) / g
    _charge(
        group,
        "scatter",
        group.model.broadcast_time(moved),
        moved,
        group.model.broadcast_weighted_volume(moved),
    )
    return {r: _copy(pieces[i]) for i, r in enumerate(group.ranks)}


def gather(group: ProcessGroup, shards: Shards, root: int, axis: int = 0) -> Shards:
    """Concatenate all buffers in rank order onto the root."""
    inj = group.sim.fault_injector
    if inj is not None and inj.armed:
        return inj.on_collective(
            "gather", group, lambda: gather(group, shards, root, axis)
        )
    if root not in group.ranks:
        raise ValueError(f"root {root} not in group {group.ranks}")
    _check_shards(group, shards, same_shape=False)
    if group.size == 1:
        return {root: shards[root]}  # zero-copy
    parts = [shards[r] for r in group.ranks]
    full = ops.concatenate(parts, axis=axis)
    g = group.size
    # gather moves (g-1)/g of the result into the root; charge bytes, time,
    # and weighted volume consistently (see scatter)
    moved = ops.nbytes(full) * (g - 1) / g
    _charge(
        group,
        "gather",
        group.model.reduce_time(moved),
        moved,
        group.model.reduce_weighted_volume(moved),
    )
    return {root: full}


def send_recv(sim, src: int, dst: int, x, send_time: float = None):
    """Asynchronous point-to-point transfer of ``x`` from rank src to dst.

    Used by pipeline parallelism for inter-stage activation hand-off.
    Models the standard eager/DMA send: the copy engine starts moving the
    buffer the moment it is produced (``send_time``, defaulting to the
    sender's current clock), without blocking the sender's compute stream;
    the receiver cannot proceed before the data has arrived, so its clock
    advances to ``max(recv_clock, send_time + transfer_time)``.
    Rendezvous-blocking semantics — or stamping the send when the consumer
    finally asks for it — would convoy tightly-coupled schedules like 1F1B,
    which is not how real NCCL/Gloo pipelines behave.
    """
    if src == dst:
        return x
    nbytes = ops.nbytes(x)
    dt = sim.topology.p2p_time(
        sim.arrangement.gpu_of(src), sim.arrangement.gpu_of(dst), nbytes
    )
    sender = sim.device(src)
    receiver = sim.device(dst)
    t0 = sender.clock if send_time is None else send_time
    arrival = t0 + dt
    receiver.clock = max(receiver.clock, arrival)
    sender.charge_comm(0.0, nbytes, nbytes)  # copy engine; compute not stalled
    receiver.charge_comm(dt, nbytes, nbytes)
    if sim.tracer.enabled:
        sim.tracer.record("p2p", (src, dst), t0, arrival, nbytes=nbytes, weighted=nbytes)
    return _copy(x)


def barrier(group: ProcessGroup) -> float:
    """Synchronize clocks without moving data; returns the barrier time."""
    return group.sim.sync(group.ranks)
