"""Collective communication over simulated process groups.

Implements the collectives the paper relies on — tree broadcast and reduce
(used within SUMMA rows/columns, paper Eq. 4), ring all-reduce (Megatron's
primitive, Eq. 5), plus all-gather / reduce-scatter / scatter / gather —
operating on real per-rank numpy shards (or dryrun placeholders) while
charging α–β time, byte counters, and the paper's ``log(g)·B`` /
``2(g−1)B/g`` weighted volumes used by Table 1.
"""

from repro.comm import collectives
from repro.comm.collectives import (
    all_gather,
    all_reduce,
    broadcast,
    gather,
    reduce,
    reduce_scatter,
    scatter,
)
from repro.comm.cost import GroupCommModel
from repro.comm.group import ProcessGroup, make_group

__all__ = [
    "GroupCommModel",
    "ProcessGroup",
    "make_group",
    "collectives",
    "broadcast",
    "reduce",
    "all_reduce",
    "all_gather",
    "reduce_scatter",
    "scatter",
    "gather",
]
