"""α–β timing model for collectives, with topology-aware contention.

Following the paper's §2.5:

* tree broadcast / reduce within a group of g devices costs
  ``log(g) · (α + βB)`` (Eq. 4, latency retained although the paper drops it);
* ring all-reduce over g devices costs ``2(g−1) · (α + βB/g)`` (Eq. 5).

On a multi-node cluster the effective β of an inter-node stage is the NIC's
β multiplied by a *crowding factor*: the number of concurrent multi-node
collectives whose members share the busiest host (Fig. 8).  Groups that fit
inside one node use the intra-node link.  Multi-node tree collectives are
priced hierarchically: ``⌈log₂ m⌉`` inter-node stages (m = nodes spanned)
followed by ``⌈log₂ r⌉`` intra-node stages (r = max ranks per node), which is
how NCCL-style implementations behave and what makes the bunched arrangement
of Fig. 8b faster than the naive one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hardware.arrangement import Arrangement
from repro.hardware.topology import ClusterTopology, GroupProfile


def _log2_ceil(n: int) -> int:
    return int(math.ceil(math.log2(n))) if n > 1 else 0


def _log2_stages(n: int) -> float:
    """Continuous stage count for pipelined tree collectives.

    Eq. 4 of the paper prices a broadcast as ``log(q)·βB``; with large
    pipelined messages the effective serialization grows smoothly with the
    fan-out rather than in integer jumps, so we use ``log₂ n`` directly
    (3 nodes → 1.58 stages, 4 nodes → 2).
    """
    return math.log2(n) if n > 1 else 0.0


#: Sustained fractions of link bandwidth achieved by ring collectives.
#: Calibration constants (see DESIGN.md): a multi-node NCCL ring over
#: PCIe-attached GPUs and one shared IB NIC per node pays per-hop protocol
#: and host-staging overhead on each of its 2(g−1) serialized steps;
#: measured Megatron-LM all-reduce bus bandwidths on this hardware class are
#: ~40% of line rate across nodes, while a ring confined to one node's PCIe
#: fabric with peer-to-peer copies sustains ~85%.
RING_EFFICIENCY_INTRA = 0.85
RING_EFFICIENCY_INTER = 0.40

#: Sustained fraction for pipelined tree broadcast/reduce of large blocks —
#: one bulk transfer per stage pipelines well (~85% of line rate).
TREE_EFFICIENCY = 0.85


@dataclass(frozen=True)
class GroupCommModel:
    """Prices collectives for one process group under one arrangement."""

    profile: GroupProfile
    crowding: int  # bandwidth-division factor on inter-node stages
    alpha_intra: float
    beta_intra: float
    alpha_inter: float
    beta_inter: float
    ring_efficiency_intra: float = RING_EFFICIENCY_INTRA
    ring_efficiency_inter: float = RING_EFFICIENCY_INTER
    tree_efficiency: float = TREE_EFFICIENCY

    @classmethod
    def build(
        cls,
        topology: ClusterTopology,
        arrangement: Arrangement,
        ranks: Sequence[int],
        siblings: Optional[Sequence[Sequence[int]]] = None,
    ) -> "GroupCommModel":
        """Construct from the group's placement.

        ``siblings`` is the set of rank groups that run the *same* collective
        concurrently (e.g. all q rows of a SUMMA step); it determines NIC
        crowding.  When omitted, the group is assumed to run alone.
        """
        profile = topology.group_profile(ranks, arrangement)
        siblings = siblings if siblings is not None else [list(ranks)]
        crowding = topology.crowding(siblings, arrangement)
        intra = topology.cluster.intra_link
        inter = topology.cluster.inter_link
        return cls(
            profile=profile,
            crowding=max(1, crowding),
            alpha_intra=intra.alpha,
            beta_intra=intra.beta,
            alpha_inter=inter.alpha,
            beta_inter=inter.beta,
        )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.profile.size

    def _tree_time(self, nbytes: float) -> float:
        g = self.profile.size
        if g <= 1:
            return 0.0
        eff_bytes = nbytes / self.tree_efficiency
        if self.profile.is_intra_node:
            stages = _log2_stages(g)
            return stages * (self.alpha_intra + self.beta_intra * eff_bytes)
        inter_stages = _log2_stages(self.profile.nodes_spanned)
        intra_stages = _log2_stages(self.profile.max_ranks_per_node)
        t = inter_stages * (
            self.alpha_inter + self.beta_inter * self.crowding * eff_bytes
        )
        t += intra_stages * (self.alpha_intra + self.beta_intra * eff_bytes)
        return t

    def broadcast_time(self, nbytes: float) -> float:
        """Tree broadcast of ``nbytes`` from one root to the group."""
        return self._tree_time(nbytes)

    def reduce_time(self, nbytes: float) -> float:
        """Tree reduction of per-rank buffers of ``nbytes`` to one root."""
        return self._tree_time(nbytes)

    def all_reduce_time(self, nbytes: float) -> float:
        """Ring all-reduce of a ``nbytes`` buffer (Eq. 5)."""
        g = self.profile.size
        if g <= 1:
            return 0.0
        if self.profile.is_intra_node:
            alpha = self.alpha_intra
            beta = self.beta_intra / self.ring_efficiency_intra
        else:
            # a node-contiguous ring crosses each NIC once per step in each
            # direction; concurrent multi-node rings still divide bandwidth
            alpha = self.alpha_inter
            beta = self.beta_inter * self.crowding / self.ring_efficiency_inter
        return 2 * (g - 1) * (alpha + beta * nbytes / g)

    def all_gather_time(self, total_nbytes: float) -> float:
        """Ring all-gather producing ``total_nbytes`` on every rank."""
        g = self.profile.size
        if g <= 1:
            return 0.0
        if self.profile.is_intra_node:
            alpha = self.alpha_intra
            beta = self.beta_intra / self.ring_efficiency_intra
        else:
            alpha = self.alpha_inter
            beta = self.beta_inter * self.crowding / self.ring_efficiency_inter
        return (g - 1) * (alpha + beta * total_nbytes / g)

    def reduce_scatter_time(self, total_nbytes: float) -> float:
        """Ring reduce-scatter of per-rank ``total_nbytes`` buffers."""
        return self.all_gather_time(total_nbytes)

    # ------------------------------------------------------------------
    # the paper's β-normalized "weighted volume" used to validate Table 1
    # ------------------------------------------------------------------
    def broadcast_weighted_volume(self, nbytes: float) -> float:
        g = self.profile.size
        return math.log2(g) * nbytes if g > 1 else 0.0

    reduce_weighted_volume = broadcast_weighted_volume

    def all_reduce_weighted_volume(self, nbytes: float) -> float:
        g = self.profile.size
        return 2.0 * (g - 1) * nbytes / g if g > 1 else 0.0

    def all_gather_weighted_volume(self, total_nbytes: float) -> float:
        g = self.profile.size
        return (g - 1) * total_nbytes / g if g > 1 else 0.0

    reduce_scatter_weighted_volume = all_gather_weighted_volume
