"""Rank → physical-GPU arrangements (paper Fig. 8).

For a ``q × q`` SUMMA mesh on a cluster of multi-GPU nodes, the mapping from
logical mesh coordinate to physical GPU determines how much collective
traffic crosses the (shared, slow) inter-node cables:

* **naive** — row-major: rank ``i*q + j`` lands on GPU ``i*q + j``.  With 4
  GPUs per node and q = 4, every mesh *row* is intra-node but every mesh
  *column* spans all 4 nodes, and all 4 concurrent column collectives crowd
  each node's single NIC (Fig. 8a).
* **bunched** — the paper's proposal: tile the mesh into near-square
  sub-blocks of one node's GPUs (2×2 for 4-GPU nodes), so a column group
  spans only 2 nodes and only 2 column groups share any cable (Fig. 8b).
* **linear** — identity mapping for flat (1-D / Megatron) rank groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.hardware.specs import ClusterSpec


@dataclass(frozen=True)
class Arrangement:
    """An injective mapping from logical rank to physical GPU id."""

    name: str
    cluster: ClusterSpec
    rank_to_gpu: Tuple[int, ...]
    _gpu_to_rank: Dict[int, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        if len(set(self.rank_to_gpu)) != len(self.rank_to_gpu):
            raise ValueError("arrangement must be injective")
        for g in self.rank_to_gpu:
            if not 0 <= g < self.cluster.num_devices:
                raise ValueError(f"gpu id {g} outside cluster of {self.cluster.num_devices}")
        object.__setattr__(
            self, "_gpu_to_rank", {g: r for r, g in enumerate(self.rank_to_gpu)}
        )

    @property
    def num_ranks(self) -> int:
        return len(self.rank_to_gpu)

    def gpu_of(self, rank: int) -> int:
        return self.rank_to_gpu[rank]

    def node_of(self, rank: int) -> int:
        return self.cluster.node_of(self.rank_to_gpu[rank])

    def nodes_of(self, ranks: Sequence[int]) -> Dict[int, int]:
        """Histogram {node id: number of the given ranks hosted there}."""
        hist: Dict[int, int] = {}
        for r in ranks:
            n = self.node_of(r)
            hist[n] = hist.get(n, 0) + 1
        return hist

    def spans_nodes(self, ranks: Sequence[int]) -> bool:
        return len(self.nodes_of(ranks)) > 1


def linear_arrangement(cluster: ClusterSpec, num_ranks=None) -> Arrangement:
    """Identity mapping: rank r → GPU r (used for 1-D / Megatron groups)."""
    n = cluster.num_devices if num_ranks is None else num_ranks
    if n > cluster.num_devices:
        raise ValueError("more ranks than devices")
    return Arrangement("linear", cluster, tuple(range(n)))


def naive_arrangement(cluster: ClusterSpec, q: int) -> Arrangement:
    """Row-major mesh placement (Fig. 8a)."""
    if q * q > cluster.num_devices:
        raise ValueError(f"mesh {q}x{q} needs {q * q} devices, cluster has {cluster.num_devices}")
    return Arrangement("naive", cluster, tuple(range(q * q)))


def _tile_dims(q: int, gpus_per_node: int) -> Tuple[int, int]:
    """Pick the most-square (th, tw) with th*tw == gpus_per_node, th|q, tw|q."""
    best = None
    for th in range(1, gpus_per_node + 1):
        if gpus_per_node % th:
            continue
        tw = gpus_per_node // th
        if q % th or q % tw:
            continue
        score = abs(th - tw)
        if best is None or score < best[0]:
            best = (score, th, tw)
    if best is None:
        raise ValueError(f"no node tile for q={q}, gpus_per_node={gpus_per_node}")
    return best[1], best[2]


def bunched_arrangement(cluster: ClusterSpec, q: int) -> Arrangement:
    """The paper's bunched placement (Fig. 8b): one node = one mesh sub-tile."""
    p = q * q
    if p > cluster.num_devices:
        raise ValueError(f"mesh {q}x{q} needs {p} devices, cluster has {cluster.num_devices}")
    gpn = cluster.gpus_per_node
    if p <= gpn:
        # whole mesh fits on one node; placement is trivial
        return Arrangement("bunched", cluster, tuple(range(p)))
    th, tw = _tile_dims(q, gpn)
    tiles_per_row = q // tw
    mapping = [0] * p
    for i in range(q):
        for j in range(q):
            tile = (i // th) * tiles_per_row + (j // tw)  # node index
            within = (i % th) * tw + (j % tw)  # gpu slot within node
            mapping[i * q + j] = tile * gpn + within
    return Arrangement("bunched", cluster, tuple(mapping))


def make_arrangement(cluster: ClusterSpec, q: int, kind: str = "bunched") -> Arrangement:
    """Factory used by :class:`repro.mesh.Mesh`."""
    if kind == "bunched":
        try:
            return bunched_arrangement(cluster, q)
        except ValueError:
            return naive_arrangement(cluster, q)
    if kind == "naive":
        return naive_arrangement(cluster, q)
    if kind == "linear":
        return linear_arrangement(cluster, q * q)
    raise ValueError(f"unknown arrangement kind {kind!r}")
