"""Device, link and cluster specifications.

The numbers below model the paper's testbed (TACC Frontera ``rtx`` partition):

* NVIDIA Quadro RTX 5000 — 11.2 TFLOP/s fp32 peak, 16 GB GDDR6.  Dense GEMM
  at transformer shapes sustains roughly 40–60% of peak; we use a single
  efficiency factor because only *relative* timing shape matters for the
  reproduction (see DESIGN.md).
* Intra-node: PCIe 3.0 x16 (~12 GB/s effective per direction).
* Inter-node: Mellanox InfiniBand (EDR-class, ~100 Gb/s ≈ 12 GB/s effective),
  one NIC per node shared by the 4 GPUs — the sharing is exactly what the
  paper's Fig. 8 "bunched arrangement" optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """A single accelerator."""

    name: str
    peak_flops: float  # FLOP/s at the working precision
    gemm_efficiency: float  # sustained fraction of peak for dense GEMM
    memory_bytes: int  # usable device memory

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s used by the performance model."""
        return self.peak_flops * self.gemm_efficiency


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point communication link."""

    name: str
    bandwidth: float  # bytes / second, per direction
    latency: float  # seconds per message

    @property
    def beta(self) -> float:
        """Inverse bandwidth (seconds per byte), the β of the α–β model."""
        return 1.0 / self.bandwidth

    @property
    def alpha(self) -> float:
        """Per-message latency, the α of the α–β model."""
        return self.latency


RTX5000 = DeviceSpec(
    name="Quadro RTX 5000",
    peak_flops=11.2e12,
    gemm_efficiency=0.45,
    memory_bytes=16 * 1024**3,
)

PCIE3_X16 = LinkSpec(name="PCIe 3.0 x16", bandwidth=12.0e9, latency=5.0e-6)

IB_EDR = LinkSpec(name="InfiniBand EDR", bandwidth=12.0e9, latency=15.0e-6)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster: ``num_nodes`` × ``gpus_per_node`` devices."""

    name: str
    num_nodes: int
    gpus_per_node: int
    device: DeviceSpec = RTX5000
    intra_link: LinkSpec = PCIE3_X16
    inter_link: LinkSpec = IB_EDR

    @property
    def num_devices(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, gpu_id: int) -> int:
        """Physical node hosting a physical GPU id (node-major numbering)."""
        if not 0 <= gpu_id < self.num_devices:
            raise ValueError(f"gpu id {gpu_id} out of range [0, {self.num_devices})")
        return gpu_id // self.gpus_per_node


def frontera_rtx(num_nodes: int, gpus_per_node: int = 4) -> ClusterSpec:
    """The paper's testbed: Frontera rtx nodes (4 × RTX 5000 + InfiniBand)."""
    return ClusterSpec(
        name=f"frontera-rtx-{num_nodes}x{gpus_per_node}",
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
    )
