"""Hardware model: device/link specifications, cluster topology, arrangements.

The paper's testbed is TACC Frontera ``rtx`` nodes: 4 NVIDIA Quadro RTX 5000
GPUs per node, nodes interconnected with Mellanox InfiniBand.  We model a
cluster as a `networkx` graph of GPUs, node-local buses and NICs, and derive
α–β communication parameters per process group from the rank→GPU arrangement
(naive vs the paper's "bunched" arrangement, Fig. 8).
"""

from repro.hardware.arrangement import (
    Arrangement,
    bunched_arrangement,
    linear_arrangement,
    make_arrangement,
    naive_arrangement,
)
from repro.hardware.specs import (
    IB_EDR,
    PCIE3_X16,
    RTX5000,
    ClusterSpec,
    DeviceSpec,
    LinkSpec,
    frontera_rtx,
)
from repro.hardware.topology import ClusterTopology

__all__ = [
    "DeviceSpec",
    "LinkSpec",
    "ClusterSpec",
    "RTX5000",
    "PCIE3_X16",
    "IB_EDR",
    "frontera_rtx",
    "ClusterTopology",
    "Arrangement",
    "naive_arrangement",
    "bunched_arrangement",
    "linear_arrangement",
    "make_arrangement",
]
