"""Cluster interconnect topology as a `networkx` graph.

The graph has one vertex per GPU, one per host (node), and a central switch:

    gpu:k --(intra link)-- host:n --(inter link / NIC)-- switch

This is the fat-tree abstraction the paper's Fig. 8 reasons about: all
inter-node traffic of a node's GPUs shares the single host↔switch edge, so
the number of concurrent multi-node collectives touching a host determines
the contention ("crowding") factor on its cable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import networkx as nx

from repro.hardware.arrangement import Arrangement
from repro.hardware.specs import ClusterSpec, LinkSpec


@dataclass(frozen=True)
class GroupProfile:
    """Placement summary of one process group under an arrangement."""

    size: int
    nodes_spanned: int
    max_ranks_per_node: int

    @property
    def is_intra_node(self) -> bool:
        return self.nodes_spanned <= 1


class ClusterTopology:
    """Graph view of a :class:`ClusterSpec` plus placement queries."""

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster
        g = nx.Graph()
        g.add_node("switch", kind="switch")
        for n in range(cluster.num_nodes):
            host = f"host:{n}"
            g.add_node(host, kind="host")
            g.add_edge(host, "switch", link=cluster.inter_link)
            for s in range(cluster.gpus_per_node):
                gid = n * cluster.gpus_per_node + s
                gpu = f"gpu:{gid}"
                g.add_node(gpu, kind="gpu", gpu_id=gid)
                g.add_edge(gpu, host, link=cluster.intra_link)
        self.graph = g

    # ------------------------------------------------------------------
    def gpu_vertex(self, gpu_id: int) -> str:
        return f"gpu:{gpu_id}"

    def path(self, gpu_a: int, gpu_b: int) -> List[str]:
        """Shortest vertex path between two GPUs."""
        return nx.shortest_path(self.graph, self.gpu_vertex(gpu_a), self.gpu_vertex(gpu_b))

    def path_links(self, gpu_a: int, gpu_b: int) -> List[LinkSpec]:
        verts = self.path(gpu_a, gpu_b)
        return [self.graph.edges[u, v]["link"] for u, v in zip(verts, verts[1:])]

    def p2p_time(self, gpu_a: int, gpu_b: int, nbytes: int) -> float:
        """Store-and-forward α–β time of a point-to-point transfer."""
        if gpu_a == gpu_b:
            return 0.0
        links = self.path_links(gpu_a, gpu_b)
        # bandwidth is limited by the slowest hop; latencies accumulate
        alpha = sum(l.alpha for l in links)
        beta = max(l.beta for l in links)
        return alpha + beta * nbytes

    # ------------------------------------------------------------------
    def group_profile(self, ranks: Sequence[int], arrangement: Arrangement) -> GroupProfile:
        hist = arrangement.nodes_of(ranks)
        return GroupProfile(
            size=len(ranks),
            nodes_spanned=len(hist),
            max_ranks_per_node=max(hist.values()),
        )

    def crowding(
        self, groups: Sequence[Sequence[int]], arrangement: Arrangement
    ) -> int:
        """Max number of *multi-node* groups whose members share one host.

        When several sibling collectives (e.g. the q concurrent column
        broadcasts of a SUMMA step) run at once, each multi-node group with a
        member on host ``n`` pushes traffic through ``n``'s NIC; the busiest
        host's count is the effective bandwidth-division factor.
        """
        load: Dict[int, int] = {}
        for ranks in groups:
            hist = arrangement.nodes_of(ranks)
            if len(hist) <= 1:
                continue  # purely intra-node group, no NIC traffic
            for node in hist:
                load[node] = load.get(node, 0) + 1
        return max(load.values()) if load else 1
