"""Paper-claims scorecard: replay ledger evidence against the perf model.

The paper makes three headline quantitative claims; this module turns each
into a machine-checkable verdict by pairing **measured** numbers (read
back from :mod:`repro.obs.ledger` records of real stem runs) with
**predicted** numbers from :mod:`repro.perfmodel`:

1. **memory scaling** (§3.1–3.2) — every Optimus working-set term carries
   ``1/p`` (the O(bsh/p) claim), so the closed-form
   :func:`~repro.perfmodel.memory_model.estimate_peak_bytes` must match
   the byte-accurate allocator's measured peak.  Verdict: the
   measured/predicted ratio of every Table-2 stem stays inside the band.
2. **isoefficiency** (§4) — Optimus's efficiency function is
   ``W ~ (√p·log p)³`` against Megatron's ``p³``, i.e. Megatron's
   comm-to-compute ratio D must grow *faster* with p.  A direct measured-E
   vs closed-form-E comparison is hopeless (the closed form ignores α
   latency and NIC contention), so the verdict uses the **growth
   advantage**: ``A = (D_meg(64)/D_meg(4)) / (D_opt(64)/D_opt(4))``,
   measured from stem records vs predicted from the Table-1 cost formulas
   (the hardware constant β·MAC cancels in the predicted ratio).  Pass
   needs A > 1 (direction) and measured/predicted inside the band.
3. **speedup** (§5.1, Table 2) — Optimus over Megatron on 64 GPUs:
   1.48× training throughput and 1.78× inference in the paper.  Measured
   from the p=64 stem records; the verdict checks the measured speedup is
   a calibrated fraction of the paper's (the simulator reproduces the
   *shape*, not the exact testbed constants).
4. **strong scaling** (§5.1, Table 3) — with the problem size *fixed*
   (h ≈ 3072, N = 24) Optimus still out-throughputs Megatron at p = 64:
   2.0123 vs 1.8180 seq/s in the paper (1.11×).  Measured from stem
   records at the Table-3 settings.
5. **GPU arrangement** (§5.2, Fig. 8) — on a 4×4 mesh over 4 nodes the
   bunched arrangement beats the naive row-major one because naive
   column broadcasts crowd every node's single NIC.  Measured as the
   end-to-end stem speedup between two otherwise-identical Optimus runs;
   predicted is the α–β model's *per-collective* crowding bound, so the
   measured/predicted ratio is the (calibrated) dilution of that bound
   by compute and row traffic.

Evidence records are stem runs at the paper's Table-2 settings for
p ∈ {4, 64} (both schemes), the Table-3 settings at p = 64, and the
Fig-8 arrangement pair.  :func:`ensure_claim_records` runs any that are
missing (dryrun, ~a minute) and appends them to the ledger, deduplicating
by (scheme, device count, config fingerprint, arrangement) — re-scoring
an unchanged ledger is free.  Evidence stems run traced, so each record
also carries a :func:`repro.obs.critpath.attribution_summary` for the
dashboard's Attribution section.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import table2_weak_scaling, table3_strong_scaling
from repro.obs.ledger import RunLedger, RunRecord, config_fingerprint

CLAIMS_SCHEMA = "repro-claims-v1"

#: device counts the evidence stems run at (the Table-2 end points)
CLAIM_DEVICE_COUNTS = (4, 64)

#: ledger label marking scorecard evidence records
CLAIM_LABEL = "claims-stem"

#: paper's Table-2 speedups of Optimus over Megatron at p=64
PAPER_SPEEDUP_TRAINING = 1.48
PAPER_SPEEDUP_INFERENCE = 1.78

# Calibrated tolerance bands (measured on the seed simulator; see
# tests/test_claims.py).  Memory: the closed form tracks the allocator to
# ~0.01% at p=64 and within ~20% at small p where constant terms matter.
MEMORY_RATIO_BAND = (0.8, 1.25)
# Isoefficiency growth advantage: measured ≈ 2.24 vs predicted ≈ 1.75
# (ratio ≈ 1.28 — α latency and NIC sharing hurt Megatron's all-reduces
# more than the β-only Table-1 formulas predict).
ISOEFFICIENCY_RATIO_BAND = (0.5, 2.0)
# Speedup: measured ≈ 1.35×/1.60× vs paper 1.48×/1.78× (ratio ≈ 0.9).
SPEEDUP_RATIO_BAND = (0.7, 1.4)

#: paper's Table-3 (strong scaling) p=64 throughputs, seq/s
PAPER_TABLE3_THROUGHPUT = {"megatron": 1.8180, "optimus": 2.0123}
# Strong scaling: measured speedup ≈ 1.11× vs paper 1.107× (ratio ≈ 1.00).
STRONG_SCALING_RATIO_BAND = (0.8, 1.25)

#: Fig-8 mesh side (4×4 mesh over 4 nodes × 4 GPUs)
FIG8_Q = 4
#: Fig-8 stem batch size (paper's end-to-end comparison workload)
FIG8_BATCH = 64
# Arrangement: the per-collective α–β bound is ≈ 2.67× but the stem's
# compute and row traffic dilute the end-to-end advantage to ≈ 1.013×
# (ratio ≈ 0.38); the direction check (> 1) carries the claim.
ARRANGEMENT_RATIO_BAND = (0.05, 1.0)


@dataclass
class ClaimVerdict:
    """One scorecard row: a claim, its evidence and the pass/fail call."""

    claim: str  # memory-scaling | isoefficiency | speedup-training | ...
    title: str
    status: str  # pass | fail | no-evidence
    measured: Optional[float] = None
    predicted: Optional[float] = None
    ratio: Optional[float] = None  # measured / predicted
    band: Optional[Tuple[float, float]] = None
    detail: str = ""
    evidence: List[str] = field(default_factory=list)  # ledger run_ids

    @property
    def passed(self) -> bool:
        return self.status == "pass"


def _band_status(ratio: float, band: Tuple[float, float]) -> str:
    return "pass" if band[0] <= ratio <= band[1] else "fail"


# ----------------------------------------------------------------------
# evidence
# ----------------------------------------------------------------------
def claim_points() -> List[dict]:
    """The evidence grid: (scheme, p, config, batch) at the Table-2 ends."""
    rows = {r["num_devices"]: r for r in table2_weak_scaling()}
    points = []
    for p in CLAIM_DEVICE_COUNTS:
        row = rows[p]
        points.append(
            {"scheme": "megatron", "p": p,
             "cfg": row["model_megatron"], "batch": row["batch_megatron"]}
        )
        points.append(
            {"scheme": "optimus", "p": p,
             "cfg": row["model_optimus"], "batch": row["batch_optimus"]}
        )
    return points


def strong_scaling_points() -> List[dict]:
    """The Table-3 (fixed problem size) evidence pair at p = 64."""
    row = {r["num_devices"]: r for r in table3_strong_scaling()}[64]
    return [
        {"scheme": "megatron", "p": 64,
         "cfg": row["model_megatron"], "batch": row["batch_megatron"]},
        {"scheme": "optimus", "p": 64,
         "cfg": row["model_optimus"], "batch": row["batch_optimus"]},
    ]


def arrangement_points() -> List[dict]:
    """The Fig-8 pair: identical Optimus stems, naive vs bunched placement."""
    from repro.experiments.fig8 import DEFAULT_CFG

    return [
        {"scheme": "optimus", "p": FIG8_Q * FIG8_Q, "cfg": DEFAULT_CFG,
         "batch": FIG8_BATCH, "arrangement": arr}
        for arr in ("naive", "bunched")
    ]


def find_stem(
    records: List[RunRecord], scheme: str, p: int, cfg,
    arrangement: Optional[str] = None,
) -> Optional[RunRecord]:
    """The newest stem record matching (scheme, device count, config).

    ``arrangement`` additionally matches the mesh placement recorded by
    Optimus stems — the Fig-8 claim needs to tell two otherwise-identical
    runs apart.
    """
    fp = config_fingerprint(cfg)
    found = None
    for r in records:
        if r.kind != "experiment" or r.scheme != scheme:
            continue
        extra = r.extra or {}
        if extra.get("workload") != "stem":
            continue
        result = extra.get("result") or {}
        if result.get("num_devices") != p:
            continue
        if (r.config or {}).get("fingerprint") != fp:
            continue
        if arrangement is not None and (r.mesh or {}).get("arrangement") != arrangement:
            continue
        found = r
    return found


def ensure_claim_records(ledger: RunLedger, printer=None) -> List[str]:
    """Run (and append) any missing evidence stems; returns new run_ids.

    Stems run with ``trace=True`` so every evidence record carries a
    critical-path attribution summary (clocks and bytes are bit-identical
    with tracing on or off).
    """
    from repro.experiments.runner import run_megatron_stem, run_optimus_stem

    records = ledger.read()
    appended: List[str] = []
    for pt in claim_points() + strong_scaling_points() + arrangement_points():
        arrangement = pt.get("arrangement")
        if find_stem(records, pt["scheme"], pt["p"], pt["cfg"], arrangement) is not None:
            continue
        if printer:
            arr = f" ({arrangement})" if arrangement else ""
            printer(f"collecting claim evidence: {pt['scheme']} p={pt['p']}{arr} stem")
        if pt["scheme"] == "optimus":
            q = int(round(pt["p"] ** 0.5))
            run_optimus_stem(
                pt["cfg"], q, pt["batch"], ledger=ledger, run_label=CLAIM_LABEL,
                arrangement=arrangement or "bunched", trace=True,
            )
        else:
            run_megatron_stem(
                pt["cfg"], pt["p"], pt["batch"], ledger=ledger,
                run_label=CLAIM_LABEL, trace=True,
            )
        appended.append(ledger.read()[-1].run_id)
    return appended


def _evidence_grid(records: List[RunRecord]) -> Dict[Tuple[str, int], RunRecord]:
    grid: Dict[Tuple[str, int], RunRecord] = {}
    for pt in claim_points():
        rec = find_stem(records, pt["scheme"], pt["p"], pt["cfg"])
        if rec is not None:
            grid[(pt["scheme"], pt["p"])] = rec
    return grid


# ----------------------------------------------------------------------
# the three claims
# ----------------------------------------------------------------------
def memory_scaling_verdicts(records: List[RunRecord]) -> List[ClaimVerdict]:
    """Measured allocator peak vs closed-form O(bsh/p) estimate, per stem."""
    from repro.perfmodel.memory_model import estimate_peak_bytes

    grid = _evidence_grid(records)
    out: List[ClaimVerdict] = []
    for pt in claim_points():
        key = (pt["scheme"], pt["p"])
        title = f"memory model O(bsh/p): {pt['scheme']} p={pt['p']}"
        rec = grid.get(key)
        if rec is None:
            out.append(ClaimVerdict(
                claim=f"memory-scaling/{pt['scheme']}/p{pt['p']}", title=title,
                status="no-evidence", band=MEMORY_RATIO_BAND,
                detail="no matching stem record in the ledger",
            ))
            continue
        measured = float(rec.counters["peak_memory_bytes"])
        predicted = estimate_peak_bytes(
            pt["scheme"], pt["cfg"], pt["p"], pt["batch"]
        ).total
        ratio = measured / predicted
        out.append(ClaimVerdict(
            claim=f"memory-scaling/{pt['scheme']}/p{pt['p']}", title=title,
            status=_band_status(ratio, MEMORY_RATIO_BAND),
            measured=measured, predicted=predicted, ratio=ratio,
            band=MEMORY_RATIO_BAND,
            detail=(f"allocator peak {measured / 2**30:.2f} GiB vs closed-form "
                    f"{predicted / 2**30:.2f} GiB"),
            evidence=[rec.run_id],
        ))
    return out


def _d_ratio(rec: RunRecord) -> float:
    """Comm-to-compute ratio D of the busiest rank, from ledger counters."""
    return float(rec.counters["max_comm_time"]) / float(rec.counters["max_compute_time"])


def _predicted_d(scheme: str, cfg, p: int, batch: int) -> float:
    """Table-1 prediction of D (the hardware constant cancels in ratios)."""
    from repro.hardware.specs import IB_EDR, RTX5000
    from repro.perfmodel.costs import TABLE1

    row = TABLE1[scheme]
    b, s, h = batch, cfg.seq_len, cfg.hidden_size
    comm = row.forward_comm(b, s, h, p) + row.backward_comm(b, s, h, p)
    macs = row.forward_macs(b, s, h, p) + row.backward_macs(b, s, h, p)
    # scalars·β·elem_size seconds of comm per MAC·2/flops seconds of compute
    beta_over_mac = 2.0 * IB_EDR.beta * RTX5000.effective_flops
    return comm / macs * beta_over_mac


def isoefficiency_verdict(records: List[RunRecord]) -> ClaimVerdict:
    """Growth advantage A = (D_meg grows) / (D_opt grows) across p=4→64."""
    grid = _evidence_grid(records)
    title = "isoefficiency: Megatron's comm/compute grows faster (W~p³ vs (√p·log p)³)"
    needed = [(s, p) for s in ("megatron", "optimus") for p in CLAIM_DEVICE_COUNTS]
    if any(k not in grid for k in needed):
        return ClaimVerdict(
            claim="isoefficiency", title=title, status="no-evidence",
            band=ISOEFFICIENCY_RATIO_BAND,
            detail="needs stem records for both schemes at p=4 and p=64",
        )
    lo, hi = CLAIM_DEVICE_COUNTS
    measured = (_d_ratio(grid[("megatron", hi)]) / _d_ratio(grid[("megatron", lo)])) / (
        _d_ratio(grid[("optimus", hi)]) / _d_ratio(grid[("optimus", lo)])
    )
    pts = {(pt["scheme"], pt["p"]): pt for pt in claim_points()}

    def pred(scheme: str, p: int) -> float:
        pt = pts[(scheme, p)]
        return _predicted_d(scheme, pt["cfg"], p, pt["batch"])

    predicted = (pred("megatron", hi) / pred("megatron", lo)) / (
        pred("optimus", hi) / pred("optimus", lo)
    )
    ratio = measured / predicted
    status = _band_status(ratio, ISOEFFICIENCY_RATIO_BAND)
    if measured <= 1.0:  # direction check: the advantage must exist at all
        status = "fail"
    return ClaimVerdict(
        claim="isoefficiency", title=title, status=status,
        measured=measured, predicted=predicted, ratio=ratio,
        band=ISOEFFICIENCY_RATIO_BAND,
        detail=(f"measured growth advantage {measured:.2f}× vs Table-1 "
                f"predicted {predicted:.2f}× (must be > 1)"),
        evidence=[grid[k].run_id for k in needed],
    )


def _stem_throughputs(rec: RunRecord) -> Tuple[float, float]:
    """(training seq/s, inference seq/s) from a stem record's result."""
    result = rec.extra["result"]
    b = float(result["batch_size"])
    fwd, bwd = float(result["forward_time"]), float(result["backward_time"])
    return b / (fwd + bwd), b / fwd


def speedup_verdicts(records: List[RunRecord]) -> List[ClaimVerdict]:
    """Optimus-over-Megatron speedup at p=64 vs the paper's 1.48×/1.78×."""
    grid = _evidence_grid(records)
    p = CLAIM_DEVICE_COUNTS[-1]
    specs = [
        ("speedup-training", "training throughput speedup at p=64",
         PAPER_SPEEDUP_TRAINING, 0),
        ("speedup-inference", "inference throughput speedup at p=64",
         PAPER_SPEEDUP_INFERENCE, 1),
    ]
    meg, opt = grid.get(("megatron", p)), grid.get(("optimus", p))
    out: List[ClaimVerdict] = []
    for claim, title, paper, idx in specs:
        if meg is None or opt is None:
            out.append(ClaimVerdict(
                claim=claim, title=title, status="no-evidence",
                predicted=paper, band=SPEEDUP_RATIO_BAND,
                detail=f"needs both schemes' p={p} stem records",
            ))
            continue
        measured = _stem_throughputs(opt)[idx] / _stem_throughputs(meg)[idx]
        ratio = measured / paper
        out.append(ClaimVerdict(
            claim=claim, title=title,
            status=_band_status(ratio, SPEEDUP_RATIO_BAND),
            measured=measured, predicted=paper, ratio=ratio,
            band=SPEEDUP_RATIO_BAND,
            detail=f"measured {measured:.2f}× vs paper {paper:.2f}×",
            evidence=[opt.run_id, meg.run_id],
        ))
    return out


def strong_scaling_verdict(records: List[RunRecord]) -> ClaimVerdict:
    """Table-3: Optimus out-throughputs Megatron at p=64, fixed problem."""
    title = "strong scaling (Table 3): Optimus speedup at p=64, fixed h≈3072"
    pts = {pt["scheme"]: pt for pt in strong_scaling_points()}
    recs = {
        s: find_stem(records, s, pt["p"], pt["cfg"]) for s, pt in pts.items()
    }
    paper = PAPER_TABLE3_THROUGHPUT["optimus"] / PAPER_TABLE3_THROUGHPUT["megatron"]
    if any(r is None for r in recs.values()):
        return ClaimVerdict(
            claim="strong-scaling", title=title, status="no-evidence",
            predicted=paper, band=STRONG_SCALING_RATIO_BAND,
            detail="needs both schemes' Table-3 p=64 stem records",
        )
    measured = (
        _stem_throughputs(recs["optimus"])[0] / _stem_throughputs(recs["megatron"])[0]
    )
    ratio = measured / paper
    status = _band_status(ratio, STRONG_SCALING_RATIO_BAND)
    if measured <= 1.0:  # direction: Optimus must win at all
        status = "fail"
    return ClaimVerdict(
        claim="strong-scaling", title=title, status=status,
        measured=measured, predicted=paper, ratio=ratio,
        band=STRONG_SCALING_RATIO_BAND,
        detail=f"measured {measured:.3f}× vs paper {paper:.3f}× (must be > 1)",
        evidence=[recs["optimus"].run_id, recs["megatron"].run_id],
    )


def arrangement_verdict(records: List[RunRecord]) -> ClaimVerdict:
    """Fig-8: bunched beats naive placement end-to-end on the 4×4 mesh."""
    from repro.experiments.fig8 import broadcast_comparison

    title = "GPU arrangement (Fig 8): bunched beats naive on 4 nodes × 4 GPUs"
    pts = {pt["arrangement"]: pt for pt in arrangement_points()}
    recs = {
        arr: find_stem(records, pt["scheme"], pt["p"], pt["cfg"], arr)
        for arr, pt in pts.items()
    }
    predicted = broadcast_comparison(q=FIG8_Q).speedup
    if any(r is None for r in recs.values()):
        return ClaimVerdict(
            claim="arrangement", title=title, status="no-evidence",
            predicted=predicted, band=ARRANGEMENT_RATIO_BAND,
            detail="needs naive and bunched Fig-8 stem records",
        )

    def iter_time(rec: RunRecord) -> float:
        result = rec.extra["result"]
        return float(result["forward_time"]) + float(result["backward_time"])

    measured = iter_time(recs["naive"]) / iter_time(recs["bunched"])
    ratio = measured / predicted
    status = _band_status(ratio, ARRANGEMENT_RATIO_BAND)
    if measured <= 1.0:  # direction: bunched must win at all
        status = "fail"
    return ClaimVerdict(
        claim="arrangement", title=title, status=status,
        measured=measured, predicted=predicted, ratio=ratio,
        band=ARRANGEMENT_RATIO_BAND,
        detail=(f"end-to-end {measured:.3f}× vs per-collective α–β bound "
                f"{predicted:.2f}× (must be > 1; bound diluted by compute)"),
        evidence=[recs["naive"].run_id, recs["bunched"].run_id],
    )


# ----------------------------------------------------------------------
# the scorecard
# ----------------------------------------------------------------------
def scorecard(records: List[RunRecord]) -> dict:
    """All claim verdicts as one JSON-serializable document."""
    verdicts = (
        memory_scaling_verdicts(records)
        + [isoefficiency_verdict(records)]
        + speedup_verdicts(records)
        + [strong_scaling_verdict(records), arrangement_verdict(records)]
    )
    return {
        "schema": CLAIMS_SCHEMA,
        "claims": [dataclasses.asdict(v) for v in verdicts],
        "num_pass": sum(v.passed for v in verdicts),
        "num_fail": sum(v.status == "fail" for v in verdicts),
        "num_no_evidence": sum(v.status == "no-evidence" for v in verdicts),
        "ok": all(v.status != "fail" for v in verdicts),
    }


def render(card: dict) -> str:
    from repro.utils.tables import format_table

    rows = []
    for c in card["claims"]:
        band = f"[{c['band'][0]:g}, {c['band'][1]:g}]" if c["band"] else ""
        rows.append([
            c["claim"],
            c["status"].upper(),
            "" if c["measured"] is None else f"{c['measured']:.4g}",
            "" if c["predicted"] is None else f"{c['predicted']:.4g}",
            "" if c["ratio"] is None else f"{c['ratio']:.3f}",
            band,
        ])
    out = format_table(
        ["claim", "verdict", "measured", "predicted", "ratio", "band"],
        rows, title="Paper-claims scorecard",
    )
    out += (f"\n{card['num_pass']} pass, {card['num_fail']} fail, "
            f"{card['num_no_evidence']} without evidence")
    return out
