"""The ``python -m repro profile`` driver.

Runs a representative, fully traced workload for one of the paper's
experiments, then emits the full observability bundle: top-k span report,
collective traffic, rank busy/idle fractions, the rank→rank communication
matrix (reconciled against the device byte counters), metrics, optionally a
per-allocation memory timeline, and a Perfetto/Chrome ``trace.json``.

The profiled workloads are deliberately *small* instances of each
experiment's configuration (one mesh, few layers) so a profile run takes
seconds — the point is the structure of the timeline, not the absolute
scale, which the benchmarks already cover.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.obs.comm_matrix import comm_matrix, render_comm_matrix, total as matrix_total
from repro.obs.perfetto import write_chrome_trace
from repro.obs.report import collective_report, memory_report, top_spans
from repro.utils.tables import format_bytes, format_table


def _stem_profile(cfg, scheme: str, q: int, batch_size: int, mem_timeline: bool):
    """One traced forward+backward of a paper stem (shape backend)."""
    from repro.core.model import OptimusModel
    from repro.megatron.model import MegatronModel
    from repro.mesh.mesh import Mesh
    from repro.nn.init import init_transformer_params
    from repro.runtime.simulator import Simulator

    params = init_transformer_params(
        cfg, backend="shape", dtype="float32", include_embedding=False
    )
    if scheme == "optimus":
        sim = Simulator.for_mesh(q=q, backend="shape", trace=True)
        if mem_timeline:
            sim.enable_memory_timeline()
        model = OptimusModel(Mesh(sim, q), cfg, params, stem_only=True)
    else:
        sim = Simulator.for_flat(p=q * q, backend="shape", trace=True)
        if mem_timeline:
            sim.enable_memory_timeline()
        model = MegatronModel(sim, cfg, params, stem_only=True)
    model.stem_forward(batch_size)
    model.stem_backward()
    return sim


def _tiny_profile(scheme: str, mem_timeline: bool):
    """A numeric (numpy-backend) end-to-end forward+backward, q=2 / p=4."""
    import numpy as np

    from repro.config import tiny_config
    from repro.core.model import OptimusModel
    from repro.megatron.model import MegatronModel
    from repro.mesh.mesh import Mesh
    from repro.nn.init import init_transformer_params
    from repro.runtime.simulator import Simulator

    # heads must divide p=4 for the Megatron path; use the same config for
    # both schemes so their profiles are comparable
    cfg = tiny_config(num_layers=2, num_heads=4, hidden_size=16)
    params = init_transformer_params(cfg, seed=1)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
    labels = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
    if scheme == "optimus":
        sim = Simulator.for_mesh(q=2, trace=True)
        if mem_timeline:
            sim.enable_memory_timeline()
        model = OptimusModel(Mesh(sim, 2), cfg, params)
    else:
        sim = Simulator.for_flat(p=4, trace=True)
        if mem_timeline:
            sim.enable_memory_timeline()
        model = MegatronModel(sim, cfg, params)
    model.forward(ids, labels)
    model.backward()
    return sim


def _train_profile(scheme: str, mem_timeline: bool):
    """Two traced optimizer steps of the tiny model (metrics included)."""
    from repro.config import tiny_config
    from repro.core.model import OptimusModel
    from repro.mesh.mesh import Mesh
    from repro.nn.init import init_transformer_params
    from repro.runtime.simulator import Simulator
    from repro.training.data import random_batch
    from repro.training.optim import SGD
    from repro.training.trainer import Trainer

    cfg = tiny_config(num_layers=2)
    sim = Simulator.for_mesh(q=2, trace=True)
    if mem_timeline:
        sim.enable_memory_timeline()
    model = OptimusModel(Mesh(sim, 2), cfg, init_transformer_params(cfg, seed=1))
    opt = SGD(model.parameters(), lr=0.1, sim=sim)
    batches = (random_batch(cfg, 4, seed=i) for i in range(1000))
    Trainer(model, opt, batches).train_steps(2)
    return sim


def _serve_profile(scheme: str, mem_timeline: bool):
    """A traced serving run: request-lifecycle spans, step spans, metrics."""
    from repro.config import tiny_config
    from repro.nn.init import init_transformer_params
    from repro.serving.engine import make_engine
    from repro.serving.traffic import TrafficGenerator

    # heads must divide p=4 for the Megatron path (same reasoning as tiny)
    cfg = tiny_config(num_layers=2, num_heads=4, hidden_size=16)
    params = init_transformer_params(cfg, seed=1)
    requests = TrafficGenerator(
        seed=0, vocab_size=cfg.vocab_size, arrival="poisson",
        rate_rps=1000.0, num_requests=6,
    ).generate()
    blocks = 12 if scheme == "optimus" else 24  # equal per-device KV bytes
    engine = make_engine(
        scheme, cfg, params, q=2, num_slots=8, block_size=8,
        blocks_per_group=blocks, trace=True, slo=(0.5, 0.05),
    )
    if mem_timeline:
        engine.sim.enable_memory_timeline()
    engine.run(requests)
    return engine.sim


def _experiment_cfg(name: str):
    """The (cfg, batch) a profile run uses for each table/figure workload."""
    from repro.config import table2_weak_scaling, table3_strong_scaling
    from repro.experiments.table1 import DEFAULT_CFG as T1_CFG

    if name == "table1":
        return dataclasses.replace(T1_CFG, num_layers=1), 16
    if name in ("table2", "fig7"):
        s = table2_weak_scaling()[0]
        cfg = dataclasses.replace(s["model_optimus"], num_layers=2)
        return cfg, s["batch_optimus"]
    if name in ("table3", "fig8", "fig9"):
        s = table3_strong_scaling()[0]
        cfg = dataclasses.replace(s["model_optimus"], num_layers=2)
        return cfg, s["batch_optimus"]
    raise KeyError(name)


STEM_EXPERIMENTS = ("table1", "table2", "table3", "fig7", "fig8", "fig9")
EXPERIMENTS = STEM_EXPERIMENTS + ("tiny", "train", "serve")


def run_profile(
    experiment: str,
    scheme: str = "optimus",
    mem_timeline: bool = False,
) -> "object":
    """Run the traced workload for ``experiment`` and return its Simulator."""
    if experiment in STEM_EXPERIMENTS:
        cfg, batch = _experiment_cfg(experiment)
        return _stem_profile(cfg, scheme, q=2, batch_size=batch, mem_timeline=mem_timeline)
    if experiment == "tiny":
        return _tiny_profile(scheme, mem_timeline)
    if experiment == "train":
        return _train_profile(scheme, mem_timeline)
    if experiment == "serve":
        return _serve_profile(scheme, mem_timeline)
    raise ValueError(
        f"unknown experiment {experiment!r}; choose from {', '.join(EXPERIMENTS)}"
    )


def render_profile(
    sim,
    top: int = 12,
    mem_timeline: bool = False,
    printer: Callable[[str], None] = print,
) -> None:
    """Print the full observability bundle for a traced simulator run."""
    from repro.runtime.analysis import rank_activity

    printer(top_spans(sim.tracer, k=top))
    printer("")
    printer(collective_report(sim))
    printer("")

    acts = rank_activity(sim.tracer, sim.num_ranks, elapsed=sim.elapsed())
    printer(
        format_table(
            ["rank", "busy (s)", "idle (s)", "busy %"],
            [[a.rank, f"{a.busy_time:.4f}", f"{a.idle_time:.4f}",
              f"{a.busy_fraction:.1%}"] for a in acts],
            title="Busy/idle per rank (derived from trace spans/events)",
        )
    )
    printer("")

    mat = comm_matrix(sim)
    printer(render_comm_matrix(mat))
    mat_total, dev_total = matrix_total(mat), sim.total_bytes_comm()
    printer(
        f"matrix total {format_bytes(mat_total)} vs device counters "
        f"{format_bytes(dev_total)} "
        + ("(reconciled)" if abs(mat_total - dev_total) <= 1e-6 * max(dev_total, 1.0)
           else "(MISMATCH)")
    )
    printer("")

    if len(sim.metrics):
        printer(sim.metrics.render())
        printer("")
    if mem_timeline:
        printer(memory_report(sim))
        samples = sum(len(t) for t in sim.memory_timeline().values())
        printer(f"memory timeline: {samples} samples across {sim.num_ranks} ranks")
        printer("")


def main(
    experiment: str,
    trace_out: Optional[str] = None,
    mem_timeline: bool = False,
    scheme: str = "optimus",
    top: int = 12,
    printer: Callable[[str], None] = print,
) -> int:
    sim = run_profile(experiment, scheme=scheme, mem_timeline=mem_timeline)
    printer(
        f"profiled {experiment} [{scheme}]: {sim.num_ranks} ranks, "
        f"elapsed {sim.elapsed():.4f}s simulated, "
        f"{len(sim.tracer.spans)} span records, {len(sim.tracer.events)} events"
    )
    printer("")
    render_profile(sim, top=top, mem_timeline=mem_timeline, printer=printer)
    if trace_out:
        try:
            trace = write_chrome_trace(sim, trace_out)
        except OSError as exc:
            printer(f"error: cannot write trace to {trace_out}: {exc}")
            return 1
        printer(
            f"wrote {trace_out}: {len(trace['traceEvents'])} trace events "
            "(open in https://ui.perfetto.dev)"
        )
    return 0
