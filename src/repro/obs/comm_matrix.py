"""Rank→rank communication matrices from trace events.

Attribution rule: the device counters charge every participant of a grouped
collective the full payload (``bytes_comm += nbytes`` each), and both ends
of a point-to-point transfer.  The matrix spreads each rank's charge evenly
over its peers in the collective, so

* ``row_sums(M)[r] == sim.device(r).bytes_comm``  (per-rank reconciliation)
* ``total(M) == sim.total_bytes_comm()``           (global reconciliation)

hold exactly whenever tracing was enabled for the whole run.  With
``weighted=True`` the same attribution is applied to the β-weighted volumes
of the paper's cost model (``log₂ g · B`` tree, ``2(g−1)/g · B`` ring).
"""

from __future__ import annotations

from typing import List


def comm_matrix(sim, weighted: bool = False) -> List[List[float]]:
    """An ``n × n`` matrix; entry ``[r][peer]`` is traffic attributed to r↔peer."""
    n = sim.num_ranks
    mat = [[0.0] * n for _ in range(n)]
    for e in sim.tracer.events:
        if e.kind == "compute":
            continue
        volume = e.weighted if weighted else e.nbytes
        if e.kind == "p2p":
            src, dst = e.ranks
            mat[src][dst] += volume
            mat[dst][src] += volume
            continue
        peers = len(e.ranks) - 1
        if peers <= 0:
            continue
        share = volume / peers
        for r in e.ranks:
            for other in e.ranks:
                if other != r:
                    mat[r][other] += share
    return mat


def row_sums(matrix: List[List[float]]) -> List[float]:
    return [sum(row) for row in matrix]


def total(matrix: List[List[float]]) -> float:
    return sum(sum(row) for row in matrix)


def render_comm_matrix(matrix: List[List[float]], title: str = "") -> str:
    """Fixed-width table of the matrix with per-row totals."""
    from repro.utils.tables import format_bytes, format_table

    n = len(matrix)
    headers = ["rank"] + [f"→{j}" for j in range(n)] + ["row total"]
    rows = [
        [i] + [format_bytes(v) if v else "·" for v in row] + [format_bytes(sum(row))]
        for i, row in enumerate(matrix)
    ]
    return format_table(
        headers, rows, title=title or "Communication matrix (bytes, rank→rank)"
    )
