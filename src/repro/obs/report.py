"""Plain-text profiling reports: top-k spans, memory, collective traffic."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SpanAggregate:
    name: str
    category: str
    count: int  # distinct span instances (a multi-rank span counts once)
    rank_seconds: float  # summed duration across every rank record
    mean_duration: float  # mean per-rank duration
    max_duration: float


def aggregate_spans(tracer, category: Optional[str] = None) -> List[SpanAggregate]:
    """Aggregate span records by (name, category), sorted by rank-seconds."""
    groups: Dict[Tuple[str, str], List] = {}
    for s in tracer.spans:
        if category is not None and s.category != category:
            continue
        groups.setdefault((s.name, s.category), []).append(s)
    out = []
    for (name, cat), spans in groups.items():
        sids = {s.sid for s in spans}
        durations = [s.duration for s in spans]
        out.append(
            SpanAggregate(
                name=name,
                category=cat,
                count=len(sids),
                rank_seconds=sum(durations),
                mean_duration=sum(durations) / len(durations),
                max_duration=max(durations),
            )
        )
    out.sort(key=lambda a: a.rank_seconds, reverse=True)
    return out


def top_spans(tracer, k: int = 10, category: Optional[str] = None) -> str:
    """Top-k span table by total rank-seconds."""
    from repro.utils.tables import format_table

    aggs = aggregate_spans(tracer, category)[:k]
    rows = [
        [a.name, a.category, a.count,
         f"{a.rank_seconds:.4f}", f"{a.mean_duration:.5f}", f"{a.max_duration:.5f}"]
        for a in aggs
    ]
    return format_table(
        ["span", "category", "count", "rank-seconds", "mean (s)", "max (s)"],
        rows,
        title=f"Top {len(rows)} spans by total time",
    )


def memory_report(sim, max_tags: int = 12) -> str:
    """Per-tag peak holdings and the high-water mark of each rank."""
    from repro.utils.tables import format_bytes, format_table

    # peak-per-tag needs the timeline; fall back to current by_tag otherwise
    peaks: Dict[int, Dict[str, int]] = {}
    for d in sim.devices:
        per_tag: Dict[str, int] = {}
        if d.memory.timeline:
            for s in d.memory.timeline:
                per_tag[s.tag] = max(per_tag.get(s.tag, 0), s.tag_bytes)
        else:
            per_tag = dict(d.memory.by_tag)
        peaks[d.rank] = per_tag

    all_tags = sorted({t for per in peaks.values() for t in per})[:max_tags]
    rows = []
    for d in sim.devices:
        per = peaks[d.rank]
        rows.append(
            [d.rank, format_bytes(d.memory.peak)]
            + [format_bytes(per.get(t, 0)) if per.get(t, 0) else "·" for t in all_tags]
        )
    source = "timeline peaks" if any(d.memory.timeline for d in sim.devices) else "current holdings"
    return format_table(
        ["rank", "peak"] + all_tags,
        rows,
        title=f"Memory by tag ({source})",
    )


def collective_report(sim) -> str:
    """Traffic table by collective kind (from runtime.analysis stats)."""
    from repro.runtime.analysis import collective_stats
    from repro.utils.tables import format_bytes, format_table

    stats = collective_stats(sim.tracer)
    rows = [
        [s.kind, s.count, format_bytes(s.total_bytes),
         format_bytes(s.total_bytes_charged), f"{s.total_time:.4f}",
         f"{s.total_weighted:.3e}"]
        for s in sorted(stats.values(), key=lambda s: s.total_time, reverse=True)
    ]
    return format_table(
        ["kind", "count", "payload", "charged", "time (s)", "β-weighted"],
        rows,
        title="Collective traffic by kind",
    )
