"""OpenMetrics / Prometheus text exposition for the metrics registry.

Two render paths cover the two places metrics live:

* :func:`render_registry` serializes a live
  :class:`~repro.obs.metrics.MetricsRegistry` — histograms get real
  cumulative ``_bucket`` lines with a geometric bucket ladder derived from
  the retained samples (the ``+Inf`` bucket always equals the true
  ``_count``, even when sample retention truncated);
* :func:`render_export` serializes the structured
  ``MetricsRegistry.export()`` entries stored in ledger records — those
  keep only summary statistics (no raw samples), so histograms become
  OpenMetrics ``summary`` families with ``quantile`` lines from p50/p99.

Both emit deterministic output: families sorted by name, labels sorted by
key, fixed float formatting, a single ``# EOF`` terminator.
Counters additionally emit a ``_created`` sample carrying the counter's
reset epoch (0 at birth, bumped on every checkpoint restore) — the
OpenMetrics mechanism that lets scrapers tell a counter restart from a
missed increment across :class:`~repro.resilience.ResilientTrainer`
resumes.

:func:`validate_openmetrics` checks the grammar rules the exporters
promise (TYPE before samples, counter ``_total``/``_created`` suffixes,
cumulative buckets with ``+Inf == _count``, EOF) and is run in tests and
the CI dash smoke job.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)

#: finite bucket bounds per histogram (the ``+Inf`` bucket is always added)
NUM_BUCKETS = 8


def metric_name(name: str, prefix: str = "repro") -> str:
    """Map a registry name (``resilience/step_retries``) onto the
    OpenMetrics charset, with a namespacing prefix."""
    safe = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if prefix:
        safe = f"{prefix}_{safe}"
    if not _NAME_OK.match(safe):
        safe = f"_{safe}"
    return safe


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Deterministic sample-value formatting (ints stay integral)."""
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labelstr(labels: Dict[str, object], extra: Optional[List[Tuple[str, str]]] = None) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items(), key=lambda kv: kv[0])]
    pairs += list(extra or [])
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{_escape(v)}"' for k, v in pairs) + "}"


def bucket_bounds(lo: float, hi: float, n: int = NUM_BUCKETS) -> List[float]:
    """A deterministic geometric ladder covering ``[lo, hi]``.

    Falls back to a linear ladder when the data crosses or touches zero
    (a geometric ladder needs a positive span).
    """
    if hi <= lo:
        return [hi]
    if lo > 0:
        ratio = (hi / lo) ** (1.0 / (n - 1))
        bounds = [lo * ratio**i for i in range(n)]
    else:
        step = (hi - lo) / (n - 1)
        bounds = [lo + step * i for i in range(n)]
    bounds[-1] = hi  # close the ladder exactly despite float error
    out = [bounds[0]]
    for b in bounds[1:]:  # collapse float-equal steps: bounds must increase
        if b > out[-1]:
            out.append(b)
    return out


class _Family:
    __slots__ = ("name", "type", "lines")

    def __init__(self, name: str, type_: str):
        self.name = name
        self.type = type_
        self.lines: List[str] = []


def _render(families: List[_Family]) -> str:
    out: List[str] = []
    for fam in sorted(families, key=lambda f: f.name):
        out.append(f"# TYPE {fam.name} {fam.type}")
        out.extend(fam.lines)
    out.append("# EOF")
    return "\n".join(out) + "\n"


def _histogram_family(fam: _Family, labels: dict, samples: List[float],
                      count: int, total: float) -> None:
    """Cumulative ``_bucket`` lines from retained samples.

    Retention may have truncated (``count > len(samples)``): finite buckets
    count retained samples only, while ``+Inf`` carries the true count —
    still monotone, since ``count >= len(samples)``.
    """
    ordered = sorted(samples)
    if ordered:
        for le in bucket_bounds(ordered[0], ordered[-1]):
            cum = sum(1 for s in ordered if s <= le)
            fam.lines.append(
                f"{fam.name}_bucket{_labelstr(labels, [('le', _fmt(le))])} {cum}"
            )
    fam.lines.append(
        f"{fam.name}_bucket{_labelstr(labels, [('le', '+Inf')])} {count}"
    )
    fam.lines.append(f"{fam.name}_sum{_labelstr(labels)} {_fmt(total)}")
    fam.lines.append(f"{fam.name}_count{_labelstr(labels)} {count}")


def _summary_family(fam: _Family, labels: dict, entry: dict) -> None:
    for q, key in (("0.5", "p50"), ("0.99", "p99")):
        fam.lines.append(
            f"{fam.name}{_labelstr(labels, [('quantile', q)])} {_fmt(entry[key])}"
        )
    fam.lines.append(f"{fam.name}_sum{_labelstr(labels)} {_fmt(entry['sum'])}")
    fam.lines.append(f"{fam.name}_count{_labelstr(labels)} {entry['count']}")


def render_registry(registry, prefix: str = "repro") -> str:
    """OpenMetrics text for a live :class:`MetricsRegistry`."""
    from repro.obs.metrics import Counter, Histogram

    families: Dict[str, _Family] = {}
    for (name, label_key), m in registry._sorted_items():
        labels = dict(label_key)
        if isinstance(m, Histogram):
            fam = families.setdefault(
                metric_name(name, prefix), _Family(metric_name(name, prefix), "histogram")
            )
            _histogram_family(fam, labels, m.samples, m.count, m.total)
        elif isinstance(m, Counter):
            fam = families.setdefault(
                metric_name(name, prefix), _Family(metric_name(name, prefix), "counter")
            )
            fam.lines.append(f"{fam.name}_total{_labelstr(labels)} {_fmt(m.value)}")
            fam.lines.append(
                f"{fam.name}_created{_labelstr(labels)} {_fmt(m.created)}"
            )
        else:
            fam = families.setdefault(
                metric_name(name, prefix), _Family(metric_name(name, prefix), "gauge")
            )
            fam.lines.append(f"{fam.name}{_labelstr(labels)} {_fmt(m.value)}")
    return _render(list(families.values()))


def render_export(entries: List[dict], prefix: str = "repro",
                  extra_labels: Optional[Dict[str, object]] = None) -> str:
    """OpenMetrics text for ``MetricsRegistry.export()`` entries.

    Export entries keep no raw samples, so histograms render as ``summary``
    families (quantile lines from the stored p50/p99).  ``extra_labels``
    (e.g. ``run_id``/``kind`` from a ledger record) are merged into every
    sample's label set.
    """
    families: Dict[str, _Family] = {}
    for entry in entries:
        labels = dict(entry.get("labels") or {})
        labels.update(extra_labels or {})
        name = metric_name(entry["name"], prefix)
        kind = entry.get("type", "gauge")
        if kind == "histogram":
            fam = families.setdefault(name, _Family(name, "summary"))
            _summary_family(fam, labels, entry)
        elif kind == "counter":
            fam = families.setdefault(name, _Family(name, "counter"))
            fam.lines.append(f"{name}_total{_labelstr(labels)} {_fmt(entry['value'])}")
            if "created" in entry:
                fam.lines.append(
                    f"{name}_created{_labelstr(labels)} {_fmt(entry['created'])}"
                )
        else:
            fam = families.setdefault(name, _Family(name, "gauge"))
            fam.lines.append(f"{name}{_labelstr(labels)} {_fmt(entry['value'])}")
    return _render(list(families.values()))


def write_openmetrics(text: str, path: str) -> str:
    problems = validate_openmetrics(text)
    if problems:
        raise ValueError("refusing to write invalid OpenMetrics: " + "; ".join(problems))
    with open(path, "w") as f:
        f.write(text)
    return path


# ----------------------------------------------------------------------
# grammar validation
# ----------------------------------------------------------------------
_SUFFIXES = ("_total", "_created", "_bucket", "_sum", "_count")


def _family_of(sample_name: str, families: Dict[str, str]) -> Optional[str]:
    if sample_name in families:
        return sample_name
    for suffix in _SUFFIXES:
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
            return sample_name[: -len(suffix)]
    return None


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def validate_openmetrics(text: str) -> List[str]:
    """Grammar problems in ``text`` (empty list == valid).

    Checks the invariants our exporters promise: every sample belongs to a
    family declared by an earlier ``# TYPE`` line, counter samples use the
    ``_total`` suffix, histogram buckets are cumulative with the ``+Inf``
    bucket equal to ``_count``, and the document ends with ``# EOF``.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing '# EOF' terminator on the last line")
    families: Dict[str, str] = {}
    buckets: Dict[str, List[float]] = {}  # series -> cumulative values in order
    bucket_le: Dict[str, List[float]] = {}
    counts: Dict[str, float] = {}
    for lineno, line in enumerate(lines, 1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            _, _, name, type_ = parts
            if name in families:
                problems.append(f"line {lineno}: duplicate TYPE for family {name!r}")
            families[name] = type_
            continue
        if line.startswith("#"):
            continue  # HELP/comment lines are legal and unchecked
        m = _SAMPLE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        sample_name = m.group("name")
        family = _family_of(sample_name, families)
        if family is None:
            problems.append(
                f"line {lineno}: sample {sample_name!r} has no preceding TYPE line"
            )
            continue
        type_ = families[family]
        try:
            value = _parse_value(m.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: bad sample value {m.group('value')!r}")
            continue
        if type_ == "counter":
            if not sample_name.endswith(("_total", "_created")):
                problems.append(
                    f"line {lineno}: counter sample {sample_name!r} must end in "
                    "_total or _created"
                )
            if value < 0:
                problems.append(f"line {lineno}: negative counter value")
        if type_ == "histogram" and sample_name.endswith("_bucket"):
            labels = m.group("labels") or ""
            le_match = re.search(r'le="([^"]*)"', labels)
            if le_match is None:
                problems.append(f"line {lineno}: histogram bucket without le label")
                continue
            series = family + "{" + re.sub(r',?le="[^"]*"', "", labels) + "}"
            buckets.setdefault(series, []).append(value)
            bucket_le.setdefault(series, []).append(_parse_value(le_match.group(1)))
        if type_ == "histogram" and sample_name.endswith("_count"):
            series = family + "{" + (m.group("labels") or "") + "}"
            counts[series] = value
    for series, values in buckets.items():
        les = bucket_le[series]
        if any(cur > nxt for cur, nxt in zip(values, values[1:])):
            problems.append(f"histogram {series}: bucket counts not cumulative")
        if any(cur >= nxt for cur, nxt in zip(les, les[1:])):
            problems.append(f"histogram {series}: bucket bounds not increasing")
        if not les or not math.isinf(les[-1]):
            problems.append(f"histogram {series}: missing +Inf bucket")
        elif series in counts and values[-1] != counts[series]:
            problems.append(
                f"histogram {series}: +Inf bucket {values[-1]} != _count {counts[series]}"
            )
    return problems
