"""Collapsed-stack ("folded") flamegraph export of a traced run.

Complements the Perfetto exporter: where Perfetto shows the timeline,
a flamegraph shows *where the time aggregates*.  The output is the folded
format consumed by speedscope (https://speedscope.app), Brendan Gregg's
``flamegraph.pl`` and ``inferno``: one line per unique stack, frames
joined by ``;``, followed by a space and an integer count — here the
integer is **nanoseconds of simulated time**.

Stacks are rebuilt exactly from the tracer's span records (each rank's
``sid``/``parent`` links), with flat trace events (compute kernels,
collectives, p2p receives) nested under their innermost enclosing span.
Every frame's *self* time is its duration minus the time covered by its
children, so a stack's value never double-counts and the per-rank root
frames sum to that rank's busy time.  Lines are emitted sorted, values are
deterministic integers, and frame names are sanitized (no spaces or
semicolons), so the same seeded run always produces byte-identical output.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

_FRAME_BAD = re.compile(r"[;\s]+")


def _frame(name: str) -> str:
    """A folded-format-safe frame name (no separators, never empty)."""
    return _FRAME_BAD.sub("_", str(name).strip()) or "_"


def _ns(t: float) -> int:
    return int(round(t * 1e9))


class _Node:
    __slots__ = ("name", "start_ns", "end_ns", "children")

    def __init__(self, name: str, start_ns: int, end_ns: int):
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.children: List["_Node"] = []

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


def _span_frame(span) -> str:
    attrs = span.attrs or {}
    if span.category == "step":
        return _frame(f"step[{attrs.get('step', '?')}]")
    if span.category == "layer":
        phase = attrs.get("phase")
        base = f"layer[{attrs.get('index', '?')}]"
        return _frame(f"{base}.{phase}" if phase else base)
    return _frame(span.name)


def _event_frame(e) -> str:
    if e.kind == "compute":
        return _frame(f"compute:{e.label}" if e.label else "compute")
    if e.label:
        return _frame(f"{e.kind}:{e.label}")
    return _frame(e.kind)


def _build_rank_tree(rank: int, spans, events) -> _Node:
    """A root node whose children are the rank's top-level spans + events."""
    horizon = 0
    for s in spans:
        horizon = max(horizon, _ns(s.t_end))
    for e, _targets in events:
        horizon = max(horizon, _ns(e.t_end))
    root = _Node(_frame(f"rank{rank}"), 0, horizon)
    by_sid: Dict[int, _Node] = {}
    # parents appear with smaller depth; build shallow-to-deep
    for s in sorted(spans, key=lambda s: (s.depth, _ns(s.t_start), s.sid)):
        node = _Node(_span_frame(s), _ns(s.t_start), _ns(s.t_end))
        parent = by_sid.get(s.parent) if s.parent is not None else None
        (parent or root).children.append(node)
        by_sid[s.sid] = node

    def innermost(node: _Node, a: int, b: int) -> _Node:
        for child in node.children:
            if child.start_ns <= a and child.end_ns >= b:
                return innermost(child, a, b)
        return node

    for e, _targets in sorted(events, key=lambda t: (_ns(t[0].t_start), t[0].kind)):
        a, b = _ns(e.t_start), _ns(e.t_end)
        if b <= a:
            continue
        innermost(root, a, b).children.append(_Node(_event_frame(e), a, b))
    return root


def folded_stacks(sim) -> List[Tuple[str, int]]:
    """All (stack, self-ns) pairs for a traced run, sorted by stack."""
    tracer = sim.tracer
    per_rank_spans: Dict[int, list] = {}
    for s in tracer.spans:
        per_rank_spans.setdefault(s.rank, []).append(s)
    per_rank_events: Dict[int, list] = {}
    for e in tracer.events:
        if e.kind == "compute":
            targets = (e.ranks[0],)
        elif e.kind == "p2p":
            targets = (e.ranks[1],)
        else:
            targets = e.ranks
        for r in targets:
            per_rank_events.setdefault(r, []).append((e, r))

    totals: Dict[str, int] = {}

    def walk(node: _Node, prefix: str) -> None:
        stack = f"{prefix};{node.name}" if prefix else node.name
        child_ns = sum(c.duration_ns for c in node.children)
        self_ns = node.duration_ns - child_ns
        if self_ns > 0:
            totals[stack] = totals.get(stack, 0) + self_ns
        for c in node.children:
            walk(c, stack)

    for rank in sorted(set(per_rank_spans) | set(per_rank_events)):
        root = _build_rank_tree(
            rank, per_rank_spans.get(rank, []), per_rank_events.get(rank, [])
        )
        for child in root.children:
            walk(child, root.name)
        # uncovered time under the rank root is idle; keep flamegraphs
        # busy-only (stall analysis lives in repro.obs.critpath)
    return sorted(totals.items())


def render_folded(sim) -> str:
    """The folded-format text document (one ``stack value`` line each)."""
    return "".join(f"{stack} {ns}\n" for stack, ns in folded_stacks(sim))


def write_folded(sim, path: str) -> int:
    """Write the folded flamegraph; returns the number of stack lines."""
    text = render_folded(sim)
    with open(path, "w") as f:
        f.write(text)
    return text.count("\n")


def validate_folded(text: str) -> Optional[str]:
    """The first format problem in a folded document, or ``None`` if valid.

    Checks what speedscope/flamegraph.pl require: every non-empty line is
    ``frames <integer>``, frames are ``;``-separated and non-empty, values
    are positive integers.
    """
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            return f"line {lineno}: empty line"
        stack, sep, value = line.rpartition(" ")
        if not sep or not stack:
            return f"line {lineno}: missing 'stack value' separator"
        if not value.isdigit() or int(value) <= 0:
            return f"line {lineno}: value {value!r} is not a positive integer"
        frames = stack.split(";")
        if any(not f or " " in f for f in frames):
            return f"line {lineno}: empty or space-containing frame in {stack!r}"
    return None
