"""The run ledger: durable, append-only, machine-readable run records.

Every run of the trainer, the bench suite, a chaos campaign or an
experiment stem prints its evidence and — before this module — threw it
away.  The ledger turns that signal into comparable artifacts: one JSONL
line per run under ``benchmarks/ledger/``, each a :class:`RunRecord`
capturing the config fingerprint, git revision, scheme, mesh shape,
simulated clock, per-rank byte/FLOP counters, peak-memory watermarks and a
structured metrics snapshot.

Design constraints (tested in ``tests/test_ledger.py``):

* **append-only** — :meth:`RunLedger.append` opens the file in ``"a"``
  mode and never rewrites earlier lines; history is immutable;
* **byte-deterministic** — a record is a pure function of the run's inputs
  (seed, config, code revision).  No wall-clock timestamps, hostnames or
  temp paths appear in the canonical payload, and JSON is serialized with
  sorted keys and fixed separators, so two runs with the same seed/config
  produce byte-identical lines (the ``run_id`` is a content hash);
* **zero drift** — building a record only *reads* simulator counters and
  metrics; losses and simulated clocks are bit-identical with the ledger
  enabled or disabled.

The consumers are :mod:`repro.obs.claims` (the paper-claims scorecard),
:mod:`repro.obs.dash` (the HTML dashboard) and
:mod:`repro.obs.openmetrics` (the Prometheus/OpenMetrics exporter).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

LEDGER_SCHEMA = "repro-ledger-v1"
DEFAULT_LEDGER_DIR = os.path.join("benchmarks", "ledger")
DEFAULT_LEDGER_FILE = "ledger.jsonl"

RUN_KINDS = ("train", "bench", "chaos", "experiment", "serve", "serve-chaos")


def canonical_json(doc) -> str:
    """Byte-stable JSON: sorted keys, fixed separators, no trailing space."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)


def json_safe(value):
    """Recursively replace non-finite floats with ``None`` (JSON has no NaN;
    serial trainers log NaN step times) and numpy scalars with builtins."""
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value if value == value and value not in (float("inf"), float("-inf")) else None
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return json_safe(item())
    return value


def config_fingerprint(cfg) -> str:
    """A short stable hash of a model config (dataclass or plain dict)."""
    doc = dataclasses.asdict(cfg) if dataclasses.is_dataclass(cfg) else dict(cfg)
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()[:16]


def git_revision(cwd: Optional[str] = None) -> str:
    """The current git commit (short), or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def _scheme_of(model) -> Optional[str]:
    """Best-effort scheme tag: an explicit ``scheme`` attribute wins, else
    the class name is matched (serving engines wrap a model of the *other*
    naming convention, which is what the attribute escape hatch is for)."""
    scheme = getattr(model, "scheme", None)
    if isinstance(scheme, str) and scheme:
        return scheme
    name = type(model).__name__.lower()
    for scheme in ("optimus", "megatron", "hybrid", "pipeline"):
        if scheme in name:
            return scheme
    if "serial" in name or "reference" in name:
        return "serial"
    inner = getattr(model, "dp", None)
    if inner is not None and "dataparallel" in type(inner).__name__.lower():
        return "hybrid"
    return None


@dataclass
class RunRecord:
    """One ledger line: everything needed to compare this run to any other."""

    kind: str  # train | bench | chaos | experiment
    label: str = ""
    scheme: Optional[str] = None
    seed: Optional[int] = None
    mesh: Optional[dict] = None  # {"ranks":…, "nodes":…, "gpus_per_node":…, "q":…}
    config: Optional[dict] = None  # model config asdict + "fingerprint"
    clock: Optional[float] = None  # simulated seconds (slowest rank)
    counters: Optional[dict] = None  # aggregate flops/bytes/peak across ranks
    watermarks: Optional[List[dict]] = None  # per-rank high-water counters
    metrics: Optional[List[dict]] = None  # MetricsRegistry.export() entries
    attribution: Optional[dict] = None  # critpath summary (traced runs only)
    extra: dict = field(default_factory=dict)  # kind-specific payload
    git: str = field(default_factory=git_revision)
    schema: str = LEDGER_SCHEMA

    def __post_init__(self):
        if self.kind not in RUN_KINDS:
            raise ValueError(f"unknown run kind {self.kind!r} (choose from {RUN_KINDS})")

    # ------------------------------------------------------------------
    def payload(self) -> dict:
        """The canonical JSON document, without the content hash."""
        return json_safe(dataclasses.asdict(self))

    @property
    def run_id(self) -> str:
        """Content hash of the canonical payload — identical runs share it."""
        return hashlib.sha256(canonical_json(self.payload()).encode()).hexdigest()[:16]

    def to_line(self) -> str:
        doc = self.payload()
        doc["run_id"] = self.run_id
        return canonical_json(doc)

    @classmethod
    def from_json(cls, doc: dict) -> "RunRecord":
        doc = dict(doc)
        doc.pop("run_id", None)
        if doc.get("schema") != LEDGER_SCHEMA:
            raise ValueError(f"unknown ledger schema {doc.get('schema')!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown ledger record fields {sorted(unknown)}")
        return cls(**doc)


def record_from_sim(
    kind: str,
    sim,
    *,
    label: str = "",
    scheme: Optional[str] = None,
    seed: Optional[int] = None,
    config=None,
    mesh: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> RunRecord:
    """Build a :class:`RunRecord` by *reading* a simulator's counters.

    Pure read-only: nothing here touches clocks, memory meters, traces or
    numerics, which is what keeps ledger-on and ledger-off runs bit-identical.
    Traced runs additionally carry a critical-path attribution summary
    (:func:`repro.obs.critpath.attribution_summary` — also read-only).
    """
    cfg_doc = None
    if config is not None:
        cfg_doc = (
            dataclasses.asdict(config)
            if dataclasses.is_dataclass(config)
            else dict(config)
        )
        cfg_doc["fingerprint"] = config_fingerprint(cfg_doc)
    mesh_doc = {
        "ranks": sim.num_ranks,
        "nodes": sim.cluster.num_nodes,
        "gpus_per_node": sim.cluster.gpus_per_node,
    }
    if mesh:
        mesh_doc.update(mesh)
    attribution = None
    if sim.tracer.enabled and sim.tracer.events:
        from repro.obs.critpath import attribution_summary

        attribution = json_safe(attribution_summary(sim))
    return RunRecord(
        kind=kind,
        label=label,
        scheme=scheme,
        seed=seed,
        mesh=mesh_doc,
        config=cfg_doc,
        clock=sim.elapsed(),
        counters={
            "total_flops": sim.total_flops(),
            "total_bytes_comm": sim.total_bytes_comm(),
            "max_weighted_comm_volume": sim.max_weighted_comm_volume(),
            "peak_memory_bytes": int(sim.peak_memory()),
            "max_compute_time": max(d.compute_time for d in sim.devices),
            "max_comm_time": max(d.comm_time for d in sim.devices),
        },
        watermarks=sim.watermarks(),
        metrics=sim.metrics.export(),
        attribution=attribution,
        extra=dict(extra or {}),
    )


class RunLedger:
    """Append-only JSONL store of :class:`RunRecord` lines."""

    def __init__(self, path: str):
        if os.path.isdir(path) or path.endswith(os.sep):
            path = os.path.join(path, DEFAULT_LEDGER_FILE)
        self.path = path

    @classmethod
    def default(cls, root: str = ".") -> "RunLedger":
        return cls(os.path.join(root, DEFAULT_LEDGER_DIR, DEFAULT_LEDGER_FILE))

    @classmethod
    def from_env(cls, var: str = "REPRO_LEDGER") -> Optional["RunLedger"]:
        """A ledger from the environment, or ``None`` when unset/empty."""
        path = os.environ.get(var, "").strip()
        return cls(path) if path else None

    # ------------------------------------------------------------------
    def append(self, record: RunRecord) -> str:
        """Append one record (append-only by construction); returns run_id."""
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a") as f:
            f.write(record.to_line())
            f.write("\n")
        return record.run_id

    def read(self) -> List[RunRecord]:
        """All records, oldest first (missing file reads as empty)."""
        if not os.path.exists(self.path):
            return []
        out: List[RunRecord] = []
        with open(self.path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(RunRecord.from_json(json.loads(line)))
                except (json.JSONDecodeError, ValueError, TypeError) as exc:
                    raise ValueError(
                        f"{self.path}:{lineno}: corrupt ledger line ({exc})"
                    ) from exc
        return out

    def __len__(self) -> int:
        return len(self.read())

    def kinds(self) -> dict:
        """Record count by kind."""
        counts: dict = {}
        for r in self.read():
            counts[r.kind] = counts.get(r.kind, 0) + 1
        return counts


def latest(records: Iterable[RunRecord], **match) -> Optional[RunRecord]:
    """The most recent record whose attributes equal every ``match`` kwarg."""
    found = None
    for r in records:
        if all(getattr(r, k, None) == v for k, v in match.items()):
            found = r
    return found


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
def _compact_key(record: RunRecord) -> tuple:
    """The identity a compacted ledger keeps one (latest) record for.

    Centered on (config fingerprint, git revision), widened by the fields
    that legitimately distinguish runs of the same config at the same
    revision: kind, scheme, label, mesh shape and arrangement.
    """
    fingerprint = (record.config or {}).get("fingerprint")
    mesh = record.mesh or {}
    key = (
        record.kind,
        record.scheme,
        record.label,
        fingerprint,
        record.git,
        mesh.get("ranks"),
        mesh.get("q"),
        mesh.get("arrangement"),
    )
    if record.kind in ("serve", "serve-chaos"):
        # serve runs of the same config/revision legitimately differ by
        # traffic: keep the newest per (seed, traffic shape), not one overall
        extra = record.extra or {}
        key += (
            record.seed,
            extra.get("arrival"),
            extra.get("num_requests"),
            extra.get("traffic_seed"),
        )
    return key


def compact(ledger, out: Optional[str] = None) -> dict:
    """Rewrite a ledger keeping only the latest record per compaction key.

    ``ledger`` is a :class:`RunLedger` or a path.  Surviving lines are
    preserved **byte-for-byte** (never re-serialized),
    so content-hash ``run_id`` s are stable across compaction, and the
    rewrite is atomic (temp file + ``os.replace``) so a crash mid-compact
    cannot lose the ledger.  Relative order of survivors is unchanged.
    Returns a summary dict: kept/dropped counts and the output path.
    """
    import tempfile

    if isinstance(ledger, str):
        ledger = RunLedger(ledger)
    lines: List[str] = []
    if os.path.exists(ledger.path):
        with open(ledger.path) as f:
            lines = [ln.rstrip("\n") for ln in f if ln.strip()]
    keep_for: dict = {}
    keyed: List[tuple] = []
    for i, line in enumerate(lines):
        record = RunRecord.from_json(json.loads(line))
        key = _compact_key(record)
        keep_for[key] = i  # later lines win
        keyed.append((i, key, line))
    survivors = [line for i, key, line in keyed if keep_for[key] == i]
    target = out or ledger.path
    parent = os.path.dirname(target) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, prefix=".ledger-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            for line in survivors:
                f.write(line)
                f.write("\n")
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return {
        "path": target,
        "read": len(lines),
        "kept": len(survivors),
        "dropped": len(lines) - len(survivors),
    }


def compact_main(
    ledger: Optional[str] = None,
    out: Optional[str] = None,
    dry_run: bool = False,
    printer=print,
) -> int:
    """``python -m repro ledger compact`` driver."""
    led = RunLedger(ledger) if ledger else RunLedger.default()
    if not os.path.exists(led.path):
        printer(f"no ledger at {led.path}; nothing to compact")
        return 1
    if dry_run:
        records = led.read()
        keep: dict = {}
        for i, r in enumerate(records):
            keep[_compact_key(r)] = i
        dropped = len(records) - len(keep)
        printer(
            f"{led.path}: {len(records)} records, would keep {len(keep)}, "
            f"drop {dropped} (dry run; no changes written)"
        )
        return 0
    summary = compact(led, out=out)
    printer(
        f"{summary['path']}: kept {summary['kept']} of {summary['read']} "
        f"records ({summary['dropped']} superseded)"
    )
    return 0
