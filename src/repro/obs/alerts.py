"""Deterministic SLO alerting over the live metrics registry.

A declarative :class:`AlertRule` names a registry metric, a statistic over
it, a comparison against a threshold, and a ``for_s`` hold duration on the
**simulated** clock.  The :class:`AlertEngine` is evaluated inline at every
serving-engine step: a rule *fires* once its condition has held
continuously for ``for_s`` simulated seconds, and *resolves* on the first
evaluation where the condition no longer holds.  Everything is a pure
function of registry state and the simulated clock — no wall time, no
randomness — so two same-seed runs produce byte-identical alert event
streams (CI diffs them).

Evaluation is strictly read-only over the registry: arming alerting can
never move a simulated clock or change a sampled token, which is what
keeps serve reports byte-identical with alerting on or off (modulo the
``alerts`` sections themselves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

OPS = (">", ">=", "<", "<=")

#: statistics a rule may take over a metric instance.  ``value`` reads a
#: counter/gauge directly; ``rate`` divides a counter by the simulated
#: clock (inactive until the counter first moves, so floor rules cannot
#: trivially fire at t=0); the rest are histogram statistics (inactive
#: while the histogram is empty).
STATS = ("value", "rate", "count", "sum", "mean", "min", "max", "p50", "p90", "p99")

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting rule over a registry metric."""

    name: str
    metric: str  # registry metric name, e.g. "serving/queue_depth"
    op: str  # comparison: > >= < <=
    threshold: float
    stat: str = "value"
    for_s: float = 0.0  # condition must hold this long (simulated clock)
    severity: str = "warning"
    #: optional label filter: a metric instance matches when every pair
    #: here appears in its label set (sorted tuple keeps the rule hashable)
    labels: tuple = field(default_factory=tuple)

    def __post_init__(self):
        if not self.name:
            raise ValueError("alert rule needs a non-empty name")
        if self.op not in OPS:
            raise ValueError(f"rule {self.name!r}: unknown op {self.op!r} (choose from {OPS})")
        if self.stat not in STATS:
            raise ValueError(
                f"rule {self.name!r}: unknown stat {self.stat!r} (choose from {STATS})"
            )
        if self.for_s < 0:
            raise ValueError(f"rule {self.name!r}: for_s must be >= 0, got {self.for_s}")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: unknown severity {self.severity!r} "
                f"(choose from {SEVERITIES})"
            )
        object.__setattr__(self, "labels", tuple(sorted(tuple(p) for p in self.labels)))

    def expr(self) -> str:
        """Human-readable rule expression (goes in reports and docs)."""
        stat = "" if self.stat == "value" else f".{self.stat}"
        sel = "{" + ",".join(f"{k}={v}" for k, v in self.labels) + "}" if self.labels else ""
        return f"{self.metric}{sel}{stat} {self.op} {self.threshold:g} for {self.for_s:g}s"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "stat": self.stat,
            "for_s": self.for_s,
            "severity": self.severity,
            "labels": {k: v for k, v in self.labels},
            "expr": self.expr(),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "AlertRule":
        doc = dict(doc)
        doc.pop("expr", None)
        labels = doc.pop("labels", None) or {}
        return cls(labels=tuple(sorted((str(k), v) for k, v in labels.items())), **doc)


@dataclass(frozen=True)
class AlertEvent:
    """One firing/resolved transition, stamped in simulated time."""

    rule: str
    severity: str
    state: str  # "firing" | "resolved"
    step: int  # engine step at evaluation time
    t: float  # simulated seconds
    value: float  # the statistic's value at the transition

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "step": self.step,
            "t": self.t,
            "value": self.value,
        }


def _instance_value(metric, stat: str, now: float) -> Optional[float]:
    """The rule statistic for one metric instance; None = inactive."""
    from repro.obs.metrics import Histogram

    if isinstance(metric, Histogram):
        if metric.count == 0:
            return None
        if stat == "count":
            return float(metric.count)
        if stat == "sum":
            return metric.total
        if stat == "mean":
            return metric.mean
        if stat == "min":
            return metric.min
        if stat == "max":
            return metric.max
        if stat in ("p50", "p90", "p99"):
            return metric.percentile(float(stat[1:]))
        return None  # value/rate make no sense for a histogram
    if stat == "value":
        return metric.value
    if stat == "rate":
        # inactive until the series first moves: a rate-floor rule must
        # not fire trivially at t=0 before any work happened
        if metric.value <= 0 or now <= 0:
            return None
        return metric.value / now
    return None


class AlertEngine:
    """Evaluates a rule set against a registry on the simulated clock."""

    def __init__(self, rules: Sequence[AlertRule]):
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names: {sorted(names)}")
        self.rules = tuple(rules)
        self._breach_since: Dict[str, float] = {}
        self._firing: Dict[str, bool] = {r.name: False for r in self.rules}
        self.events: List[AlertEvent] = []

    # ------------------------------------------------------------------
    def _rule_value(self, rule: AlertRule, registry, now: float) -> Optional[float]:
        """Worst-case reduction across matching instances; None = inactive."""
        want = dict(rule.labels)
        values = []
        for m in registry.find(rule.metric):
            labels = getattr(m, "labels", {}) or {}
            if any(labels.get(k) != v for k, v in want.items()):
                continue
            v = _instance_value(m, rule.stat, now)
            if v is not None:
                values.append(v)
        if not values:
            return None
        # "worst case" depends on the direction: ceilings watch the highest
        # instance, floors the lowest
        return max(values) if rule.op in (">", ">=") else min(values)

    @staticmethod
    def _breached(rule: AlertRule, value: float) -> bool:
        if rule.op == ">":
            return value > rule.threshold
        if rule.op == ">=":
            return value >= rule.threshold
        if rule.op == "<":
            return value < rule.threshold
        return value <= rule.threshold

    def evaluate(self, registry, now: float, step: int) -> List[AlertEvent]:
        """One evaluation pass; returns the transitions that happened."""
        out: List[AlertEvent] = []
        for rule in self.rules:
            value = self._rule_value(rule, registry, now)
            breached = value is not None and self._breached(rule, value)
            if breached:
                since = self._breach_since.setdefault(rule.name, now)
                if not self._firing[rule.name] and now - since >= rule.for_s:
                    self._firing[rule.name] = True
                    out.append(AlertEvent(rule.name, rule.severity, "firing", step, now, value))
            else:
                self._breach_since.pop(rule.name, None)
                if self._firing[rule.name]:
                    self._firing[rule.name] = False
                    out.append(
                        AlertEvent(
                            rule.name, rule.severity, "resolved", step, now,
                            0.0 if value is None else value,
                        )
                    )
        self.events.extend(out)
        return out

    # ------------------------------------------------------------------
    def firing(self) -> List[str]:
        return sorted(name for name, on in self._firing.items() if on)

    def summary(self) -> dict:
        """Canonical-JSON-safe digest for the serve report and the ledger."""
        events = [e.to_dict() for e in self.events]
        return {
            "rules": [r.to_dict() for r in self.rules],
            "events": events,
            "fired_total": sum(1 for e in events if e["state"] == "firing"),
            "resolved_total": sum(1 for e in events if e["state"] == "resolved"),
            "firing": self.firing(),
        }


# ----------------------------------------------------------------------
def default_serving_rules(
    slo_ttft: float, slo_tpot: float, slots: int
) -> List[AlertRule]:
    """The stock serving rule set (``repro serve --alerts``).

    Thresholds key off the run's own SLO and capacity knobs; the queue and
    KV rules both fire under overload *and* resolve at drain, so a bounded
    traffic trace exercises the full firing→resolved lifecycle.
    """
    return [
        AlertRule(
            name="ttft-p99-burn", metric="serving/ttft_s", stat="p99",
            op=">", threshold=slo_ttft, for_s=0.0, severity="critical",
        ),
        AlertRule(
            name="tpot-p99-burn", metric="serving/tpot_s", stat="p99",
            op=">", threshold=slo_tpot, for_s=0.0, severity="warning",
        ),
        AlertRule(
            name="queue-depth-ceiling", metric="serving/queue_depth",
            op=">=", threshold=float(slots), for_s=5e-4, severity="warning",
        ),
        AlertRule(
            name="kv-occupancy-high", metric="serving/kv_used_frac",
            op=">=", threshold=0.95, for_s=5e-4, severity="warning",
        ),
        AlertRule(
            name="goodput-floor", metric="serving/good_tokens",
            stat="rate", op="<", threshold=100.0, for_s=1e-3, severity="info",
        ),
    ]
