"""Live OpenMetrics HTTP endpoint (stdlib ``http.server`` only).

:class:`MetricsServer` runs a daemon :class:`~http.server.ThreadingHTTPServer`
that renders a metrics source **on every scrape**:

* ``repro serve --metrics-port N`` attaches each serving arm's live
  registry (:meth:`MetricsServer.attach_registry`) — scrapes mid-run see
  queue depth, KV occupancy and latency histograms move step by step;
* ``repro metrics serve <ledger>`` re-reads the run ledger per scrape
  (:meth:`MetricsServer.attach_renderer` over
  :func:`repro.obs.dash.render_openmetrics_for_records`), turning the
  append-only ledger into a Prometheus target.

Every response body is passed through
:func:`repro.obs.openmetrics.validate_openmetrics` before it leaves the
process — an invalid exposition becomes a 500 with the problem list, never
a silently-broken scrape.  The server binds 127.0.0.1 and is strictly
read-only over the simulation, so a serve run's artifacts are
byte-identical with the endpoint on or off.

Concurrency: the engine appends to the registry while a scrape renders.
Metric values are plain floats (no torn reads under the GIL) but the dict
of instances can grow mid-iteration, so rendering retries a few times on
``RuntimeError`` before giving up.

Endpoints: ``/metrics`` (OpenMetrics text), ``/healthz``, and
``/quitquitquit`` (POST/GET: releases :meth:`hold` and stops serving —
lets CI end a ``--metrics-hold`` window early).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.openmetrics import render_registry, validate_openmetrics

CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: render retries when the registry grows mid-iteration
RENDER_ATTEMPTS = 8


class _Handler(BaseHTTPRequestHandler):
    server: "MetricsServer"

    def log_message(self, fmt, *args):  # silence per-request stderr noise
        pass

    def _send(self, status: int, body: str, content_type: str = "text/plain") -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):  # noqa: N802 (http.server API)
        if self.path.split("?")[0] == "/metrics":
            status, body, ctype = self.server.render_metrics()
            self._send(status, body, ctype)
        elif self.path == "/healthz":
            self._send(200, "ok\n")
        elif self.path == "/quitquitquit":
            self._send(200, "bye\n")
            self.server.release()
        else:
            self._send(404, f"not found: {self.path}\n")

    do_POST = do_GET


class MetricsServer(ThreadingHTTPServer):
    """Scrape endpoint over a swappable metrics source."""

    daemon_threads = True

    def __init__(self, port: int = 0, host: str = "127.0.0.1"):
        super().__init__((host, port), _Handler)
        self._render: Optional[Callable[[], str]] = None
        self._thread: Optional[threading.Thread] = None
        self._released = threading.Event()

    # -- metrics source ------------------------------------------------
    def attach_registry(self, registry) -> None:
        """Serve a live :class:`~repro.obs.metrics.MetricsRegistry`."""
        self._render = lambda: render_registry(registry)

    def attach_renderer(self, render: Callable[[], str]) -> None:
        """Serve an arbitrary OpenMetrics renderer (called per scrape)."""
        self._render = render

    def render_metrics(self):
        """(status, body, content-type) for one ``/metrics`` scrape."""
        render = self._render
        if render is None:
            return 503, "no metrics source attached yet\n", "text/plain"
        body = None
        for attempt in range(RENDER_ATTEMPTS):
            try:
                body = render()
                break
            except RuntimeError:  # registry grew mid-iteration; re-render
                if attempt == RENDER_ATTEMPTS - 1:
                    return 500, "metrics render did not settle\n", "text/plain"
        problems = validate_openmetrics(body)
        if problems:
            body = "invalid OpenMetrics exposition:\n" + "\n".join(problems) + "\n"
            return 500, body, "text/plain"
        return 200, body, CONTENT_TYPE

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        return self.server_address[1]

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def release(self) -> None:
        """Unblock :meth:`hold` (also triggered by ``/quitquitquit``)."""
        self._released.set()

    def hold(self, seconds: Optional[float]) -> None:
        """Keep serving for ``seconds`` wall-clock seconds (None = forever),
        returning early if :meth:`release` fires."""
        self._released.wait(timeout=seconds)

    def stop(self) -> None:
        self.release()
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()


# ----------------------------------------------------------------------
# repro metrics serve <ledger>
# ----------------------------------------------------------------------
def serve_ledger_metrics(
    ledger_dir: str,
    port: int = 9464,
    hold: Optional[float] = None,
    printer=print,
) -> int:
    """Serve the ledger's newest per-kind metrics until ``hold`` expires
    (or ``/quitquitquit``); the ledger is re-read on every scrape, so a
    long-lived endpoint tracks records appended after startup."""
    from repro.obs.dash import render_openmetrics_for_records
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(ledger_dir)

    def render() -> str:
        return render_openmetrics_for_records(ledger.read())

    render()  # fail fast on an unreadable ledger before binding the port
    server = MetricsServer(port=port)
    server.attach_renderer(render)
    server.start()
    printer(
        f"serving ledger metrics from {ledger_dir} on "
        f"http://127.0.0.1:{server.port}/metrics"
        + (f" for {hold:g}s" if hold is not None else " (ctrl-c to stop)")
    )
    try:
        server.hold(hold)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0
