"""Chrome/Perfetto ``trace_event`` JSON export of a simulator run.

The emitted dict loads directly in https://ui.perfetto.dev or
``chrome://tracing``.  Layout:

* one *process* per rank (``pid = rank``) named ``rank N (gpu G)``;
* ``tid 0`` ("timeline") carries hierarchical spans, compute slices and
  collective slices — nesting falls out of timestamp containment;
* ``tid 1`` ("copy engine") carries point-to-point transfer slices, with
  flow arrows (``ph: s``/``f``) from sender to receiver;
* counter events (``ph: C``) carry each rank's memory timeline when
  per-allocation sampling is enabled.

Timestamps are simulated seconds converted to microseconds, as the trace
format expects.
"""

from __future__ import annotations

import json
from typing import Dict, List

_US = 1e6  # seconds → trace_event microseconds


def chrome_trace(sim, include_memory: bool = True) -> Dict[str, object]:
    """Build a ``trace_event`` dict from the simulator's tracer state."""
    events: List[dict] = []
    for d in sim.devices:
        gpu = sim.arrangement.gpu_of(d.rank)
        node = sim.arrangement.node_of(d.rank)
        events.append(
            {"ph": "M", "name": "process_name", "pid": d.rank, "tid": 0,
             "args": {"name": f"rank {d.rank} (node {node}, gpu {gpu})"}}
        )
        for tid, tname in ((0, "timeline"), (1, "copy engine")):
            events.append(
                {"ph": "M", "name": "thread_name", "pid": d.rank, "tid": tid,
                 "args": {"name": tname}}
            )

    # hierarchical spans — already one record per participating rank
    for s in sim.tracer.spans:
        args = dict(s.attrs)
        args["sid"] = s.sid
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.category,
                "pid": s.rank,
                "tid": 0,
                "ts": s.t_start * _US,
                "dur": s.duration * _US,
                "args": args,
            }
        )

    # flat events: compute, collectives, point-to-point
    flow_id = 0
    for e in sim.tracer.events:
        if e.kind == "compute":
            events.append(
                {
                    "ph": "X",
                    "name": f"compute:{e.label}" if e.label else "compute",
                    "cat": "compute",
                    "pid": e.ranks[0],
                    "tid": 0,
                    "ts": e.t_start * _US,
                    "dur": e.duration * _US,
                    "args": dict(e.attrs or {}),
                }
            )
        elif e.kind == "p2p":
            src, dst = e.ranks
            flow_id += 1
            args = {"nbytes": e.nbytes, "src": src, "dst": dst}
            for pid, name in ((src, f"p2p→{dst}"), (dst, f"p2p←{src}")):
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": "p2p",
                        "pid": pid,
                        "tid": 1,
                        "ts": e.t_start * _US,
                        "dur": e.duration * _US,
                        "args": args,
                    }
                )
            events.append(
                {"ph": "s", "id": flow_id, "name": "p2p", "cat": "p2p",
                 "pid": src, "tid": 1, "ts": e.t_start * _US}
            )
            events.append(
                {"ph": "f", "bp": "e", "id": flow_id, "name": "p2p", "cat": "p2p",
                 "pid": dst, "tid": 1, "ts": e.t_end * _US}
            )
        else:  # grouped event (collective or resilience) — one slice per rank
            cat = (
                "resilience"
                if e.kind in ("fault", "checkpoint", "recovery")
                else "collective"
            )
            name = f"{e.kind}:{e.label}" if cat == "resilience" and e.label else e.kind
            args = {
                "nbytes": e.nbytes,
                "weighted": e.weighted,
                "group": e.label,
                "ranks": list(e.ranks),
            }
            for pid in e.ranks:
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": cat,
                        "pid": pid,
                        "tid": 0,
                        "ts": e.t_start * _US,
                        "dur": e.duration * _US,
                        "args": args,
                    }
                )

    if include_memory:
        for rank, samples in sim.memory_timeline().items():
            for s in samples:
                events.append(
                    {
                        "ph": "C",
                        "name": "memory",
                        "pid": rank,
                        "tid": 0,
                        "ts": s.t * _US,
                        "args": {"total": s.total},
                    }
                )
                events.append(
                    {
                        "ph": "C",
                        "name": f"memory:{s.tag}",
                        "pid": rank,
                        "tid": 0,
                        "ts": s.t * _US,
                        "args": {"bytes": s.tag_bytes},
                    }
                )

    # stable ordering: metadata first, then by (pid, tid, ts, -dur) so
    # enclosing slices precede their children at equal timestamps
    def sort_key(ev):
        is_meta = 0 if ev["ph"] == "M" else 1
        return (is_meta, ev.get("pid", 0), ev.get("tid", 0),
                ev.get("ts", 0.0), -ev.get("dur", 0.0))

    events.sort(key=sort_key)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(sim, path: str, include_memory: bool = True) -> Dict[str, object]:
    """Serialize :func:`chrome_trace` to ``path``; returns the trace dict."""
    trace = chrome_trace(sim, include_memory=include_memory)
    with open(path, "w") as f:
        json.dump(trace, f)
    return trace
