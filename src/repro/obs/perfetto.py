"""Chrome/Perfetto ``trace_event`` JSON export of a simulator run.

The emitted dict loads directly in https://ui.perfetto.dev or
``chrome://tracing``.  Layout:

* one *process* per rank (``pid = rank``) named ``rank N (gpu G)``;
* ``tid 0`` ("timeline") carries hierarchical spans, compute slices and
  collective slices — nesting falls out of timestamp containment;
* ``tid 1`` ("copy engine") carries point-to-point transfer slices, with
  flow arrows (``ph: s``/``f``) from sender to receiver;
* ``tid 2`` ("requests") carries serving request-lifecycle slices
  (``queued``/``prefill``/``decode``/``preempted``/…); one flow chain per
  request id (``ph: s``/``t``/``f``, id ``req<rid>``) links a request's
  slices across scheduler steps and mesh ranks.  SLO alert transitions
  appear as instant events (``ph: i``).  Only present for serve traces;
* counter events (``ph: C``) carry each rank's memory timeline when
  per-allocation sampling is enabled.

Timestamps are simulated seconds converted to microseconds, as the trace
format expects.
"""

from __future__ import annotations

import json
from typing import Dict, List

_US = 1e6  # seconds → trace_event microseconds


def chrome_trace(sim, include_memory: bool = True) -> Dict[str, object]:
    """Build a ``trace_event`` dict from the simulator's tracer state."""
    events: List[dict] = []
    has_requests = any(e.kind == "request" for e in sim.tracer.events)
    for d in sim.devices:
        gpu = sim.arrangement.gpu_of(d.rank)
        node = sim.arrangement.node_of(d.rank)
        events.append(
            {"ph": "M", "name": "process_name", "pid": d.rank, "tid": 0,
             "args": {"name": f"rank {d.rank} (node {node}, gpu {gpu})"}}
        )
        threads = [(0, "timeline"), (1, "copy engine")]
        if has_requests:
            threads.append((2, "requests"))
        for tid, tname in threads:
            events.append(
                {"ph": "M", "name": "thread_name", "pid": d.rank, "tid": tid,
                 "args": {"name": tname}}
            )

    # hierarchical spans — already one record per participating rank
    for s in sim.tracer.spans:
        args = dict(s.attrs)
        args["sid"] = s.sid
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.category,
                "pid": s.rank,
                "tid": 0,
                "ts": s.t_start * _US,
                "dur": s.duration * _US,
                "args": args,
            }
        )

    # flat events: compute, collectives, point-to-point, serving lifecycle
    flow_id = 0
    request_chains: Dict[object, List[tuple]] = {}
    for e in sim.tracer.events:
        if e.kind == "request":
            attrs = dict(e.attrs or {})
            rid = attrs.get("rid")
            name = f"req{rid}:{e.label}" if rid is not None else e.label
            for pid in e.ranks:
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": "request",
                        "pid": pid,
                        "tid": 2,
                        "ts": e.t_start * _US,
                        "dur": e.duration * _US,
                        "args": attrs,
                    }
                )
            if rid is not None:
                request_chains.setdefault(rid, []).append(
                    (e.t_start, e.ranks[0], name)
                )
        elif e.kind == "alert":
            for pid in e.ranks:
                events.append(
                    {
                        "ph": "i",
                        "s": "p",
                        "name": f"alert:{e.label}",
                        "cat": "alert",
                        "pid": pid,
                        "tid": 2,
                        "ts": e.t_start * _US,
                        "args": dict(e.attrs or {}),
                    }
                )
        elif e.kind == "compute":
            events.append(
                {
                    "ph": "X",
                    "name": f"compute:{e.label}" if e.label else "compute",
                    "cat": "compute",
                    "pid": e.ranks[0],
                    "tid": 0,
                    "ts": e.t_start * _US,
                    "dur": e.duration * _US,
                    "args": dict(e.attrs or {}),
                }
            )
        elif e.kind == "p2p":
            src, dst = e.ranks
            flow_id += 1
            args = {"nbytes": e.nbytes, "src": src, "dst": dst}
            for pid, name in ((src, f"p2p→{dst}"), (dst, f"p2p←{src}")):
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": "p2p",
                        "pid": pid,
                        "tid": 1,
                        "ts": e.t_start * _US,
                        "dur": e.duration * _US,
                        "args": args,
                    }
                )
            events.append(
                {"ph": "s", "id": flow_id, "name": "p2p", "cat": "p2p",
                 "pid": src, "tid": 1, "ts": e.t_start * _US}
            )
            events.append(
                {"ph": "f", "bp": "e", "id": flow_id, "name": "p2p", "cat": "p2p",
                 "pid": dst, "tid": 1, "ts": e.t_end * _US}
            )
        else:  # grouped event (collective or resilience) — one slice per rank
            cat = (
                "resilience"
                if e.kind in ("fault", "checkpoint", "recovery")
                else "collective"
            )
            name = f"{e.kind}:{e.label}" if cat == "resilience" and e.label else e.kind
            args = {
                "nbytes": e.nbytes,
                "weighted": e.weighted,
                "group": e.label,
                "ranks": list(e.ranks),
            }
            for pid in e.ranks:
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": cat,
                        "pid": pid,
                        "tid": 0,
                        "ts": e.t_start * _US,
                        "dur": e.duration * _US,
                        "args": args,
                    }
                )

    # one flow chain per request id: arrows link the request's slices
    # across scheduler steps (and across ranks after a migration/swap-in)
    for rid in sorted(request_chains, key=str):
        chain = sorted(request_chains[rid], key=lambda it: (it[0], it[2]))
        if len(chain) < 2:
            continue
        fid = f"req{rid}"
        for i, (ts, pid, name) in enumerate(chain):
            ph = "s" if i == 0 else ("f" if i == len(chain) - 1 else "t")
            ev = {"ph": ph, "id": fid, "name": "request", "cat": "request",
                  "pid": pid, "tid": 2, "ts": ts * _US}
            if ph == "f":
                ev["bp"] = "e"
            events.append(ev)

    if include_memory:
        for rank, samples in sim.memory_timeline().items():
            for s in samples:
                events.append(
                    {
                        "ph": "C",
                        "name": "memory",
                        "pid": rank,
                        "tid": 0,
                        "ts": s.t * _US,
                        "args": {"total": s.total},
                    }
                )
                events.append(
                    {
                        "ph": "C",
                        "name": f"memory:{s.tag}",
                        "pid": rank,
                        "tid": 0,
                        "ts": s.t * _US,
                        "args": {"bytes": s.tag_bytes},
                    }
                )

    # stable ordering: metadata first, then by (pid, tid, ts, -dur) so
    # enclosing slices precede their children at equal timestamps
    def sort_key(ev):
        is_meta = 0 if ev["ph"] == "M" else 1
        return (is_meta, ev.get("pid", 0), ev.get("tid", 0),
                ev.get("ts", 0.0), -ev.get("dur", 0.0))

    events.sort(key=sort_key)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(sim, path: str, include_memory: bool = True) -> Dict[str, object]:
    """Serialize :func:`chrome_trace` to ``path``; returns the trace dict."""
    trace = chrome_trace(sim, include_memory=include_memory)
    with open(path, "w") as f:
        json.dump(trace, f)
    return trace
