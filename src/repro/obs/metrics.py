"""A small labeled-metrics registry (counters, gauges, histograms).

Deliberately prometheus-shaped but in-process: the simulator, trainer and
experiment harness publish into a :class:`MetricsRegistry`; tests and the
``repro profile`` CLI read snapshots back out.  A metric instance is keyed
by ``(name, sorted(labels))``, so ``reg.counter("steps", scheme="optimus")``
returns the same :class:`Counter` every call.

This module must stay import-free of the rest of :mod:`repro` — the
:class:`~repro.runtime.simulator.Simulator` owns a registry, so anything
this file imported from the package would cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, object], ...]]


class Counter:
    """Monotonically increasing value.

    ``created`` is the counter's *reset epoch*: 0 for a counter born in
    this process, bumped each time its value is restored from a
    checkpoint (see :meth:`MetricsRegistry.restore_counters`).  The
    OpenMetrics exporter publishes it as the ``_created`` sample, which
    is how scrapers distinguish a genuine counter restart from a missed
    increment.
    """

    __slots__ = ("name", "labels", "value", "created")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.created = 0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """Last-write-wins value (e.g. a buffer high-water mark)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Streaming distribution: count/sum/min/max plus retained samples."""

    __slots__ = ("name", "labels", "count", "total", "min", "max", "samples", "max_samples")

    def __init__(self, name: str, labels: dict, max_samples: int = 4096):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: List[float] = []
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self.samples) < self.max_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        if not self.count:
            raise ValueError(
                f"histogram {self.name!r} is empty: mean is undefined "
                "(observe() at least one value first)"
            )
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained samples (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if not self.samples:
            raise ValueError(
                f"histogram {self.name!r} is empty: percentile({p:g}) is "
                "undefined (observe() at least one value first)"
            )
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[idx]


def _key(name: str, labels: dict) -> LabelKey:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Get-or-create store for labeled metrics."""

    def __init__(self):
        self._metrics: Dict[LabelKey, object] = {}

    def _get(self, cls, name: str, labels: dict):
        key = _key(name, labels)
        m = self._metrics.get(key)
        if m is None:
            m = cls(name, labels)
            self._metrics[key] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r}{labels} already registered as {type(m).__name__}"
            )
        return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[object]:
        return iter(self._metrics.values())

    def find(self, name: str) -> List[object]:
        """All metric instances (any label set) registered under ``name``."""
        return [m for (n, _), m in self._metrics.items() if n == name]

    def clear(self) -> None:
        self._metrics.clear()

    def _sorted_items(self):
        """Metrics in a total order that is stable across label insertion
        orders *and* mixed-type label values (``rank=0`` next to
        ``rank="all"`` must not raise on comparison), so snapshots, ledger
        records and OpenMetrics output are byte-stable."""
        return sorted(
            self._metrics.items(),
            key=lambda kv: (kv[0][0], tuple((k, str(v)) for k, v in kv[0][1])),
        )

    @staticmethod
    def _histogram_summary(m: "Histogram") -> Dict[str, object]:
        if not m.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": m.count,
            "sum": m.total,
            "mean": m.mean,
            "min": m.min,
            "max": m.max,
            "p50": m.percentile(50),
            "p99": m.percentile(99),
        }

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable dump of every metric (display-oriented keys)."""
        out: Dict[str, object] = {}
        for (name, labels), m in self._sorted_items():
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            full = f"{name}{{{label_str}}}" if label_str else name
            if isinstance(m, Histogram):
                out[full] = self._histogram_summary(m)
            else:
                out[full] = m.value
        return out

    def export(self) -> List[dict]:
        """Structured, machine-readable dump: one entry per metric instance.

        Unlike :meth:`snapshot` (whose keys are rendered strings) each entry
        keeps ``name``/``labels``/``type`` separate, so consumers — the run
        ledger and the OpenMetrics exporter — never have to parse label
        strings back apart.  Ordering matches :meth:`snapshot`.
        """
        out: List[dict] = []
        for (name, labels), m in self._sorted_items():
            entry: dict = {
                "name": name,
                "labels": {k: v for k, v in labels},
                "type": type(m).__name__.lower(),
            }
            if isinstance(m, Histogram):
                entry.update(self._histogram_summary(m))
            else:
                entry["value"] = m.value
                if isinstance(m, Counter):
                    entry["created"] = m.created
            out.append(entry)
        return out

    # ------------------------------------------------------------------
    # checkpoint/restore (counters only)
    # ------------------------------------------------------------------
    def counters_state(self) -> List[dict]:
        """A JSON-serializable snapshot of every counter (for checkpoints).

        Only counters are captured: gauges and histograms describe the
        live process, but counters carry campaign-cumulative totals that
        must survive a :class:`~repro.resilience.ResilientTrainer`
        restart without appearing to move backwards.
        """
        return [
            {"name": name, "labels": {k: v for k, v in labels},
             "value": m.value, "created": m.created}
            for (name, labels), m in self._sorted_items()
            if isinstance(m, Counter)
        ]

    def restore_counters(self, state: List[dict]) -> None:
        """Merge a :meth:`counters_state` snapshot back in, monotonically.

        OpenMetrics counter-restart semantics: the restored value is
        ``max(live, saved)`` so a series never decreases across a resume,
        and the reset epoch becomes ``saved.created + 1`` so scrapers (and
        tests) can tell a restart happened even when the value is equal.
        """
        for entry in state:
            c = self.counter(entry["name"], **(entry.get("labels") or {}))
            c.value = max(c.value, float(entry["value"]))
            c.created = max(c.created, int(entry.get("created", 0)) + 1)

    def render(self, title: str = "Metrics") -> str:
        from repro.utils.tables import format_table

        rows = []
        for full, value in self.snapshot().items():
            if isinstance(value, dict):
                rows.append(
                    [full, "histogram",
                     f"n={value['count']} mean={value['mean']:.4g} "
                     f"p50={value['p50']:.4g} max={value['max']:.4g}"]
                )
            else:
                rows.append([full, "value", f"{value:.6g}"])
        return format_table(["metric", "type", "value"], rows, title=title)
