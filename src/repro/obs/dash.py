"""``python -m repro dash`` — a static HTML dashboard over the run ledger.

Reads :mod:`repro.obs.ledger` records and renders one self-contained HTML
file (inline SVG, no JavaScript, light/dark via CSS custom properties)
plus an OpenMetrics text file:

* **paper-claims scorecard** — the :mod:`repro.obs.claims` verdicts with
  measured-vs-predicted ratios (status is icon + label, never color
  alone);
* **attribution** — the :mod:`repro.obs.critpath` summary carried by
  traced ledger records: compute/comm/stall/overhead split per run, the
  exact-conservation verdict and the top critical-path bottleneck;
* **trends** — simulated clock, peak memory and communication volume per
  ledger record in append order, plus per-metric sparklines keyed on git
  revision (newest value per revision);
* **bench regressions** — normalized wall-clock deltas against
  ``benchmarks/baseline.json``;
* **run table** — every ledger record with its content-hash ``run_id``.

Unless ``--no-collect`` is passed, missing evidence is collected first
(a tiny training run, a micro-bench, a quick single-scheme chaos
campaign, the claim stems), so a bare ``python -m repro dash`` on a fresh
checkout produces a complete dashboard.
"""

from __future__ import annotations

import html
import os
from typing import List, Optional, Sequence, Tuple

from repro.obs.ledger import RunLedger, RunRecord

DEFAULT_HTML = "dash.html"
DEFAULT_OPENMETRICS = "metrics.txt"

_STATUS = {  # icon + label: color never carries a verdict alone
    "pass": ("✓", "PASS", "status-good"),
    "fail": ("✗", "FAIL", "status-critical"),
    "no-evidence": ("○", "NO EVIDENCE", "status-muted"),
    "ok": ("✓", "OK", "status-good"),
    "regressed": ("✗", "REGRESSED", "status-critical"),
    "fired": ("▲", "FIRED", "status-critical"),
    "quiet": ("✓", "QUIET", "status-good"),
}


# ----------------------------------------------------------------------
# evidence collection
# ----------------------------------------------------------------------
def _collect_train(ledger: RunLedger, printer) -> None:
    from repro.config import tiny_config
    from repro.core import OptimusModel
    from repro.mesh import Mesh
    from repro.nn import init_transformer_params
    from repro.runtime import Simulator
    from repro.training.data import BatchStream
    from repro.training.optim import Adam
    from repro.training.trainer import Trainer

    printer("collecting evidence: tiny optimus training run (5 steps)")
    cfg = tiny_config(num_layers=2)
    sim = Simulator.for_mesh(q=2)
    model = OptimusModel(Mesh(sim, 2), cfg, init_transformer_params(cfg, seed=1))
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=1e-2),
        BatchStream.copy_task(cfg, 4, seed=0),
        ledger=ledger,
        run_label="dash-train",
        seed=0,
    )
    trainer.train_steps(5)


def _collect_bench(ledger: RunLedger, printer) -> None:
    from repro.bench.cli import append_bench_record
    from repro.bench.core import run_suite

    printer("collecting evidence: micro-benchmark (micro/collectives)")
    doc = run_suite(only=["micro/collectives"], repeats=1, printer=lambda _: None)
    append_bench_record(ledger, doc, only=["micro/collectives"])


def _collect_chaos(ledger: RunLedger, printer) -> None:
    from repro.resilience.chaos import run_campaign

    printer("collecting evidence: quick chaos campaign (optimus)")
    run_campaign(seed=0, quick=True, schemes=("optimus",), ledger=ledger)


def _collect_pipeline(ledger: RunLedger, printer) -> None:
    from repro.config import tiny_config
    from repro.training.data import BatchStream
    from repro.training.trainer import make_pipeline_trainer

    printer("collecting evidence: pipeline training runs (gpipe + 1f1b, 3 steps)")
    cfg = tiny_config(num_layers=2)
    for schedule in ("gpipe", "1f1b"):
        trainer = make_pipeline_trainer(
            cfg,
            BatchStream.copy_task(cfg, 4, seed=0),
            schedule=schedule,
            num_micro_batches=2,
            num_stages=2,
            seed=0,
            ledger=ledger,
            run_label=f"dash-pipeline-{schedule}",
        )
        trainer.train_steps(3)


def _collect_serve(ledger: RunLedger, printer) -> None:
    from repro.serving.report import run_serve

    printer("collecting evidence: quick serving run (optimus + megatron)")
    run_serve(0, quick=True, ledger=ledger)


def _collect_serve_chaos(ledger: RunLedger, printer) -> None:
    from repro.serving.chaos import run_serve_chaos

    printer("collecting evidence: quick serving chaos campaign (optimus)")
    run_serve_chaos(0, quick=True, schemes=("optimus",), ledger=ledger)


def collect(ledger: RunLedger, printer=print) -> None:
    """Fill evidence gaps so the dashboard has every section populated."""
    from repro.obs.claims import ensure_claim_records

    records = ledger.read()
    kinds: dict = {}
    for r in records:
        kinds[r.kind] = kinds.get(r.kind, 0) + 1
    if not kinds.get("train"):
        _collect_train(ledger, printer)
    if not any(r.scheme == "pipeline" for r in records):
        _collect_pipeline(ledger, printer)
    if not kinds.get("bench"):
        _collect_bench(ledger, printer)
    if not kinds.get("chaos"):
        _collect_chaos(ledger, printer)
    if not kinds.get("serve"):
        _collect_serve(ledger, printer)
    if not kinds.get("serve-chaos"):
        _collect_serve_chaos(ledger, printer)
    ensure_claim_records(ledger, printer=printer)


# ----------------------------------------------------------------------
# data shaping
# ----------------------------------------------------------------------
def _fmt_bytes(n: Optional[float]) -> str:
    if not n:
        return "—"
    for unit, scale in (("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)):
        if n >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f} B"


def _fmt_secs(t: Optional[float]) -> str:
    return "—" if t is None else f"{t:.3f} s"


def _record_label(r: RunRecord) -> str:
    bits = [r.kind]
    if r.scheme:
        bits.append(r.scheme)
    if r.label and r.label not in ("", r.kind):
        bits.append(r.label)
    return "/".join(bits)


def trend_series(records: Sequence[RunRecord]) -> dict:
    """(label, value) series for the clock / memory / comm trend charts."""
    clock, memory, comm = [], [], []
    for r in records:
        label = _record_label(r)
        if r.clock is not None:
            clock.append((label, float(r.clock)))
        c = r.counters or {}
        if c.get("peak_memory_bytes"):
            memory.append((label, float(c["peak_memory_bytes"])))
        if c.get("total_bytes_comm"):
            comm.append((label, float(c["total_bytes_comm"])))
    return {"clock": clock, "memory": memory, "comm": comm}


def sparkline_series(records: Sequence[RunRecord]) -> dict:
    """Per-metric (git_rev, value) points — newest value per revision.

    Revisions keep first-appearance order, so the sparkline reads left to
    right as the ledger's revision history.
    """
    per_metric: dict = {"clock": {}, "memory": {}, "comm": {}}
    revs: List[str] = []
    for r in records:
        rev = r.git or "unknown"
        if rev not in revs:
            revs.append(rev)
        if r.clock is not None:
            per_metric["clock"][rev] = float(r.clock)
        c = r.counters or {}
        if c.get("peak_memory_bytes"):
            per_metric["memory"][rev] = float(c["peak_memory_bytes"])
        if c.get("total_bytes_comm"):
            per_metric["comm"][rev] = float(c["total_bytes_comm"])
    return {
        name: [(rev, vals[rev]) for rev in revs if rev in vals]
        for name, vals in per_metric.items()
    }


def attribution_rows(records: Sequence[RunRecord]) -> List[dict]:
    """One row per ledger record that carries a critpath attribution."""
    rows = []
    for r in records:
        a = r.attribution
        if not a or not a.get("per_rank_sum"):
            continue
        top = (a.get("top_bottlenecks") or [{}])[0]
        rows.append({
            "record": _record_label(r),
            "run_id": r.run_id,
            "wall_clock_ns": a.get("wall_clock_ns", 0),
            "split": a["per_rank_sum"],
            "conservation_ok": bool(a.get("conservation_ok")),
            "top_key": top.get("key", "—"),
            "top_ratio": top.get("ratio"),
        })
    return rows


def serving_rows(records: Sequence[RunRecord]) -> List[dict]:
    """Newest serve record per (scheme, arrival) arm, in label order."""
    newest: dict = {}
    for r in records:
        if r.kind != "serve":
            continue
        e = r.extra or {}
        newest[(r.scheme or "?", e.get("arrival") or "?")] = r
    rows = []
    for (scheme, arrival), r in sorted(newest.items()):
        e = r.extra or {}
        rows.append({
            "record": _record_label(r),
            "run_id": r.run_id,
            "scheme": scheme,
            "arrival": arrival,
            "ranks": (r.mesh or {}).get("ranks"),
            "requests": e.get("num_requests"),
            "rate_rps": e.get("rate_rps"),
            "generated_tokens": e.get("generated_tokens"),
            "goodput": e.get("goodput_tokens_per_s"),
            "slo_attainment": e.get("slo_attainment"),
            "p99_e2e_s": e.get("p99_e2e_s"),
            "clock": r.clock,
        })
    return rows


def sweep_series(records: Sequence[RunRecord]) -> dict:
    """Latency/goodput-vs-offered-load curves from serve ledger records.

    Groups serve records by (scheme, arrival) and orders each group by
    offered load (``rate_rps``), keeping the newest record per rate — the
    shape ``repro serve --sweep`` appends, one record per point.  Returns
    ``{"p99_e2e_s": {label: [(rate, v), …]}, "goodput": {…}}``; groups
    with fewer than two distinct rates are dropped (a single point is a
    table row, not a curve).
    """
    newest: dict = {}
    for r in records:
        if r.kind != "serve":
            continue
        e = r.extra or {}
        rate = e.get("rate_rps")
        if rate is None:
            continue
        newest[(r.scheme or "?", e.get("arrival") or "?", float(rate))] = r
    out: dict = {"p99_e2e_s": {}, "goodput": {}}
    for (scheme, arrival, rate) in sorted(newest):
        r = newest[(scheme, arrival, rate)]
        e = r.extra or {}
        label = f"{scheme}/{arrival}"
        if e.get("p99_e2e_s") is not None:
            out["p99_e2e_s"].setdefault(label, []).append((rate, float(e["p99_e2e_s"])))
        if e.get("goodput_tokens_per_s") is not None:
            out["goodput"].setdefault(label, []).append(
                (rate, float(e["goodput_tokens_per_s"]))
            )
    for key in out:
        out[key] = {
            label: pts for label, pts in out[key].items()
            if len({p[0] for p in pts}) >= 2
        }
    return out


def alerts_rows(records: Sequence[RunRecord]) -> List[dict]:
    """Newest serve record per (scheme, arrival) that carries alert totals."""
    newest: dict = {}
    for r in records:
        if r.kind != "serve":
            continue
        e = r.extra or {}
        if "alerts" not in e:
            continue
        newest[(r.scheme or "?", e.get("arrival") or "?")] = r
    rows = []
    for (scheme, arrival), r in sorted(newest.items()):
        e = r.extra or {}
        a = e["alerts"]
        rows.append({
            "record": _record_label(r),
            "run_id": r.run_id,
            "scheme": scheme,
            "arrival": arrival,
            "fired": a.get("fired", 0),
            "resolved": a.get("resolved", 0),
            "rules_fired": list(a.get("rules_fired") or []),
        })
    return rows


def serve_chaos_rows(records: Sequence[RunRecord]) -> List[dict]:
    """Newest serve-chaos record per scheme, in scheme order."""
    newest: dict = {}
    for r in records:
        if r.kind != "serve-chaos":
            continue
        newest[r.scheme or "?"] = r
    rows = []
    for scheme, r in sorted(newest.items()):
        e = r.extra or {}
        rows.append({
            "record": _record_label(r),
            "run_id": r.run_id,
            "scheme": scheme,
            "arrival": e.get("arrival"),
            "requests": e.get("num_requests"),
            "token_identical": e.get("token_identical"),
            "crashes": e.get("crashes"),
            "retries": e.get("retries"),
            "recovered_steps": e.get("recovered_steps"),
            "recovery_s": e.get("recovery_s"),
            "goodput": e.get("goodput_tokens_per_s"),
            "ok": e.get("ok"),
            "clock": r.clock,
        })
    return rows


def bench_comparison(records: Sequence[RunRecord], baseline_path: Optional[str],
                     threshold: float = 0.20) -> List[dict]:
    """Regression rows from the newest bench record (stored or recomputed)."""
    bench = None
    for r in records:
        if r.kind == "bench":
            bench = r
    if bench is None:
        return []
    extra = bench.extra or {}
    rows = extra.get("comparison")
    if rows is None and baseline_path and os.path.exists(baseline_path):
        from repro.bench.core import compare, load_results

        results = extra.get("results")
        if results:
            rows = [
                {"name": c.name, "baseline_wall": c.baseline_wall,
                 "current_wall": c.current_wall, "normalized_wall": c.normalized_wall,
                 "ratio": c.ratio, "regressed": c.regressed}
                for c in compare(results, load_results(baseline_path), threshold=threshold)
            ]
    return list(rows or [])


# ----------------------------------------------------------------------
# SVG (no JavaScript; hover via <title>)
# ----------------------------------------------------------------------
def _bar_chart(items: List[Tuple[str, float]], fmt=lambda v: f"{v:.3g}") -> str:
    """A horizontal single-series bar chart (series-1; no legend needed)."""
    if not items:
        return '<p class="muted">no data yet</p>'
    label_w, value_w, bar_max = 190, 90, 420
    row_h, bar_h, pad = 22, 14, 4
    width = label_w + bar_max + value_w
    height = len(items) * row_h + pad
    top = max(v for _, v in items) or 1.0
    rows = []
    for i, (label, value) in enumerate(items):
        y = pad + i * row_h
        w = max(2.0, value / top * (bar_max - 8))
        lab = html.escape(label)
        rows.append(
            f'<g><title>{lab}: {html.escape(fmt(value))}</title>'
            f'<text x="{label_w - 8}" y="{y + bar_h - 3}" text-anchor="end" '
            f'class="tick">{lab}</text>'
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" height="{bar_h}" '
            f'rx="3" class="bar"/>'
            f'<text x="{label_w + w + 6:.1f}" y="{y + bar_h - 3}" '
            f'class="val">{html.escape(fmt(value))}</text></g>'
        )
    axis_y = height - 1
    return (
        f'<svg viewBox="0 0 {width} {height + 4}" role="img" '
        f'style="max-width:{width}px;width:100%">'
        f'<line x1="{label_w}" y1="{axis_y}" x2="{label_w + bar_max}" '
        f'y2="{axis_y}" class="axis"/>' + "".join(rows) + "</svg>"
    )


def _sparkline(points: List[Tuple[str, float]], fmt=lambda v: f"{v:.3g}") -> str:
    """A tiny inline polyline over per-revision values (hover for detail)."""
    if not points:
        return '<span class="muted">no data</span>'
    w, h, pad = 160, 26, 4
    vals = [v for _, v in points]
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    step = (w - 2 * pad) / max(1, len(points) - 1)
    coords = []
    for i, (_, v) in enumerate(points):
        x = pad + i * step
        y = h - pad - (v - lo) / span * (h - 2 * pad)
        coords.append((x, y))
    title = " → ".join(f"{rev[:9]}: {fmt(v)}" for rev, v in points)
    poly = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    lx, ly = coords[-1]
    return (
        f'<svg viewBox="0 0 {w} {h}" class="spark" role="img" '
        f'style="width:{w}px;height:{h}px">'
        f"<title>{html.escape(title)}</title>"
        f'<polyline points="{poly}" class="spark-line"/>'
        f'<circle cx="{lx:.1f}" cy="{ly:.1f}" r="2.5" class="spark-dot"/></svg>'
    )


def _line_chart(series: dict, fmt=lambda v: f"{v:.3g}",
                x_fmt=lambda v: f"{v:g}") -> str:
    """A multi-series x/y polyline chart (offered load on x, metric on y).

    ``series`` maps legend label → [(x, y), …]; points are plotted on a
    shared linear scale with per-point hover titles and a text legend
    (series are distinguished by class ``line-N`` color *and* marker
    shape, never color alone).
    """
    series = {k: sorted(v) for k, v in series.items() if v}
    if not series:
        return '<p class="muted">no data yet</p>'
    pad_l, pad_r, pad_t, pad_b = 70, 16, 10, 34
    plot_w, plot_h = 430, 170
    width, height = pad_l + plot_w + pad_r, pad_t + plot_h + pad_b
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(x):
        return pad_l + (x - x_lo) / x_span * plot_w

    def sy(y):
        return pad_t + plot_h - (y - y_lo) / y_span * plot_h

    parts = [
        f'<line x1="{pad_l}" y1="{pad_t + plot_h}" x2="{pad_l + plot_w}" '
        f'y2="{pad_t + plot_h}" class="axis"/>',
        f'<line x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" '
        f'y2="{pad_t + plot_h}" class="axis"/>',
        f'<text x="{pad_l - 6}" y="{pad_t + 10}" text-anchor="end" '
        f'class="tick">{html.escape(fmt(y_hi))}</text>',
        f'<text x="{pad_l - 6}" y="{pad_t + plot_h}" text-anchor="end" '
        f'class="tick">{html.escape(fmt(y_lo))}</text>',
        f'<text x="{pad_l}" y="{height - 18}" class="tick">'
        f"{html.escape(x_fmt(x_lo))}</text>",
        f'<text x="{pad_l + plot_w}" y="{height - 18}" text-anchor="end" '
        f'class="tick">{html.escape(x_fmt(x_hi))}</text>',
    ]
    markers = ("circle", "square", "diamond", "triangle")
    legend = []
    for i, (label, pts) in enumerate(sorted(series.items())):
        cls = f"line-{i % 4}"
        marker = markers[i % 4]
        poly = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(f'<polyline points="{poly}" class="curve {cls}"/>')
        for x, y in pts:
            cx, cy = sx(x), sy(y)
            title = (f"<title>{html.escape(label)} @ {html.escape(x_fmt(x))}: "
                     f"{html.escape(fmt(y))}</title>")
            if marker == "circle":
                parts.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="3.5" '
                             f'class="dot {cls}">{title}</circle>')
            elif marker == "square":
                parts.append(f'<rect x="{cx - 3:.1f}" y="{cy - 3:.1f}" '
                             f'width="6" height="6" class="dot {cls}">{title}</rect>')
            elif marker == "diamond":
                parts.append(
                    f'<rect x="{cx - 3:.1f}" y="{cy - 3:.1f}" width="6" height="6" '
                    f'transform="rotate(45 {cx:.1f} {cy:.1f})" '
                    f'class="dot {cls}">{title}</rect>')
            else:
                parts.append(
                    f'<polygon points="{cx:.1f},{cy - 4:.1f} {cx - 4:.1f},'
                    f'{cy + 3:.1f} {cx + 4:.1f},{cy + 3:.1f}" '
                    f'class="dot {cls}">{title}</polygon>')
        legend.append(f'<span class="legend-item {cls}-text">'
                      f"{'●■◆▲'[i % 4]} {html.escape(label)}</span>")
    svg = (
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'style="max-width:{width}px;width:100%">' + "".join(parts) + "</svg>"
    )
    return svg + "<p class='muted'>" + " &nbsp; ".join(legend) + "</p>"


_ATT_CATEGORIES = ("compute", "comm", "stall", "overhead")


def _att_bar(split: dict) -> str:
    """A stacked category bar (percentages live in the adjacent cells)."""
    total = split.get("total_ns") or 1
    w, h = 220, 12
    x, parts = 0.0, []
    for cat in _ATT_CATEGORIES:
        ns = split.get(f"{cat}_ns", 0)
        wpx = ns / total * w
        if wpx <= 0:
            continue
        parts.append(
            f'<rect x="{x:.1f}" y="0" width="{wpx:.1f}" height="{h}" '
            f'class="att-{cat}"><title>{cat}: {100.0 * ns / total:.1f}%'
            f"</title></rect>"
        )
        x += wpx
    return (
        f'<svg viewBox="0 0 {w} {h}" role="img" '
        f'style="width:{w}px;height:{h}px">' + "".join(parts) + "</svg>"
    )


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------
_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --series-1: #2a78d6; --series-2: #d98a2b;
  --series-3: #0ca30c; --series-4: #8a5fd0;
  --grid: #e5e4e0;
  --status-good: #0ca30c; --status-critical: #d03b3b;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif; margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --series-1: #3987e5; --series-2: #e09a40;
    --series-3: #2ab52a; --series-4: #9b74d8;
    --grid: #383835;
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 16px; margin: 28px 0 8px; }
.viz-root .muted, .viz-root .tick { color: var(--text-secondary); }
.viz-root section {
  background: var(--surface-1); border: 1px solid var(--grid);
  border-radius: 8px; padding: 16px 20px; margin: 16px 0;
}
.viz-root table { border-collapse: collapse; width: 100%; }
.viz-root th, .viz-root td {
  text-align: left; padding: 4px 12px 4px 0;
  border-bottom: 1px solid var(--grid); font-variant-numeric: tabular-nums;
}
.viz-root th { color: var(--text-secondary); font-weight: 500; }
.viz-root svg .bar { fill: var(--series-1); }
.viz-root svg .axis { stroke: var(--grid); stroke-width: 1; }
.viz-root svg text { font: 11px system-ui, sans-serif; fill: var(--text-primary); }
.viz-root svg .tick, .viz-root svg .val { fill: var(--text-secondary); }
.viz-root svg .spark-line { fill: none; stroke: var(--series-1); stroke-width: 1.5; }
.viz-root svg .spark-dot { fill: var(--series-1); }
.viz-root svg .curve { fill: none; stroke-width: 2; }
.viz-root svg .curve.line-0, .viz-root svg .dot.line-0 { stroke: var(--series-1); }
.viz-root svg .curve.line-1, .viz-root svg .dot.line-1 { stroke: var(--series-2); }
.viz-root svg .curve.line-2, .viz-root svg .dot.line-2 { stroke: var(--series-3); }
.viz-root svg .curve.line-3, .viz-root svg .dot.line-3 { stroke: var(--series-4); }
.viz-root svg .dot.line-0 { fill: var(--series-1); }
.viz-root svg .dot.line-1 { fill: var(--series-2); }
.viz-root svg .dot.line-2 { fill: var(--series-3); }
.viz-root svg .dot.line-3 { fill: var(--series-4); }
.viz-root .legend-item.line-0-text { color: var(--series-1); }
.viz-root .legend-item.line-1-text { color: var(--series-2); }
.viz-root .legend-item.line-2-text { color: var(--series-3); }
.viz-root .legend-item.line-3-text { color: var(--series-4); }
.viz-root svg.spark { vertical-align: middle; }
.viz-root svg .att-compute { fill: #2a78d6; }
.viz-root svg .att-comm { fill: #d98a2b; }
.viz-root svg .att-stall { fill: #9a9994; }
.viz-root svg .att-overhead { fill: #8a5fd0; }
.viz-root .status-good { color: var(--status-good); }
.viz-root .status-critical { color: var(--status-critical); }
.viz-root .status-muted { color: var(--text-secondary); }
.viz-root code { font-size: 12px; }
"""


def _status_cell(status: str) -> str:
    icon, label, cls = _STATUS.get(status, ("?", status.upper(), "status-muted"))
    return f'<span class="{cls}">{icon}&nbsp;{label}</span>'


def _claims_section(card: dict) -> str:
    def num(v, spec=".4g"):
        return "—" if v is None else format(v, spec)

    rows = []
    for c in card["claims"]:
        band = "" if not c["band"] else f"[{c['band'][0]:g}, {c['band'][1]:g}]"
        rows.append(
            f"<tr><td>{html.escape(c['title'])}</td>"
            f"<td>{_status_cell(c['status'])}</td>"
            f"<td>{num(c['measured'])}</td><td>{num(c['predicted'])}</td>"
            f"<td>{num(c['ratio'], '.3f')}</td>"
            f"<td>{band}</td><td class='muted'>{html.escape(c['detail'])}</td></tr>"
        )
    head = (f"{card['num_pass']} pass · {card['num_fail']} fail · "
            f"{card['num_no_evidence']} without evidence")
    return (
        f"<section><h2>Paper-claims scorecard</h2><p class='muted'>{head}</p>"
        "<table><tr><th>claim</th><th>verdict</th><th>measured</th>"
        "<th>predicted</th><th>measured/predicted</th><th>band</th>"
        "<th>detail</th></tr>" + "".join(rows) + "</table></section>"
    )


def _attribution_section(rows: List[dict]) -> str:
    if not rows:
        body = ("<p class='muted'>no traced records yet (run "
                "<code>repro critpath …</code> or any stem with tracing to "
                "attach attribution summaries to the ledger)</p>")
        return f"<section><h2>Attribution (critical path)</h2>{body}</section>"
    trs = []
    for row in rows:
        split = row["split"]
        total = split.get("total_ns") or 1
        pct = {
            cat: 100.0 * split.get(f"{cat}_ns", 0) / total
            for cat in _ATT_CATEGORIES
        }
        ratio = row["top_ratio"]
        top = html.escape(row["top_key"])
        if ratio is not None:
            top += f" ({ratio:.2f}× predicted)"
        trs.append(
            f"<tr><td>{html.escape(row['record'])}</td>"
            f"<td>{row['wall_clock_ns'] / 1e9:.6f} s</td>"
            f"<td>{pct['compute']:.1f}%</td><td>{pct['comm']:.1f}%</td>"
            f"<td>{pct['stall']:.1f}%</td><td>{pct['overhead']:.1f}%</td>"
            f"<td>{_att_bar(split)}</td>"
            f"<td>{_status_cell('pass' if row['conservation_ok'] else 'fail')}</td>"
            f"<td><code>{top}</code></td></tr>"
        )
    return (
        "<section><h2>Attribution (critical path)</h2>"
        "<p class='muted'>per-rank nanosecond attribution from "
        "<code>repro.obs.critpath</code>; conservation means attributed time "
        "equals wall-clock on every rank, exactly</p>"
        "<table><tr><th>record</th><th>wall clock</th><th>compute</th>"
        "<th>comm</th><th>stall</th><th>overhead</th><th>split</th>"
        "<th>conservation</th><th>top bottleneck</th></tr>"
        + "".join(trs) + "</table></section>"
    )


def _trends_section(series: dict, sparks: dict) -> str:
    spark_rows = "".join(
        f"<tr><td>{label}</td><td>{_sparkline(sparks[key], fmt=fmt)}</td>"
        f"<td>{html.escape(fmt(sparks[key][-1][1])) if sparks[key] else '—'}"
        f"</td><td class='muted'>{len(sparks[key])} revision"
        f"{'s' if len(sparks[key]) != 1 else ''}</td></tr>"
        for key, label, fmt in (
            ("clock", "sim clock", lambda v: f"{v:.3f} s"),
            ("memory", "peak memory", _fmt_bytes),
            ("comm", "comm volume", _fmt_bytes),
        )
    )
    return (
        "<section><h2>Trends across ledger records</h2>"
        "<h3 class='muted'>By git revision (newest value per revision)</h3>"
        "<table><tr><th>metric</th><th>trend</th><th>latest</th>"
        "<th></th></tr>" + spark_rows + "</table>"
        "<h3 class='muted'>Simulated clock (slowest rank, seconds)</h3>"
        + _bar_chart(series["clock"], fmt=lambda v: f"{v:.3f} s")
        + "<h3 class='muted'>Peak device memory</h3>"
        + _bar_chart(series["memory"], fmt=_fmt_bytes)
        + "<h3 class='muted'>Total communication volume</h3>"
        + _bar_chart(series["comm"], fmt=_fmt_bytes)
        + "</section>"
    )


def _serving_section(rows: List[dict]) -> str:
    if not rows:
        body = ("<p class='muted'>no serve records yet (run "
                "<code>repro serve --quick --ledger …</code> to play a seeded "
                "traffic trace through the decode engines)</p>")
        return f"<section><h2>Serving</h2>{body}</section>"

    def num(v, spec=".4g"):
        return "—" if v is None else format(v, spec)

    trs = []
    for row in rows:
        p99 = row["p99_e2e_s"]
        trs.append(
            f"<tr><td>{html.escape(row['scheme'])}</td>"
            f"<td>{html.escape(row['arrival'])}</td>"
            f"<td>{row['ranks'] if row['ranks'] is not None else '—'}</td>"
            f"<td>{num(row['requests'], 'd') if row['requests'] is not None else '—'}</td>"
            f"<td>{num(row['rate_rps'], '.0f')}</td>"
            f"<td>{'—' if p99 is None else f'{p99 * 1e3:.3f} ms'}</td>"
            f"<td>{num(row['goodput'], '.1f')}</td>"
            f"<td>{num(row['slo_attainment'], '.2f')}</td>"
            f"<td><code>{row['run_id']}</code></td></tr>"
        )
    chart = _bar_chart(
        [
            (f"{row['scheme']}/{row['arrival']}", float(row["goodput"]))
            for row in rows
            if row["goodput"]
        ],
        fmt=lambda v: f"{v:.0f} tok/s",
    )
    return (
        "<section><h2>Serving</h2>"
        "<p class='muted'>continuous-batching decode over the 2-D and 1-D "
        "stacks (<code>repro serve</code>): SLO-gated goodput per "
        "scheme × arrival profile, newest record per arm</p>"
        "<table><tr><th>scheme</th><th>arrival</th><th>ranks</th>"
        "<th>requests</th><th>rate (req/s)</th><th>p99 e2e</th>"
        "<th>goodput (tok/s)</th><th>SLO attainment</th><th>run_id</th></tr>"
        + "".join(trs) + "</table>"
        "<h3 class='muted'>Goodput (SLO-compliant tokens per simulated second)</h3>"
        + chart + "</section>"
    )


def _sweep_section(series: dict) -> str:
    if not series["p99_e2e_s"] and not series["goodput"]:
        body = ("<p class='muted'>no sweep points yet (run <code>repro serve "
                "--sweep RATE1,RATE2,… --ledger …</code> to record one serve "
                "point per offered load)</p>")
        return f"<section><h2>Serving latency vs offered load</h2>{body}</section>"
    return (
        "<section><h2>Serving latency vs offered load</h2>"
        "<p class='muted'>one curve per scheme × arrival profile over the "
        "swept request rates (<code>repro serve --sweep</code>); the p99 "
        "knee localizes each engine's saturation point</p>"
        "<h3 class='muted'>p99 end-to-end latency</h3>"
        + _line_chart(
            series["p99_e2e_s"],
            fmt=lambda v: f"{v * 1e3:.2f} ms",
            x_fmt=lambda v: f"{v:g} req/s",
        )
        + "<h3 class='muted'>Goodput (SLO-compliant tokens per simulated second)</h3>"
        + _line_chart(
            series["goodput"],
            fmt=lambda v: f"{v:.0f} tok/s",
            x_fmt=lambda v: f"{v:g} req/s",
        )
        + "</section>"
    )


def _alerts_section(rows: List[dict]) -> str:
    if not rows:
        body = ("<p class='muted'>no alert-bearing serve records yet (run "
                "<code>repro serve --alerts --ledger …</code> to evaluate the "
                "stock SLO rules inline)</p>")
        return f"<section><h2>Alerts</h2>{body}</section>"
    trs = []
    for row in rows:
        fired = row["fired"]
        rules = ", ".join(row["rules_fired"]) or "—"
        trs.append(
            f"<tr><td>{html.escape(row['scheme'])}</td>"
            f"<td>{html.escape(row['arrival'])}</td>"
            f"<td>{_status_cell('fired' if fired else 'quiet')}</td>"
            f"<td>{fired}</td><td>{row['resolved']}</td>"
            f"<td><code>{html.escape(rules)}</code></td>"
            f"<td><code>{row['run_id']}</code></td></tr>"
        )
    return (
        "<section><h2>Alerts</h2>"
        "<p class='muted'>deterministic SLO alerting evaluated inline on the "
        "simulated clock (<code>repro serve --alerts</code>): firing totals "
        "per arm, newest alert-bearing record per scheme × arrival</p>"
        "<table><tr><th>scheme</th><th>arrival</th><th>verdict</th>"
        "<th>fired</th><th>resolved</th><th>rules fired</th><th>run_id</th>"
        "</tr>" + "".join(trs) + "</table></section>"
    )


def _serve_chaos_section(rows: List[dict]) -> str:
    if not rows:
        body = ("<p class='muted'>no serve-chaos records yet (run "
                "<code>repro chaos --serve --quick --ledger …</code> to replay "
                "seeded traffic through a fault-injected decode loop)</p>")
        return f"<section><h2>Serving under chaos</h2>{body}</section>"

    def num(v, spec=".4g"):
        return "—" if v is None else format(v, spec)

    def count(v):
        return "—" if v is None else format(v, "d")

    trs = []
    for row in rows:
        rec_s = row["recovery_s"]
        ident = row["token_identical"]
        trs.append(
            f"<tr><td>{html.escape(row['scheme'])}</td>"
            f"<td>{html.escape(row['arrival'] or '—')}</td>"
            f"<td>{count(row['requests'])}</td>"
            f"<td>{_status_cell('pass' if ident else 'fail')}</td>"
            f"<td>{count(row['crashes'])}</td>"
            f"<td>{count(row['retries'])}</td>"
            f"<td>{count(row['recovered_steps'])}</td>"
            f"<td>{'—' if rec_s is None else f'{rec_s * 1e3:.3f} ms'}</td>"
            f"<td>{num(row['goodput'], '.1f')}</td>"
            f"<td>{_status_cell('pass' if row['ok'] else 'fail')}</td>"
            f"<td><code>{row['run_id']}</code></td></tr>"
        )
    return (
        "<section><h2>Serving under chaos</h2>"
        "<p class='muted'>fault-injected decode (<code>repro chaos --serve"
        "</code>): rank crashes, flaky links and stragglers recovered by "
        "step re-execution; token-identical means the chaos arm produced "
        "byte-for-byte the same tokens as a fault-free run of the same "
        "seed</p>"
        "<table><tr><th>scheme</th><th>arrival</th><th>requests</th>"
        "<th>token-identical</th><th>crashes</th><th>retries</th>"
        "<th>recovered steps</th><th>recovery time</th>"
        "<th>goodput (tok/s)</th><th>verdict</th><th>run_id</th></tr>"
        + "".join(trs) + "</table></section>"
    )


def _regressions_section(rows: List[dict]) -> str:
    if not rows:
        body = ("<p class='muted'>no baseline comparison in the newest bench "
                "record (run <code>repro bench --compare benchmarks/baseline.json "
                "--ledger …</code>)</p>")
        return f"<section><h2>Bench regressions vs baseline</h2>{body}</section>"
    trs = []
    for c in rows:
        delta = (c["ratio"] - 1.0) * 100.0
        trs.append(
            f"<tr><td><code>{html.escape(c['name'])}</code></td>"
            f"<td>{_status_cell('regressed' if c['regressed'] else 'ok')}</td>"
            f"<td>{c['baseline_wall'] * 1e3:.1f} ms</td>"
            f"<td>{c['normalized_wall'] * 1e3:.1f} ms</td>"
            f"<td>{delta:+.1f}%</td></tr>"
        )
    return (
        "<section><h2>Bench regressions vs baseline</h2>"
        "<table><tr><th>benchmark</th><th>verdict</th><th>baseline</th>"
        "<th>current (normalized)</th><th>Δ wall</th></tr>"
        + "".join(trs) + "</table></section>"
    )


def _runs_section(records: Sequence[RunRecord]) -> str:
    trs = []
    for r in records:
        c = r.counters or {}
        trs.append(
            f"<tr><td><code>{r.run_id}</code></td><td>{html.escape(r.kind)}</td>"
            f"<td>{html.escape(r.scheme or '—')}</td>"
            f"<td>{html.escape(r.label or '—')}</td>"
            f"<td>{(r.mesh or {}).get('ranks', '—')}</td>"
            f"<td>{_fmt_secs(r.clock)}</td>"
            f"<td>{_fmt_bytes(c.get('peak_memory_bytes'))}</td>"
            f"<td>{_fmt_bytes(c.get('total_bytes_comm'))}</td>"
            f"<td><code>{html.escape(r.git)}</code></td></tr>"
        )
    return (
        "<section><h2>Run ledger</h2>"
        "<table><tr><th>run_id</th><th>kind</th><th>scheme</th><th>label</th>"
        "<th>ranks</th><th>sim clock</th><th>peak mem</th><th>comm</th>"
        "<th>git</th></tr>" + "".join(trs) + "</table></section>"
    )


def render_html(records: Sequence[RunRecord], card: dict,
                regressions: List[dict]) -> str:
    from repro.obs.ledger import git_revision

    kinds: dict = {}
    for r in records:
        kinds[r.kind] = kinds.get(r.kind, 0) + 1
    counts = " · ".join(f"{n} {k}" for k, n in sorted(kinds.items())) or "empty"
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>"
        "<title>repro dashboard</title>"
        f"<style>{_CSS}</style></head><body class='viz-root'>"
        "<h1>Optimus reproduction — run dashboard</h1>"
        f"<p class='muted'>{len(records)} ledger records ({counts}) · "
        f"git <code>{html.escape(git_revision())}</code></p>"
        + _claims_section(card)
        + _attribution_section(attribution_rows(records))
        + _serving_section(serving_rows(records))
        + _sweep_section(sweep_series(records))
        + _alerts_section(alerts_rows(records))
        + _serve_chaos_section(serve_chaos_rows(records))
        + _trends_section(trend_series(records), sparkline_series(records))
        + _regressions_section(regressions)
        + _runs_section(records)
        + "</body></html>"
    )


def render_openmetrics_for_records(records: Sequence[RunRecord]) -> str:
    """OpenMetrics text of the newest record per kind (run_id/kind labels)."""
    from repro.obs.openmetrics import render_export

    newest: dict = {}
    for r in records:
        if r.metrics:
            newest[r.kind] = r
    # merge all kinds into one exposition; kind/run_id labels keep series distinct
    merged: List[dict] = []
    for kind in sorted(newest):
        r = newest[kind]
        for e in r.metrics:
            e = dict(e)
            e["labels"] = dict(e.get("labels") or {})
            e["labels"].update({"kind": r.kind, "run_id": r.run_id})
            merged.append(e)
    return render_export(merged)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(
    ledger: Optional[str] = None,
    out: Optional[str] = None,
    openmetrics_out: Optional[str] = None,
    baseline: str = os.path.join("benchmarks", "baseline.json"),
    no_collect: bool = False,
    printer=print,
) -> int:
    led = RunLedger(ledger) if ledger else RunLedger.default()
    if not no_collect:
        collect(led, printer=printer)
    records = led.read()
    if not records:
        printer("ledger is empty and --no-collect was given; nothing to render")
        return 1

    from repro.obs.claims import scorecard
    from repro.obs.openmetrics import validate_openmetrics

    card = scorecard(records)
    regressions = bench_comparison(records, baseline)
    ledger_dir = os.path.dirname(led.path) or "."
    out = out or os.path.join(ledger_dir, DEFAULT_HTML)
    openmetrics_out = openmetrics_out or os.path.join(ledger_dir, DEFAULT_OPENMETRICS)

    html_text = render_html(records, card, regressions)
    os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
    with open(out, "w") as f:
        f.write(html_text)
    printer(f"dashboard written to {out}")

    om_text = render_openmetrics_for_records(records)
    problems = validate_openmetrics(om_text)
    if problems:
        printer("OpenMetrics validation FAILED: " + "; ".join(problems))
        return 1
    os.makedirs(os.path.dirname(openmetrics_out) or ".", exist_ok=True)
    with open(openmetrics_out, "w") as f:
        f.write(om_text)
    printer(f"OpenMetrics written to {openmetrics_out}")
    printer(f"claims: {card['num_pass']} pass, {card['num_fail']} fail, "
            f"{card['num_no_evidence']} without evidence")
    return 0 if card["ok"] else 1
