"""Critical-path analysis: attribute every nanosecond of simulated time.

The simulator's counters say *how much* time went to compute vs
communication; this module says *where* and *why*.  From a traced run it
builds, per rank, a contiguous partition of the step window into
:class:`Segment` s — compute kernels, collective participation, the
receiving tail of point-to-point transfers, resilience overhead, and the
gaps in between (barrier/straggler waits) — then walks the cross-rank
dependency DAG backwards to extract the critical path that determines the
step's wall-clock.

Three design decisions worth knowing:

* **integer nanoseconds** — all attribution is quantized to whole
  nanoseconds (``round(t · 1e9)``).  Each rank's window is a contiguous
  integer partition, so the conservation invariant
  ``compute + comm + stall + overhead == wall_clock`` holds *exactly*, in
  integer arithmetic, per rank and per window — not merely to float
  tolerance.  Quantization only affects this report's bookkeeping; the
  simulator's float clocks are never touched.
* **the DAG is implicit** — bulk-synchronous semantics mean a collective's
  start time is the barrier time of its participants, and a p2p receive
  depends on its sender at the recorded send time.  The backward walk
  therefore needs no materialized edge list: at a collective it jumps to
  the participant whose preceding busy segment ends latest (the rank that
  held everyone up, ties broken toward the lowest rank for determinism);
  at a p2p it jumps to the sender; otherwise it steps to the previous
  non-stall segment on the same rank.
* **predicted vs measured** — every op on the path is re-priced with a
  *solo* :class:`~repro.comm.cost.GroupCommModel` (built without sibling
  groups, so NIC crowding is excluded) and compute with the device's
  effective FLOP rate.  A measured/predicted ratio above 1 localizes
  contention (Fig. 8 crowding) or straggler effects to a specific op;
  a ratio far from 1 on an intra-node collective flags a cost-model bug.

Everything here is read-only over the simulator — running the analyzer
cannot change numerics, clocks or byte counters (tested in
``tests/test_critpath.py``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

CRITPATH_SCHEMA = "repro-critpath-v1"

#: attribution categories; every nanosecond lands in exactly one
CATEGORIES = ("compute", "comm", "stall", "overhead")

#: trace-event kinds priced by the α–β collective model
COLLECTIVE_KINDS = (
    "broadcast", "reduce", "all_reduce", "all_gather", "reduce_scatter",
    "scatter", "gather",
)

#: trace-event kinds produced by the resilience subsystem
OVERHEAD_KINDS = ("fault", "checkpoint", "recovery")


def _ns(t: float) -> int:
    return int(round(t * 1e9))


@dataclass(frozen=True)
class Segment:
    """One contiguous slice of one rank's timeline, in integer ns."""

    rank: int
    start_ns: int
    end_ns: int
    category: str  # compute | comm | stall | overhead
    kind: str = ""  # event kind ("compute", "broadcast", …); "" for stalls
    label: str = ""  # kernel kind or process-group kind
    op: str = ""  # enclosing op span (summa_ab, …), when resolvable
    layer: str = ""  # enclosing layer span ("layer3.forward"), when resolvable
    nbytes: float = 0.0
    event_index: int = -1  # index into tracer.events, -1 for stalls

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class Attribution:
    """Integer-ns totals per category; sums telescope exactly."""

    compute_ns: int = 0
    comm_ns: int = 0
    stall_ns: int = 0
    overhead_ns: int = 0

    def add(self, category: str, ns: int) -> None:
        setattr(self, category + "_ns", getattr(self, category + "_ns") + ns)

    @property
    def total_ns(self) -> int:
        return self.compute_ns + self.comm_ns + self.stall_ns + self.overhead_ns

    def as_dict(self) -> dict:
        return {
            "compute_ns": self.compute_ns,
            "comm_ns": self.comm_ns,
            "stall_ns": self.stall_ns,
            "overhead_ns": self.overhead_ns,
            "total_ns": self.total_ns,
        }


@dataclass
class Window:
    """One analysis window (a training step, or the whole run)."""

    label: str
    start_ns: int
    end_ns: int
    timelines: Dict[int, List[Segment]] = field(default_factory=dict)

    @property
    def wall_ns(self) -> int:
        return self.end_ns - self.start_ns


# ----------------------------------------------------------------------
# span containment (layer / op labels for segments)
# ----------------------------------------------------------------------
class _SpanIndex:
    """Per-rank sorted span lists for midpoint-containment lookups."""

    def __init__(self, spans, category: str):
        self._by_rank: Dict[int, Tuple[List[int], List] ] = {}
        per_rank: Dict[int, List] = {}
        for s in spans:
            if s.category == category:
                per_rank.setdefault(s.rank, []).append(s)
        for rank, lst in per_rank.items():
            lst.sort(key=lambda s: (_ns(s.t_start), -_ns(s.t_end)))
            self._by_rank[rank] = ([_ns(s.t_start) for s in lst], lst)

    def enclosing(self, rank: int, start_ns: int, end_ns: int):
        """The innermost span on ``rank`` containing the segment midpoint.

        Midpoint containment suffices: busy segments never straddle a span
        boundary of their own rank (collectives and kernels execute inside
        the span that issued them).
        """
        entry = self._by_rank.get(rank)
        if entry is None:
            return None
        starts, spans = entry
        mid = (start_ns + end_ns) // 2
        i = bisect.bisect_right(starts, mid) - 1
        while i >= 0:
            if _ns(spans[i].t_end) >= mid:
                return spans[i]
            i -= 1
        return None


def _layer_name(span) -> str:
    attrs = span.attrs or {}
    idx, phase = attrs.get("index"), attrs.get("phase")
    if idx is None:
        return span.name
    return f"layer{idx}.{phase}" if phase else f"layer{idx}"


# ----------------------------------------------------------------------
# timeline construction
# ----------------------------------------------------------------------
def _event_category(kind: str) -> Optional[str]:
    if kind == "compute":
        return "compute"
    if kind in COLLECTIVE_KINDS or kind == "p2p":
        return "comm"
    if kind in OVERHEAD_KINDS:
        return "overhead"
    return None


def build_windows(sim) -> List[Window]:
    """Partition the traced run into per-rank contiguous segment timelines.

    Windows come from ``"step"`` spans when the workload recorded them
    (training runs); otherwise the whole run is one window (stems).  Within
    a window every rank's segments tile ``[start_ns, end_ns]`` exactly:
    busy atoms from trace events (clipped against one another — a p2p
    receive that arrives while the receiver is still busy only contributes
    its uncovered tail), stall segments filling every gap.
    """
    tracer = sim.tracer
    step_spans = [s for s in tracer.spans if s.category == "step"]
    windows: List[Window] = []
    if step_spans:
        by_sid: Dict[int, List] = {}
        for s in step_spans:
            by_sid.setdefault(s.sid, []).append(s)
        for sid in sorted(by_sid):
            group = by_sid[sid]
            step_no = (group[0].attrs or {}).get("step", len(windows))
            windows.append(Window(
                label=f"step{step_no}",
                start_ns=min(_ns(s.t_start) for s in group),
                end_ns=max(_ns(s.t_end) for s in group),
            ))
    else:
        windows.append(Window(label="run", start_ns=0, end_ns=_ns(sim.elapsed())))

    layer_index = _SpanIndex(tracer.spans, "layer")
    op_index = _SpanIndex(tracer.spans, "op")

    # busy atoms: (rank, start_ns, end_ns, category, event, event_index)
    atoms: Dict[int, List[Tuple[int, int, str, object, int]]] = {
        r: [] for r in range(sim.num_ranks)
    }
    for idx, e in enumerate(tracer.events):
        category = _event_category(e.kind)
        if category is None:
            continue
        a, b = _ns(e.t_start), _ns(e.t_end)
        if b <= a:
            continue
        if e.kind == "compute":
            targets: Sequence[int] = (e.ranks[0],)
        elif e.kind == "p2p":
            targets = (e.ranks[1],)  # the sender's copy engine does not stall
        else:
            targets = e.ranks
        for r in targets:
            atoms[r].append((a, b, category, e, idx))

    for w in windows:
        for r in range(sim.num_ranks):
            segs: List[Segment] = []
            cursor = w.start_ns
            for a, b, category, e, idx in sorted(
                atoms[r], key=lambda t: (t[0], t[1])
            ):
                if b <= w.start_ns or a >= w.end_ns:
                    continue
                a, b = max(a, w.start_ns), min(b, w.end_ns)
                if b <= cursor:
                    continue  # fully shadowed by earlier activity
                a = max(a, cursor)
                if a > cursor:
                    segs.append(Segment(r, cursor, a, "stall"))
                layer = layer_index.enclosing(r, a, b)
                op = op_index.enclosing(r, a, b)
                segs.append(Segment(
                    rank=r, start_ns=a, end_ns=b, category=category,
                    kind=e.kind, label=e.label,
                    op=op.name if op is not None else "",
                    layer=_layer_name(layer) if layer is not None else "",
                    nbytes=e.nbytes, event_index=idx,
                ))
                cursor = b
            if cursor < w.end_ns:
                segs.append(Segment(r, cursor, w.end_ns, "stall"))
            w.timelines[r] = segs
    return windows


def attribute_window(w: Window) -> Dict[int, Attribution]:
    """Per-rank category totals; each rank's total equals the window exactly."""
    out: Dict[int, Attribution] = {}
    for rank, segs in sorted(w.timelines.items()):
        att = Attribution()
        for s in segs:
            att.add(s.category, s.duration_ns)
        out[rank] = att
    return out


# ----------------------------------------------------------------------
# the critical path
# ----------------------------------------------------------------------
def critical_path(w: Window, events) -> List[Segment]:
    """Backward walk from the window's end to its start.

    Returns the chain of segments (oldest first) whose durations bound the
    window's wall-clock: at each collective the walk jumps to the
    participant that arrived last at the barrier; at a p2p receive it jumps
    to the sender; otherwise it continues on the same rank.
    """
    # locate each event's segment per rank, and each segment's list index
    seg_at: Dict[Tuple[int, int], int] = {}  # (event_index, rank) -> seg idx
    for rank, segs in w.timelines.items():
        for i, s in enumerate(segs):
            if s.event_index >= 0:
                seg_at[(s.event_index, rank)] = i

    def prev_busy(rank: int, idx: int) -> Optional[int]:
        """Index of the nearest non-stall segment strictly before ``idx``."""
        segs = w.timelines[rank]
        i = idx - 1
        while i >= 0:
            if segs[i].category != "stall":
                return i
            i -= 1
        return None

    # start on the rank whose last busy segment ends latest (the rank that
    # sets the window's end); ties toward the lowest rank for determinism
    start_rank, start_idx, best_end = -1, None, -1
    for rank in sorted(w.timelines):
        segs = w.timelines[rank]
        i = len(segs) - 1
        while i >= 0 and segs[i].category == "stall":
            i -= 1
        if i >= 0 and segs[i].end_ns > best_end:
            start_rank, start_idx, best_end = rank, i, segs[i].end_ns
    if start_idx is None:
        return []

    path: List[Segment] = []
    rank, idx = start_rank, start_idx
    while idx is not None:
        seg = w.timelines[rank][idx]
        path.append(seg)
        if seg.start_ns <= w.start_ns:
            break
        nxt: Optional[Tuple[int, int]] = None
        e = events[seg.event_index] if seg.event_index >= 0 else None
        if e is not None and seg.kind in COLLECTIVE_KINDS:
            # the collective started when its last participant arrived
            blocker, blocker_idx, blocker_end = None, None, -1
            for p in sorted(e.ranks):
                at = seg_at.get((seg.event_index, p))
                if at is None:
                    continue
                pb = prev_busy(p, at)
                end = w.timelines[p][pb].end_ns if pb is not None else w.start_ns
                if end > blocker_end:
                    blocker, blocker_idx, blocker_end = p, pb, end
            if blocker is not None and blocker_idx is not None:
                nxt = (blocker, blocker_idx)
        elif e is not None and seg.kind == "p2p":
            src = e.ranks[0]
            send_ns = _ns(e.t_start)
            segs = w.timelines.get(src, [])
            i = len(segs) - 1
            while i >= 0 and (segs[i].category == "stall" or segs[i].end_ns > send_ns):
                i -= 1
            if i >= 0:
                nxt = (src, i)
        if nxt is None:
            pb = prev_busy(rank, idx)
            nxt = (rank, pb) if pb is not None else None
        if nxt is None:
            break
        # every hop lands on a segment ending at or before the current
        # segment's start (BSP barriers and p2p send times guarantee it),
        # so the walk makes strict backward progress and terminates
        rank, idx = nxt
    path.reverse()
    return path


# ----------------------------------------------------------------------
# predicted pricing (the α–β audit)
# ----------------------------------------------------------------------
class CostAuditor:
    """Re-prices traced ops with a solo (crowding-free) cost model."""

    def __init__(self, sim):
        self._sim = sim
        self._models: Dict[Tuple[int, ...], object] = {}

    def _model(self, ranks: Tuple[int, ...]):
        model = self._models.get(ranks)
        if model is None:
            from repro.comm.cost import GroupCommModel

            model = GroupCommModel.build(
                self._sim.topology, self._sim.arrangement, list(ranks)
            )
            self._models[ranks] = model
        return model

    def predicted_s(self, e) -> Optional[float]:
        """Solo α–β prediction of one traced event's duration, in seconds."""
        if e.kind == "compute":
            flops = float((e.attrs or {}).get("flops", 0.0))
            return flops / self._sim.cluster.device.effective_flops
        if e.kind == "p2p":
            arr = self._sim.arrangement
            return self._sim.topology.p2p_time(
                arr.gpu_of(e.ranks[0]), arr.gpu_of(e.ranks[1]), e.nbytes
            )
        if e.kind not in COLLECTIVE_KINDS:
            return None
        model = self._model(tuple(sorted(e.ranks)))
        if e.kind in ("broadcast", "scatter"):
            return model.broadcast_time(e.nbytes)
        if e.kind in ("reduce", "gather"):
            return model.reduce_time(e.nbytes)
        if e.kind == "all_reduce":
            return model.all_reduce_time(e.nbytes)
        if e.kind == "all_gather":
            return model.all_gather_time(e.nbytes)
        return model.reduce_scatter_time(e.nbytes)  # reduce_scatter


def _segment_key(seg: Segment) -> str:
    """Stable aggregation key: category/kind[/label][@op]."""
    bits = [seg.category]
    if seg.kind and seg.kind != seg.category:
        bits.append(seg.kind)
    if seg.label:
        bits.append(seg.label)
    key = "/".join(bits)
    if seg.op:
        key += f"@{seg.op}"
    return key


def rank_bottlenecks(
    path: List[Segment], events, auditor: CostAuditor
) -> List[dict]:
    """Aggregate path segments by op key; rank by measured time on the path.

    Each entry carries the solo α–β prediction so the two orderings the
    report exposes — by measured cost and by measured/predicted ratio —
    come from the same rows.
    """
    agg: Dict[str, dict] = {}
    for seg in path:
        if seg.category == "stall":
            key = "stall/barrier-wait"
        else:
            key = _segment_key(seg)
        row = agg.setdefault(key, {
            "key": key, "category": seg.category, "kind": seg.kind,
            "count": 0, "measured_ns": 0, "predicted_ns": 0,
        })
        row["count"] += 1
        row["measured_ns"] += seg.duration_ns
        if seg.event_index >= 0:
            pred = auditor.predicted_s(events[seg.event_index])
            if pred is not None:
                # prediction prices the whole event; the segment may be a
                # clipped tail, so scale by the covered fraction
                e = events[seg.event_index]
                full = _ns(e.t_end) - _ns(e.t_start)
                frac = seg.duration_ns / full if full > 0 else 0.0
                row["predicted_ns"] += int(round(pred * 1e9 * frac))
    rows = sorted(agg.values(), key=lambda r: (-r["measured_ns"], r["key"]))
    for row in rows:
        row["ratio"] = (
            row["measured_ns"] / row["predicted_ns"] if row["predicted_ns"] else None
        )
    return rows


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------
def _aggregate_by(segs: List[Segment], key_fn) -> Dict[str, Attribution]:
    out: Dict[str, Attribution] = {}
    for s in segs:
        key = key_fn(s)
        if not key:
            continue
        out.setdefault(key, Attribution()).add(s.category, s.duration_ns)
    return out


def critpath_report(sim, max_path_segments: int = 512) -> dict:
    """The full deterministic analysis document for a traced simulator run.

    Byte-stable: contains no timestamps, hostnames or git state — two runs
    of the same seeded workload serialize identically under
    :func:`repro.obs.ledger.canonical_json`.  ``max_path_segments`` bounds
    only the verbatim per-segment listing; aggregates always cover the
    whole path, and ``path_truncated`` says when the listing was cut.
    """
    if not sim.tracer.events:
        raise ValueError(
            "critpath needs a traced run: construct the Simulator with "
            "trace=True (or set sim.tracer.enabled) before executing"
        )
    events = sim.tracer.events
    auditor = CostAuditor(sim)
    windows = build_windows(sim)
    win_docs = []
    run_total = Attribution()
    path_total = Attribution()
    for w in windows:
        per_rank = attribute_window(w)
        conservation_ok = all(
            att.total_ns == w.wall_ns for att in per_rank.values()
        )
        path = critical_path(w, events)
        path_att = Attribution()
        for s in path:
            path_att.add(s.category, s.duration_ns)
        # the walk's hops are contiguous except for sub-ns rounding and
        # explicit sender idle gaps; fold the remainder into stall so the
        # path attribution conserves the window exactly too
        slack = w.wall_ns - path_att.total_ns
        path_att.stall_ns += slack
        bottlenecks = rank_bottlenecks(path, events, auditor)
        all_segs = [s for segs in w.timelines.values() for s in segs]
        for att in per_rank.values():
            for c in CATEGORIES:
                run_total.add(c, getattr(att, c + "_ns"))
        for c in CATEGORIES:
            path_total.add(c, getattr(path_att, c + "_ns"))
        seg_docs = [
            {
                "rank": s.rank, "start_ns": s.start_ns, "end_ns": s.end_ns,
                "category": s.category, "kind": s.kind, "label": s.label,
                "op": s.op, "layer": s.layer,
            }
            for s in path[:max_path_segments]
        ]
        win_docs.append({
            "label": w.label,
            "start_ns": w.start_ns,
            "end_ns": w.end_ns,
            "wall_ns": w.wall_ns,
            "conservation_ok": conservation_ok,
            "per_rank": [
                {"rank": r, **att.as_dict()} for r, att in sorted(per_rank.items())
            ],
            "by_layer": {
                k: v.as_dict()
                for k, v in sorted(_aggregate_by(all_segs, lambda s: s.layer).items())
            },
            "by_kind": {
                k: v.as_dict()
                for k, v in sorted(_aggregate_by(all_segs, lambda s: s.kind).items())
            },
            "critical_path": {
                "num_segments": len(path),
                "path_truncated": len(path) > max_path_segments,
                **path_att.as_dict(),
                "segments": seg_docs,
            },
            "bottlenecks": bottlenecks,
        })
    return {
        "schema": CRITPATH_SCHEMA,
        "num_ranks": sim.num_ranks,
        "num_windows": len(windows),
        "wall_clock_ns": _ns(sim.elapsed()),
        "windows": win_docs,
        "totals": {
            "per_rank_sum": run_total.as_dict(),
            "critical_path": path_total.as_dict(),
        },
    }


def attribution_summary(sim) -> dict:
    """The compact per-run summary stored in ledger records.

    A strict subset of :func:`critpath_report`: run-level category totals,
    the critical path's split, and the top measured bottlenecks — small
    enough to commit per ledger line, rich enough for the dashboard's
    Attribution section.
    """
    doc = critpath_report(sim, max_path_segments=0)
    bottlenecks: Dict[str, dict] = {}
    for w in doc["windows"]:
        for row in w["bottlenecks"]:
            acc = bottlenecks.setdefault(row["key"], {
                "key": row["key"], "category": row["category"],
                "measured_ns": 0, "predicted_ns": 0, "count": 0,
            })
            acc["measured_ns"] += row["measured_ns"]
            acc["predicted_ns"] += row["predicted_ns"]
            acc["count"] += row["count"]
    top = sorted(
        bottlenecks.values(), key=lambda r: (-r["measured_ns"], r["key"])
    )[:8]
    for row in top:
        row["ratio"] = (
            row["measured_ns"] / row["predicted_ns"] if row["predicted_ns"] else None
        )
    return {
        "schema": CRITPATH_SCHEMA,
        "wall_clock_ns": doc["wall_clock_ns"],
        "num_windows": doc["num_windows"],
        "conservation_ok": all(w["conservation_ok"] for w in doc["windows"]),
        "per_rank_sum": doc["totals"]["per_rank_sum"],
        "critical_path": doc["totals"]["critical_path"],
        "top_bottlenecks": top,
    }


# ----------------------------------------------------------------------
# cost-model calibration (measured / predicted feedback)
# ----------------------------------------------------------------------
CALIB_SCHEMA = "repro-calib-v1"


def calibration_suggestion(sim, experiment: str, scheme: str) -> dict:
    """A canonical-JSON α–β adjustment suggestion from one traced run.

    Aggregates the critical-path bottleneck rows by event *kind* and turns
    the measured/predicted ratios into two scalar scale suggestions — one
    for communication kinds, one for compute — weighted by measured time.
    Deliberately advisory: nothing here rewrites the cost model (a single
    run cannot separate α from β; that needs a multi-size regression), it
    just localizes and quantifies the disagreement so a human can act.
    """
    doc = critpath_report(sim, max_path_segments=0)
    by_kind: Dict[str, dict] = {}
    for w in doc["windows"]:
        for row in w["bottlenecks"]:
            if not row["kind"] or not row["predicted_ns"]:
                continue  # stalls and un-priced kinds carry no signal
            acc = by_kind.setdefault(row["kind"], {
                "kind": row["kind"], "category": row["category"],
                "count": 0, "measured_ns": 0, "predicted_ns": 0,
            })
            acc["count"] += row["count"]
            acc["measured_ns"] += row["measured_ns"]
            acc["predicted_ns"] += row["predicted_ns"]
    kinds = sorted(by_kind.values(), key=lambda r: (-r["measured_ns"], r["kind"]))
    for row in kinds:
        row["ratio"] = row["measured_ns"] / row["predicted_ns"]

    def _weighted_scale(category: str) -> Optional[float]:
        rows = [r for r in kinds if r["category"] == category]
        meas = sum(r["measured_ns"] for r in rows)
        pred = sum(r["predicted_ns"] for r in rows)
        return meas / pred if pred else None

    return {
        "schema": CALIB_SCHEMA,
        "basis": {
            "experiment": experiment,
            "scheme": scheme,
            "num_ranks": doc["num_ranks"],
            "num_windows": doc["num_windows"],
            "wall_clock_ns": doc["wall_clock_ns"],
        },
        "kinds": kinds,
        "suggestion": {
            "comm_scale": _weighted_scale("comm"),
            "compute_scale": _weighted_scale("compute"),
            "note": (
                "advisory only — scales fold contention and stragglers into "
                "β; separating α from β needs a multi-size regression, so "
                "apply by hand after inspecting the per-kind ratios"
            ),
        },
    }


def render_calibration(doc: dict) -> str:
    """Human-readable table for one :func:`calibration_suggestion` doc."""
    from repro.utils.tables import format_table

    rows = [
        [r["kind"], r["category"], r["count"], _fmt_ns(r["measured_ns"]),
         _fmt_ns(r["predicted_ns"]), f"{r['ratio']:.3f}"]
        for r in doc["kinds"]
    ]
    s = doc["suggestion"]
    table = format_table(
        ["kind", "category", "count", "measured", "predicted", "meas/pred"],
        rows,
        title=(f"Cost-model calibration — {doc['basis']['experiment']} "
               f"[{doc['basis']['scheme']}]"),
    )
    lines = [table, ""]
    for label, key in (("comm", "comm_scale"), ("compute", "compute_scale")):
        v = s[key]
        lines.append(
            f"suggested {label} scale: {v:.3f}" if v is not None
            else f"suggested {label} scale: — (no priced {label} on the path)"
        )
    lines.append(f"note: {s['note']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.4f} s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.3f} µs"
    return f"{ns} ns"


def render_report(doc: dict, top: int = 12) -> str:
    """Human-readable tables for one :func:`critpath_report` document."""
    from repro.utils.tables import format_table

    out = []
    totals = doc["totals"]["per_rank_sum"]
    path = doc["totals"]["critical_path"]
    rows = [
        [c, _fmt_ns(totals[c + "_ns"]),
         f"{totals[c + '_ns'] / totals['total_ns']:.1%}" if totals["total_ns"] else "—",
         _fmt_ns(path[c + "_ns"]),
         f"{path[c + '_ns'] / path['total_ns']:.1%}" if path["total_ns"] else "—"]
        for c in CATEGORIES
    ]
    out.append(format_table(
        ["category", "all ranks", "share", "critical path", "share"],
        rows,
        title=(f"Time attribution — {doc['num_ranks']} ranks, "
               f"{doc['num_windows']} window(s), "
               f"wall {_fmt_ns(doc['wall_clock_ns'])}"),
    ))
    merged: Dict[str, dict] = {}
    for w in doc["windows"]:
        for row in w["bottlenecks"]:
            acc = merged.setdefault(row["key"], dict(row))
            if acc is not row:
                acc["count"] += row["count"]
                acc["measured_ns"] += row["measured_ns"]
                acc["predicted_ns"] += row["predicted_ns"]
    rows = []
    for row in sorted(merged.values(), key=lambda r: (-r["measured_ns"], r["key"]))[:top]:
        ratio = (row["measured_ns"] / row["predicted_ns"]
                 if row["predicted_ns"] else None)
        rows.append([
            row["key"], row["count"], _fmt_ns(row["measured_ns"]),
            _fmt_ns(row["predicted_ns"]) if row["predicted_ns"] else "—",
            f"{ratio:.2f}" if ratio is not None else "—",
        ])
    out.append(format_table(
        ["op (critical path)", "count", "measured", "predicted (solo α–β)",
         "meas/pred"],
        rows, title="Ranked bottlenecks on the critical path",
    ))
    conserved = all(w["conservation_ok"] for w in doc["windows"])
    out.append(
        "conservation: attributed time == wall-clock on every rank, exactly"
        if conserved else "conservation: VIOLATED (this is a bug — please report)"
    )
    return "\n\n".join(out)


def main(
    experiment: str,
    scheme: str = "optimus",
    out: Optional[str] = None,
    folded: Optional[str] = None,
    top: int = 12,
    as_json: bool = False,
    calibrate: bool = False,
    ledger: Optional[str] = None,
    printer=print,
) -> int:
    """``python -m repro critpath`` driver: trace a workload, analyze it."""
    from repro.obs.ledger import canonical_json
    from repro.obs.profile import run_profile

    sim = run_profile(experiment, scheme=scheme)
    doc = critpath_report(sim)
    calib = calibration_suggestion(sim, experiment, scheme) if calibrate else None
    if as_json:
        printer(canonical_json(calib) if calibrate else canonical_json(doc))
    else:
        printer(render_report(doc, top=top))
        if calib is not None:
            printer("")
            printer(render_calibration(calib))
    if calib is not None and ledger:
        from repro.obs.ledger import RunLedger, record_from_sim

        rec = record_from_sim(
            "experiment", sim, label=f"critpath-calibration:{experiment}",
            scheme=scheme, extra={"calibration": calib},
        )
        RunLedger(ledger).append(rec)
        if not as_json:
            printer(f"calibration suggestion appended to ledger {ledger}")
    text = canonical_json(doc)
    if out:
        with open(out, "w") as f:
            f.write(text)
            f.write("\n")
        if not as_json:
            printer(f"critpath JSON written to {out}")
    if folded:
        from repro.obs.flamegraph import write_folded

        n = write_folded(sim, folded)
        if not as_json:
            printer(f"folded flamegraph written to {folded} ({n} stacks) — "
                    "open with speedscope or flamegraph.pl")
    return 0
