"""Observability: metrics registry, trace exporters, profiling reports.

The simulator produces raw signal — flat :class:`~repro.runtime.events.TraceEvent`
records, hierarchical :class:`~repro.runtime.events.Span` regions, per-rank
memory timelines, device counters.  This package turns that signal into the
artifacts performance work is judged against:

* :mod:`repro.obs.metrics` — counters / gauges / histograms with labels;
* :mod:`repro.obs.perfetto` — Chrome/Perfetto ``trace_event`` JSON export
  (one track per rank, flow arrows for point-to-point transfers);
* :mod:`repro.obs.comm_matrix` — rank→rank traffic matrices (raw and
  β-weighted) whose totals reconcile with the device byte counters;
* :mod:`repro.obs.report` — plain-text top-k span and memory reports;
* :mod:`repro.obs.profile` — the ``python -m repro profile`` driver;
* :mod:`repro.obs.ledger` — append-only, byte-deterministic JSONL run
  records shared by the trainer, bench suite, chaos campaigns and stems;
* :mod:`repro.obs.openmetrics` — Prometheus/OpenMetrics text exposition
  of metric snapshots (live registry or ledger records), with a grammar
  validator;
* :mod:`repro.obs.claims` — the paper-claims scorecard (measured ledger
  evidence vs :mod:`repro.perfmodel` predictions);
* :mod:`repro.obs.dash` — the ``python -m repro dash`` static HTML
  dashboard;
* :mod:`repro.obs.critpath` — the ``python -m repro critpath`` analyzer:
  per-rank nanosecond attribution (compute/comm/stall/overhead) with an
  exact conservation invariant, the cross-rank critical path, and a
  predicted-vs-measured bottleneck ranking against the α–β cost model;
* :mod:`repro.obs.flamegraph` — collapsed-stack (folded) flamegraph
  export for speedscope / flamegraph.pl.
"""

from repro.obs.comm_matrix import comm_matrix, render_comm_matrix
from repro.obs.critpath import attribution_summary, critpath_report
from repro.obs.flamegraph import render_folded, validate_folded, write_folded
from repro.obs.ledger import RunLedger, RunRecord, record_from_sim
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.openmetrics import render_registry, validate_openmetrics
from repro.obs.perfetto import chrome_trace, write_chrome_trace
from repro.obs.report import memory_report, top_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunLedger",
    "RunRecord",
    "record_from_sim",
    "render_registry",
    "validate_openmetrics",
    "chrome_trace",
    "write_chrome_trace",
    "comm_matrix",
    "render_comm_matrix",
    "top_spans",
    "memory_report",
    "critpath_report",
    "attribution_summary",
    "render_folded",
    "write_folded",
    "validate_folded",
]
