"""Megatron-LM 1-D tensor parallelism — the paper's baseline (§2.2).

Parameters of each matmul pair are split column-wise then row-wise over a
flat group of p devices; *activations are replicated* on every device, which
is exactly the memory bottleneck Optimus removes (§3.1.1).  Forward of each
transformer layer costs two ring all-reduces of ``bsh`` (one after
attention, one after the MLP); backward costs two more (at the column-
parallel inputs), and activation recomputation under checkpointing doubles
it again — the ``4(p−1)/p·bsh`` vs ``8(p−1)/p·bsh`` rows of Table 1.
"""

from repro.megatron.embedding import LMHead1D, VocabParallelEmbedding
from repro.megatron.layers import (
    MLP1D,
    ColumnParallelLinear,
    LayerNorm1D,
    RowParallelLinear,
    SelfAttention1D,
    TransformerLayer1D,
)
from repro.megatron.loss import VocabParallelCrossEntropy
from repro.megatron.model import MegatronModel

__all__ = [
    "ColumnParallelLinear",
    "RowParallelLinear",
    "LayerNorm1D",
    "SelfAttention1D",
    "MLP1D",
    "TransformerLayer1D",
    "VocabParallelEmbedding",
    "LMHead1D",
    "VocabParallelCrossEntropy",
    "MegatronModel",
]
