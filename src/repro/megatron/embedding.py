"""Vocab-parallel embedding and tied LM head for the Megatron baseline.

The table ``[v, h]`` is sharded along the vocabulary axis.  Forward gathers
each device's stripe locally (zeros elsewhere) and all-reduces the partial
embeddings into the replicated activation — Megatron-LM's standard scheme.
The tied head produces column-sharded logits ``[T, v/p]`` that feed the
vocab-parallel cross-entropy without any gather of the full logits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm import collectives as coll
from repro.comm.group import ProcessGroup
from repro.config import ModelConfig
from repro.core.buffers import BufferManager
from repro.core.param import DistModule, DistParam, charge_param_memory
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import REPLICATED_1D, SHARDED_1D
from repro.mesh.partition import distribute_sharded_1d


class VocabParallelEmbedding(DistModule):
    """Embedding with the table sharded over the vocabulary axis."""

    _cache_attrs = ("_ids",)

    def __init__(
        self,
        group: ProcessGroup,
        cfg: ModelConfig,
        table_global,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.group = group
        self.cfg = cfg
        self.buffers = buffers
        self.table = self.register_param(
            DistParam(
                "embedding.table", distribute_sharded_1d(group, table_global, axis=0)
            )
        )
        charge_param_memory(self.table, group.sim)
        self._ids: Optional[DTensor] = None

    def forward(self, ids: DTensor) -> DTensor:
        """ids REPLICATED_1D [b, s] → replicated activations [b·s, h]."""
        group = self.group
        v, h = self.table.data.global_shape
        p = group.size
        v_loc = v // p
        b, s = ids.global_shape
        T = b * s
        self._ids = ids

        partial = {}
        for k, rank in enumerate(group.ranks):
            idvec = ids.local(rank).reshape((T,))
            partial[rank] = self._stripe_lookup(
                self.table.data.local(rank), idvec, k * v_loc, v_loc, h, group.sim.backend
            )
            group.sim.device(rank).compute(T * h, kind="elementwise")
        shards = coll.all_reduce(group, partial)
        out = DTensor(group, REPLICATED_1D, shards, (T, h))
        if self.buffers is not None:
            for rank, shard in out.shards.items():
                self.buffers.hold("forward", rank, ops.nbytes(shard))
        return out

    @staticmethod
    def _stripe_lookup(table_l, idvec, lo, v_loc, h, backend):
        if is_shape_array(table_l) or is_shape_array(idvec):
            return ShapeArray((idvec.size, h), table_l.dtype)
        ids = np.asarray(idvec)
        out = np.zeros((ids.size, h), dtype=np.asarray(table_l).dtype)
        mask = (ids >= lo) & (ids < lo + v_loc)
        rows = np.nonzero(mask)[0]
        if rows.size:
            out[rows] = np.asarray(table_l)[ids[rows] - lo]
        return out

    def backward(self, d_out: DTensor) -> None:
        """Each device scatter-adds only its own vocabulary stripe (no comm)."""
        if self._ids is None:
            raise RuntimeError("embedding backward before forward")
        group = self.group
        v, h = self.table.data.global_shape
        p = group.size
        v_loc = v // p
        grads = {}
        for k, rank in enumerate(group.ranks):
            d = d_out.local(rank)
            idvec = self._ids.local(rank).reshape((d.shape[0],))
            grads[rank] = self._stripe_scatter(d, idvec, k * v_loc, v_loc, h)
            group.sim.device(rank).compute(d.size, kind="elementwise")
        self.table.add_grad(DTensor(group, SHARDED_1D(0), grads, (v, h)))
        self._ids = None

    @staticmethod
    def _stripe_scatter(d, idvec, lo, v_loc, h):
        if is_shape_array(d):
            return ShapeArray((v_loc, h), d.dtype)
        g = np.zeros((v_loc, h), dtype=np.asarray(d).dtype)
        ids = np.asarray(idvec)
        mask = (ids >= lo) & (ids < lo + v_loc)
        rows = np.nonzero(mask)[0]
        if rows.size:
            np.add.at(g, ids[rows] - lo, np.asarray(d)[rows])
        return g


class LMHead1D(DistModule):
    """Tied head: ``logits_k = X·E_kᵀ`` — output stays vocabulary-sharded."""

    _cache_attrs = ("_x",)

    def __init__(
        self,
        group: ProcessGroup,
        embedding: VocabParallelEmbedding,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.group = group
        self.embedding = embedding  # shared table, not re-registered
        self.buffers = buffers
        self._x: Optional[DTensor] = None

    def forward(self, x: DTensor) -> DTensor:
        group = self.group
        self._x = x
        v, h = self.embedding.table.data.global_shape
        shards = {}
        for rank in group.ranks:
            xl = x.local(rank)
            tl = self.embedding.table.data.local(rank)
            shards[rank] = xl @ ops.transpose(tl)
            group.sim.device(rank).compute(2.0 * xl.shape[0] * h * tl.shape[0])
        out = DTensor(group, SHARDED_1D(1), shards, (x.global_shape[0], v))
        if self.buffers is not None:
            for rank, shard in out.shards.items():
                self.buffers.hold("forward", rank, ops.nbytes(shard))
        return out

    def backward(self, dlogits: DTensor) -> DTensor:
        if self._x is None:
            raise RuntimeError("lm-head backward before forward")
        group = self.group
        dx_partial, d_table = {}, {}
        for rank in group.ranks:
            dl = dlogits.local(rank)
            tl = self.embedding.table.data.local(rank)
            xl = self._x.local(rank)
            dx_partial[rank] = dl @ tl
            d_table[rank] = ops.transpose(dl) @ xl
            dev = group.sim.device(rank)
            dev.compute(2.0 * dl.shape[0] * dl.shape[1] * tl.shape[1])
            dev.compute(2.0 * dl.shape[1] * dl.shape[0] * xl.shape[1])
        dx_shards = coll.all_reduce(group, dx_partial)
        self.embedding.table.add_grad(
            DTensor(group, SHARDED_1D(0), d_table, self.embedding.table.data.global_shape)
        )
        dx = DTensor(group, REPLICATED_1D, dx_shards, self._x.global_shape)
        self._x = None
        return dx
