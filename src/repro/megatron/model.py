"""The full Megatron baseline model.

Mirrors :class:`repro.core.model.OptimusModel` module-for-module so the two
schemes are compared on identical architectures and identical global
parameters.

Activation checkpointing supports two layouts:

* ``distributed`` (default, the paper's §3.1.1 assumption): each device
  keeps a 1/p slice (along tokens) of every layer input, so checkpoint
  memory is ``N·bsh/p`` per device; the recompute in backward must first
  all-gather the slice back into the replicated input (an extra
  ``(p−1)/p·bsh`` of traffic per layer that the paper's Table 1 does not
  count — we document the delta in EXPERIMENTS.md);
* ``replicated``: vanilla Megatron-LM behaviour — full ``bsh`` input kept
  per device, no gather needed.

Either way, the *working* activations inside a layer are replicated and of
size O(bsh) per device — the memory wall of Fig. 9.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray
from repro.comm import collectives as coll
from repro.comm.group import ProcessGroup
from repro.config import ModelConfig
from repro.core.buffers import BufferManager
from repro.core.param import DistModule
from repro.megatron.embedding import LMHead1D, VocabParallelEmbedding
from repro.megatron.layers import LayerNorm1D, TransformerLayer1D
from repro.megatron.loss import VocabParallelCrossEntropy
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import REPLICATED_1D
from repro.mesh.partition import distribute_replicated_1d
from repro.runtime.events import NULL_SPAN
from repro.runtime.simulator import Simulator


class MegatronModel(DistModule):
    """1-D tensor-parallel transformer over a flat group of p devices."""

    def __init__(
        self,
        sim: Simulator,
        cfg: ModelConfig,
        params_global: Dict[str, object],
        checkpoint_activations: bool = True,
        checkpoint_layout: str = "distributed",
        buffers: Optional[BufferManager] = None,
        manage_buffers: bool = True,
        stem_only: bool = False,
        fused_attention: bool = False,
        attention_chunk: int = 64,
    ):
        super().__init__()
        if checkpoint_layout not in ("distributed", "replicated"):
            raise ValueError(f"unknown checkpoint layout {checkpoint_layout!r}")
        self.sim = sim
        self.cfg = cfg
        self.group = ProcessGroup(sim, sim.ranks, kind="megatron")
        self.checkpoint = checkpoint_activations
        self.checkpoint_layout = checkpoint_layout
        self.stem_only = stem_only
        self.buffers = buffers if buffers is not None else BufferManager(
            sim, ranks=self.group.ranks, managed=manage_buffers
        )
        self.embedding = None
        self.final_ln = None
        self.lm_head = None
        self.loss_fn = None
        self.cls_head = None
        if not stem_only:
            self.embedding = self.register_module(
                VocabParallelEmbedding(
                    self.group, cfg, params_global["embedding.table"], self.buffers
                )
            )
        self.fused_attention = fused_attention
        self.layers: List[TransformerLayer1D] = [
            self.register_module(
                TransformerLayer1D(
                    self.group, cfg, l, params_global, self.buffers,
                    fused_attention=fused_attention,
                    attention_chunk=attention_chunk,
                )
            )
            for l in range(cfg.num_layers)
        ]
        if not stem_only:
            self.final_ln = self.register_module(
                LayerNorm1D(
                    self.group, "final_ln", params_global["final_ln.gamma"],
                    params_global["final_ln.beta"], cfg.ln_eps, self.buffers,
                )
            )
            self.lm_head = self.register_module(
                LMHead1D(self.group, self.embedding, self.buffers)
            )
            self.loss_fn = VocabParallelCrossEntropy(self.group, self.buffers)
            if "cls_head.weight" in params_global:
                from repro.megatron.cls_head import ClassificationHead1D

                self.cls_head = self.register_module(
                    ClassificationHead1D(
                        self.group, cfg, params_global["cls_head.weight"],
                        params_global["cls_head.bias"], self.buffers,
                    )
                )

        self._ckpt_inputs: List[object] = []
        self._batch_size: Optional[int] = None
        self._stem_out: Optional[DTensor] = None

    # ------------------------------------------------------------------
    def synthetic_batch(self, batch_size: int, seed: int = 0):
        b, s, v = batch_size, self.cfg.seq_len, self.cfg.vocab_size
        if self.sim.backend == "shape":
            return ShapeArray((b, s), "int64"), ShapeArray((b, s), "int64")
        rng = np.random.default_rng(seed)
        return (
            rng.integers(0, v, size=(b, s)),
            rng.integers(0, v, size=(b, s)),
        )

    # ------------------------------------------------------------------
    def forward(self, ids, labels=None):
        cfg = self.cfg
        b, s = ids.shape
        if s != cfg.seq_len:
            raise ValueError(f"sequence length {s} != config seq_len {cfg.seq_len}")
        cfg.validate_for_megatron(self.group.size, b)
        self._batch_size = b
        ids_dt = distribute_replicated_1d(self.group, ids)

        tr = self.sim.tracer
        x = self.embedding.forward(ids_dt)
        self._ckpt_inputs = []
        for layer in self.layers:
            if self.checkpoint:
                self._ckpt_inputs.append(self._store_checkpoint(x))
            with tr.span("layer", self.group.ranks, "layer", index=layer.index,
                         phase="forward") if tr.enabled else NULL_SPAN:
                x = layer.forward(x, b)
            if self.checkpoint:
                layer.drop_caches()
                self.buffers.reset_region("forward")

        out = self.final_ln.forward(x)
        logits = self.lm_head.forward(out)
        if labels is None:
            return logits
        labels_dt = distribute_replicated_1d(self.group, labels)
        return self.loss_fn.forward(logits, labels_dt)

    def backward(self) -> None:
        if self._batch_size is None:
            raise RuntimeError("backward before forward")
        b = self._batch_size
        tr = self.sim.tracer
        dlogits = self.loss_fn.backward()
        dx = self.lm_head.backward(dlogits)
        dx = self.final_ln.backward(dx)
        for layer in reversed(self.layers):
            with tr.span("layer", self.group.ranks, "layer", index=layer.index,
                         phase="backward") if tr.enabled else NULL_SPAN:
                if self.checkpoint:
                    x_in = self._restore_checkpoint(self._ckpt_inputs.pop())
                    layer.forward(x_in, b)
                dx = layer.backward(dx)
            if self.checkpoint:
                self.buffers.reset_region("forward")
                self.buffers.reset_region("backward")
        self.embedding.backward(dx)
        if self.checkpoint:
            self.buffers.reset_region("checkpoint")
        self._batch_size = None

    def loss_and_grads(self, ids, labels):
        loss = self.forward(ids, labels)
        self.backward()
        return loss, {p.name: p.grad for p in self.parameters()}

    # ------------------------------------------------------------------
    # classification branch (paper Fig. 1, right side)
    # ------------------------------------------------------------------
    def forward_classification(self, ids, cls_labels=None):
        """Sequence classification via token-0 pooling (Fig. 1)."""
        if self.cls_head is None:
            raise RuntimeError(
                "model built without cls_head.* parameters "
                "(init_transformer_params(num_classes=...))"
            )
        cfg = self.cfg
        b, s = ids.shape
        if s != cfg.seq_len:
            raise ValueError(f"sequence length {s} != config seq_len {cfg.seq_len}")
        cfg.validate_for_megatron(self.group.size, b)
        self._batch_size = b
        x = self.embedding.forward(distribute_replicated_1d(self.group, ids))
        self._ckpt_inputs = []
        for layer in self.layers:
            if self.checkpoint:
                self._ckpt_inputs.append(self._store_checkpoint(x))
            x = layer.forward(x, b)
            if self.checkpoint:
                layer.drop_caches()
                self.buffers.reset_region("forward")
        out = self.final_ln.forward(x)
        if cls_labels is None:
            return self.cls_head.forward(out)
        labels_dt = distribute_replicated_1d(self.group, cls_labels)
        return self.cls_head.forward(out, labels_dt)

    def backward_classification(self) -> None:
        if self._batch_size is None:
            raise RuntimeError("backward before forward")
        b = self._batch_size
        dx = self.final_ln.backward(self.cls_head.backward())
        for layer in reversed(self.layers):
            if self.checkpoint:
                x_in = self._restore_checkpoint(self._ckpt_inputs.pop())
                layer.forward(x_in, b)
            dx = layer.backward(dx)
            if self.checkpoint:
                self.buffers.reset_region("forward")
                self.buffers.reset_region("backward")
        self.embedding.backward(dx)
        if self.checkpoint:
            self.buffers.reset_region("checkpoint")
        self._batch_size = None

    # ------------------------------------------------------------------
    # stem-only execution (the paper's §5 measurement workload)
    # ------------------------------------------------------------------
    def _synthetic_activation(self, batch_size: int) -> DTensor:
        """A replicated [b·s, h] activation on the simulator's backend."""
        cfg = self.cfg
        T, h = batch_size * cfg.seq_len, cfg.hidden_size
        shards = {}
        rng = np.random.default_rng(0)
        base = None
        for rank in self.group.ranks:
            if self.sim.backend == "shape":
                shards[rank] = ShapeArray((T, h), "float32")
            else:
                if base is None:
                    base = rng.normal(size=(T, h))
                shards[rank] = base if rank == 0 else base.copy()
        return DTensor(self.group, REPLICATED_1D, shards, (T, h))

    def stem_forward(self, batch_size: int) -> DTensor:
        """Run only the N transformer layers (Tables 2–3 workload)."""
        self.cfg.validate_for_megatron(self.group.size, batch_size, include_vocab=False)
        self._batch_size = batch_size
        tr = self.sim.tracer
        x = self._synthetic_activation(batch_size)
        self._ckpt_inputs = []
        for layer in self.layers:
            if self.checkpoint:
                self._ckpt_inputs.append(self._store_checkpoint(x))
            with tr.span("layer", self.group.ranks, "layer", index=layer.index,
                         phase="forward") if tr.enabled else NULL_SPAN:
                x = layer.forward(x, batch_size)
            if self.checkpoint:
                layer.drop_caches()
                self.buffers.reset_region("forward")
        self._stem_out = x
        return x

    def stem_backward(self) -> DTensor:
        if self._stem_out is None:
            raise RuntimeError("stem_backward before stem_forward")
        b = self._batch_size
        tr = self.sim.tracer
        dx = self._stem_out.map(ops.zeros_like)
        for layer in reversed(self.layers):
            with tr.span("layer", self.group.ranks, "layer", index=layer.index,
                         phase="backward") if tr.enabled else NULL_SPAN:
                if self.checkpoint:
                    x_in = self._restore_checkpoint(self._ckpt_inputs.pop())
                    layer.forward(x_in, b)
                dx = layer.backward(dx)
            if self.checkpoint:
                self.buffers.reset_region("forward")
                self.buffers.reset_region("backward")
        if self.checkpoint:
            self.buffers.reset_region("checkpoint")
        self._stem_out = None
        self._batch_size = None
        return dx

    # ------------------------------------------------------------------
    # checkpoint storage
    # ------------------------------------------------------------------
    def _store_checkpoint(self, x: DTensor):
        group = self.group
        p = group.size
        if self.checkpoint_layout == "replicated":
            for rank in group.ranks:
                self.buffers.hold("checkpoint", rank, ops.nbytes(x.local(rank)))
            return ("replicated", x)
        # distributed: rank k keeps a ~T/p row slice (uneven when p ∤ T)
        T = x.global_shape[0]
        base, extra = divmod(T, p)
        slices = {}
        start = 0
        for k, rank in enumerate(group.ranks):
            count = base + (1 if k < extra else 0)
            slices[rank] = x.local(rank)[start : start + count]
            start += count
            self.buffers.hold("checkpoint", rank, ops.nbytes(slices[rank]))
        return ("distributed", slices, x.global_shape)

    def _restore_checkpoint(self, entry) -> DTensor:
        if entry[0] == "replicated":
            return entry[1]
        _, slices, shape = entry
        gathered = coll.all_gather(self.group, slices, axis=0)
        return DTensor(self.group, REPLICATED_1D, gathered, shape)
