"""Vocab-parallel softmax cross-entropy (Megatron-LM scheme).

Logits are column-sharded ``[T, v/p]``; labels are replicated.  Three
all-reduces over the flat group (max, Σe, picked logit) produce identical
per-token losses on every device; backward is purely local.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm import collectives as coll
from repro.comm.group import ProcessGroup
from repro.core.buffers import BufferManager
from repro.core.param import DistModule
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import SHARDED_1D


class VocabParallelCrossEntropy(DistModule):
    """Mean-token cross-entropy over vocabulary-sharded logits."""

    _cache_attrs = ("_saved",)

    def __init__(self, group: ProcessGroup, buffers: Optional[BufferManager] = None):
        super().__init__()
        self.group = group
        self.buffers = buffers
        self._saved = None

    def forward(self, logits: DTensor, labels: DTensor):
        group = self.group
        T, v = logits.global_shape
        p = group.size
        v_loc = v // p

        mx = {
            r: ops.max(logits.local(r), axis=1, keepdims=True) for r in group.ranks
        }
        mx = coll.all_reduce(group, mx, op="max")

        e, ssum, picked = {}, {}, {}
        for k, rank in enumerate(group.ranks):
            z = logits.local(rank) - mx[rank]
            ez = ops.exp(z)
            e[rank] = ez
            ssum[rank] = ops.sum(ez, axis=1, keepdims=True)
            lab = labels.local(rank).reshape((T,))
            picked[rank] = self._masked_pick(z, lab, k * v_loc, v_loc)
            group.sim.device(rank).compute(8.0 * ez.size, kind="elementwise")
        ssum = coll.all_reduce(group, ssum)
        picked = coll.all_reduce(group, picked)

        probs = {}
        loss_val = None
        for rank in group.ranks:
            probs[rank] = e[rank] / ssum[rank]
            loss_tok = ops.log(ssum[rank]).reshape((T,)) - picked[rank]
            total = ops.sum(loss_tok)
            if self.buffers is not None:
                self.buffers.hold("forward", rank, ops.nbytes(probs[rank]))
            if loss_val is None:
                loss_val = total
        self._saved = (probs, labels, T, v_loc)
        if is_shape_array(loss_val):
            return ShapeArray((), loss_val.dtype)
        return float(loss_val) / T

    @staticmethod
    def _masked_pick(z, lab, lo, v_loc):
        if is_shape_array(z):
            return ShapeArray((z.shape[0],), z.dtype)
        zl = np.asarray(z)
        ids = np.asarray(lab)
        mask = (ids >= lo) & (ids < lo + v_loc)
        out = np.zeros(zl.shape[0], dtype=zl.dtype)
        rows = np.nonzero(mask)[0]
        if rows.size:
            out[rows] = zl[rows, ids[rows] - lo]
        return out

    def backward(self) -> DTensor:
        if self._saved is None:
            raise RuntimeError("cross-entropy backward before forward")
        group = self.group
        probs, labels, T, v_loc = self._saved
        scale = 1.0 / T
        shards = {}
        for k, rank in enumerate(group.ranks):
            g = probs[rank] * scale
            shards[rank] = self._subtract_labels(
                g, labels.local(rank), k * v_loc, v_loc, scale
            )
            group.sim.device(rank).compute(2.0 * g.size, kind="elementwise")
        dlogits = DTensor(group, SHARDED_1D(1), shards, (T, v_loc * group.size))
        self._saved = None
        return dlogits

    @staticmethod
    def _subtract_labels(g, lab, lo, v_loc, scale):
        if is_shape_array(g):
            return g
        g = np.asarray(g)
        ids = np.asarray(lab).reshape(-1)
        mask = (ids >= lo) & (ids < lo + v_loc)
        rows = np.nonzero(mask)[0]
        if rows.size:
            g[rows, ids[rows] - lo] -= scale
        return g
