"""Megatron 1-D parallel layers over a flat p-rank process group.

Naming of the f/g conjugate operators follows the Megatron-LM paper: ``f``
is identity in forward / all-reduce in backward (placed before column-
parallel weights); ``g`` is all-reduce in forward / identity in backward
(after row-parallel weights).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.backend import ops
from repro.comm import collectives as coll
from repro.comm.group import ProcessGroup
from repro.config import ModelConfig
from repro.core.buffers import BufferManager
from repro.core.param import DistModule, DistParam, charge_param_memory
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import REPLICATED_1D, SHARDED_1D
from repro.mesh.partition import distribute_replicated_1d, distribute_sharded_1d
from repro.reference import functional as F
from repro.reference.attention import (
    attention_bwd,
    attention_fwd,
    fused_attention_bwd,
    fused_attention_fwd,
)

_ELEMWISE_COST = {"add": 1.0, "gelu": 10.0, "softmax": 8.0, "layernorm": 8.0}


def _hold(buffers: Optional[BufferManager], region: str, dt: DTensor) -> None:
    if buffers is None:
        return
    for rank, shard in dt.shards.items():
        buffers.hold(region, rank, ops.nbytes(shard))


def _charge_elementwise(group: ProcessGroup, dt: DTensor, kind: str) -> None:
    cost = _ELEMWISE_COST[kind]
    for rank, shard in dt.shards.items():
        group.sim.device(rank).compute(cost * shard.size, kind="elementwise")


def _gemm_each(group: ProcessGroup, dt_shapes: Dict[int, tuple], n_out) -> None:
    for rank, (m, k) in dt_shapes.items():
        group.sim.device(rank).compute(2.0 * m * k * n_out(rank))


# ======================================================================
class ColumnParallelLinear(DistModule):
    """W split along columns; input replicated, output column-sharded."""

    _cache_attrs = ("_x",)

    def __init__(
        self,
        group: ProcessGroup,
        name: str,
        weight_global,
        bias_global=None,
        buffers: Optional[BufferManager] = None,
        weight_name: Optional[str] = None,
        bias_name: Optional[str] = None,
    ):
        super().__init__()
        self.group = group
        self.name = name
        self.buffers = buffers
        self.weight = self.register_param(
            DistParam(
                weight_name or f"{name}.weight",
                distribute_sharded_1d(group, weight_global, axis=1),
            )
        )
        charge_param_memory(self.weight, group.sim)
        self.bias: Optional[DistParam] = None
        if bias_global is not None:
            self.bias = self.register_param(
                DistParam(
                    bias_name or f"{name}.bias",
                    distribute_sharded_1d(group, bias_global, axis=0),
                )
            )
            charge_param_memory(self.bias, group.sim)
        self._x: Optional[DTensor] = None

    def forward(self, x: DTensor) -> DTensor:
        if x.layout != REPLICATED_1D:
            raise ValueError(f"{self.name}: input must be replicated, got {x.layout}")
        self._x = x
        shards = {}
        for rank in self.group.ranks:
            xl = x.local(rank)
            y = xl @ self.weight.data.local(rank)
            if self.bias is not None:
                y = y + self.bias.data.local(rank)
            shards[rank] = y
            self.group.sim.device(rank).compute(
                2.0 * xl.shape[0] * xl.shape[1] * y.shape[1]
            )
        out_shape = (x.global_shape[0], self.weight.data.global_shape[1])
        out = DTensor(self.group, SHARDED_1D(1), shards, out_shape)
        _hold(self.buffers, "forward", out)
        return out

    def backward(self, dy: DTensor) -> DTensor:
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dw, db, dx_partial = {}, {}, {}
        for rank in self.group.ranks:
            xl = self._x.local(rank)
            dyl = dy.local(rank)
            dw[rank] = ops.transpose(xl) @ dyl
            if self.bias is not None:
                db[rank] = ops.sum(dyl, axis=0)
            dx_partial[rank] = dyl @ ops.transpose(self.weight.data.local(rank))
            dev = self.group.sim.device(rank)
            dev.compute(2.0 * xl.shape[1] * xl.shape[0] * dyl.shape[1])  # dW
            dev.compute(2.0 * dyl.shape[0] * dyl.shape[1] * xl.shape[1])  # dx
        # f operator: all-reduce the input gradient
        dx_shards = coll.all_reduce(self.group, dx_partial)
        if self.buffers is not None:
            for rank, g in dw.items():
                self.buffers.hold("param_grad", rank, ops.nbytes(g))
        self.weight.add_grad(
            DTensor(self.group, SHARDED_1D(1), dw, self.weight.data.global_shape)
        )
        if self.bias is not None:
            self.bias.add_grad(
                DTensor(self.group, SHARDED_1D(0), db, self.bias.data.global_shape)
            )
        dx = DTensor(self.group, REPLICATED_1D, dx_shards, self._x.global_shape)
        _hold(self.buffers, "backward", dx)
        self._x = None
        return dx


# ======================================================================
class RowParallelLinear(DistModule):
    """W split along rows; input column-sharded, output replicated (g op)."""

    _cache_attrs = ("_x",)

    def __init__(
        self,
        group: ProcessGroup,
        name: str,
        weight_global,
        bias_global=None,
        buffers: Optional[BufferManager] = None,
        weight_name: Optional[str] = None,
        bias_name: Optional[str] = None,
    ):
        super().__init__()
        self.group = group
        self.name = name
        self.buffers = buffers
        self.weight = self.register_param(
            DistParam(
                weight_name or f"{name}.weight",
                distribute_sharded_1d(group, weight_global, axis=0),
            )
        )
        charge_param_memory(self.weight, group.sim)
        self.bias: Optional[DistParam] = None
        if bias_global is not None:
            # bias is added after the all-reduce, replicated on every device
            self.bias = self.register_param(
                DistParam(
                    bias_name or f"{name}.bias",
                    distribute_replicated_1d(group, bias_global),
                )
            )
            charge_param_memory(self.bias, group.sim)
        self._x: Optional[DTensor] = None

    def forward(self, x: DTensor) -> DTensor:
        if x.layout.kind != "sharded_1d" or x.layout.axis != 1:
            raise ValueError(f"{self.name}: input must be column-sharded, got {x.layout}")
        self._x = x
        partial = {}
        for rank in self.group.ranks:
            xl = x.local(rank)
            partial[rank] = xl @ self.weight.data.local(rank)
            self.group.sim.device(rank).compute(
                2.0 * xl.shape[0] * xl.shape[1] * partial[rank].shape[1]
            )
        reduced = coll.all_reduce(self.group, partial)  # g operator
        shards = {}
        for rank in self.group.ranks:
            y = reduced[rank]
            if self.bias is not None:
                y = y + self.bias.data.local(rank)
            shards[rank] = y
        out_shape = (x.global_shape[0], self.weight.data.global_shape[1])
        out = DTensor(self.group, REPLICATED_1D, shards, out_shape)
        _hold(self.buffers, "forward", out)
        return out

    def backward(self, dy: DTensor) -> DTensor:
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dw, dx_shards = {}, {}
        db = {}
        for rank in self.group.ranks:
            xl = self._x.local(rank)
            dyl = dy.local(rank)
            dw[rank] = ops.transpose(xl) @ dyl
            if self.bias is not None:
                db[rank] = ops.sum(dyl, axis=0)
            dx_shards[rank] = dyl @ ops.transpose(self.weight.data.local(rank))
            dev = self.group.sim.device(rank)
            dev.compute(2.0 * xl.shape[1] * xl.shape[0] * dyl.shape[1])
            dev.compute(2.0 * dyl.shape[0] * dyl.shape[1] * xl.shape[1])
        if self.buffers is not None:
            for rank, g in dw.items():
                self.buffers.hold("param_grad", rank, ops.nbytes(g))
        self.weight.add_grad(
            DTensor(self.group, SHARDED_1D(0), dw, self.weight.data.global_shape)
        )
        if self.bias is not None:
            self.bias.add_grad(
                DTensor(self.group, REPLICATED_1D, db, self.bias.data.global_shape)
            )
        dx = DTensor(self.group, SHARDED_1D(1), dx_shards, self._x.global_shape)
        _hold(self.buffers, "backward", dx)
        self._x = None
        return dx


# ======================================================================
class LayerNorm1D(DistModule):
    """Layer norm on replicated activations — purely local, replicated params."""

    _cache_attrs = ("_saved",)

    def __init__(
        self,
        group: ProcessGroup,
        name: str,
        gamma_global,
        beta_global,
        eps: float = 1e-5,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.group = group
        self.name = name
        self.eps = eps
        self.buffers = buffers
        self.gamma = self.register_param(
            DistParam(f"{name}.gamma", distribute_replicated_1d(group, gamma_global))
        )
        self.beta = self.register_param(
            DistParam(f"{name}.beta", distribute_replicated_1d(group, beta_global))
        )
        charge_param_memory(self.gamma, group.sim)
        charge_param_memory(self.beta, group.sim)
        self._saved = None

    def forward(self, x: DTensor) -> DTensor:
        shards, xhat, inv = {}, {}, {}
        for rank in self.group.ranks:
            out, x_hat, inv_std = F.layernorm_fwd(
                x.local(rank),
                self.gamma.data.local(rank),
                self.beta.data.local(rank),
                self.eps,
            )
            shards[rank], xhat[rank], inv[rank] = out, x_hat, inv_std
        out_dt = DTensor(self.group, REPLICATED_1D, shards, x.global_shape)
        _charge_elementwise(self.group, out_dt, "layernorm")
        self._saved = (xhat, inv)
        _hold(self.buffers, "forward", out_dt)
        return out_dt

    def backward(self, dy: DTensor) -> DTensor:
        if self._saved is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        xhat, inv = self._saved
        dx, dg, db = {}, {}, {}
        for rank in self.group.ranks:
            dxl, dgl, dbl = F.layernorm_bwd(
                dy.local(rank), xhat[rank], inv[rank], self.gamma.data.local(rank)
            )
            dx[rank], dg[rank], db[rank] = dxl, dgl, dbl
        self.gamma.add_grad(
            DTensor(self.group, REPLICATED_1D, dg, self.gamma.data.global_shape)
        )
        self.beta.add_grad(
            DTensor(self.group, REPLICATED_1D, db, self.beta.data.global_shape)
        )
        out = DTensor(self.group, REPLICATED_1D, dx, dy.global_shape)
        _charge_elementwise(self.group, out, "layernorm")
        self._saved = None
        return out


# ======================================================================
class SelfAttention1D(DistModule):
    """Megatron self-attention: heads split p ways, b and s replicated."""

    _cache_attrs = ("_saved",)

    def __init__(
        self,
        group: ProcessGroup,
        cfg: ModelConfig,
        name: str,
        wqkv,
        bqkv,
        wo,
        bo,
        buffers: Optional[BufferManager] = None,
        fused: bool = False,
        attention_chunk: int = 64,
    ):
        super().__init__()
        self.group = group
        self.cfg = cfg
        self.name = name
        self.buffers = buffers
        self.fused = fused
        self.attention_chunk = attention_chunk
        self.qkv_linear = self.register_module(
            ColumnParallelLinear(
                group, f"{name}.qkv", wqkv, bqkv, buffers,
                weight_name=f"{name}.wqkv", bias_name=f"{name}.bqkv",
            )
        )
        self.out_linear = self.register_module(
            RowParallelLinear(
                group, f"{name}.out", wo, bo, buffers,
                weight_name=f"{name}.wo", bias_name=f"{name}.bo",
            )
        )
        self._saved = None

    def forward(self, x: DTensor, batch_size: int) -> DTensor:
        cfg, group = self.cfg, self.group
        p = group.size
        b, s = batch_size, cfg.seq_len
        n_loc = cfg.num_heads // p
        d = cfg.head_dim
        T, h = x.global_shape
        inv_sqrt_d = 1.0 / math.sqrt(d)

        qkv = self.qkv_linear.forward(x)  # [T, 3h] column-sharded
        qs, ks, vs, saved_s, ctx_shards = {}, {}, {}, {}, {}
        for rank in group.ranks:
            local = qkv.local(rank).reshape((b, s, n_loc, 3, d))
            qh = local[:, :, :, 0, :].transpose(0, 2, 1, 3)
            kh = local[:, :, :, 1, :].transpose(0, 2, 1, 3)
            vh = local[:, :, :, 2, :].transpose(0, 2, 1, 3)
            dev = group.sim.device(rank)
            if self.fused:
                ctx, m_stat, l_stat = fused_attention_fwd(
                    qh, kh, vh, chunk=self.attention_chunk
                )
                saved_s[rank] = (ctx, m_stat, l_stat)
                held = ops.nbytes(m_stat) + ops.nbytes(l_stat)
            else:
                ctx, probs = attention_fwd(qh, kh, vh)
                saved_s[rank] = probs
                held = ops.nbytes(probs)
                dev.compute(_ELEMWISE_COST["softmax"] * probs.size, kind="elementwise")
            dev.compute(2.0 * b * n_loc * s * s * d)
            dev.compute(2.0 * b * n_loc * s * s * d)
            qs[rank], ks[rank], vs[rank] = qh, kh, vh
            ctx_shards[rank] = ctx.transpose(0, 2, 1, 3).reshape((T, n_loc * d))
            if self.buffers is not None:
                self.buffers.hold("forward", rank, held)
                self.buffers.hold("forward", rank, ops.nbytes(ctx_shards[rank]))
        ctx_dt = DTensor(group, SHARDED_1D(1), ctx_shards, (T, h))
        self._saved = (qs, ks, vs, saved_s, b, s, n_loc, d)
        return self.out_linear.forward(ctx_dt)

    def backward(self, dy: DTensor) -> DTensor:
        if self._saved is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        group = self.group
        qs, ks, vs, saved_s, b, s, n_loc, d = self._saved
        T, h = dy.global_shape

        d_ctx = self.out_linear.backward(dy)  # [T, h] column-sharded
        dqkv_shards = {}
        for rank in group.ranks:
            dc = d_ctx.local(rank).reshape((b, s, n_loc, d)).transpose(0, 2, 1, 3)
            qh, kh, vh = qs[rank], ks[rank], vs[rank]
            dev = group.sim.device(rank)
            if self.fused:
                ctx, m_stat, l_stat = saved_s[rank]
                d_q, d_k, d_v = fused_attention_bwd(
                    qh, kh, vh, ctx, m_stat, l_stat, dc, chunk=self.attention_chunk
                )
                n_gemms = 5
            else:
                probs = saved_s[rank]
                d_q, d_k, d_v = attention_bwd(qh, kh, vh, probs, dc)
                n_gemms = 4
                dev.compute(_ELEMWISE_COST["softmax"] * probs.size, kind="elementwise")
            for _ in range(n_gemms):
                dev.compute(2.0 * b * n_loc * s * s * d)

            def _undo(t):
                return t.transpose(0, 2, 1, 3)

            dqkv_r = ops.stack([_undo(d_q), _undo(d_k), _undo(d_v)], axis=3)
            dqkv_shards[rank] = dqkv_r.reshape((T, n_loc * 3 * d))
        dqkv = DTensor(group, SHARDED_1D(1), dqkv_shards, (T, 3 * h))
        self._saved = None
        return self.qkv_linear.backward(dqkv)


# ======================================================================
class MLP1D(DistModule):
    """Column-parallel fc1 → local GELU → row-parallel fc2."""

    _cache_attrs = ("_pre",)

    def __init__(
        self,
        group: ProcessGroup,
        name: str,
        w1,
        b1,
        w2,
        b2,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.group = group
        self.name = name
        self.buffers = buffers
        self.fc1 = self.register_module(
            ColumnParallelLinear(
                group, f"{name}.fc1", w1, b1, buffers,
                weight_name=f"{name}.w1", bias_name=f"{name}.b1",
            )
        )
        self.fc2 = self.register_module(
            RowParallelLinear(
                group, f"{name}.fc2", w2, b2, buffers,
                weight_name=f"{name}.w2", bias_name=f"{name}.b2",
            )
        )
        self._pre: Optional[DTensor] = None

    def forward(self, x: DTensor) -> DTensor:
        pre = self.fc1.forward(x)
        self._pre = pre
        act = pre.map(F.gelu)
        _charge_elementwise(self.group, act, "gelu")
        _hold(self.buffers, "forward", act)
        return self.fc2.forward(act)

    def backward(self, dy: DTensor) -> DTensor:
        if self._pre is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        d_act = self.fc2.backward(dy)
        d_pre = self._pre.zip_map(d_act, lambda pre, da: F.gelu_bwd(pre, da))
        _charge_elementwise(self.group, d_pre, "gelu")
        self._pre = None
        return self.fc1.backward(d_pre)


# ======================================================================
class TransformerLayer1D(DistModule):
    """Pre-LN Megatron layer, mirroring :class:`TransformerLayer2D`."""

    def __init__(
        self,
        group: ProcessGroup,
        cfg: ModelConfig,
        layer_index: int,
        params: dict,
        buffers: Optional[BufferManager] = None,
        fused_attention: bool = False,
        attention_chunk: int = 64,
    ):
        super().__init__()
        self.group = group
        self.cfg = cfg
        self.index = layer_index
        self.buffers = buffers
        pre = f"layer{layer_index}"
        self.ln1 = self.register_module(
            LayerNorm1D(
                group, f"{pre}.ln1", params[f"{pre}.ln1.gamma"],
                params[f"{pre}.ln1.beta"], cfg.ln_eps, buffers,
            )
        )
        self.attn = self.register_module(
            SelfAttention1D(
                group, cfg, f"{pre}.attn",
                params[f"{pre}.attn.wqkv"], params[f"{pre}.attn.bqkv"],
                params[f"{pre}.attn.wo"], params[f"{pre}.attn.bo"], buffers,
                fused=fused_attention, attention_chunk=attention_chunk,
            )
        )
        self.ln2 = self.register_module(
            LayerNorm1D(
                group, f"{pre}.ln2", params[f"{pre}.ln2.gamma"],
                params[f"{pre}.ln2.beta"], cfg.ln_eps, buffers,
            )
        )
        self.mlp = self.register_module(
            MLP1D(
                group, f"{pre}.mlp",
                params[f"{pre}.mlp.w1"], params[f"{pre}.mlp.b1"],
                params[f"{pre}.mlp.w2"], params[f"{pre}.mlp.b2"], buffers,
            )
        )

    def forward(self, x: DTensor, batch_size: int) -> DTensor:
        attn_out = self.attn.forward(self.ln1.forward(x), batch_size)
        x_mid = x + attn_out
        _charge_elementwise(self.group, x_mid, "add")
        _hold(self.buffers, "forward", x_mid)
        mlp_out = self.mlp.forward(self.ln2.forward(x_mid))
        out = x_mid + mlp_out
        _charge_elementwise(self.group, out, "add")
        _hold(self.buffers, "forward", out)
        return out

    def backward(self, dy: DTensor) -> DTensor:
        d_ln2_out = self.mlp.backward(dy)
        d_xmid = dy + self.ln2.backward(d_ln2_out)
        d_ln1_out = self.attn.backward(d_xmid)
        dx = d_xmid + self.ln1.backward(d_ln1_out)
        _charge_elementwise(self.group, dx, "add")
        return dx
