"""Sequence-classification head for the Megatron baseline.

The classifier weight ``[h, C]`` is tiny (C is 2 in the paper's Fig. 1), so
Megatron-LM keeps it replicated and computes the head redundantly on every
device — activations are already replicated, so no communication is needed
at all; gradients come out identical on every rank.
"""

from __future__ import annotations

from typing import Optional


from repro.backend import ops
from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm.group import ProcessGroup
from repro.config import ModelConfig
from repro.core.buffers import BufferManager
from repro.core.param import DistModule, DistParam, charge_param_memory
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import REPLICATED_1D
from repro.mesh.partition import distribute_replicated_1d
from repro.reference import functional as F


class ClassificationHead1D(DistModule):
    """token-0 pooling → replicated dense [h, C] → cross-entropy."""

    _cache_attrs = ("_saved",)

    def __init__(
        self,
        group: ProcessGroup,
        cfg: ModelConfig,
        weight_global,
        bias_global,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.group = group
        self.cfg = cfg
        self.buffers = buffers
        self.num_classes = weight_global.shape[1]
        self.weight = self.register_param(
            DistParam("cls_head.weight", distribute_replicated_1d(group, weight_global))
        )
        self.bias = self.register_param(
            DistParam("cls_head.bias", distribute_replicated_1d(group, bias_global))
        )
        charge_param_memory(self.weight, group.sim)
        charge_param_memory(self.bias, group.sim)
        self._saved = None

    def forward(self, ln_out: DTensor, cls_labels: Optional[DTensor] = None):
        group, s = self.group, self.cfg.seq_len
        b = ln_out.global_shape[0] // s
        x0, logits = {}, {}
        for rank in group.ranks:
            x0[rank] = ln_out.local(rank)[::s]  # [b, h]
            logits[rank] = (
                x0[rank] @ self.weight.data.local(rank) + self.bias.data.local(rank)
            )
            group.sim.device(rank).compute(
                2.0 * b * x0[rank].shape[1] * self.num_classes
            )
        if cls_labels is None:
            self._saved = None
            return DTensor(group, REPLICATED_1D, logits, (b, self.num_classes))
        probs, loss_val = {}, None
        for rank in group.ranks:
            loss_seq, p = F.cross_entropy_fwd(logits[rank], cls_labels.local(rank))
            probs[rank] = p
            if loss_val is None:
                loss_val = ops.sum(loss_seq)
            if self.buffers is not None:
                self.buffers.hold("forward", rank, ops.nbytes(p))
        self._saved = (x0, probs, cls_labels, b, ln_out)
        if is_shape_array(loss_val):
            return ShapeArray((), loss_val.dtype)
        return float(loss_val) / b

    def backward(self) -> DTensor:
        if self._saved is None:
            raise RuntimeError("classification backward before forward with labels")
        group, s = self.group, self.cfg.seq_len
        x0, probs, cls_labels, b, ln_out = self._saved
        scale = 1.0 / b
        dw, db, out_shards = {}, {}, {}
        for rank in group.ranks:
            lab = cls_labels.local(rank)
            dl = ops.full(
                (lab.shape[0],), scale, dtype="float64",
                backend=ops.backend_of(probs[rank]),
            )
            dlogits = F.cross_entropy_bwd(probs[rank], lab, dl)
            dw[rank] = ops.transpose(x0[rank]) @ dlogits
            db[rank] = ops.sum(dlogits, axis=0)
            dx0 = dlogits @ ops.transpose(self.weight.data.local(rank))
            d_out = ops.zeros_like(ln_out.local(rank))
            d_out[::s] = dx0
            out_shards[rank] = d_out
            dev = group.sim.device(rank)
            dev.compute(2.0 * x0[rank].shape[1] * b * self.num_classes)
            dev.compute(2.0 * b * self.num_classes * x0[rank].shape[1])
        self.weight.add_grad(
            DTensor(group, REPLICATED_1D, dw, self.weight.data.global_shape)
        )
        self.bias.add_grad(
            DTensor(group, REPLICATED_1D, db, self.bias.data.global_shape)
        )
        self._saved = None
        return DTensor(group, REPLICATED_1D, out_shards, ln_out.global_shape)
