"""The pipeline-parallel execution engine.

One simulated device per stage; contiguous layer slices; micro-batched
forward/backward driven by a :mod:`repro.pipeline.schedule`.  Execution is
dependency-driven: each stage consumes its schedule in order, and an op
fires only when its producers have run — combined with blocking
point-to-point transfers and per-device clocks, this yields the classic
pipeline timeline (fill, steady state, drain) without any explicit timing
logic.

Numerics are exact full-batch training: micro-batch losses are averaged and
each micro-batch's backward is scaled by 1/m, so parameters see exactly the
gradient of the full-batch mean-token loss (the test suite checks this
against :class:`~repro.reference.model.ReferenceTransformer` to 1e-10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm.collectives import send_recv
from repro.config import ModelConfig
from repro.pipeline.schedule import (
    PipeOp,
    Schedule,
    gpipe_schedule,
    max_in_flight,
    one_f_one_b_schedule,
)
from repro.reference import functional as F
from repro.reference.stack import LayerStack
from repro.runtime.simulator import Simulator

_ACT_TAG = "pipeline_act"


@dataclass
class _HeadCache:
    ln: tuple = None
    ln_out: object = None
    probs: object = None
    labels: object = None


class PipelineModel:
    """GPipe / 1F1B pipeline over contiguous layer slices."""

    def __init__(
        self,
        sim: Simulator,
        cfg: ModelConfig,
        params: Dict[str, object],
        num_micro_batches: int = 4,
        schedule: str = "1f1b",
        num_stages: Optional[int] = None,
    ):
        if schedule not in ("gpipe", "1f1b"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.sim = sim
        self.cfg = cfg
        self.params = params
        self.m = num_micro_batches
        self.schedule_name = schedule
        self.S = num_stages if num_stages is not None else sim.num_ranks
        if self.S > sim.num_ranks:
            raise ValueError(f"{self.S} stages need {self.S} ranks, have {sim.num_ranks}")
        if self.S > cfg.num_layers:
            raise ValueError(
                f"{self.S} stages but only {cfg.num_layers} layers to split"
            )
        self.grads: Dict[str, object] = {}
        # contiguous, balanced layer assignment
        counts = [
            cfg.num_layers // self.S + (1 if s < cfg.num_layers % self.S else 0)
            for s in range(self.S)
        ]
        self.stage_layers: List[List[int]] = []
        start = 0
        for c in counts:
            self.stage_layers.append(list(range(start, start + c)))
            start += c
        self.stacks = [LayerStack(cfg, params, idx) for idx in self.stage_layers]
        self._elem = 4 if sim.backend == "shape" else 8

    # ------------------------------------------------------------------
    def schedule(self) -> Schedule:
        if self.schedule_name == "gpipe":
            return gpipe_schedule(self.S, self.m)
        return one_f_one_b_schedule(self.S, self.m)

    def peak_micro_batches_in_flight(self) -> int:
        """Stage-0 activation multiplier of the chosen schedule."""
        return max_in_flight(self.schedule(), 0)

    # ------------------------------------------------------------------
    def forward_backward(self, ids, labels) -> float:
        """One full training iteration; returns the mean-token loss.

        Gradients (all parameters, including embedding/final-LN) accumulate
        into ``self.grads`` under the global parameter names.
        """
        cfg, sim, S, m = self.cfg, self.sim, self.S, self.m
        b, s_len = ids.shape
        if b % m:
            raise ValueError(f"batch {b} not divisible by {m} micro-batches")
        mb = b // m
        for st in self.stacks:
            st.zero_grads()

        ids_mb = self._split(ids, m)
        labels_mb = self._split(labels, m)

        acts: Dict[Tuple[int, int], object] = {}  # (stage, j) -> output
        stage_caches: Dict[Tuple[int, int], list] = {}
        head_caches: Dict[int, _HeadCache] = {}
        dgrads: Dict[Tuple[int, int], object] = {}  # (stage, j) -> dx to send up
        losses: List[object] = []
        done = set()

        def ready(op: PipeOp) -> bool:
            if op.phase == "fwd":
                return op.stage == 0 or ("fwd", op.stage - 1, op.micro_batch) in done
            if ("fwd", op.stage, op.micro_batch) not in done:
                return False
            return op.stage == S - 1 or ("bwd", op.stage + 1, op.micro_batch) in done

        def run_fwd(stage: int, j: int) -> None:
            dev = sim.device(stage)
            if stage == 0:
                x = self._embed(ids_mb[j], dev)
            else:
                buf, produced_at = acts.pop((stage - 1, j))
                x = send_recv(sim, stage - 1, stage, buf, send_time=produced_at)
            y = self.stacks[stage].forward(x, mb)
            stage_caches[(stage, j)] = self.stacks[stage].export_caches()
            dev.compute(self.stacks[stage].flops_forward(mb))
            dev.memory.alloc(
                self.stacks[stage].activation_bytes(mb, self._elem), _ACT_TAG
            )
            if stage == S - 1:
                losses.append(self._head_forward(y, labels_mb[j], j, head_caches, dev))
            else:
                acts[(stage, j)] = (y, dev.clock)  # send starts at production

        def run_bwd(stage: int, j: int) -> None:
            dev = sim.device(stage)
            if stage == S - 1:
                dy = self._head_backward(j, head_caches, dev)
            else:
                buf, produced_at = dgrads.pop((stage + 1, j))
                dy = send_recv(sim, stage + 1, stage, buf, send_time=produced_at)
            self.stacks[stage].import_caches(stage_caches.pop((stage, j)))
            dx = self.stacks[stage].backward(dy)
            dev.compute(2.0 * self.stacks[stage].flops_forward(mb))
            dev.memory.free(
                self.stacks[stage].activation_bytes(mb, self._elem), _ACT_TAG
            )
            if stage == 0:
                self._embed_backward(ids_mb[j], dx)
            else:
                dgrads[(stage, j)] = (dx, dev.clock)

        # dependency-driven execution of the per-stage schedules
        queues = [list(q) for q in self.schedule()]
        remaining = sum(len(q) for q in queues)
        while remaining:
            progressed = False
            for st in range(S):
                if queues[st] and ready(queues[st][0]):
                    op = queues[st].pop(0)
                    (run_fwd if op.phase == "fwd" else run_bwd)(op.stage, op.micro_batch)
                    done.add((op.phase, op.stage, op.micro_batch))
                    remaining -= 1
                    progressed = True
            if not progressed:  # pragma: no cover - schedule bug guard
                raise RuntimeError("pipeline schedule deadlocked")

        # collect stage gradients under the global names
        for st in self.stacks:
            for name, g in st.grads.items():
                self._acc(name, g)
        total = losses[0]
        for l in losses[1:]:
            total = total + l
        if is_shape_array(total):
            return total
        return float(total) / m

    # ------------------------------------------------------------------
    # embedding (stage 0) and LN + LM head + CE (last stage)
    # ------------------------------------------------------------------
    def _embed(self, ids_j, dev):
        table = self.params["embedding.table"]
        T = ids_j.shape[0] * ids_j.shape[1]
        dev.compute(float(T) * self.cfg.hidden_size, kind="elementwise")
        return ops.take_rows(table, ids_j.reshape((T,)))

    def _embed_backward(self, ids_j, dx) -> None:
        table = self.params["embedding.table"]
        g = ops.zeros_like(table)
        ops.index_add(g, ids_j.reshape((dx.shape[0],)), dx)
        self._acc("embedding.table", g)

    def _head_forward(self, x, labels_j, j, head_caches, dev):
        cfg = self.cfg
        table = self.params["embedding.table"]
        T = x.shape[0]
        out, x_hat, inv_std = F.layernorm_fwd(
            x, self.params["final_ln.gamma"], self.params["final_ln.beta"], cfg.ln_eps
        )
        logits = out @ ops.transpose(table)
        dev.compute(2.0 * T * cfg.hidden_size * cfg.vocab_size)
        labels_flat = labels_j.reshape((T,))
        loss_tok, probs = F.cross_entropy_fwd(logits, labels_flat)
        head_caches[j] = _HeadCache(
            ln=(x_hat, inv_std), ln_out=out, probs=probs, labels=labels_flat
        )
        return ops.sum(loss_tok) / float(T)

    def _head_backward(self, j, head_caches, dev):
        cfg = self.cfg
        table = self.params["embedding.table"]
        c = head_caches.pop(j)
        T = c.probs.shape[0]
        dloss = ops.full(
            (T,), 1.0 / (T * self.m), dtype="float64",
            backend=ops.backend_of(c.probs),
        )
        dlogits = F.cross_entropy_bwd(c.probs, c.labels, dloss)
        d_out = dlogits @ table
        self._acc("embedding.table", ops.transpose(dlogits) @ c.ln_out)
        dev.compute(4.0 * T * cfg.hidden_size * cfg.vocab_size)
        x_hat, inv_std = c.ln
        dx, dgamma, dbeta = F.layernorm_bwd(
            d_out, x_hat, inv_std, self.params["final_ln.gamma"]
        )
        self._acc("final_ln.gamma", dgamma)
        self._acc("final_ln.beta", dbeta)
        return dx

    # ------------------------------------------------------------------
    def _acc(self, name: str, g) -> None:
        if name in self.grads:
            self.grads[name] = self.grads[name] + g
        else:
            self.grads[name] = g

    def zero_grads(self) -> None:
        self.grads = {}
        for st in self.stacks:
            st.zero_grads()

    @staticmethod
    def _split(arr, m: int):
        if is_shape_array(arr):
            return [ShapeArray((arr.shape[0] // m,) + arr.shape[1:], arr.dtype)] * m
        return np.split(np.asarray(arr), m, axis=0)

    # ------------------------------------------------------------------
    def scaled_grads(self) -> Dict[str, object]:
        """Gradients of the *mean* loss (backwards are pre-scaled by 1/m,
        so this is just ``self.grads``) — named for API clarity."""
        return self.grads
