"""Pipeline parallelism — the other model-parallel family of the paper's §1.

"Pipeline parallelism [GPipe, PipeDream] is to partition the whole model by
layer in a serial manner, so that the input batch is processed on one
device at a time, and then sent to the next device."

We implement it as a comparison substrate on the same simulated runtime as
the tensor-parallel schemes: each simulated device hosts a contiguous slice
of transformer layers (a serial :class:`~repro.reference.stack.LayerStack`),
activations move between stages with point-to-point transfers, the batch is
split into micro-batches, and two schedules are provided:

* **GPipe**: all micro-batch forwards, then all backwards — simple, but all
  m micro-batches' activations are live at the peak;
* **1F1B** (PipeDream-flush): steady-state alternation of one forward and
  one backward — identical bubble fraction ``(S−1)/(m+S−1)``, but at most
  S micro-batches in flight, so much lower activation memory.

Numerics are exact (the loss and gradients equal full-batch serial
training); the test suite checks both that and the schedule properties
(bubble fraction, memory ordering).
"""

from repro.pipeline.engine import PipelineModel
from repro.pipeline.schedule import bubble_fraction, gpipe_schedule, one_f_one_b_schedule

__all__ = [
    "PipelineModel",
    "gpipe_schedule",
    "one_f_one_b_schedule",
    "bubble_fraction",
]
