"""Pipeline schedules: per-stage ordered (phase, micro-batch) sequences.

A schedule fixes the order in which each *stage* executes its own work; the
engine then runs ops dependency-driven (an op fires once its producers are
done), and the simulator's per-device clocks plus blocking point-to-point
transfers turn that into pipelined timing.  What distinguishes schedules is
therefore not the bubble — both have idle fraction ``(S−1)/(m+S−1)`` — but
how many micro-batches' activations are live at once: all m for GPipe, at
most ``S`` for 1F1B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class PipeOp:
    phase: str  # "fwd" or "bwd"
    stage: int
    micro_batch: int


Schedule = List[List[PipeOp]]  # one op sequence per stage


def gpipe_schedule(num_stages: int, num_micro_batches: int) -> Schedule:
    """Each stage: all its forwards, then all its backwards."""
    _validate(num_stages, num_micro_batches)
    out: Schedule = []
    for s in range(num_stages):
        seq = [PipeOp("fwd", s, j) for j in range(num_micro_batches)]
        seq += [PipeOp("bwd", s, j) for j in range(num_micro_batches)]
        out.append(seq)
    return out


def one_f_one_b_schedule(num_stages: int, num_micro_batches: int) -> Schedule:
    """PipeDream-flush: warm-up forwards, 1F1B steady state, cool-down.

    Stage s warms up with ``min(S−s, m)`` forwards, then alternates one
    backward with one forward until all m micro-batches are done.
    """
    _validate(num_stages, num_micro_batches)
    S, m = num_stages, num_micro_batches
    out: Schedule = []
    for s in range(S):
        warmup = min(S - s, m)
        seq: List[PipeOp] = [PipeOp("fwd", s, j) for j in range(warmup)]
        next_fwd = warmup
        next_bwd = 0
        while next_bwd < m:
            seq.append(PipeOp("bwd", s, next_bwd))
            next_bwd += 1
            if next_fwd < m:
                seq.append(PipeOp("fwd", s, next_fwd))
                next_fwd += 1
        out.append(seq)
    return out


def max_in_flight(schedule: Schedule, stage: int) -> int:
    """Peak number of micro-batches whose forward has run on ``stage`` but
    whose backward has not — the stage's activation-memory multiplier."""
    live = 0
    peak = 0
    for op in schedule[stage]:
        if op.phase == "fwd":
            live += 1
            peak = max(peak, live)
        else:
            live -= 1
    return peak


def bubble_fraction(num_stages: int, num_micro_batches: int) -> float:
    """Idle fraction of an ideal pipeline: (S−1)/(m+S−1) for both schedules."""
    _validate(num_stages, num_micro_batches)
    S, m = num_stages, num_micro_batches
    return (S - 1) / (m + S - 1)


def _validate(num_stages: int, num_micro_batches: int) -> None:
    if num_stages < 1:
        raise ValueError("need at least one stage")
    if num_micro_batches < 1:
        raise ValueError("need at least one micro-batch")
