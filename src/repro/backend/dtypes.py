"""Dtype registry shared by both array backends.

A :class:`DType` is a thin, hashable wrapper over a numpy dtype that also
records the element size in bytes.  The simulated-device allocator and the
analytic memory model both consume :func:`dtype_size`, so keeping the byte
widths in one place guarantees that "measured" (allocator) and "modeled"
(closed-form) memory numbers agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np


@dataclass(frozen=True)
class DType:
    """A named element type with a fixed byte width."""

    name: str
    np_dtype: np.dtype
    itemsize: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType({self.name})"


float16 = DType("float16", np.dtype(np.float16), 2)
float32 = DType("float32", np.dtype(np.float32), 4)
float64 = DType("float64", np.dtype(np.float64), 8)
int32 = DType("int32", np.dtype(np.int32), 4)
int64 = DType("int64", np.dtype(np.int64), 8)
bool_ = DType("bool", np.dtype(np.bool_), 1)

_BY_NAME = {d.name: d for d in (float16, float32, float64, int32, int64, bool_)}
_BY_NP = {d.np_dtype: d for d in (float16, float32, float64, int32, int64, bool_)}


def as_dtype(d) -> DType:
    """Coerce a numpy dtype / string / DType into a :class:`DType`."""
    if isinstance(d, DType):
        return d
    if isinstance(d, str):
        try:
            return _BY_NAME[d]
        except KeyError:
            raise ValueError(f"unknown dtype name {d!r}") from None
    nd = np.dtype(d)
    try:
        return _BY_NP[nd]
    except KeyError:
        raise ValueError(f"unsupported numpy dtype {nd}") from None


def dtype_size(d) -> int:
    """Element size in bytes of a dtype-like."""
    return as_dtype(d).itemsize


@lru_cache(maxsize=None)
def result_float(*dtypes) -> DType:
    """Promotion rule for floating arithmetic between backend dtypes.

    Memoized: the dryrun backend resolves a promotion on every arithmetic
    op, and the distinct argument tuples number in the dozens at most.
    """
    ds = [as_dtype(d) for d in dtypes]
    floats = [d for d in ds if d.np_dtype.kind == "f"]
    if not floats:
        return float64
    return max(floats, key=lambda d: d.itemsize)
