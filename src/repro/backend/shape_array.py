"""Shape-only placeholder arrays for dryrun (performance-model) execution.

A :class:`ShapeArray` carries a shape and a dtype but no data.  It implements
enough of the :class:`numpy.ndarray` surface (arithmetic with broadcasting,
``@``, reshape/transpose, slicing, reductions) that the distributed model
code in :mod:`repro.core` and :mod:`repro.megatron` runs unmodified at paper
scale, with all memory/FLOP/byte accounting intact, while never allocating
the underlying gigabytes.

Shape and dtype propagation follow numpy semantics exactly; any shape error a
real run would raise (mismatched matmul inner dims, bad broadcast) is raised
here too, so a dryrun is a meaningful validity check for a configuration.
"""

from __future__ import annotations

from math import prod
from typing import Tuple

import numpy as np

from repro.backend.dtypes import DType, as_dtype, bool_, result_float


def _normalize_axis(axis, ndim):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


# np.broadcast_shapes is surprisingly expensive (it builds dummy views); the
# dryrun backend resolves the same few shape pairs millions of times, so a
# plain dict memo pays for itself immediately.
_BCAST_CACHE: dict = {}


def _broadcast_shapes(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    if a == b:
        return a
    key = (a, b)
    out = _BCAST_CACHE.get(key)
    if out is None:
        out = _BCAST_CACHE[key] = np.broadcast_shapes(a, b)
    return out


class ShapeArray:
    """An array placeholder carrying only ``shape`` and ``dtype``."""

    __slots__ = ("shape", "dtype")
    __array_priority__ = 100.0  # make numpy defer to our reflected operators

    def __init__(self, shape, dtype=None):
        # fast path: shapes almost always arrive as tuples of plain ints
        # (propagated from an existing ShapeArray)
        if type(shape) is tuple:
            for s in shape:
                if type(s) is not int:
                    shape = tuple(int(x) for x in shape)
                    break
        else:
            shape = tuple(int(s) for s in shape)
        self.shape: Tuple[int, ...] = shape
        self.dtype: DType = (
            dtype if type(dtype) is DType
            else as_dtype(dtype if dtype is not None else "float32")
        )
        if any(s < 0 for s in shape):
            raise ValueError(f"negative dimension in shape {shape}")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return prod(self.shape)

    @property
    def nbytes(self) -> int:
        return prod(self.shape) * self.dtype.itemsize

    @property
    def T(self) -> "ShapeArray":
        return ShapeArray(self.shape[::-1], self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShapeArray(shape={self.shape}, dtype={self.dtype.name})"

    # ------------------------------------------------------------------
    # arithmetic (shape broadcasting only)
    # ------------------------------------------------------------------
    def _binary(self, other, bool_result=False):
        if isinstance(other, ShapeArray):
            shape = _broadcast_shapes(self.shape, other.shape)
            odtype = other.dtype
        elif isinstance(other, np.ndarray):
            shape = _broadcast_shapes(self.shape, other.shape)
            odtype = as_dtype(other.dtype)
        elif isinstance(other, (int, float, bool, np.generic)):
            shape, odtype = self.shape, self.dtype
        else:
            return NotImplemented
        dtype = bool_ if bool_result else result_float(self.dtype, odtype)
        return ShapeArray(shape, dtype)

    __add__ = __radd__ = __sub__ = __rsub__ = lambda self, other: self._binary(other)
    __mul__ = __rmul__ = __truediv__ = __rtruediv__ = lambda self, other: self._binary(other)
    __pow__ = __rpow__ = lambda self, other: self._binary(other)
    __mod__ = __floordiv__ = lambda self, other: self._binary(other)

    def __neg__(self):
        return ShapeArray(self.shape, self.dtype)

    def __lt__(self, other):
        return self._binary(other, bool_result=True)

    __le__ = __gt__ = __ge__ = __lt__

    def __eq__(self, other):  # elementwise, numpy-style
        return self._binary(other, bool_result=True)

    def __ne__(self, other):
        return self._binary(other, bool_result=True)

    def __and__(self, other):
        return self._binary(other, bool_result=True)

    __or__ = __xor__ = __rand__ = __ror__ = __and__

    def __invert__(self):
        return ShapeArray(self.shape, bool_)

    def __hash__(self):  # identity hash despite custom __eq__
        return id(self)

    # ------------------------------------------------------------------
    # matmul
    # ------------------------------------------------------------------
    def __matmul__(self, other):
        if not isinstance(other, (ShapeArray, np.ndarray)):
            return NotImplemented
        a, b = self.shape, tuple(other.shape)
        if len(a) < 1 or len(b) < 1:
            raise ValueError("matmul operands must be at least 1-D")
        if len(a) == 1:
            a = (1,) + a
        if len(b) == 1:
            b = b + (1,)
        if a[-1] != b[-2]:
            raise ValueError(f"matmul inner dims mismatch: {self.shape} @ {tuple(other.shape)}")
        batch = _broadcast_shapes(a[:-2], b[:-2])
        shape = batch + (a[-2], b[-1])
        odt = other.dtype if isinstance(other, ShapeArray) else as_dtype(other.dtype)
        return ShapeArray(shape, result_float(self.dtype, odt))

    def __rmatmul__(self, other):
        return ShapeArray(other.shape, as_dtype(other.dtype)).__matmul__(self)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        shape = tuple(int(s) for s in shape)
        if shape.count(-1) > 1:
            raise ValueError("can only specify one unknown dimension")
        if -1 in shape:
            known = prod(s for s in shape if s != -1) or 1
            if known == 0 or self.size % known != 0:
                raise ValueError(f"cannot reshape {self.shape} into {shape}")
            shape = tuple(self.size // known if s == -1 else s for s in shape)
        if prod(shape) != self.size:
            raise ValueError(f"cannot reshape array of size {self.size} into shape {shape}")
        return ShapeArray(shape, self.dtype)

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(range(self.ndim))[::-1]
        if sorted(a % self.ndim for a in axes) != list(range(self.ndim)):
            raise ValueError(f"invalid transpose axes {axes} for ndim {self.ndim}")
        return ShapeArray(tuple(self.shape[a % self.ndim] for a in axes), self.dtype)

    def swapaxes(self, a, b):
        axes = list(range(self.ndim))
        axes[a % self.ndim], axes[b % self.ndim] = axes[b % self.ndim], axes[a % self.ndim]
        return self.transpose(*axes)

    def astype(self, dtype):
        return ShapeArray(self.shape, as_dtype(dtype))

    def copy(self):
        return ShapeArray(self.shape, self.dtype)

    def ravel(self):
        return ShapeArray((self.size,), self.dtype)

    def flatten(self):
        return self.ravel()

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        if not isinstance(key, tuple):
            key = (key,)
        # integer (fancy) indexing with an index array on the leading axis
        if len(key) == 1 and isinstance(key[0], (ShapeArray, np.ndarray)):
            idx = key[0]
            kind = idx.dtype.np_dtype.kind if isinstance(idx, ShapeArray) else idx.dtype.kind
            if kind == "b":
                raise TypeError("boolean mask indexing is data-dependent; use ops.where")
            return ShapeArray(tuple(idx.shape) + self.shape[1:], self.dtype)
        out = []
        dims = iter(self.shape)
        n_explicit = sum(k is not None and k is not Ellipsis for k in key)
        expanded = []
        for k in key:
            if k is Ellipsis:
                expanded.extend([slice(None)] * (self.ndim - n_explicit))
            else:
                expanded.append(k)
        key = expanded
        for k in key:
            if k is None:
                out.append(1)
                continue
            d = next(dims)
            if isinstance(k, int):
                if not -d <= k < d:
                    raise IndexError(f"index {k} out of range for axis of size {d}")
                continue  # dimension removed
            if isinstance(k, slice):
                out.append(len(range(*k.indices(d))))
            else:
                raise TypeError(f"unsupported dryrun index {k!r}")
        out.extend(dims)
        return ShapeArray(tuple(out), self.dtype)

    def __setitem__(self, key, value):
        # dryrun writes are no-ops; shape compatibility is not enforced here
        # because numpy's assignment broadcasting is permissive.
        return None

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def _reduce(self, axis=None, keepdims=False, dtype=None):
        axes = _normalize_axis(axis, self.ndim)
        if axes is None:
            shape = (1,) * self.ndim if keepdims else ()
        elif keepdims:
            shape = tuple(1 if i in axes else s for i, s in enumerate(self.shape))
        else:
            shape = tuple(s for i, s in enumerate(self.shape) if i not in axes)
        return ShapeArray(shape, as_dtype(dtype) if dtype is not None else self.dtype)

    def sum(self, axis=None, keepdims=False, dtype=None):
        return self._reduce(axis, keepdims, dtype)

    def max(self, axis=None, keepdims=False):
        return self._reduce(axis, keepdims)

    def min(self, axis=None, keepdims=False):
        return self._reduce(axis, keepdims)

    def mean(self, axis=None, keepdims=False):
        return self._reduce(axis, keepdims, result_float(self.dtype))

    def var(self, axis=None, keepdims=False):
        return self._reduce(axis, keepdims, result_float(self.dtype))

    def argmax(self, axis=None):
        out = self._reduce(axis, keepdims=False)
        return ShapeArray(out.shape, "int64")

    def item(self) -> float:
        if self.size != 1:
            raise ValueError("item() on non-scalar ShapeArray")
        return float("nan")  # dryrun carries no values


def is_shape_array(x) -> bool:
    """True when ``x`` is a dryrun placeholder array."""
    return isinstance(x, ShapeArray)
