"""Backend-dispatching array operations.

Every local (on-device) computation in the distributed model code goes
through this module instead of calling numpy directly, so the same module
code runs in *numeric* mode (real :class:`numpy.ndarray` data) and in
*dryrun* mode (:class:`~repro.backend.shape_array.ShapeArray` placeholders).

The dispatch rule is simple: if any operand is a ``ShapeArray``, the result
is a ``ShapeArray`` with numpy-compatible shape/dtype propagation; otherwise
numpy executes the real computation.
"""

from __future__ import annotations

import builtins

import numpy as np
from scipy import special as _sp_special

from repro.backend.dtypes import as_dtype, result_float
from repro.backend.shape_array import ShapeArray, is_shape_array

NUMPY = "numpy"
SHAPE = "shape"


def backend_of(x) -> str:
    """Return the backend name ("numpy" or "shape") an array belongs to."""
    return SHAPE if is_shape_array(x) else NUMPY


def _any_shape(*xs) -> bool:
    return any(is_shape_array(x) for x in xs)


# ----------------------------------------------------------------------
# creation
# ----------------------------------------------------------------------
def zeros(shape, dtype="float32", backend=NUMPY):
    """Allocate a zero array on the requested backend."""
    if backend == SHAPE:
        return ShapeArray(shape, dtype)
    return np.zeros(shape, dtype=as_dtype(dtype).np_dtype)


def ones(shape, dtype="float32", backend=NUMPY):
    if backend == SHAPE:
        return ShapeArray(shape, dtype)
    return np.ones(shape, dtype=as_dtype(dtype).np_dtype)


def full(shape, value, dtype="float32", backend=NUMPY):
    if backend == SHAPE:
        return ShapeArray(shape, dtype)
    return np.full(shape, value, dtype=as_dtype(dtype).np_dtype)


def zeros_like(x):
    if is_shape_array(x):
        return ShapeArray(x.shape, x.dtype)
    return np.zeros_like(x)


def ones_like(x):
    if is_shape_array(x):
        return ShapeArray(x.shape, x.dtype)
    return np.ones_like(x)


def arange(n, dtype="int64", backend=NUMPY):
    if backend == SHAPE:
        return ShapeArray((int(n),), dtype)
    return np.arange(int(n), dtype=as_dtype(dtype).np_dtype)


def asarray(x, dtype=None):
    """Pass ShapeArrays through; coerce everything else to ndarray."""
    if is_shape_array(x):
        return x if dtype is None else x.astype(dtype)
    a = np.asarray(x)
    return a if dtype is None else a.astype(as_dtype(dtype).np_dtype)


# ----------------------------------------------------------------------
# elementwise
# ----------------------------------------------------------------------
def _unary(x, np_fn, float_result=True):
    if is_shape_array(x):
        dt = result_float(x.dtype) if float_result else x.dtype
        return ShapeArray(x.shape, dt)
    return np_fn(x)


def exp(x):
    return _unary(x, np.exp)


def log(x):
    return _unary(x, np.log)


def tanh(x):
    return _unary(x, np.tanh)


def erf(x):
    return _unary(x, _sp_special.erf)


def sqrt(x):
    return _unary(x, np.sqrt)


def abs(x):  # noqa: A001 - mirrors numpy namespace
    return _unary(x, np.abs, float_result=False)


def sign(x):
    return _unary(x, np.sign, float_result=False)


def square(x):
    return _unary(x, np.square, float_result=False)


def maximum(a, b):
    if _any_shape(a, b):
        sa = a.shape if hasattr(a, "shape") else ()
        sb = b.shape if hasattr(b, "shape") else ()
        dt = result_float(
            a.dtype if hasattr(a, "dtype") else "float64",
            b.dtype if hasattr(b, "dtype") else "float64",
        )
        return ShapeArray(np.broadcast_shapes(sa, sb), dt)
    return np.maximum(a, b)


def minimum(a, b):
    if _any_shape(a, b):
        return maximum(a, b)
    return np.minimum(a, b)


def where(cond, a, b):
    if _any_shape(cond, a, b):
        shapes = [x.shape for x in (cond, a, b) if hasattr(x, "shape")]
        dts = [x.dtype for x in (a, b) if hasattr(x, "dtype")]
        return ShapeArray(np.broadcast_shapes(*shapes), dts[0] if dts else "float32")
    return np.where(cond, a, b)


def clip(x, lo, hi):
    if is_shape_array(x):
        return ShapeArray(x.shape, x.dtype)
    return np.clip(x, lo, hi)


# ----------------------------------------------------------------------
# linear algebra & reshaping
# ----------------------------------------------------------------------
def matmul(a, b):
    """Matrix product; works for both backends via ``__matmul__``."""
    return a @ b


def transpose(x, axes=None):
    if axes is None:
        return x.T if x.ndim == 2 else x.transpose()
    return x.transpose(*axes)


def reshape(x, shape):
    return x.reshape(shape)


def concatenate(xs, axis=0):
    if any(is_shape_array(x) for x in xs):
        axis = axis % xs[0].ndim
        base = list(xs[0].shape)
        base[axis] = builtins.sum(x.shape[axis] for x in xs)
        for x in xs:
            s = list(x.shape)
            s[axis] = base[axis]
            if tuple(s) != tuple(base):
                raise ValueError("concatenate shape mismatch")
        return ShapeArray(tuple(base), xs[0].dtype)
    return np.concatenate(xs, axis=axis)


def split(x, sections, axis=0):
    """Split into ``sections`` equal parts along ``axis``."""
    if is_shape_array(x):
        axis = axis % x.ndim
        if x.shape[axis] % sections != 0:
            raise ValueError(f"cannot split axis of size {x.shape[axis]} into {sections}")
        s = list(x.shape)
        s[axis] //= sections
        return [ShapeArray(tuple(s), x.dtype) for _ in range(sections)]
    return np.split(x, sections, axis=axis)


def stack(xs, axis=0):
    if any(is_shape_array(x) for x in xs):
        s = list(xs[0].shape)
        s.insert(axis % (xs[0].ndim + 1), len(xs))
        return ShapeArray(tuple(s), xs[0].dtype)
    return np.stack(xs, axis=axis)


# ----------------------------------------------------------------------
# batched-mesh stages (numeric backend only — the batched SUMMA engine
# falls back to the per-rank path for dryrun ShapeArrays)
# ----------------------------------------------------------------------
def batched_outer_matmul(astk, bstk, out):
    """``out[i, j] = astk[i] @ bstk[j]`` as one broadcasted matmul.

    ``(q,1,m,k) @ (1,q,k,n) → (q,q,m,n)``.  numpy's matmul gufunc
    dispatches every 2-D slice to the same BLAS gemm as ``astk[i] @
    bstk[j]``, so each slice is bit-identical to the per-rank product.
    """
    np.matmul(astk[:, None], bstk[None], out=out)
    return out


def batched_matmul_transb(afull, bstk, out):
    """``out[i, j] = afull[i, j] @ bstk[j].T`` (SUMMA Alg. 2 stage).

    The transpose is a view, exactly like the per-rank ``ablk @
    transpose(bblk)``, so the gemm sees the same operands and flags.
    """
    np.matmul(afull, bstk.transpose(0, 2, 1)[None], out=out)
    return out


def batched_matmul_transa(astk, bfull, out):
    """``out[i, j] = astk[i].T @ bfull[i, j]`` (SUMMA Alg. 3 stage)."""
    np.matmul(astk.transpose(0, 2, 1)[:, None], bfull, out=out)
    return out


def fold_stack_sum(part, axis):
    """Sum a stacked axis of ``part`` by copy-then-in-place-add in index
    order — the exact fold of ``collectives._combine`` (copy the first
    shard, then ``np.add(acc, b, out=acc)`` in group-rank order), so each
    output slice is bit-identical to the per-rank reduce."""
    p = np.moveaxis(part, axis, 0)
    acc = p[0].copy()
    for t in range(1, p.shape[0]):
        np.add(acc, p[t], out=acc)
    return acc


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def sum(x, axis=None, keepdims=False):  # noqa: A001 - mirrors numpy namespace
    return x.sum(axis=axis, keepdims=keepdims)


def max(x, axis=None, keepdims=False):  # noqa: A001
    return x.max(axis=axis, keepdims=keepdims)


def mean(x, axis=None, keepdims=False):
    return x.mean(axis=axis, keepdims=keepdims)


def var(x, axis=None, keepdims=False):
    return x.var(axis=axis, keepdims=keepdims)


# ----------------------------------------------------------------------
# gather / scatter
# ----------------------------------------------------------------------
def take_rows(table, idx):
    """``table[idx]`` — gather rows of a 2-D table by an integer index array."""
    return table[idx]


def take_along_rows(x, idx):
    """For 2-D ``x`` [T, C] and 1-D integer ``idx`` [T], return ``x[t, idx[t]]``."""
    if is_shape_array(x) or is_shape_array(idx):
        return ShapeArray(tuple(idx.shape), x.dtype)
    return x[np.arange(x.shape[0]), idx]


def put_along_rows_add(x, idx, values):
    """In-place ``x[t, idx[t]] += values[t]`` for 2-D ``x``. No-op in dryrun."""
    if is_shape_array(x) or is_shape_array(idx):
        return x
    np.add.at(x, (np.arange(x.shape[0]), np.asarray(idx)), values)
    return x


def index_add(target, idx, updates):
    """In-place ``target[idx[t]] += updates[t]`` (scatter-add on axis 0)."""
    if is_shape_array(target) or is_shape_array(idx):
        return target
    np.add.at(target, np.asarray(idx), updates)
    return target


# ----------------------------------------------------------------------
# utilities
# ----------------------------------------------------------------------
def nbytes(x) -> int:
    """Byte size of an array on either backend."""
    return int(x.nbytes)


def copy(x):
    return x.copy()


def astype(x, dtype):
    if is_shape_array(x):
        return x.astype(dtype)
    return x.astype(as_dtype(dtype).np_dtype)


def allclose(a, b, rtol=1e-6, atol=1e-9) -> bool:
    """Numeric comparison; dryrun arrays compare by shape/dtype only."""
    if _any_shape(a, b):
        return tuple(a.shape) == tuple(b.shape)
    return bool(np.allclose(a, b, rtol=rtol, atol=atol))
