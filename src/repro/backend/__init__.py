"""Array backends for the Optimus reproduction.

Two interchangeable backends execute the same module code:

* the **numpy backend** operates on real :class:`numpy.ndarray` data and is
  used for numerical-correctness work (tests, examples, training);
* the **shape backend** operates on :class:`ShapeArray` placeholders that
  carry only ``shape``/``dtype``.  It lets the full distributed model run at
  paper scale (h=8192, b=384, 64 devices) without allocating any data while
  still exercising the identical code paths, so FLOP/byte/memory accounting
  is shared between modes.

All module code goes through :mod:`repro.backend.ops`, which dispatches on
array type.
"""

from repro.backend import ops
from repro.backend.dtypes import DType, bool_, dtype_size, float32, float64, int64
from repro.backend.shape_array import ShapeArray, is_shape_array

__all__ = [
    "DType",
    "float32",
    "float64",
    "int64",
    "bool_",
    "dtype_size",
    "ShapeArray",
    "is_shape_array",
    "ops",
]
