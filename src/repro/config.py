"""Model and run configurations, including the paper's experiment presets.

Conventions follow the paper (§2.1):

    b — batch size            s — sequence length
    h — hidden size           n — number of attention heads
    v — vocabulary size       N — number of transformer layers
    p — number of devices     q — SUMMA mesh dimension (p = q²)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of the transformer used in all experiments."""

    vocab_size: int = 3200
    hidden_size: int = 64
    num_heads: int = 4
    num_layers: int = 2
    seq_len: int = 16
    mlp_ratio: int = 4
    ln_eps: float = 1e-5
    dtype: str = "float32"

    def __post_init__(self):
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden size {self.hidden_size} not divisible by "
                f"{self.num_heads} heads"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def ffn_hidden(self) -> int:
        return self.mlp_ratio * self.hidden_size

    # ------------------------------------------------------------------
    # divisibility requirements of the two schemes (paper §5.2 discusses
    # exactly these constraints when choosing Table 3 settings)
    # ------------------------------------------------------------------
    def validate_for_optimus(self, q: int, batch_size: int, include_vocab: bool = True) -> None:
        """Optimus needs b, h (and v, when the embedding/LM head is used)
        divisible by q, and n divisible by q."""
        problems = []
        if batch_size % q:
            problems.append(f"batch {batch_size} % q={q}")
        if self.hidden_size % q:
            problems.append(f"hidden {self.hidden_size} % q={q}")
        if self.num_heads % q:
            problems.append(f"heads {self.num_heads} % q={q}")
        if include_vocab and self.vocab_size % q:
            problems.append(f"vocab {self.vocab_size} % q={q}")
        # n % q == 0 together with h % n == 0 (enforced at construction)
        # guarantees each 3h/q column block covers whole heads.
        if problems:
            raise ValueError("config invalid for Optimus mesh: " + ", ".join(problems))

    def validate_for_megatron(self, p: int, batch_size: int, include_vocab: bool = True) -> None:
        """Megatron needs n (and v, when the embedding is used) divisible by
        p — the paper's §5.2 point about having to tweak h and n."""
        problems = []
        if self.num_heads % p:
            problems.append(f"heads {self.num_heads} % p={p}")
        if include_vocab and self.vocab_size % p:
            problems.append(f"vocab {self.vocab_size} % p={p}")
        if self.ffn_hidden % p:
            problems.append(f"ffn {self.ffn_hidden} % p={p}")
        if problems:
            raise ValueError("config invalid for Megatron: " + ", ".join(problems))

    def params_per_layer(self) -> int:
        """Parameter count of one transformer layer (weights + biases + LN)."""
        h, f = self.hidden_size, self.ffn_hidden
        attn = h * 3 * h + 3 * h + h * h + h
        mlp = h * f + f + f * h + h
        ln = 4 * h  # two layernorms, affine
        return attn + mlp + ln

    def total_params(self, include_embedding: bool = True) -> int:
        n = self.num_layers * self.params_per_layer() + 2 * self.hidden_size
        if include_embedding:
            n += self.vocab_size * self.hidden_size
        return n


@dataclass(frozen=True)
class RunConfig:
    """One experiment row: a model, a device count, a batch size."""

    model: ModelConfig
    num_devices: int
    batch_size: int
    label: str = ""

    @property
    def q(self) -> int:
        q = int(round(self.num_devices**0.5))
        if q * q != self.num_devices:
            raise ValueError(f"{self.num_devices} devices is not a square mesh")
        return q


def _weak_model(h: int, n: int) -> ModelConfig:
    return ModelConfig(
        vocab_size=51200, hidden_size=h, num_heads=n, num_layers=24, seq_len=512
    )


def table2_weak_scaling() -> List[dict]:
    """Table 2 settings: fixed params/device, h ∝ q, N=24, s=512.

    Batch sizes are the paper's: Optimus scales b with q; Megatron must
    *shrink* b as p grows to stay in memory.
    """
    rows = []
    for p, h, n, b_meg, b_opt in [
        (4, 2048, 32, 60, 96),
        (16, 4096, 64, 60, 192),
        (36, 6120, 72, 40, 288),
        (64, 8192, 128, 30, 384),
    ]:
        rows.append(
            {
                "num_devices": p,
                "model_megatron": _weak_model(h, n),
                "model_optimus": _weak_model(h if h != 6120 else 6120, n),
                "batch_megatron": b_meg,
                "batch_optimus": b_opt,
            }
        )
    return rows


def table3_strong_scaling() -> List[dict]:
    """Table 3 settings: fixed problem size h≈3072, b=12 (Megatron) / 24."""
    rows = []
    for p, h_meg, n_meg in [(4, 3072, 64), (16, 3072, 64), (36, 3096, 72), (64, 3072, 64)]:
        rows.append(
            {
                "num_devices": p,
                "model_megatron": _weak_model(h_meg, n_meg),
                "model_optimus": _weak_model(3072, 24),
                "batch_megatron": 12,
                "batch_optimus": 24,
            }
        )
    return rows


def tiny_config(**overrides) -> ModelConfig:
    """A small config that runs numerically in tests (divisible by q∈{1,2,3})."""
    base = dict(
        vocab_size=48,
        hidden_size=24,
        num_heads=6,
        num_layers=2,
        seq_len=8,
    )
    base.update(overrides)
    return ModelConfig(**base)
