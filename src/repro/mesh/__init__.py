"""Device mesh and distributed-tensor representation.

Optimus arranges ``p = q²`` devices into a ``q × q`` mesh (§2.4).  A
:class:`Mesh` owns the row, column and world process groups (with sibling
information so the cost model prices the q concurrent row/column collectives
of a SUMMA step correctly).  A :class:`DTensor` is a layout descriptor plus
one local shard per rank; :mod:`repro.mesh.partition` converts between global
numpy arrays and shards for tests and I/O.
"""

from repro.mesh import partition
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import (
    BLOCKED_2D,
    COL_BLOCKED,
    REPLICATED,
    REPLICATED_1D,
    ROW_BLOCKED,
    SHARDED_1D,
    Layout,
)
from repro.mesh.mesh import Mesh
from repro.mesh.partition import (
    assemble_any,
    assemble_blocked_2d,
    assemble_row_blocked,
    assemble_sharded_1d,
    distribute_blocked_2d,
    distribute_replicated,
    distribute_replicated_1d,
    distribute_row_blocked,
    distribute_sharded_1d,
    scatter_any,
)

__all__ = [
    "Mesh",
    "Layout",
    "BLOCKED_2D",
    "ROW_BLOCKED",
    "COL_BLOCKED",
    "REPLICATED",
    "SHARDED_1D",
    "REPLICATED_1D",
    "DTensor",
    "partition",
    "distribute_blocked_2d",
    "assemble_blocked_2d",
    "distribute_row_blocked",
    "assemble_row_blocked",
    "distribute_replicated",
    "distribute_sharded_1d",
    "assemble_sharded_1d",
    "distribute_replicated_1d",
    "assemble_any",
    "scatter_any",
]
