"""Partition global arrays into shards and assemble them back.

These helpers implement the layouts of :mod:`repro.mesh.layouts` for both
backends (real ndarrays and dryrun ShapeArrays — basic slicing works on
both).  They model *initial placement* and *test-time inspection*, so they
charge no communication: a real job would materialize parameters directly on
their owning devices.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ops
from repro.comm.group import ProcessGroup
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import (
    BLOCKED_2D,
    REPLICATED,
    REPLICATED_1D,
    ROW0_BLOCKROWS,
    ROW0_COLS,
    ROW_BLOCKED,
    SHARDED_1D,
)
from repro.mesh.mesh import Mesh


def _check_divisible(dim: int, parts: int, what: str) -> int:
    if dim % parts != 0:
        raise ValueError(f"{what} of size {dim} not divisible by {parts}")
    return dim // parts


def block_slice(dim: int, parts: int, index: int) -> slice:
    """The ``index``-th of ``parts`` equal slices of an axis of size ``dim``."""
    step = _check_divisible(dim, parts, "axis")
    return slice(index * step, (index + 1) * step)


# ----------------------------------------------------------------------
# 2-D mesh layouts
# ----------------------------------------------------------------------
def distribute_blocked_2d(mesh: Mesh, a) -> DTensor:
    """Split a 2-D matrix into q×q blocks; coord (i, j) gets block (i, j)."""
    if a.ndim != 2:
        raise ValueError(f"blocked_2d requires a 2-D matrix, got shape {a.shape}")
    q = mesh.q
    _check_divisible(a.shape[0], q, "rows")
    _check_divisible(a.shape[1], q, "cols")
    shards = {}
    for i in range(q):
        ri = block_slice(a.shape[0], q, i)
        for j in range(q):
            cj = block_slice(a.shape[1], q, j)
            shards[mesh.rank(i, j)] = a[ri, cj]
    return DTensor(mesh, BLOCKED_2D, shards, a.shape)


def assemble_blocked_2d(dt: DTensor) -> object:
    """Inverse of :func:`distribute_blocked_2d`."""
    mesh: Mesh = dt.owner
    q = mesh.q
    rows = [
        ops.concatenate([dt.local(mesh.rank(i, j)) for j in range(q)], axis=1)
        for i in range(q)
    ]
    return ops.concatenate(rows, axis=0)


def distribute_row_blocked(mesh: Mesh, a) -> DTensor:
    """Split axis 0 by mesh row; replicate within each row (token ids, labels)."""
    q = mesh.q
    _check_divisible(a.shape[0], q, "axis 0")
    shards = {}
    for i in range(q):
        block = a[block_slice(a.shape[0], q, i)]
        for j in range(q):
            rank = mesh.rank(i, j)
            shards[rank] = block if j == 0 else _replica(block)
    return DTensor(mesh, ROW_BLOCKED, shards, a.shape)


def assemble_row_blocked(dt: DTensor) -> object:
    mesh: Mesh = dt.owner
    return ops.concatenate([dt.local(mesh.rank(i, 0)) for i in range(mesh.q)], axis=0)


def distribute_row0_cols(mesh: Mesh, a) -> DTensor:
    """Split a 1-D vector into q blocks hosted by mesh row 0 (paper Fig. 5)."""
    if a.ndim != 1:
        raise ValueError(f"row0_cols requires a 1-D vector, got shape {a.shape}")
    q = mesh.q
    _check_divisible(a.shape[0], q, "vector")
    shards = {mesh.rank(0, j): a[block_slice(a.shape[0], q, j)] for j in range(q)}
    return DTensor(mesh, ROW0_COLS, shards, a.shape)


def assemble_row0_cols(dt: DTensor) -> object:
    mesh: Mesh = dt.owner
    return ops.concatenate([dt.local(mesh.rank(0, j)) for j in range(mesh.q)], axis=0)


def distribute_row0_blockrows(mesh: Mesh, a) -> DTensor:
    """Split a 2-D matrix along axis 0 into q blocks hosted by mesh row 0."""
    if a.ndim != 2:
        raise ValueError(f"row0_blockrows requires a 2-D matrix, got {a.shape}")
    q = mesh.q
    _check_divisible(a.shape[0], q, "rows")
    shards = {
        mesh.rank(0, j): a[block_slice(a.shape[0], q, j)] for j in range(q)
    }
    return DTensor(mesh, ROW0_BLOCKROWS, shards, a.shape)


def assemble_row0_blockrows(dt: DTensor) -> object:
    mesh: Mesh = dt.owner
    return ops.concatenate([dt.local(mesh.rank(0, j)) for j in range(mesh.q)], axis=0)


def assemble_any(dt: DTensor) -> object:
    """Assemble any DTensor back to a global array, dispatching on layout."""
    kind = dt.layout.kind
    if kind == "blocked_2d":
        return assemble_blocked_2d(dt)
    if kind == "row_blocked":
        return assemble_row_blocked(dt)
    if kind == "row0_cols":
        return assemble_row0_cols(dt)
    if kind == "row0_blockrows":
        return assemble_row0_blockrows(dt)
    if kind == "sharded_1d":
        return assemble_sharded_1d(dt)
    if kind in ("replicated", "replicated_1d", "rank0"):
        return dt.local(next(iter(sorted(dt.shards))))
    raise ValueError(f"cannot assemble layout {dt.layout}")


def scatter_any(dt: DTensor, a) -> None:
    """Write a global array into an existing DTensor's shards, in place.

    The exact inverse of :func:`assemble_any`: each shard receives the slice
    of ``a`` it owns under ``dt.layout``, copied elementwise into the shard's
    existing buffer (so every alias of the shard — optimizer state, model
    references — observes the restored values).  Like the ``distribute_*``
    helpers this models checkpoint *restore placement* and charges no
    communication.  Block boundaries are derived from the actual shard
    shapes, so ragged ``blocked_2d`` row blocks (MoE) restore correctly.
    """
    from repro.backend.shape_array import is_shape_array

    a = np.asarray(a)
    if tuple(a.shape) != dt.global_shape:
        raise ValueError(
            f"global array shape {a.shape} does not match DTensor "
            f"global_shape {dt.global_shape}"
        )
    if any(is_shape_array(s) for s in dt.shards.values()):
        raise ValueError("cannot scatter real values into dryrun placeholders")
    kind = dt.layout.kind
    if kind == "blocked_2d":
        mesh: Mesh = dt.owner
        q = mesh.q
        w = _check_divisible(a.shape[1], q, "cols")
        row_off = 0
        for i in range(q):
            h = dt.shards[mesh.rank(i, 0)].shape[0]
            for j in range(q):
                dt.shards[mesh.rank(i, j)][...] = a[
                    row_off : row_off + h, j * w : (j + 1) * w
                ]
            row_off += h
        if row_off != a.shape[0]:
            raise ValueError(f"row blocks cover {row_off} of {a.shape[0]} rows")
    elif kind == "row_blocked":
        mesh = dt.owner
        q = mesh.q
        for i in range(q):
            block = a[block_slice(a.shape[0], q, i)]
            for j in range(q):
                dt.shards[mesh.rank(i, j)][...] = block
    elif kind in ("row0_cols", "row0_blockrows"):
        mesh = dt.owner
        off = 0
        for j in range(mesh.q):
            shard = dt.shards[mesh.rank(0, j)]
            shard[...] = a[off : off + shard.shape[0]]
            off += shard.shape[0]
    elif kind == "sharded_1d":
        axis = dt.layout.axis
        off = 0
        for r in dt.owner.ranks:
            shard = dt.shards[r]
            n = shard.shape[axis]
            index = [slice(None)] * a.ndim
            index[axis] = slice(off, off + n)
            shard[...] = a[tuple(index)]
            off += n
    elif kind in ("replicated", "replicated_1d", "rank0"):
        for shard in dt.shards.values():
            shard[...] = a
    else:
        raise ValueError(f"cannot scatter layout {dt.layout}")


def distribute_replicated(mesh: Mesh, a) -> DTensor:
    shards = {r: (a if r == 0 else _replica(a)) for r in mesh.ranks}
    return DTensor(mesh, REPLICATED, shards, a.shape)


# ----------------------------------------------------------------------
# flat (1-D / Megatron) layouts
# ----------------------------------------------------------------------
def distribute_sharded_1d(group: ProcessGroup, a, axis: int) -> DTensor:
    """Split ``a`` along ``axis`` into ``group.size`` equal shards."""
    axis = axis % a.ndim
    _check_divisible(a.shape[axis], group.size, f"axis {axis}")
    pieces = ops.split(a, group.size, axis=axis)
    shards = {r: pieces[k] for k, r in enumerate(group.ranks)}
    return DTensor(group, SHARDED_1D(axis), shards, a.shape)


def assemble_sharded_1d(dt: DTensor) -> object:
    group: ProcessGroup = dt.owner
    return ops.concatenate([dt.local(r) for r in group.ranks], axis=dt.layout.axis)


def distribute_replicated_1d(group: ProcessGroup, a) -> DTensor:
    shards = {r: (a if k == 0 else _replica(a)) for k, r in enumerate(group.ranks)}
    return DTensor(group, REPLICATED_1D, shards, a.shape)


def assemble_replicated(dt: DTensor) -> object:
    """Any replicated layout: return rank 0's copy (they are all equal)."""
    return dt.local(next(iter(sorted(dt.shards))))


def _replica(x):
    """Copy so ranks never alias each other's buffers (no-op for dryrun)."""
    from repro.backend.shape_array import is_shape_array

    return x if is_shape_array(x) else np.array(x, copy=True)
