"""Distributed tensors: a layout plus one local shard per rank."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Tuple

from repro.backend import ops
from repro.mesh.layouts import Layout


class DTensor:
    """A logical global tensor stored as per-rank shards.

    ``owner`` is the :class:`~repro.mesh.mesh.Mesh` (2-D layouts) or the flat
    :class:`~repro.comm.group.ProcessGroup` (1-D layouts) the shards live on.
    The class is deliberately thin — distributed *math* lives in the model
    modules, which know which collectives each operation needs; DTensor only
    carries data, shape bookkeeping, and elementwise conveniences that
    require no communication.
    """

    __slots__ = ("owner", "layout", "shards", "global_shape")

    def __init__(
        self,
        owner,
        layout: Layout,
        shards: Dict[int, object],
        global_shape: Tuple[int, ...],
    ):
        self.owner = owner
        self.layout = layout
        self.shards = dict(shards)
        self.global_shape = tuple(int(s) for s in global_shape)
        # strict mode (repro.check): validate the layout contract at every
        # construction site.  ``is_enabled`` is the simulator's precomputed
        # instrumentation flag, so with all checking off this guard costs two
        # attribute reads and no property/descriptor calls.
        sim = getattr(owner, "sim", None)
        if sim is not None and sim.is_enabled and sim.strict_invariants:
            from repro.check.invariants import validate_dtensor

            validate_dtensor(self)

    # ------------------------------------------------------------------
    @property
    def ranks(self) -> Iterable[int]:
        return self.shards.keys()

    @property
    def dtype(self):
        return next(iter(self.shards.values())).dtype

    def local(self, rank: int):
        return self.shards[rank]

    def shard_nbytes(self) -> int:
        return ops.nbytes(next(iter(self.shards.values())))

    # ------------------------------------------------------------------
    # communication-free elementwise helpers
    # ------------------------------------------------------------------
    def map(self, fn: Callable) -> "DTensor":
        """Apply ``fn`` to every shard; layout and global shape unchanged."""
        return DTensor(
            self.owner,
            self.layout,
            {r: fn(x) for r, x in self.shards.items()},
            self.global_shape,
        )

    def zip_map(self, other: "DTensor", fn: Callable) -> "DTensor":
        """Elementwise combine two same-layout DTensors shard by shard."""
        if self.layout != other.layout or self.global_shape != other.global_shape:
            raise ValueError(
                f"layout/shape mismatch: {self.layout}/{self.global_shape} vs "
                f"{other.layout}/{other.global_shape}"
            )
        if set(self.shards) != set(other.shards):
            raise ValueError("rank sets differ")
        return DTensor(
            self.owner,
            self.layout,
            {r: fn(x, other.shards[r]) for r, x in self.shards.items()},
            self.global_shape,
        )

    def __add__(self, other: "DTensor") -> "DTensor":
        return self.zip_map(other, lambda a, b: a + b)

    def __sub__(self, other: "DTensor") -> "DTensor":
        return self.zip_map(other, lambda a, b: a - b)

    def __mul__(self, scalar) -> "DTensor":
        if isinstance(scalar, DTensor):
            return self.zip_map(scalar, lambda a, b: a * b)
        return self.map(lambda x: x * scalar)

    __rmul__ = __mul__

    def copy(self) -> "DTensor":
        return self.map(ops.copy)

    def astype(self, dtype) -> "DTensor":
        return self.map(lambda x: ops.astype(x, dtype))

    def zeros_like(self) -> "DTensor":
        return self.map(ops.zeros_like)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DTensor(layout={self.layout}, global_shape={self.global_shape}, "
            f"ranks={len(self.shards)})"
        )
