"""The q×q SUMMA device mesh."""

from __future__ import annotations

from typing import List, Tuple

from repro.comm.group import ProcessGroup
from repro.runtime.simulator import Simulator


class Mesh:
    """A ``q × q`` mesh over the first ``q²`` ranks of a simulator.

    Mesh coordinate ``(i, j)`` (row i, column j) is rank ``i*q + j``.  Row
    group i contains the q ranks of row i; column group j the q ranks of
    column j.  Each group is constructed with its siblings (the other rows,
    resp. columns) so the α–β model prices the q *concurrent* broadcasts of a
    SUMMA step with the correct NIC crowding (Fig. 8).
    """

    def __init__(self, sim: Simulator, q: int, rank_offset: int = 0):
        if q < 1:
            raise ValueError("q must be >= 1")
        if rank_offset < 0:
            raise ValueError("rank offset must be >= 0")
        if rank_offset + q * q > sim.num_ranks:
            raise ValueError(
                f"mesh {q}x{q} at offset {rank_offset} needs ranks up to "
                f"{rank_offset + q * q - 1}, simulator has {sim.num_ranks}"
            )
        self.sim = sim
        self.q = q
        self.p = q * q
        self.rank_offset = rank_offset

        all_rows = [self._row_ranks(i) for i in range(q)]
        all_cols = [self._col_ranks(j) for j in range(q)]
        self.row_groups: List[ProcessGroup] = [
            ProcessGroup(sim, all_rows[i], kind=f"row{i}", siblings=all_rows)
            for i in range(q)
        ]
        self.col_groups: List[ProcessGroup] = [
            ProcessGroup(sim, all_cols[j], kind=f"col{j}", siblings=all_cols)
            for j in range(q)
        ]
        self.world = ProcessGroup(
            sim, range(rank_offset, rank_offset + self.p), kind="world"
        )

    # ------------------------------------------------------------------
    def _row_ranks(self, i: int) -> List[int]:
        return [self.rank_offset + i * self.q + j for j in range(self.q)]

    def _col_ranks(self, j: int) -> List[int]:
        return [self.rank_offset + i * self.q + j for i in range(self.q)]

    def rank(self, i: int, j: int) -> int:
        if not (0 <= i < self.q and 0 <= j < self.q):
            raise ValueError(f"mesh coordinate ({i}, {j}) outside {self.q}x{self.q}")
        return self.rank_offset + i * self.q + j

    def coords(self, rank: int) -> Tuple[int, int]:
        local = rank - self.rank_offset
        if not 0 <= local < self.p:
            raise ValueError(f"rank {rank} outside mesh of {self.p} at offset {self.rank_offset}")
        return divmod(local, self.q)

    @property
    def ranks(self) -> range:
        return range(self.rank_offset, self.rank_offset + self.p)

    @property
    def backend(self) -> str:
        return self.sim.backend

    def row_group(self, i: int) -> ProcessGroup:
        return self.row_groups[i]

    def col_group(self, j: int) -> ProcessGroup:
        return self.col_groups[j]

    def device(self, rank: int):
        return self.sim.device(rank)

    def enable_strict_invariants(self) -> None:
        """Layout-validate every DTensor built on this mesh's simulator."""
        self.sim.enable_strict_invariants()

    def disable_strict_invariants(self) -> None:
        self.sim.disable_strict_invariants()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mesh(q={self.q}, p={self.p}, backend={self.backend!r})"
