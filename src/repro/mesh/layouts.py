"""Layout descriptors for distributed tensors.

A layout names *how* a logical global tensor is spread over ranks:

* ``BLOCKED_2D`` — a 2-D matrix split into ``q × q`` blocks; mesh coordinate
  (i, j) holds block (i, j).  Used for all SUMMA operands: activations
  ``[bs, h]``, parameters ``[h, h']``, the embedding table ``[v, h]``.
* ``ROW_BLOCKED`` — axis 0 split into q blocks by mesh *row*; every device in
  a row holds an identical copy (paper §3.2.1: token indices and labels).
* ``COL_BLOCKED`` — axis 0 split by mesh *column*, replicated within columns
  (used for per-row reduction scratch; rarely needed but symmetric).
* ``REPLICATED`` — full copy everywhere (Megatron activations, loss scalars).
* ``SHARDED_1D`` / ``REPLICATED_1D`` — flat-group layouts for the Megatron
  baseline: split along one axis over all p ranks, or fully replicated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Layout:
    kind: str
    axis: Optional[int] = None  # for SHARDED_1D: which axis is split

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.axis is None:
            return f"Layout({self.kind})"
        return f"Layout({self.kind}, axis={self.axis})"


BLOCKED_2D = Layout("blocked_2d")
ROW_BLOCKED = Layout("row_blocked")
COL_BLOCKED = Layout("col_blocked")
REPLICATED = Layout("replicated")
REPLICATED_1D = Layout("replicated_1d")

# Vector parameters of non-SUMMA ops (bias, LN affine): hosted *only* by the
# q devices of mesh row 0, split into q column blocks (paper Fig. 5).  They
# are broadcast down columns in forward and their gradients reduced back to
# row 0 in backward.
ROW0_COLS = Layout("row0_cols")

# 2-D parameters of non-SUMMA heads (classifier/gate [h, C]): hosted by mesh
# row 0, split along axis 0 over the columns (same Fig. 5 movement pattern).
ROW0_BLOCKROWS = Layout("row0_blockrows")

# A parameter hosted by rank 0 alone (tiny vectors like a classifier bias).
RANK0 = Layout("rank0")


def SHARDED_1D(axis: int) -> Layout:
    """Flat-group layout: the tensor is split along ``axis`` over all ranks."""
    return Layout("sharded_1d", axis=axis)
