"""Continuous-batching scheduler (Orca-style iteration-level scheduling).

At *every* decode step the engine asks the scheduler to admit newly-arrived
requests and, after the step, evicts finished sequences — there is no
static batch.  Admission policy:

* **strict FCFS** — requests are considered in arrival order and the head
  of the queue never gets skipped: if it cannot be placed (no free slot,
  or not enough free KV blocks in any candidate slot's group), admission
  stops for this step.  Head-of-line blocking is accepted in exchange for
  a starvation-free guarantee (tested: admission order == arrival order).
* **conservative reservation** — a request is only placed when its *whole*
  KV footprint (``prompt + output − 1`` positions, rounded up to blocks)
  can be reserved immediately, so a running sequence can never hit an
  out-of-blocks condition mid-decode and preemption is never needed.
* **deterministic placement** — the lowest-numbered eligible slot wins.

Invariants (enforced here, asserted in ``tests/test_serving.py``):
active sequences never exceed the slot count, per-group block usage never
exceeds the pool capacity, and every block is back in its pool after the
last eviction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.serving.kvcache import ShardedKVCache
from repro.serving.traffic import Request


@dataclass
class SlotState:
    """Progress of one admitted request through its slot."""

    request: Request
    slot: int
    admit_time: float
    fed: int = 0  # tokens fed to the model so far (prompt + generated)
    generated: List[int] = field(default_factory=list)
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None

    @property
    def in_prefill(self) -> bool:
        """True while the next input token still comes from the prompt."""
        return self.fed < self.request.prompt_len

    def next_input(self) -> int:
        return self.request.prompt[self.fed] if self.in_prefill else self.generated[-1]

    @property
    def done(self) -> bool:
        return len(self.generated) >= self.request.max_new


class ContinuousBatchingScheduler:
    """Admit-at-every-step FCFS scheduler over a sharded KV cache."""

    def __init__(self, cache: ShardedKVCache):
        self.cache = cache
        self.queue: Deque[Request] = deque()
        self.active: Dict[int, SlotState] = {}
        self.completed: List[SlotState] = []
        self._free_slots: List[int] = sorted(s for g in cache.groups for s in g.slots)
        self.num_slots = len(self._free_slots)
        self.stats = {
            "admitted": 0,
            "finished": 0,
            "max_active": 0,
            "hol_blocked_steps": 0,  # admission stopped with the queue non-empty
        }

    # ------------------------------------------------------------------
    def load(self, requests: List[Request]) -> None:
        capacity = max(p.capacity for p in self.cache.pools.values())
        for r in requests:
            need = self.cache.blocks_needed(r.kv_positions)
            if need > capacity:
                raise ValueError(
                    f"request {r.rid} needs {need} KV blocks but the largest "
                    f"pool holds {capacity} — it could never be admitted"
                )
        self.queue = deque(sorted(requests, key=lambda r: (r.arrival, r.rid)))

    @property
    def pending(self) -> int:
        return len(self.queue)

    def next_arrival(self) -> Optional[float]:
        return self.queue[0].arrival if self.queue else None

    def incomplete(self) -> bool:
        return bool(self.queue or self.active)

    # ------------------------------------------------------------------
    def admit(self, now: float) -> List[SlotState]:
        """Admit arrived requests in strict FCFS order; returns new states."""
        admitted: List[SlotState] = []
        while self.queue and self.queue[0].arrival <= now:
            req = self.queue[0]
            slot = self._place(req)
            if slot is None:
                self.stats["hol_blocked_steps"] += 1
                break  # strict FCFS: never skip the head of the queue
            self.queue.popleft()
            self._free_slots.remove(slot)
            self.cache.reserve(slot, req.kv_positions)
            state = SlotState(request=req, slot=slot, admit_time=now)
            self.active[slot] = state
            admitted.append(state)
            self.stats["admitted"] += 1
        self.stats["max_active"] = max(self.stats["max_active"], len(self.active))
        return admitted

    def _place(self, req: Request) -> Optional[int]:
        for slot in self._free_slots:  # kept sorted: lowest slot wins
            if self.cache.can_reserve(slot, req.kv_positions):
                return slot
        return None

    # ------------------------------------------------------------------
    def finish(self, slot: int, now: float) -> SlotState:
        """Evict a finished sequence and free its KV blocks."""
        state = self.active.pop(slot)
        state.finish_time = now
        self.cache.free(slot)
        self._free_slots.append(slot)
        self._free_slots.sort()
        self.completed.append(state)
        self.stats["finished"] += 1
        return state
