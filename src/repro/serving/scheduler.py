"""Continuous-batching scheduler (Orca-style iteration-level scheduling).

At *every* decode step the engine asks the scheduler to admit newly-arrived
requests and, after the step, evicts finished sequences — there is no
static batch.  Two admission policies are supported:

* ``reserve`` (default, PR 8 behavior, byte-identical) — **conservative
  reservation**: a request is only placed when its *whole* KV footprint
  (``prompt + output − 1`` positions, rounded up to blocks) can be reserved
  immediately, so a running sequence can never hit an out-of-blocks
  condition mid-decode and preemption is never needed.
* ``preempt`` — a request is placed once its *prompt* fits; KV blocks grow
  on demand each step.  When a group's pool runs dry the scheduler evicts
  a victim (lowest priority, then longest remaining, deterministic
  tie-break) and parks it: **swap-out** to a host-memory tier when one is
  configured and has room, else the **recompute** fallback (drop the KV,
  replay the known prefix on resume — byte-identical by greedy-decode
  determinism).  Paused sequences resume FIFO before new admissions.

Both policies share strict FCFS admission (the head of the queue never
gets skipped — starvation-free) and deterministic placement (lowest
eligible slot wins).

The request lifecycle layer (all off by default) adds per-request
deadlines (queued expiry and mid-flight abort), bounded idempotent
retries (the request re-enters the queue with a fresh arrival), and
overload backpressure (a bounded waiting room: arrivals beyond
``max_queue_depth`` are shed, newest first, recorded lowest-rid-first).

Invariants (enforced here, asserted in ``tests/test_serving.py``):
active sequences never exceed the slot count, per-group block usage never
exceeds the pool capacity, and every block is back in its pool after the
last eviction.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.serving.kvcache import HostSwapSpace, ShardedKVCache, SwapTicket
from repro.serving.traffic import Request

POLICIES = ("reserve", "preempt")


@dataclass(frozen=True)
class ServingOptions:
    """Scheduler policy knobs; the defaults reproduce PR 8 exactly."""

    policy: str = "reserve"
    swap_blocks: int = 0  # host swap capacity in blocks (0 = recompute only)
    swap_gbps: float = 16.0  # host link bandwidth per rank
    deadline_s: Optional[float] = None  # default e2e deadline for every request
    max_retries: int = 0  # retry budget per request after a timeout
    max_queue_depth: Optional[int] = None  # waiting-room bound (None = unbounded)
    restart_cost_s: float = 0.005  # cluster restart charge per recovered step

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(
                f"--policy: unknown policy {self.policy!r} (choose from {POLICIES})"
            )
        if self.swap_blocks < 0:
            raise ValueError(f"--swap-blocks: must be >= 0, got {self.swap_blocks}")
        if self.swap_gbps <= 0:
            raise ValueError(f"--swap-bw: must be positive, got {self.swap_gbps}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"--deadline: must be positive, got {self.deadline_s}")
        if self.max_retries < 0:
            raise ValueError(f"--retries: must be >= 0, got {self.max_retries}")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(f"--max-queue-depth: must be >= 1, got {self.max_queue_depth}")
        if self.restart_cost_s < 0:
            raise ValueError(f"restart_cost_s must be >= 0, got {self.restart_cost_s}")

    @property
    def enabled(self) -> bool:
        """True when any non-PR-8 behavior is switched on."""
        return (
            self.policy != "reserve"
            or self.deadline_s is not None
            or self.max_retries > 0
            or self.max_queue_depth is not None
        )


@dataclass
class SlotState:
    """Progress of one admitted request through its slot."""

    request: Request
    slot: int
    admit_time: float
    fed: int = 0  # tokens fed to the model so far (prompt + generated)
    generated: List[int] = field(default_factory=list)
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    preemptions: int = 0
    #: recompute-resume replay target: tokens below this index were already
    #: fed before a preemption dropped the KV and are being re-fed
    replay_until: int = 0

    @property
    def in_prefill(self) -> bool:
        """True while the next input token still comes from the prompt."""
        return self.fed < self.request.prompt_len

    @property
    def prefill_lane(self) -> bool:
        """Lane classification for attribution: prompt feeds *and* replay
        re-feeds run prefill-style (known token in, output discarded)."""
        return self.fed < max(self.request.prompt_len, self.replay_until)

    def next_input(self) -> int:
        if self.in_prefill:
            return self.request.prompt[self.fed]
        # indexing (not [-1]) so recompute replay re-feeds the right token;
        # in the normal flow fed - prompt_len is always len(generated) - 1
        return self.generated[self.fed - self.request.prompt_len]

    @property
    def done(self) -> bool:
        return len(self.generated) >= self.request.max_new

    @property
    def remaining(self) -> int:
        return self.request.max_new - len(self.generated)


@dataclass
class PausedSeq:
    """A preempted sequence waiting to resume (FIFO)."""

    state: SlotState
    ticket: Optional[SwapTicket]  # None = recompute fallback (KV dropped)
    known: int  # tokens fed (and committed) at preemption time


def _fresh_lifecycle() -> Dict[str, int]:
    return {
        "rejected_shed": 0,  # backpressure: waiting room full at arrival
        "rejected_deadline": 0,  # expired while still queued
        "timed_out": 0,  # aborted mid-flight or while paused
        "retried": 0,  # re-enqueued after a timeout (budget permitting)
        "preempted": 0,
        "swapped_out": 0,
        "swapped_in": 0,
        "recomputed": 0,  # recompute-fallback resumes
        "recomputed_tokens": 0,  # prefix tokens re-fed during replay
        "recovered_steps": 0,  # decode steps re-executed after a fault
    }


class ContinuousBatchingScheduler:
    """Admit-at-every-step FCFS scheduler over a sharded KV cache."""

    def __init__(
        self,
        cache: ShardedKVCache,
        options: Optional[ServingOptions] = None,
        swap: Optional[HostSwapSpace] = None,
    ):
        self.cache = cache
        self.options = options if options is not None else ServingOptions()
        self.swap = swap
        self.queue: Deque[Request] = deque()
        self.active: Dict[int, SlotState] = {}
        self.paused: Deque[PausedSeq] = deque()
        self.completed: List[SlotState] = []
        self._free_slots: List[int] = sorted(s for g in cache.groups for s in g.slots)
        self.num_slots = len(self._free_slots)
        self._retries_left: Dict[int, int] = {}
        self._has_deadlines = False
        self.shed_rids: List[int] = []
        self.timeout_rids: List[int] = []
        self.stats = {
            "admitted": 0,
            "finished": 0,
            "max_active": 0,
            "hol_blocked_steps": 0,  # admission stopped with the queue non-empty
        }
        self.lifecycle = _fresh_lifecycle()
        #: lifecycle observer (duck-typed to ServingTelemetry); the engine
        #: installs one per run.  Observers must be read-only over the
        #: scheduler — they exist to emit trace events and metrics.
        self.observer = None

    # ------------------------------------------------------------------
    def load(self, requests: List[Request]) -> None:
        capacity = max(p.capacity for p in self.cache.pools.values())
        for r in requests:
            need = self.cache.blocks_needed(r.kv_positions)
            if need > capacity:
                raise ValueError(
                    f"request {r.rid} needs {need} KV blocks but the largest "
                    f"pool holds {capacity} — it could never be admitted"
                )
        self.queue = deque(sorted(requests, key=lambda r: (r.arrival, r.rid)))
        self._has_deadlines = self.options.deadline_s is not None or any(
            r.deadline_s is not None for r in requests
        )

    @property
    def pending(self) -> int:
        return len(self.queue)

    def next_arrival(self) -> Optional[float]:
        return self.queue[0].arrival if self.queue else None

    def incomplete(self) -> bool:
        return bool(self.queue or self.active or self.paused)

    def _deadline_of(self, req: Request) -> Optional[float]:
        return req.deadline_s if req.deadline_s is not None else self.options.deadline_s

    # ------------------------------------------------------------------
    # lifecycle phases (all no-ops in the default PR 8 configuration)
    # ------------------------------------------------------------------
    def intake(self, now: float) -> None:
        """Backpressure: shed arrivals beyond the waiting-room bound."""
        depth = self.options.max_queue_depth
        if depth is None:
            return
        arrived: List[Request] = []
        while self.queue and self.queue[0].arrival <= now:
            arrived.append(self.queue.popleft())
        for r in arrived[depth:]:  # newest beyond the bound are shed
            self.lifecycle["rejected_shed"] += 1
            self.shed_rids.append(r.rid)
            if self.observer is not None:
                self.observer.on_shed(r, now)
        for r in reversed(arrived[:depth]):
            self.queue.appendleft(r)

    def expire(self, now: float) -> None:
        """Deadline pass: queued expiry, mid-flight abort, paused abort."""
        if not self._has_deadlines:
            return
        survivors: List[Request] = []
        expired_queued: List[Request] = []
        for r in self.queue:
            d = self._deadline_of(r)
            if d is not None and r.arrival <= now and now > r.arrival + d:
                expired_queued.append(r)
            else:
                survivors.append(r)
        if expired_queued:
            self.queue = deque(survivors)
        for r in expired_queued:
            self.lifecycle["rejected_deadline"] += 1
            retried = self._maybe_retry(r, now)
            if not retried:
                self.timeout_rids.append(r.rid)
            if self.observer is not None:
                self.observer.on_timeout(r, now, "queued", retried)
        for slot in sorted(self.active):
            state = self.active[slot]
            d = self._deadline_of(state.request)
            if d is not None and now > state.request.arrival + d:
                self.active.pop(slot)
                self.cache.free(slot)
                self._free_slots.append(slot)
                self._free_slots.sort()
                self.lifecycle["timed_out"] += 1
                retried = self._maybe_retry(state.request, now)
                if not retried:
                    self.timeout_rids.append(state.request.rid)
                if self.observer is not None:
                    self.observer.on_timeout(state.request, now, "active", retried)
        kept: List[PausedSeq] = []
        for entry in self.paused:
            d = self._deadline_of(entry.state.request)
            if d is not None and now > entry.state.request.arrival + d:
                if entry.ticket is not None:
                    self.cache.discard_ticket(entry.ticket, self.swap)
                self.lifecycle["timed_out"] += 1
                retried = self._maybe_retry(entry.state.request, now)
                if not retried:
                    self.timeout_rids.append(entry.state.request.rid)
                if self.observer is not None:
                    self.observer.on_timeout(entry.state.request, now, "paused", retried)
            else:
                kept.append(entry)
        if len(kept) != len(self.paused):
            self.paused = deque(kept)

    def _maybe_retry(self, req: Request, now: float) -> bool:
        left = self._retries_left.setdefault(req.rid, self.options.max_retries)
        if left <= 0:
            return False
        self._retries_left[req.rid] = left - 1
        retry = dataclasses.replace(req, arrival=now)
        self.queue = deque(
            sorted([*self.queue, retry], key=lambda r: (r.arrival, r.rid))
        )
        self.lifecycle["retried"] += 1
        return True

    def resume(self, now: float) -> None:
        """Bring paused sequences back, FIFO, before any new admission."""
        while self.paused:
            entry = self.paused[0]
            state = entry.state
            if entry.ticket is not None:
                gid = entry.ticket.gid
                slot = next(
                    (
                        s
                        for s in self._free_slots
                        if self.cache.group_of(s).gid == gid
                        and self.cache.pools[gid].free >= entry.ticket.num_blocks
                    ),
                    None,
                )
                if slot is None:
                    break  # strict FIFO: don't resume younger entries first
                self.paused.popleft()
                self._free_slots.remove(slot)
                self.cache.swap_in(slot, entry.ticket, self.swap)
                self.lifecycle["swapped_in"] += 1
                state.slot = slot
                if self.observer is not None:
                    self.observer.on_resume(state, now, swapped=True)
            else:
                replay_target = max(entry.known, state.replay_until)
                slot = next(
                    (s for s in self._free_slots if self.cache.can_reserve(s, replay_target)),
                    None,
                )
                if slot is None:
                    break
                self.paused.popleft()
                self._free_slots.remove(slot)
                self.cache.reserve(slot, replay_target)
                state.replay_until = replay_target
                state.fed = 0
                self.lifecycle["recomputed"] += 1
                state.slot = slot
                if self.observer is not None:
                    self.observer.on_resume(state, now, swapped=False)
            state.slot = slot
            self.active[slot] = state
        self.stats["max_active"] = max(self.stats["max_active"], len(self.active))

    # ------------------------------------------------------------------
    def admit(self, now: float) -> List[SlotState]:
        """Admit arrived requests in strict FCFS order; returns new states."""
        admitted: List[SlotState] = []
        while self.queue and self.queue[0].arrival <= now:
            req = self.queue[0]
            slot = self._place(req)
            if slot is None:
                self.stats["hol_blocked_steps"] += 1
                break  # strict FCFS: never skip the head of the queue
            self.queue.popleft()
            self._free_slots.remove(slot)
            self.cache.reserve(slot, self._admission_footprint(req))
            state = SlotState(request=req, slot=slot, admit_time=now)
            self.active[slot] = state
            admitted.append(state)
            self.stats["admitted"] += 1
        self.stats["max_active"] = max(self.stats["max_active"], len(self.active))
        return admitted

    def _admission_footprint(self, req: Request) -> int:
        """KV positions reserved at admission: the whole sequence under
        conservative reservation, just the prompt under preemption."""
        if self.options.policy == "preempt":
            return req.prompt_len
        return req.kv_positions

    def _place(self, req: Request) -> Optional[int]:
        footprint = self._admission_footprint(req)
        for slot in self._free_slots:  # kept sorted: lowest slot wins
            if self.cache.can_reserve(slot, footprint):
                return slot
        return None

    # ------------------------------------------------------------------
    def prepare_step(self, now: float) -> None:
        """Preemptive growth: make sure every active lane has a KV block
        for the position it is about to write, evicting victims if not."""
        if self.options.policy != "preempt":
            return
        for slot in sorted(self.active):
            if slot not in self.active:  # victim of an earlier lane's growth
                continue
            state = self.active[slot]
            while not self.cache.ensure_capacity(slot, state.fed + 1):
                victim = self._pick_victim(slot)
                if victim is None:
                    raise RuntimeError(
                        f"slot {slot} cannot grow and no victim exists in its "
                        "group — footprint validation should make this impossible"
                    )
                self._preempt(victim, now)

    def _pick_victim(self, requester_slot: int) -> Optional[int]:
        """Lowest priority first, then longest remaining, then highest rid."""
        group = self.cache.group_of(requester_slot)
        candidates = [
            s for s in group.slots if s in self.active and s != requester_slot
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda s: (
                self.active[s].request.priority,
                -self.active[s].remaining,
                -self.active[s].request.rid,
            ),
        )

    def _preempt(self, slot: int, now: float = 0.0) -> None:
        state = self.active.pop(slot)
        known = state.fed
        ticket: Optional[SwapTicket] = None
        if self.swap is not None and self.swap.can_hold(self.cache.blocks_of(slot)):
            ticket = self.cache.swap_out(slot, self.swap)
            self.lifecycle["swapped_out"] += 1
        else:
            self.cache.free(slot)  # recompute fallback: replay on resume
        self._free_slots.append(slot)
        self._free_slots.sort()
        state.preemptions += 1
        self.lifecycle["preempted"] += 1
        if self.observer is not None:
            self.observer.on_preempt(state, now, swapped=ticket is not None)
        self.paused.append(PausedSeq(state=state, ticket=ticket, known=known))

    # ------------------------------------------------------------------
    def finish(self, slot: int, now: float) -> SlotState:
        """Evict a finished sequence and free its KV blocks."""
        state = self.active.pop(slot)
        state.finish_time = now
        self.cache.free(slot)
        self._free_slots.append(slot)
        self._free_slots.sort()
        self.completed.append(state)
        self.stats["finished"] += 1
        if self.observer is not None:
            self.observer.on_finish(state, now)
        return state
