"""Chaos campaigns for the serving engine: decode under injected faults.

One :func:`run_serve_chaos` campaign plays the *same* seeded traffic twice
per scheme — once fault-free, once with a :class:`FaultInjector` armed
inside the decode loop (a rank crash at a step boundary, a flaky link
retried with exponential backoff, a link that times out past the retry
budget, and a straggler window) — and demands that recovery is invisible
to users: the chaos arm must produce **token-identical** output (same
``tokens_sha256``) as the fault-free arm, every request must still
complete, and the report's prefill/decode/padding/idle/recovery
attribution must still telescope to the makespan.

Recovery is step re-execution: a failed decode step committed nothing
(``cache.commit`` runs only after a successful step), fired faults are
consumed, so re-running the step writes the same K/V bytes and samples the
same tokens.  Greedy decode is batching-invariant per lane, which makes
the re-executed step byte-deterministic even though the batch composition
may have shifted while the cluster was recovering.

Everything rides the simulated clock: retries, timeouts, restart charges
and straggler skew all show up in the ``recovery`` phase and in
``serve-chaos`` ledger records, never in host wall-clock.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Sequence

from repro.config import tiny_config
from repro.nn.init import init_transformer_params
from repro.obs.ledger import RunLedger, record_from_sim
from repro.resilience.faults import (
    FaultSchedule,
    RankCrash,
    Straggler,
    TransientCollectiveFault,
)
from repro.resilience.injector import FaultInjector
from repro.serving.report import DEFAULTS, PARAM_SEED, run_arm
from repro.serving.traffic import TrafficGenerator

REPORT_SCHEMA = "repro-serve-chaos-v1"

SERVE_SCHEMES = ("optimus", "megatron")

#: injector tuning for serving timescales (decode steps are ~100 µs, not
#: the ~10 ms training steps the PR 4 defaults assume)
INJECTOR_KW = {"max_retries": 3, "timeout_s": 1e-3, "backoff_base_s": 1e-4}

CAMPAIGN = {"requests": 16, "rate_rps": 1000.0, "arrival": "poisson"}
QUICK = {"requests": 8}

TELESCOPE_TOL = 1e-9


def default_serving_schedule(seed: int, baseline_steps: int) -> FaultSchedule:
    """Crash + flaky link + timeout-past-budget + straggler, placed at
    seed-shifted decode steps well inside the fault-free step count."""
    span = max(baseline_steps - 1, 1)
    off = seed % 3

    def at(step: int) -> int:
        return min(step, span)

    return FaultSchedule.of(
        RankCrash(step=at(2 + off), rank=0),
        # a flap the retry budget absorbs: bytes move, payloads are dropped
        TransientCollectiveFault(step=at(5 + off), index=1, fails=2, mode="flaky"),
        # a link that keeps timing out past the budget: the step is abandoned
        # and re-executed (the recovery path)
        TransientCollectiveFault(
            step=at(8 + off), index=0, fails=INJECTOR_KW["max_retries"] + 1,
            mode="timeout",
        ),
        Straggler(rank=1, start_step=at(11 + off), num_steps=3, factor=3.0),
    )


def run_serve_chaos(
    seed: int = 0,
    *,
    quick: bool = False,
    schemes: Sequence[str] = SERVE_SCHEMES,
    ledger: Optional[RunLedger] = None,
) -> dict:
    """Run the fault-free and chaos arms for every scheme; returns the
    campaign document (``ok`` is True only if every check passed)."""
    for s in schemes:
        if s not in SERVE_SCHEMES:
            raise ValueError(
                f"unknown serving chaos scheme {s!r} (choose from {SERVE_SCHEMES})"
            )
    knobs = dict(CAMPAIGN)
    if quick:
        knobs.update(QUICK)
    cfg = tiny_config(num_heads=4)
    params = init_transformer_params(cfg, seed=PARAM_SEED)
    arm_kw = dict(
        q=int(DEFAULTS["q"]),
        slots=int(DEFAULTS["slots"]),
        block_size=int(DEFAULTS["block_size"]),
        blocks=int(DEFAULTS["blocks"]),
        slo_ttft=float(DEFAULTS["slo_ttft"]),
        slo_tpot=float(DEFAULTS["slo_tpot"]),
    )
    gen = TrafficGenerator(
        seed=seed,
        vocab_size=cfg.vocab_size,
        arrival=knobs["arrival"],
        rate_rps=float(knobs["rate_rps"]),
        num_requests=int(knobs["requests"]),
    )
    trace = gen.generate()

    arms = []
    checks = {}
    for scheme in schemes:
        baseline, _sim = run_arm(scheme, cfg, params, trace, **arm_kw)
        schedule = default_serving_schedule(seed, baseline["steps"])
        injector = FaultInjector(schedule, seed=seed, **INJECTOR_KW)
        # counter_epoch distinguishes the arms for a long-lived scraper:
        # OpenMetrics counter-restart semantics across same-named series
        chaos, sim = run_arm(
            scheme, cfg, params, trace, **arm_kw, injector=injector,
            counter_epoch=1,
        )
        for entry, arm in ((baseline, "baseline"), (chaos, "chaos")):
            entry["arm"] = arm
            entry["arrival"] = knobs["arrival"]
            arms.append(entry)

        lifecycle = chaos["lifecycle"]
        telescope_err = abs(
            sum(chaos["phases_s"].values()) - chaos["makespan_s"]
        )
        check = {
            "token_identical": chaos["tokens_sha256"] == baseline["tokens_sha256"],
            "all_completed": chaos["completed"] == len(trace),
            "telescope_err": telescope_err,
            "telescopes": telescope_err <= TELESCOPE_TOL,
            "crashes": lifecycle["injector"]["crashes"],
            "retries": lifecycle["injector"]["retries"],
            "recovered_steps": lifecycle["recovered_steps"],
            "recovery_s": chaos["phases_s"]["recovery"],
            "faults_fired": (
                lifecycle["injector"]["crashes"] >= 1
                and lifecycle["injector"]["retries"] >= 1
                and lifecycle["recovered_steps"] >= 2  # crash + timeout escape
            ),
        }
        check["ok"] = bool(
            check["token_identical"]
            and check["all_completed"]
            and check["telescopes"]
            and check["faults_fired"]
        )
        checks[scheme] = check

        if ledger is not None:
            mesh = (
                {"q": arm_kw["q"]} if scheme == "optimus" else {"arrangement": "flat"}
            )
            record = record_from_sim(
                "serve-chaos",
                sim,
                label=f"serve-chaos/{scheme}/{knobs['arrival']}",
                scheme=scheme,
                seed=seed,
                config=cfg,
                mesh=mesh,
                extra={
                    "arrival": knobs["arrival"],
                    "num_requests": int(knobs["requests"]),
                    "traffic_seed": seed,
                    "tokens_sha256": chaos["tokens_sha256"],
                    "token_identical": check["token_identical"],
                    "crashes": check["crashes"],
                    "retries": check["retries"],
                    "recovered_steps": check["recovered_steps"],
                    "recovery_s": check["recovery_s"],
                    "goodput_tokens_per_s": chaos["goodput_tokens_per_s"],
                    "ok": check["ok"],
                },
            )
            ledger.append(record)

    return {
        "report": REPORT_SCHEMA,
        "seed": seed,
        "quick": bool(quick),
        "traffic": gen.describe(),
        "injector": dict(INJECTOR_KW),
        "arms": arms,
        "checks": checks,
        "ok": all(c["ok"] for c in checks.values()),
    }


# ----------------------------------------------------------------------
def render(report: dict) -> str:
    head = (
        f"{'scheme':<10} {'arm':<9} {'steps':>6} {'recovered':>9} "
        f"{'recovery':>10} {'tokens':>18} {'identical':>9}"
    )
    rows = [head, "-" * len(head)]
    for e in report["arms"]:
        lc = e.get("lifecycle") or {}
        rec = e["phases_s"].get("recovery", 0.0)
        ident = ""
        if e["arm"] == "chaos":
            ident = "yes" if report["checks"][e["scheme"]]["token_identical"] else "NO"
        rows.append(
            f"{e['scheme']:<10} {e['arm']:<9} {e['steps']:>6} "
            f"{lc.get('recovered_steps', 0):>9} {rec * 1e3:>8.3f}ms "
            f"{e['tokens_sha256']:>18} {ident:>9}"
        )
    for scheme, c in sorted(report["checks"].items()):
        status = "ok  " if c["ok"] else "FAIL"
        rows.append(
            f"{status} {scheme}: {c['crashes']} crash(es), {c['retries']} "
            f"retries, {c['recovered_steps']} recovered steps, telescope "
            f"err {c['telescope_err']:.2e}"
        )
    return "\n".join(rows)


def main(
    seed: int = 0,
    quick: bool = False,
    schemes: Sequence[str] = SERVE_SCHEMES,
    out: Optional[str] = None,
    ledger_dir: Optional[str] = None,
) -> int:
    """Driver for ``python -m repro chaos --serve`` (returns exit code)."""
    try:
        ledger = RunLedger(ledger_dir) if ledger_dir else None
        report = run_serve_chaos(seed, quick=quick, schemes=tuple(schemes), ledger=ledger)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(render(report))
    if out:
        parent = os.path.dirname(out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    return 0 if report["ok"] else 1
