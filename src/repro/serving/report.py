"""Serving run orchestration and the ``repro-serve-v1`` report.

One :func:`run_serve` call plays a seeded traffic trace through each
requested (scheme × arrival-profile) arm on a fresh simulator and distills
the result into a byte-deterministic JSON document: latency percentiles
(TTFT and end-to-end), goodput, SLO attainment, per-phase time attribution
(prefill / decode / padding / idle) and KV-cache accounting.  Nothing
host-dependent goes in — no wall-clock, no paths, no git state — so two
runs with the same seed produce byte-identical files (CI diffs them).

The same module carries the SLO regression gate
(:func:`compare_reports`, used by ``repro serve --compare``) and the
batched-vs-per-rank bit-exactness check (``--ab``): the decode forward
rides the SUMMA engine, so flipping ``REPRO_SUMMA_BATCHED`` must change
*nothing* in the report.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import List, Optional, Sequence, Tuple

from repro.config import ModelConfig, tiny_config
from repro.core import summa
from repro.nn.init import init_transformer_params
from repro.obs.alerts import AlertEngine, AlertRule, default_serving_rules
from repro.obs.ledger import RunLedger, canonical_json, record_from_sim
from repro.resilience.injector import FaultInjector
from repro.serving.engine import ServingResult, make_engine
from repro.serving.scheduler import ServingOptions
from repro.serving.traffic import ARRIVAL_PROFILES, Request, TrafficGenerator

REPORT_SCHEMA = "repro-serve-v1"
SWEEP_SCHEMA = "repro-serve-sweep-v1"

#: parameters are drawn once with a *fixed* seed — the model is the same
#: deployed artifact across all arms and seeds; only traffic varies.
PARAM_SEED = 1

SCHEMES = ("optimus", "megatron")

DEFAULTS = {
    "q": 2,
    "slots": 8,
    "block_size": 8,
    "blocks": 12,  # per optimus row-group; megatron gets blocks*q (equal bytes/device)
    "rate_rps": 1000.0,
    "requests": 32,
    "slo_ttft": 0.005,
    "slo_tpot": 0.0005,
}
QUICK = {"requests": 10}


# ----------------------------------------------------------------------
# latency statistics (manual interpolation: stable across numpy versions)
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile of ``values`` (p in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    xs = sorted(float(v) for v in values)
    if len(xs) == 1:
        return xs[0]
    rank = (p / 100.0) * (len(xs) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(xs) - 1)
    frac = rank - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def summarize(values: Sequence[float]) -> dict:
    return {
        "p50": percentile(values, 50.0),
        "p99": percentile(values, 99.0),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


# ----------------------------------------------------------------------
# one (scheme, arrival) arm
# ----------------------------------------------------------------------
def _tpot(state) -> float:
    """Time-per-output-token over the decode stretch (0.0 for max_new == 1)."""
    n = state.request.max_new
    return (state.finish_time - state.first_token_time) / (n - 1) if n > 1 else 0.0


def run_arm(
    scheme: str,
    cfg: ModelConfig,
    params: dict,
    requests: List[Request],
    *,
    q: int,
    slots: int,
    block_size: int,
    blocks: int,
    slo_ttft: float,
    slo_tpot: float,
    options: Optional[ServingOptions] = None,
    injector: Optional[FaultInjector] = None,
    alert_rules: Optional[Sequence[AlertRule]] = None,
    metrics_server=None,
    trace: bool = False,
    counter_epoch: int = 0,
) -> Tuple[dict, object]:
    """Run one arm; returns (report entry, simulator) — sim for the ledger.

    ``alert_rules`` arms inline SLO alerting (an ``alerts`` entry section
    appears); ``metrics_server`` gets this arm's live registry attached
    before the run so mid-run scrapes see it move; ``trace`` turns on
    request-lifecycle tracing.  All three are read-only over the
    simulation: the rest of the entry stays byte-identical."""
    # equal per-device KV bytes across schemes: megatron shards heads q×
    # thinner (p = q² ranks), so its single pool gets q× the blocks.
    blocks_per_group = blocks if scheme == "optimus" else blocks * q
    alerts = AlertEngine(alert_rules) if alert_rules else None
    engine = make_engine(
        scheme, cfg, params, q, slots, block_size, blocks_per_group,
        options=options, injector=injector,
        trace=trace, slo=(slo_ttft, slo_tpot), counter_epoch=counter_epoch,
        alerts=alerts,
    )
    if metrics_server is not None:
        metrics_server.attach_registry(engine.sim.metrics)
    result: ServingResult = engine.run(requests)

    lossy = (options is not None and options.enabled) or injector is not None
    if not lossy and len(result.completed) != len(requests):
        raise RuntimeError(f"{scheme}: {len(result.completed)}/{len(requests)} requests completed")
    by_rid = sorted(result.completed, key=lambda s: s.request.rid)
    ttft = [s.first_token_time - s.request.arrival for s in by_rid]
    e2e = [s.finish_time - s.request.arrival for s in by_rid]
    tpot = [_tpot(s) for s in by_rid]
    ok = [t <= slo_ttft and tp <= slo_tpot for t, tp in zip(ttft, tpot)]
    makespan = result.clock
    good_tokens = sum(len(s.generated) for s, o in zip(by_rid, ok) if o)
    token_doc = canonical_json({str(s.request.rid): list(s.generated) for s in by_rid})
    checksum = hashlib.sha256(token_doc.encode()).hexdigest()[:16]

    entry = {
        "scheme": scheme,
        "devices": engine.sim.num_ranks,
        "requests": len(requests),
        "completed": len(result.completed),
        "ttft_s": summarize(ttft) if ttft else None,
        "e2e_s": summarize(e2e) if e2e else None,
        "tpot_s": summarize(tpot) if tpot else None,
        "makespan_s": makespan,
        "throughput_tokens_per_s": result.generated_tokens / makespan,
        "goodput_tokens_per_s": good_tokens / makespan,
        # denominator is the *offered* load: identical to the PR 8 value
        # when everything completes, honest under shedding/timeouts
        "slo_attainment": sum(ok) / len(requests),
        "prompt_tokens": result.prompt_tokens,
        "generated_tokens": result.generated_tokens,
        "steps": result.steps,
        "lane_steps": result.lane_steps,
        "padded_lane_steps": result.padded_lane_steps,
        "phases_s": dict(result.attribution),
        "scheduler": result.scheduler_stats,
        "kv_cache": result.cache_stats,
        "tokens_sha256": checksum,
    }
    if result.lifecycle is not None:
        entry["lifecycle"] = result.lifecycle
    if result.alerts is not None:
        entry["alerts"] = result.alerts
    return entry, engine.sim


# ----------------------------------------------------------------------
# full report
# ----------------------------------------------------------------------
def run_serve(
    seed: int = 0,
    *,
    quick: bool = False,
    schemes: Sequence[str] = SCHEMES,
    arrivals: Sequence[str] = ARRIVAL_PROFILES,
    requests: Optional[int] = None,
    rate_rps: Optional[float] = None,
    q: Optional[int] = None,
    slots: Optional[int] = None,
    block_size: Optional[int] = None,
    blocks: Optional[int] = None,
    slo_ttft: Optional[float] = None,
    slo_tpot: Optional[float] = None,
    policy: Optional[str] = None,
    swap_blocks: Optional[int] = None,
    swap_gbps: Optional[float] = None,
    deadline: Optional[float] = None,
    retries: Optional[int] = None,
    max_queue_depth: Optional[int] = None,
    ledger: Optional[RunLedger] = None,
    alerts: bool = False,
    alert_rules: Optional[Sequence[AlertRule]] = None,
    metrics_server=None,
) -> dict:
    """Run every (scheme × arrival) arm and assemble the report document.

    ``alerts=True`` arms the stock SLO rule set (see
    :func:`repro.obs.alerts.default_serving_rules`); ``alert_rules``
    supplies a custom rule list (and implies ``alerts``).  Either adds an
    ``alerts`` section per arm entry and to the serving doc — the default
    path stays byte-identical to PR 8/9.  ``metrics_server`` (a
    :class:`repro.obs.live.MetricsServer`) gets each arm's registry as the
    arm starts; successive arms bump the counter reset epoch so scrapers
    see OpenMetrics counter-restart semantics, not silent resets."""
    knobs = dict(DEFAULTS)
    if quick:
        knobs.update(QUICK)
        arrivals = tuple(a for a in arrivals if a == "poisson") or ("poisson",)
    overrides = (
        ("requests", requests),
        ("rate_rps", rate_rps),
        ("q", q),
        ("slots", slots),
        ("block_size", block_size),
        ("blocks", blocks),
        ("slo_ttft", slo_ttft),
        ("slo_tpot", slo_tpot),
    )
    for name, val in overrides:
        if val is not None:
            knobs[name] = val
    for s in schemes:
        if s not in SCHEMES:
            raise ValueError(f"unknown scheme {s!r} (choose from {SCHEMES})")
    if float(knobs["slo_ttft"]) <= 0:
        raise ValueError(f"--slo-ttft: must be positive, got {knobs['slo_ttft']}")
    if float(knobs["slo_tpot"]) <= 0:
        raise ValueError(f"--slo-tpot: must be positive, got {knobs['slo_tpot']}")
    # ServingOptions.__post_init__ validates the lifecycle knobs, naming
    # the offending CLI flag (--policy/--swap-blocks/--swap-bw/--deadline/
    # --retries/--max-queue-depth)
    opt_kw = {}
    if policy is not None:
        opt_kw["policy"] = policy
    if swap_blocks is not None:
        opt_kw["swap_blocks"] = swap_blocks
    if swap_gbps is not None:
        opt_kw["swap_gbps"] = swap_gbps
    if deadline is not None:
        opt_kw["deadline_s"] = deadline
    if retries is not None:
        opt_kw["max_retries"] = retries
    if max_queue_depth is not None:
        opt_kw["max_queue_depth"] = max_queue_depth
    options = ServingOptions(**opt_kw)

    cfg = tiny_config(num_heads=4)
    params = init_transformer_params(cfg, seed=PARAM_SEED)
    qq = int(knobs["q"])

    if alert_rules:
        rules: Optional[List[AlertRule]] = list(alert_rules)
    elif alerts:
        rules = default_serving_rules(
            float(knobs["slo_ttft"]), float(knobs["slo_tpot"]), int(knobs["slots"])
        )
    else:
        rules = None

    traffic_docs = []
    entries = []
    arm_index = 0
    for arrival in arrivals:
        gen = TrafficGenerator(
            seed=seed,
            vocab_size=cfg.vocab_size,
            arrival=arrival,
            rate_rps=float(knobs["rate_rps"]),
            num_requests=int(knobs["requests"]),
        )
        traffic_docs.append(gen.describe())
        trace = gen.generate()
        for scheme in schemes:
            entry, sim = run_arm(
                scheme,
                cfg,
                params,
                trace,
                q=qq,
                slots=int(knobs["slots"]),
                block_size=int(knobs["block_size"]),
                blocks=int(knobs["blocks"]),
                slo_ttft=float(knobs["slo_ttft"]),
                slo_tpot=float(knobs["slo_tpot"]),
                options=options,
                alert_rules=rules,
                metrics_server=metrics_server,
                counter_epoch=arm_index,
            )
            arm_index += 1
            entry["arrival"] = arrival
            entries.append(entry)
            if ledger is not None:
                mesh = {"q": qq} if scheme == "optimus" else {"arrangement": "flat"}
                extra = {
                    "arrival": arrival,
                    "num_requests": int(knobs["requests"]),
                    "traffic_seed": seed,
                    "rate_rps": float(knobs["rate_rps"]),
                    "generated_tokens": entry["generated_tokens"],
                    "goodput_tokens_per_s": entry["goodput_tokens_per_s"],
                    "slo_attainment": entry["slo_attainment"],
                    "p99_e2e_s": entry["e2e_s"]["p99"],
                    "tokens_sha256": entry["tokens_sha256"],
                }
                if "alerts" in entry:  # only when alerting was armed
                    extra["alerts"] = {
                        "fired": entry["alerts"]["fired_total"],
                        "resolved": entry["alerts"]["resolved_total"],
                        "rules_fired": sorted(
                            {e["rule"] for e in entry["alerts"]["events"]
                             if e["state"] == "firing"}
                        ),
                    }
                record = record_from_sim(
                    "serve",
                    sim,
                    label=f"serve/{scheme}/{arrival}",
                    scheme=scheme,
                    seed=seed,
                    config=cfg,
                    mesh=mesh,
                    extra=extra,
                )
                ledger.append(record)

    serving_doc = {
        "q": qq,
        "slots": int(knobs["slots"]),
        "block_size": int(knobs["block_size"]),
        "blocks": int(knobs["blocks"]),
        "rate_rps": float(knobs["rate_rps"]),
    }
    # lifecycle knobs appear only when switched on: default-path reports
    # stay byte-identical to PR 8
    if options.enabled:
        serving_doc["lifecycle"] = {
            "policy": options.policy,
            "swap_blocks": options.swap_blocks,
            "swap_gbps": options.swap_gbps,
            "deadline_s": options.deadline_s,
            "max_retries": options.max_retries,
            "max_queue_depth": options.max_queue_depth,
        }
    if rules is not None:  # same conditional-section discipline as lifecycle
        serving_doc["alerts"] = {"rules": [r.to_dict() for r in rules]}
    return {
        "report": REPORT_SCHEMA,
        "seed": seed,
        "quick": bool(quick),
        "model": {**asdict(cfg), "param_seed": PARAM_SEED},
        "serving": serving_doc,
        "slo": {"ttft_s": float(knobs["slo_ttft"]), "tpot_s": float(knobs["slo_tpot"])},
        "summa_flags": summa.effective_flags(),
        "traffic": traffic_docs,
        "schemes": entries,
    }


# ----------------------------------------------------------------------
# latency-vs-load sweep (--sweep)
# ----------------------------------------------------------------------
def run_sweep(
    seed: int = 0,
    *,
    rates: Sequence[float],
    quick: bool = False,
    schemes: Sequence[str] = SCHEMES,
    arrivals: Sequence[str] = ("poisson",),
    ledger: Optional[RunLedger] = None,
    **kw,
) -> dict:
    """Replay the seeded traffic generator at each offered load.

    Each rate point is a full :func:`run_serve` pass (one ``serve`` ledger
    record per arm when a ledger is given — the dashboard groups those by
    (scheme, arrival) across ``rate_rps`` into the latency-vs-load curve),
    distilled here into one row per (rate, scheme, arrival)."""
    rates = [float(r) for r in rates]
    if not rates:
        raise ValueError("--sweep: need at least one rate")
    if any(r <= 0 for r in rates):
        raise ValueError(f"--sweep: rates must be positive, got {rates}")
    points = []
    for rate in rates:
        report = run_serve(
            seed, quick=quick, schemes=schemes, arrivals=arrivals,
            rate_rps=rate, ledger=ledger, **kw,
        )
        for entry in report["schemes"]:
            points.append(
                {
                    "rate_rps": rate,
                    "scheme": entry["scheme"],
                    "arrival": entry["arrival"],
                    "requests": entry["requests"],
                    "completed": entry["completed"],
                    "p99_e2e_s": entry["e2e_s"]["p99"] if entry["e2e_s"] else None,
                    "p50_ttft_s": entry["ttft_s"]["p50"] if entry["ttft_s"] else None,
                    "goodput_tokens_per_s": entry["goodput_tokens_per_s"],
                    "slo_attainment": entry["slo_attainment"],
                    "tokens_sha256": entry["tokens_sha256"],
                }
            )
    return {
        "report": SWEEP_SCHEMA,
        "seed": seed,
        "quick": bool(quick),
        "rates": rates,
        "points": points,
    }


def render_sweep(report: dict) -> str:
    head = (
        f"{'rate':>8} {'scheme':<10} {'arrival':<8} {'done':>5} "
        f"{'p99 e2e':>10} {'goodput':>10} {'SLO':>6}"
    )
    rows = [head, "-" * len(head)]
    for p in report["points"]:
        e2e = f"{p['p99_e2e_s'] * 1e3:>8.3f}ms" if p["p99_e2e_s"] is not None else f"{'—':>10}"
        rows.append(
            f"{p['rate_rps']:>8.0f} {p['scheme']:<10} {p['arrival']:<8} "
            f"{p['completed']:>2}/{p['requests']:<2} {e2e} "
            f"{p['goodput_tokens_per_s']:>10.1f} {p['slo_attainment']:>6.2f}"
        )
    return "\n".join(rows)


# ----------------------------------------------------------------------
# batched-mesh bit-exactness (--ab)
# ----------------------------------------------------------------------
def run_ab(seed: int = 0, quick: bool = True, **kw) -> dict:
    """Run the whole report under the per-rank and the batched SUMMA engine
    and demand byte equality — serving inherits the training engines'
    bit-exactness guarantee or this returns ``equal: False``."""
    saved = summa.effective_flags()
    try:
        summa.configure(batched=False)
        per_rank = run_serve(seed, quick=quick, **kw)
        summa.configure(batched=True)
        batched = run_serve(seed, quick=quick, **kw)
    finally:
        summa.configure(**saved)
    # the flag snapshot is the one field that legitimately differs
    a = {k: v for k, v in per_rank.items() if k != "summa_flags"}
    b = {k: v for k, v in batched.items() if k != "summa_flags"}
    equal = canonical_json(a) == canonical_json(b)
    return {
        "report": "repro-serve-ab-v1",
        "seed": seed,
        "equal": equal,
        "per_rank": per_rank,
        "batched": batched,
    }


# ----------------------------------------------------------------------
# preemption A/B (--preempt-ab): reserve vs preempt under overload
# ----------------------------------------------------------------------
#: an overload profile conservative reservation cannot absorb: long bursts
#: into a small pool, with a deadline that expires queued requests.  The
#: numbers are part of the report contract (BENCH_pr9.json is committed).
PREEMPT_AB_PROFILE = {
    "arrival": "bursty",
    "rate_rps": 4000.0,
    "requests": 20,
    "burst_size": 10,
    "slots": 8,
    "block_size": 8,
    "blocks": 5,
    "deadline_s": 0.01,
    "slo_ttft": 0.01,
    "slo_tpot": 0.002,
}


def run_preempt_ab(seed: int = 0, quick: bool = False, schemes: Sequence[str] = SCHEMES) -> dict:
    """Same overload traffic through three scheduler configurations per
    scheme — conservative ``reserve``, ``preempt`` with host swap, and
    ``preempt`` with the recompute fallback — and gate on preemption
    admitting what reservation rejects, at strictly higher goodput."""
    for s in schemes:
        if s not in SCHEMES:
            raise ValueError(f"unknown scheme {s!r} (choose from {SCHEMES})")
    prof = dict(PREEMPT_AB_PROFILE)
    if quick:
        prof["requests"] = 12
    cfg = tiny_config(num_heads=4)
    params = init_transformer_params(cfg, seed=PARAM_SEED)
    qq = int(DEFAULTS["q"])
    gen = TrafficGenerator(
        seed=seed,
        vocab_size=cfg.vocab_size,
        arrival=prof["arrival"],
        rate_rps=prof["rate_rps"],
        num_requests=prof["requests"],
        burst_size=prof["burst_size"],
        deadline_s=prof["deadline_s"],
    )
    trace = gen.generate()

    arms = {
        "reserve": ServingOptions(policy="reserve", deadline_s=prof["deadline_s"]),
        "preempt-swap": ServingOptions(
            policy="preempt", swap_blocks=prof["blocks"], deadline_s=prof["deadline_s"]
        ),
        "preempt-recompute": ServingOptions(
            policy="preempt", swap_blocks=0, deadline_s=prof["deadline_s"]
        ),
    }
    entries = []
    gate = {}
    for scheme in schemes:
        per_policy = {}
        for name, options in arms.items():
            entry, _sim = run_arm(
                scheme,
                cfg,
                params,
                trace,
                q=qq,
                slots=prof["slots"],
                block_size=prof["block_size"],
                blocks=prof["blocks"],
                slo_ttft=prof["slo_ttft"],
                slo_tpot=prof["slo_tpot"],
                options=options,
            )
            entry["arrival"] = prof["arrival"]
            entry["policy"] = name
            entries.append(entry)
            per_policy[name] = entry
        res = per_policy["reserve"]
        gate[scheme] = {
            "reserve_completed": res["completed"],
            "preempt_swap_completed": per_policy["preempt-swap"]["completed"],
            "preempt_recompute_completed": per_policy["preempt-recompute"]["completed"],
            "reserve_goodput": res["goodput_tokens_per_s"],
            "preempt_swap_goodput": per_policy["preempt-swap"]["goodput_tokens_per_s"],
            "preempt_recompute_goodput": per_policy["preempt-recompute"][
                "goodput_tokens_per_s"
            ],
            "reserve_rejected": prof["requests"] - res["completed"],
            "admits_more": all(
                per_policy[p]["completed"] > res["completed"]
                for p in ("preempt-swap", "preempt-recompute")
            ),
            "goodput_higher": all(
                per_policy[p]["goodput_tokens_per_s"] > res["goodput_tokens_per_s"]
                for p in ("preempt-swap", "preempt-recompute")
            ),
        }
    ok = all(g["admits_more"] and g["goodput_higher"] and g["reserve_rejected"] > 0
             for g in gate.values())
    return {
        "report": "repro-serve-preempt-ab-v1",
        "seed": seed,
        "quick": bool(quick),
        "profile": prof,
        "traffic": gen.describe(),
        "model": {**asdict(cfg), "param_seed": PARAM_SEED},
        "arms": entries,
        "gate": gate,
        "ok": ok,
    }


def render_preempt_ab(report: dict) -> str:
    head = (
        f"{'scheme':<10} {'policy':<18} {'done':>5} {'goodput':>10} "
        f"{'preempted':>9} {'timed out':>9}"
    )
    rows = [head, "-" * len(head)]
    for e in report["arms"]:
        lc = e.get("lifecycle", {})
        rows.append(
            f"{e['scheme']:<10} {e['policy']:<18} "
            f"{e['completed']:>3}/{e['requests']:<2} "
            f"{e['goodput_tokens_per_s']:>10.1f} "
            f"{lc.get('preempted', 0):>9} {lc.get('timed_out', 0):>9}"
        )
    return "\n".join(rows)


# ----------------------------------------------------------------------
# SLO regression gate (--compare)
# ----------------------------------------------------------------------
def compare_reports(current: dict, baseline: dict, threshold: float = 0.20):
    """Gate ``current`` against ``baseline``: per (scheme, arrival) arm,
    p99 end-to-end latency must not grow and goodput must not shrink by
    more than ``threshold`` (relative).  Returns ``(ok, lines)``.

    Both reports come from the same deterministic simulator, so the ratios
    compare like-for-like regardless of host speed."""
    lines: List[str] = []
    ok = True
    base_by_key = {(e["scheme"], e["arrival"]): e for e in baseline["schemes"]}
    cur_by_key = {(e["scheme"], e["arrival"]): e for e in current["schemes"]}
    for key, base in sorted(base_by_key.items()):
        cur = cur_by_key.get(key)
        name = "/".join(key)
        if cur is None:
            ok = False
            lines.append(f"FAIL {name}: arm missing from current report")
            continue
        bp99, cp99 = base["e2e_s"]["p99"], cur["e2e_s"]["p99"]
        bgood, cgood = base["goodput_tokens_per_s"], cur["goodput_tokens_per_s"]
        p99_ratio = cp99 / bp99 if bp99 > 0 else 1.0
        good_ratio = cgood / bgood if bgood > 0 else 1.0
        arm_ok = True
        if p99_ratio > 1.0 + threshold:
            arm_ok = False
            lines.append(
                f"FAIL {name}: p99 e2e {cp99:.6f}s vs baseline {bp99:.6f}s "
                f"({p99_ratio:.2f}x > {1 + threshold:.2f}x)"
            )
        if good_ratio < 1.0 - threshold:
            arm_ok = False
            lines.append(
                f"FAIL {name}: goodput {cgood:.1f} tok/s vs baseline {bgood:.1f} "
                f"({good_ratio:.2f}x < {1 - threshold:.2f}x)"
            )
        if arm_ok:
            lines.append(f"ok   {name}: p99 {p99_ratio:.2f}x, goodput {good_ratio:.2f}x")
        ok = ok and arm_ok
    return ok, lines


# ----------------------------------------------------------------------
# text rendering + CLI driver
# ----------------------------------------------------------------------
def render_text(report: dict) -> str:
    head = (
        f"{'scheme':<10} {'arrival':<8} {'p50 ttft':>10} {'p99 e2e':>10} "
        f"{'goodput':>10} {'SLO':>6} {'steps':>6}"
    )
    rows = [head, "-" * len(head)]
    for e in report["schemes"]:
        ttft = f"{e['ttft_s']['p50'] * 1e3:>8.3f}ms" if e["ttft_s"] else f"{'—':>10}"
        e2e = f"{e['e2e_s']['p99'] * 1e3:>8.3f}ms" if e["e2e_s"] else f"{'—':>10}"
        rows.append(
            f"{e['scheme']:<10} {e['arrival']:<8} "
            f"{ttft} {e2e} "
            f"{e['goodput_tokens_per_s']:>10.1f} {e['slo_attainment']:>6.2f} "
            f"{e['steps']:>6}"
        )
    return "\n".join(rows)


def write_report(report: dict, path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def load_baseline(path: str) -> dict:
    """Read an SLO baseline report, failing with actionable errors: a
    missing or corrupt file names the path and the regeneration command
    instead of surfacing a bare traceback."""
    regen = f"python -m repro serve --seed 0 --out {path}"
    try:
        with open(path) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        raise SystemExit(
            f"error: serving baseline {path!r} not found — regenerate it with: {regen}"
        )
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"error: serving baseline {path!r} is not valid JSON ({exc}) — "
            f"regenerate it with: {regen}"
        )
    if not isinstance(baseline, dict) or "schemes" not in baseline:
        raise SystemExit(
            f"error: serving baseline {path!r} has no 'schemes' section "
            f"(not a {REPORT_SCHEMA} report?) — regenerate it with: {regen}"
        )
    return baseline


def _load_alert_rules(path: str) -> List[AlertRule]:
    """Parse a JSON alert-rule file (a list of AlertRule dicts)."""
    try:
        with open(path) as f:
            docs = json.load(f)
    except FileNotFoundError:
        raise SystemExit(f"error: alert-rules file {path!r} not found")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: alert-rules file {path!r} is not valid JSON ({exc})")
    if not isinstance(docs, list) or not docs:
        raise SystemExit(
            f"error: alert-rules file {path!r} must be a non-empty JSON list of rules"
        )
    try:
        return [AlertRule.from_dict(d) for d in docs]
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"error: alert-rules file {path!r}: {exc}")


def cmd_serve(args) -> int:
    """Driver for ``python -m repro serve`` (returns the exit code)."""
    ledger = RunLedger(args.ledger) if getattr(args, "ledger", None) else None
    schemes = tuple(args.scheme) if args.scheme else SCHEMES

    if getattr(args, "preempt_ab", False):
        ab = run_preempt_ab(args.seed, quick=args.quick, schemes=schemes)
        if args.out:
            write_report(ab, args.out)
        print(render_preempt_ab(ab))
        if not ab["ok"]:
            print(
                "FAIL: preemption did not beat conservative reservation "
                "(see the 'gate' section of the report)"
            )
            return 1
        print(
            "ok: preemption admits what reservation rejects, at strictly "
            "higher goodput (both swap and recompute arms)"
        )
        return 0

    kw = dict(
        schemes=schemes,
        arrivals=tuple(args.arrival) if args.arrival else ARRIVAL_PROFILES,
        requests=args.requests,
        rate_rps=args.rate,
        q=args.q,
        slots=args.slots,
        block_size=args.block_size,
        blocks=args.blocks,
        slo_ttft=args.slo_ttft,
        slo_tpot=args.slo_tpot,
        policy=getattr(args, "policy", None),
        swap_blocks=getattr(args, "swap_blocks", None),
        swap_gbps=getattr(args, "swap_bw", None),
        deadline=getattr(args, "deadline", None),
        retries=getattr(args, "retries", None),
        max_queue_depth=getattr(args, "max_queue_depth", None),
    )
    if args.ab:
        for name in ("policy", "swap_blocks", "swap_gbps", "deadline", "retries",
                     "max_queue_depth"):
            kw.pop(name)
        ab = run_ab(args.seed, quick=args.quick, **kw)
        if args.out:
            write_report(ab, args.out)
        print(render_text(ab["per_rank"]))
        if not ab["equal"]:
            print("FAIL: batched-mesh serving report differs from per-rank")
            return 1
        print("ok: batched-mesh and per-rank serving reports are byte-identical")
        return 0

    if getattr(args, "alert_rules", None):
        kw["alert_rules"] = _load_alert_rules(args.alert_rules)
    kw["alerts"] = bool(getattr(args, "alerts", False))

    server = None
    if getattr(args, "metrics_port", None) is not None:
        from repro.obs.live import MetricsServer

        server = MetricsServer(port=args.metrics_port).start()
        print(f"metrics endpoint: http://127.0.0.1:{server.port}/metrics")
        kw["metrics_server"] = server

    try:
        if getattr(args, "sweep", None):
            try:
                rates = [float(r) for r in args.sweep.split(",") if r.strip()]
            except ValueError:
                raise SystemExit(
                    f"error: --sweep expects comma-separated rates, got {args.sweep!r}"
                )
            arrivals = kw.pop("arrivals")
            kw.pop("rate_rps", None)  # the sweep owns the offered load
            sweep = run_sweep(
                args.seed, rates=rates, quick=args.quick, ledger=ledger,
                arrivals=arrivals if args.arrival else ("poisson",), **kw,
            )
            if args.out:
                write_report(sweep, args.out)
            print(render_sweep(sweep))
            if server is not None and getattr(args, "metrics_hold", None):
                server.hold(args.metrics_hold)
            return 0

        report = run_serve(args.seed, quick=args.quick, ledger=ledger, **kw)
        if args.out:
            write_report(report, args.out)
        print(render_text(report))
        for entry in report["schemes"]:
            alert_doc = entry.get("alerts")
            if alert_doc and alert_doc["events"]:
                print(
                    f"alerts [{entry['scheme']}/{entry['arrival']}]: "
                    f"{alert_doc['fired_total']} fired, "
                    f"{alert_doc['resolved_total']} resolved"
                    + (f", still firing: {', '.join(alert_doc['firing'])}"
                       if alert_doc["firing"] else "")
                )
        if args.compare:
            baseline = load_baseline(args.compare)
            ok, lines = compare_reports(report, baseline, threshold=args.threshold)
            print()
            print(f"SLO gate vs {args.compare} (threshold {args.threshold:.0%}):")
            for line in lines:
                print("  " + line)
            if not ok:
                return 1
        if server is not None and getattr(args, "metrics_hold", None):
            server.hold(args.metrics_hold)
        return 0
    finally:
        if server is not None:
            server.stop()
