"""Block-partitioned sharded KV-cache for autoregressive decode.

Layout mirrors how the two schemes partition attention:

* **Optimus (2-D)** — attention is local per rank with b and n partitioned
  (s never is), so KV slots are assigned to mesh *rows*: the q ranks of row
  i each hold the cache of row i's slots for their n/q head block.  Per
  device that is ``2·L·(S/q)·s·(n/q)·d`` elements = ``O(bsh/p)``.
* **Megatron (1-D)** — heads are split p ways and every rank sees every
  sequence, so one shard group spans all p ranks with n/p heads each —
  also ``O(bsh/p)``.

Storage is paged: each slot owns a table of fixed-size *blocks*
(``block_size`` token positions), drawn from a per-group
:class:`KVBlockPool` with a hard capacity.  Blocks are reserved up-front at
admission (conservative reservation — no mid-flight OOM, no preemption) and
freed when the sequence is evicted.  Backing arrays come from the shared
:class:`~repro.core.buffers.ArrayPool` free-list, and every block
allocation/free is charged to the owning simulated devices' memory meters
under the ``"kvcache"`` tag, so serving peaks show up in ledger watermarks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.buffers import ArrayPool

KV_MEMORY_TAG = "kvcache"


class KVBlockPool:
    """A fixed budget of block ids for one shard group (lowest-id-first)."""

    def __init__(self, gid: int, num_blocks: int):
        if num_blocks < 1:
            raise ValueError(f"group {gid}: num_blocks must be >= 1")
        self.gid = gid
        self.capacity = num_blocks
        self._free: List[int] = list(range(num_blocks))
        heapq.heapify(self._free)
        self.peak_in_use = 0

    @property
    def free(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.capacity - len(self._free)

    def allocate(self, count: int) -> List[int]:
        if count > self.free:
            raise RuntimeError(
                f"KV block pool {self.gid} exhausted: need {count}, free {self.free}"
            )
        ids = [heapq.heappop(self._free) for _ in range(count)]
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return ids

    def release(self, ids: Sequence[int]) -> None:
        for b in ids:
            heapq.heappush(self._free, b)
        if len(self._free) > self.capacity:
            raise RuntimeError(f"KV block pool {self.gid}: double free detected")


@dataclass(frozen=True)
class KVShardGroup:
    """One replication group of the cache: which ranks store which slots."""

    gid: int
    ranks: Tuple[int, ...]
    slots: Tuple[int, ...]


class ShardedKVCache:
    """Paged K/V storage sharded across a simulator's devices."""

    def __init__(
        self,
        sim,
        groups: Sequence[KVShardGroup],
        num_layers: int,
        heads_loc: int,
        head_dim: int,
        block_size: int,
        blocks_per_group: int,
        dtype: str = "float64",
        pool: Optional[ArrayPool] = None,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.sim = sim
        self.groups = tuple(groups)
        self.num_layers = num_layers
        self.heads_loc = heads_loc
        self.head_dim = head_dim
        self.block_size = block_size
        self.dtype = np.dtype(dtype)
        self.pool = pool if pool is not None else ArrayPool()
        self.pools: Dict[int, KVBlockPool] = {
            g.gid: KVBlockPool(g.gid, blocks_per_group) for g in self.groups
        }
        self._group_of_slot: Dict[int, KVShardGroup] = {}
        for g in self.groups:
            for s in g.slots:
                if s in self._group_of_slot:
                    raise ValueError(f"slot {s} assigned to two shard groups")
                self._group_of_slot[s] = g
        #: (gid, block_id) -> {(layer, rank): (k [n_loc, bs, d], v [n_loc, bs, d])}
        self._storage: Dict[Tuple[int, int], Dict[Tuple[int, int], Tuple]] = {}
        self._tables: Dict[int, List[int]] = {}  # slot -> block ids, in order
        self._lengths: Dict[int, int] = {}  # slot -> committed token count

    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return len(self._group_of_slot)

    def group_of(self, slot: int) -> KVShardGroup:
        return self._group_of_slot[slot]

    def blocks_needed(self, kv_positions: int) -> int:
        return -(-max(kv_positions, 1) // self.block_size)

    def can_reserve(self, slot: int, kv_positions: int) -> bool:
        g = self.group_of(slot)
        return self.pools[g.gid].free >= self.blocks_needed(kv_positions)

    def bytes_per_rank_block(self) -> int:
        """Device bytes one block occupies on one rank (K+V, all layers)."""
        per_layer = 2 * self.heads_loc * self.block_size * self.head_dim
        return per_layer * self.num_layers * self.dtype.itemsize

    def per_device_capacity_bytes(self) -> int:
        """KV bytes a fully-used pool pins on each device of a group."""
        any_gid = self.groups[0].gid
        return self.pools[any_gid].capacity * self.bytes_per_rank_block()

    # ------------------------------------------------------------------
    def reserve(self, slot: int, kv_positions: int) -> None:
        """Allocate (and charge) every block the sequence will ever need."""
        if slot in self._tables:
            raise RuntimeError(f"slot {slot} already reserved")
        g = self.group_of(slot)
        need = self.blocks_needed(kv_positions)
        block_ids = self.pools[g.gid].allocate(need)
        nbytes = self.bytes_per_rank_block()
        shape = (self.heads_loc, self.block_size, self.head_dim)
        for b in block_ids:
            store: Dict[Tuple[int, int], Tuple] = {}
            for rank in g.ranks:
                self.sim.device(rank).memory.alloc(nbytes, tag=KV_MEMORY_TAG)
                for layer in range(self.num_layers):
                    store[(layer, rank)] = (
                        self.pool.acquire(shape, self.dtype),
                        self.pool.acquire(shape, self.dtype),
                    )
            self._storage[(g.gid, b)] = store
        self._tables[slot] = block_ids
        self._lengths[slot] = 0

    def free(self, slot: int) -> None:
        """Evict a sequence: release its blocks and uncharge device memory."""
        g = self.group_of(slot)
        block_ids = self._tables.pop(slot)
        self._lengths.pop(slot)
        nbytes = self.bytes_per_rank_block()
        for b in block_ids:
            store = self._storage.pop((g.gid, b))
            for (_layer, _rank), (k, v) in store.items():
                self.pool.release(k)
                self.pool.release(v)
            for rank in g.ranks:
                self.sim.device(rank).memory.free(nbytes, tag=KV_MEMORY_TAG)
        self.pools[g.gid].release(block_ids)

    # ------------------------------------------------------------------
    def write(self, slot: int, layer: int, rank: int, pos: int, k_vec, v_vec) -> None:
        """Store one token's K/V (``[n_loc, d]``) at cache position ``pos``."""
        g = self.group_of(slot)
        table = self._tables[slot]
        b, off = divmod(pos, self.block_size)
        k_arr, v_arr = self._storage[(g.gid, table[b])][(layer, rank)]
        k_arr[:, off, :] = k_vec
        v_arr[:, off, :] = v_vec

    def gather(self, slot: int, layer: int, rank: int, upto: int):
        """K/V for positions ``[0, upto)`` as ``[n_loc, upto, d]`` arrays."""
        g = self.group_of(slot)
        table = self._tables[slot]
        bs = self.block_size
        nblocks = -(-upto // bs)
        if nblocks == 1:
            k_arr, v_arr = self._storage[(g.gid, table[0])][(layer, rank)]
            return k_arr[:, :upto, :], v_arr[:, :upto, :]
        ks, vs = [], []
        for b in range(nblocks):
            k_arr, v_arr = self._storage[(g.gid, table[b])][(layer, rank)]
            hi = min(bs, upto - b * bs)
            ks.append(k_arr[:, :hi, :])
            vs.append(v_arr[:, :hi, :])
        return np.concatenate(ks, axis=1), np.concatenate(vs, axis=1)

    def commit(self, slot: int) -> None:
        """Advance the committed length after a token's K/V is fully written."""
        self._lengths[slot] += 1

    def length(self, slot: int) -> int:
        return self._lengths[slot]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "block_size": self.block_size,
            "blocks_per_group": self.pools[self.groups[0].gid].capacity,
            "num_groups": len(self.groups),
            "peak_blocks_in_use": {
                str(gid): p.peak_in_use for gid, p in sorted(self.pools.items())
            },
            "bytes_per_rank_block": self.bytes_per_rank_block(),
            "per_device_capacity_bytes": self.per_device_capacity_bytes(),
        }
