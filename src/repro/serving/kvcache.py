"""Block-partitioned sharded KV-cache for autoregressive decode.

Layout mirrors how the two schemes partition attention:

* **Optimus (2-D)** — attention is local per rank with b and n partitioned
  (s never is), so KV slots are assigned to mesh *rows*: the q ranks of row
  i each hold the cache of row i's slots for their n/q head block.  Per
  device that is ``2·L·(S/q)·s·(n/q)·d`` elements = ``O(bsh/p)``.
* **Megatron (1-D)** — heads are split p ways and every rank sees every
  sequence, so one shard group spans all p ranks with n/p heads each —
  also ``O(bsh/p)``.

Storage is paged: each slot owns a table of fixed-size *blocks*
(``block_size`` token positions), drawn from a per-group
:class:`KVBlockPool` with a hard capacity.  Under the default conservative
policy blocks are reserved up-front at admission (no mid-flight OOM, no
preemption) and freed when the sequence is evicted; the preemptive policy
instead reserves only the known prefix and grows on demand
(:meth:`ShardedKVCache.ensure_capacity`), spilling preempted victims to a
:class:`HostSwapSpace` — a host-memory tier metered under its own
``"kvswap"`` tag with transfer time priced on the simulated clock.  Backing
arrays come from the shared :class:`~repro.core.buffers.ArrayPool`
free-list, and every block allocation/free is charged to the owning
simulated devices' memory meters under the ``"kvcache"`` tag, so serving
peaks show up in ledger watermarks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.buffers import ArrayPool
from repro.runtime.memory import MemoryMeter

KV_MEMORY_TAG = "kvcache"
KV_SWAP_TAG = "kvswap"

#: pseudo-rank for the host swap tier's meter (not a simulated device)
HOST_RANK = -1


class HostSwapSpace:
    """A host-memory tier for swapped-out KV blocks.

    Capacity is expressed in *blocks per shard group* (the same unit the
    device pools use); bytes are charged to a dedicated
    :class:`~repro.runtime.memory.MemoryMeter` under the ``"kvswap"`` tag so
    host-side pressure is auditable separately from device watermarks.
    Transfers are priced on the simulated clock at ``gbps`` per rank — a
    swap moves each rank's shard over its own host link concurrently.
    """

    def __init__(self, capacity_blocks: int, rank_block_bytes: int, gbps: float = 16.0):
        if capacity_blocks < 0:
            raise ValueError(f"capacity_blocks must be >= 0, got {capacity_blocks}")
        if gbps <= 0:
            raise ValueError(f"swap bandwidth must be positive, got {gbps} GB/s")
        self.capacity_blocks = capacity_blocks
        self.rank_block_bytes = rank_block_bytes
        self.bytes_per_s = gbps * 1e9
        self.meter = MemoryMeter(rank=HOST_RANK)
        self.blocks_held = 0
        self.peak_blocks = 0
        self.swap_out_count = 0
        self.swap_in_count = 0
        self.bytes_out = 0
        self.bytes_in = 0

    def can_hold(self, num_blocks: int) -> bool:
        return self.blocks_held + num_blocks <= self.capacity_blocks

    def transfer_s(self, num_blocks: int) -> float:
        """Simulated seconds to move ``num_blocks`` of one rank's shards."""
        return num_blocks * self.rank_block_bytes / self.bytes_per_s

    def stats(self) -> dict:
        return {
            "capacity_blocks": self.capacity_blocks,
            "peak_blocks": self.peak_blocks,
            "peak_bytes": self.meter.peak,
            "swap_out_count": self.swap_out_count,
            "swap_in_count": self.swap_in_count,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
        }


@dataclass
class SwapTicket:
    """A swapped-out sequence: its K/V arrays parked in host memory.

    The array objects themselves move (no copy), so a swap-out/swap-in
    round trip is bit-exact by construction.  Tickets are bound to the
    shard group they came from — per-rank shards only make sense on the
    ranks that produced them.
    """

    slot: int
    gid: int
    stores: List[Dict[Tuple[int, int], Tuple]]  # one per block, in table order
    length: int  # committed token count at swap-out
    num_ranks: int

    @property
    def num_blocks(self) -> int:
        return len(self.stores)


class KVBlockPool:
    """A fixed budget of block ids for one shard group (lowest-id-first)."""

    def __init__(self, gid: int, num_blocks: int):
        if num_blocks < 1:
            raise ValueError(f"group {gid}: num_blocks must be >= 1")
        self.gid = gid
        self.capacity = num_blocks
        self._free: List[int] = list(range(num_blocks))
        heapq.heapify(self._free)
        self.peak_in_use = 0

    @property
    def free(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.capacity - len(self._free)

    def allocate(self, count: int) -> List[int]:
        if count > self.free:
            raise RuntimeError(
                f"KV block pool {self.gid} exhausted: need {count}, free {self.free}"
            )
        ids = [heapq.heappop(self._free) for _ in range(count)]
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return ids

    def release(self, ids: Sequence[int]) -> None:
        for b in ids:
            heapq.heappush(self._free, b)
        if len(self._free) > self.capacity:
            raise RuntimeError(f"KV block pool {self.gid}: double free detected")


@dataclass(frozen=True)
class KVShardGroup:
    """One replication group of the cache: which ranks store which slots."""

    gid: int
    ranks: Tuple[int, ...]
    slots: Tuple[int, ...]


class ShardedKVCache:
    """Paged K/V storage sharded across a simulator's devices."""

    def __init__(
        self,
        sim,
        groups: Sequence[KVShardGroup],
        num_layers: int,
        heads_loc: int,
        head_dim: int,
        block_size: int,
        blocks_per_group: int,
        dtype: str = "float64",
        pool: Optional[ArrayPool] = None,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.sim = sim
        self.groups = tuple(groups)
        self.num_layers = num_layers
        self.heads_loc = heads_loc
        self.head_dim = head_dim
        self.block_size = block_size
        self.dtype = np.dtype(dtype)
        self.pool = pool if pool is not None else ArrayPool()
        self.pools: Dict[int, KVBlockPool] = {
            g.gid: KVBlockPool(g.gid, blocks_per_group) for g in self.groups
        }
        self._group_of_slot: Dict[int, KVShardGroup] = {}
        for g in self.groups:
            for s in g.slots:
                if s in self._group_of_slot:
                    raise ValueError(f"slot {s} assigned to two shard groups")
                self._group_of_slot[s] = g
        #: (gid, block_id) -> {(layer, rank): (k [n_loc, bs, d], v [n_loc, bs, d])}
        self._storage: Dict[Tuple[int, int], Dict[Tuple[int, int], Tuple]] = {}
        self._tables: Dict[int, List[int]] = {}  # slot -> block ids, in order
        self._lengths: Dict[int, int] = {}  # slot -> committed token count

    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return len(self._group_of_slot)

    def group_of(self, slot: int) -> KVShardGroup:
        return self._group_of_slot[slot]

    def blocks_needed(self, kv_positions: int) -> int:
        return -(-max(kv_positions, 1) // self.block_size)

    def blocks_of(self, slot: int) -> int:
        """Blocks currently held by a resident slot."""
        return len(self._tables[slot])

    def can_reserve(self, slot: int, kv_positions: int) -> bool:
        g = self.group_of(slot)
        return self.pools[g.gid].free >= self.blocks_needed(kv_positions)

    def bytes_per_rank_block(self) -> int:
        """Device bytes one block occupies on one rank (K+V, all layers)."""
        per_layer = 2 * self.heads_loc * self.block_size * self.head_dim
        return per_layer * self.num_layers * self.dtype.itemsize

    def per_device_capacity_bytes(self) -> int:
        """KV bytes a fully-used pool pins on each device of a group."""
        any_gid = self.groups[0].gid
        return self.pools[any_gid].capacity * self.bytes_per_rank_block()

    # ------------------------------------------------------------------
    def _charge_blocks(self, g: KVShardGroup, block_ids: Sequence[int]) -> None:
        """Back freshly allocated block ids with arrays and device bytes."""
        nbytes = self.bytes_per_rank_block()
        shape = (self.heads_loc, self.block_size, self.head_dim)
        for b in block_ids:
            store: Dict[Tuple[int, int], Tuple] = {}
            for rank in g.ranks:
                self.sim.device(rank).memory.alloc(nbytes, tag=KV_MEMORY_TAG)
                for layer in range(self.num_layers):
                    store[(layer, rank)] = (
                        self.pool.acquire(shape, self.dtype),
                        self.pool.acquire(shape, self.dtype),
                    )
            self._storage[(g.gid, b)] = store

    def reserve(self, slot: int, kv_positions: int) -> None:
        """Allocate (and charge) every block for ``kv_positions`` tokens.

        Under conservative reservation this is the sequence's whole
        footprint; the preemptive policy reserves just the known prefix and
        grows via :meth:`ensure_capacity`.
        """
        if slot in self._tables:
            raise RuntimeError(f"slot {slot} already reserved")
        g = self.group_of(slot)
        need = self.blocks_needed(kv_positions)
        block_ids = self.pools[g.gid].allocate(need)
        self._charge_blocks(g, block_ids)
        self._tables[slot] = block_ids
        self._lengths[slot] = 0

    def ensure_capacity(self, slot: int, kv_positions: int) -> bool:
        """Grow a slot's table to cover ``kv_positions``; False if the pool
        can't supply the extra blocks (caller decides whether to preempt)."""
        table = self._tables[slot]
        need = self.blocks_needed(kv_positions)
        if need <= len(table):
            return True
        g = self.group_of(slot)
        grow = need - len(table)
        if self.pools[g.gid].free < grow:
            return False
        block_ids = self.pools[g.gid].allocate(grow)
        self._charge_blocks(g, block_ids)
        table.extend(block_ids)
        return True

    def free(self, slot: int) -> None:
        """Evict a sequence: release its blocks and uncharge device memory."""
        g = self.group_of(slot)
        block_ids = self._tables.pop(slot)
        self._lengths.pop(slot)
        nbytes = self.bytes_per_rank_block()
        for b in block_ids:
            store = self._storage.pop((g.gid, b))
            for (_layer, _rank), (k, v) in store.items():
                self.pool.release(k)
                self.pool.release(v)
            for rank in g.ranks:
                self.sim.device(rank).memory.free(nbytes, tag=KV_MEMORY_TAG)
        self.pools[g.gid].release(block_ids)

    # ------------------------------------------------------------------
    def swap_out(self, slot: int, swap: HostSwapSpace) -> SwapTicket:
        """Spill a slot's K/V blocks to the host tier.

        The backing arrays move into the returned ticket untouched (no
        copy, bit-exact), device meters and pool ids are released, host
        bytes are charged, and the group's ranks pay the transfer time on
        the simulated clock.
        """
        g = self.group_of(slot)
        block_ids = self._tables.pop(slot)
        length = self._lengths.pop(slot)
        if not swap.can_hold(len(block_ids)):
            # put state back before failing: callers probe with can_hold
            self._tables[slot] = block_ids
            self._lengths[slot] = length
            raise RuntimeError(
                f"host swap space full: need {len(block_ids)} blocks, "
                f"holding {swap.blocks_held} of {swap.capacity_blocks}"
            )
        nbytes = self.bytes_per_rank_block()
        stores = []
        for b in block_ids:
            stores.append(self._storage.pop((g.gid, b)))
            for rank in g.ranks:
                self.sim.device(rank).memory.free(nbytes, tag=KV_MEMORY_TAG)
        self.pools[g.gid].release(block_ids)
        host_bytes = len(block_ids) * nbytes * len(g.ranks)
        swap.meter.alloc(host_bytes, tag=KV_SWAP_TAG)
        swap.blocks_held += len(block_ids)
        swap.peak_blocks = max(swap.peak_blocks, swap.blocks_held)
        swap.swap_out_count += 1
        swap.bytes_out += host_bytes
        dt = swap.transfer_s(len(block_ids))
        self.sim.sync(g.ranks)
        self.sim.advance(g.ranks, dt)
        return SwapTicket(
            slot=slot, gid=g.gid, stores=stores, length=length, num_ranks=len(g.ranks)
        )

    def can_swap_in(self, slot: int, ticket: SwapTicket) -> bool:
        g = self.group_of(slot)
        return g.gid == ticket.gid and self.pools[g.gid].free >= ticket.num_blocks

    def swap_in(self, slot: int, ticket: SwapTicket, swap: HostSwapSpace) -> None:
        """Restore a swapped-out sequence into ``slot`` (same shard group).

        Reverses :meth:`swap_out`: fresh block ids, the ticket's arrays
        re-attached verbatim, device bytes re-charged, host bytes freed,
        transfer time paid again.
        """
        if slot in self._tables:
            raise RuntimeError(f"slot {slot} already reserved")
        g = self.group_of(slot)
        if g.gid != ticket.gid:
            raise RuntimeError(
                f"swap-in group mismatch: ticket from group {ticket.gid}, "
                f"slot {slot} lives in group {g.gid} (per-rank shards are "
                "only valid on the ranks that produced them)"
            )
        block_ids = self.pools[g.gid].allocate(ticket.num_blocks)
        nbytes = self.bytes_per_rank_block()
        for b, store in zip(block_ids, ticket.stores):
            self._storage[(g.gid, b)] = store
            for rank in g.ranks:
                self.sim.device(rank).memory.alloc(nbytes, tag=KV_MEMORY_TAG)
        self._tables[slot] = block_ids
        self._lengths[slot] = ticket.length
        host_bytes = ticket.num_blocks * nbytes * len(g.ranks)
        swap.meter.free(host_bytes, tag=KV_SWAP_TAG)
        swap.blocks_held -= ticket.num_blocks
        swap.swap_in_count += 1
        swap.bytes_in += host_bytes
        dt = swap.transfer_s(ticket.num_blocks)
        self.sim.sync(g.ranks)
        self.sim.advance(g.ranks, dt)

    def discard_ticket(self, ticket: SwapTicket, swap: HostSwapSpace) -> None:
        """Drop a swapped-out sequence without restoring it (deadline abort):
        arrays go back to the free-list, host bytes are uncharged, no
        transfer is paid (dropping is free)."""
        for store in ticket.stores:
            for (_layer, _rank), (k, v) in store.items():
                self.pool.release(k)
                self.pool.release(v)
        host_bytes = ticket.num_blocks * self.bytes_per_rank_block() * ticket.num_ranks
        swap.meter.free(host_bytes, tag=KV_SWAP_TAG)
        swap.blocks_held -= ticket.num_blocks
        ticket.stores.clear()

    # ------------------------------------------------------------------
    def write(self, slot: int, layer: int, rank: int, pos: int, k_vec, v_vec) -> None:
        """Store one token's K/V (``[n_loc, d]``) at cache position ``pos``."""
        g = self.group_of(slot)
        table = self._tables[slot]
        b, off = divmod(pos, self.block_size)
        k_arr, v_arr = self._storage[(g.gid, table[b])][(layer, rank)]
        k_arr[:, off, :] = k_vec
        v_arr[:, off, :] = v_vec

    def gather(self, slot: int, layer: int, rank: int, upto: int):
        """K/V for positions ``[0, upto)`` as ``[n_loc, upto, d]`` arrays."""
        g = self.group_of(slot)
        table = self._tables[slot]
        bs = self.block_size
        nblocks = -(-upto // bs)
        if nblocks == 1:
            k_arr, v_arr = self._storage[(g.gid, table[0])][(layer, rank)]
            return k_arr[:, :upto, :], v_arr[:, :upto, :]
        ks, vs = [], []
        for b in range(nblocks):
            k_arr, v_arr = self._storage[(g.gid, table[b])][(layer, rank)]
            hi = min(bs, upto - b * bs)
            ks.append(k_arr[:, :hi, :])
            vs.append(v_arr[:, :hi, :])
        return np.concatenate(ks, axis=1), np.concatenate(vs, axis=1)

    def commit(self, slot: int) -> None:
        """Advance the committed length after a token's K/V is fully written."""
        self._lengths[slot] += 1

    def length(self, slot: int) -> int:
        return self._lengths[slot]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "block_size": self.block_size,
            "blocks_per_group": self.pools[self.groups[0].gid].capacity,
            "num_groups": len(self.groups),
            "peak_blocks_in_use": {
                str(gid): p.peak_in_use for gid, p in sorted(self.pools.items())
            },
            "bytes_per_rank_block": self.bytes_per_rank_block(),
            "per_device_capacity_bytes": self.per_device_capacity_bytes(),
        }
