"""Request-scoped serving telemetry: live metrics + lifecycle trace events.

One :class:`ServingTelemetry` is attached per engine run.  It has two
jobs, both strictly **read-only with respect to the simulation** (it never
touches a device clock, a KV block, or a sampled token, which is what
keeps serve reports byte-identical with telemetry on or off):

* **Live metrics** — every engine step publishes queue depth, running
  batch size, KV/swap occupancy, TTFT/TPOT/e2e histograms, and
  goodput/throughput counters into the simulator's labeled
  :class:`~repro.obs.metrics.MetricsRegistry`.  The ``repro serve
  --metrics-port`` endpoint renders that registry on each scrape; counters
  carry a ``created`` reset epoch so scrapers see proper OpenMetrics
  counter-restart semantics across arms.

* **Request lifecycle tracing** — when the simulator's tracer is enabled,
  every request emits flat events of kind ``"request"`` (``queued >
  admitted > prefill > decode[step] > preempted/swap-out/swap-in >
  complete|abort``) plus a root event spanning arrival→finish.  Event
  identity derives from ``(rid, step)`` so traces are byte-deterministic;
  the Perfetto exporter turns them into per-rank "requests" tracks with
  cross-step flow arrows.

The scheduler reports preemption/swap/timeout transitions through its
``observer`` attribute (duck-typed to this class; ``None`` disables it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def _finished_tpot(state) -> float:
    """Time-per-output-token over the decode stretch (0.0 for max_new == 1);
    mirrors :func:`repro.serving.report._tpot` so the live good-token
    counter agrees with the post-hoc report's goodput accounting."""
    n = state.request.max_new
    return (state.finish_time - state.first_token_time) / (n - 1) if n > 1 else 0.0


class ServingTelemetry:
    """Per-run metrics publisher and request-lifecycle trace emitter."""

    def __init__(
        self,
        engine,
        slo: Optional[Tuple[float, float]] = None,
        epoch: int = 0,
    ):
        self.engine = engine
        self.sim = engine.sim
        self.reg = engine.sim.metrics
        self.scheme = engine.scheme
        self.slo = slo  # (slo_ttft, slo_tpot); None disables goodput accounting
        self.epoch = int(epoch)
        self.good_total = 0.0
        self.gen_total = 0.0
        self._lifecycle_prev: Dict[str, int] = {}

    # -- registry helpers ----------------------------------------------
    def _counter(self, name: str):
        c = self.reg.counter(name, scheme=self.scheme)
        if c.created < self.epoch:
            c.created = self.epoch
        return c

    def _gauge(self, name: str):
        return self.reg.gauge(name, scheme=self.scheme)

    def _hist(self, name: str):
        return self.reg.histogram(name, scheme=self.scheme)

    # -- trace helpers -------------------------------------------------
    @property
    def tracing(self) -> bool:
        return self.sim.tracer.enabled

    def _ranks_of(self, slot: int) -> Sequence[int]:
        return self.engine.cache.group_of(slot).ranks

    def _event(self, label: str, ranks, t0: float, t1: float, **attrs) -> None:
        if self.tracing:
            self.sim.tracer.record("request", ranks, t0, t1, label=label, attrs=attrs)

    # ==================================================================
    # engine hooks
    # ==================================================================
    def on_admitted(self, states: List, now: float) -> None:
        """New admissions this step: close each request's queued wait."""
        for st in states:
            rid = st.request.rid
            ranks = self._ranks_of(st.slot)
            self._event("queued", ranks, st.request.arrival, now, rid=rid, phase="queued")
            self._event("admitted", ranks, now, now, rid=rid, slot=st.slot, phase="admitted")

    def on_lanes(self, entries: List, active: Dict, step: int, t0: float, t1: float) -> None:
        """One prefill/decode event per lane of a successful step."""
        if not self.tracing:
            return
        for e in entries:
            st = active.get(e.slot)
            if st is None:  # finished and evicted within this step
                continue
            phase = "prefill" if st.prefill_lane else "decode"
            self._event(
                phase, self._ranks_of(e.slot), t0, t1,
                rid=st.request.rid, step=step, slot=e.slot, pos=e.pos, phase=phase,
            )

    def on_first_token(self, state, t: float) -> None:
        self._hist("serving/ttft_s").observe(t - state.request.arrival)

    def on_recovery(self, t0: float, t1: float, step: int) -> None:
        if self.tracing:
            self.sim.tracer.record(
                "request", self.engine.all_ranks, t0, t1,
                label="recovery", attrs={"step": step, "phase": "recovery"},
            )

    def on_step(self, step: int, now: float, prompt_delta: int, gen_delta: int) -> None:
        """Post-bookkeeping publication for one successful engine step."""
        # counter families deliberately lack a _total suffix: the
        # OpenMetrics renderer appends it to the sample name itself
        self.gen_total += gen_delta
        self._counter("serving/steps").inc()
        if gen_delta:
            self._counter("serving/tokens").inc(gen_delta)
        if prompt_delta:
            self._counter("serving/prompt_tokens").inc(prompt_delta)
        self._lifecycle_deltas()
        self._publish_gauges(now)

    def on_idle(self, now: float) -> None:
        """Idle-advance: keep the scrapeable gauges fresh while parked."""
        self._publish_gauges(now)

    def on_alert(self, event) -> None:
        """An alert transition: point event in the trace (metrics untouched)."""
        if self.tracing:
            self.sim.tracer.record(
                "alert", self.engine.all_ranks, event.t, event.t,
                label=f"{event.rule}:{event.state}",
                attrs={
                    "rule": event.rule, "state": event.state,
                    "severity": event.severity, "step": event.step,
                    "value": event.value,
                },
            )

    # ==================================================================
    # scheduler observer surface
    # ==================================================================
    def on_preempt(self, state, now: float, swapped: bool) -> None:
        rid = state.request.rid
        ranks = self._ranks_of(state.slot)
        mode = "swap" if swapped else "recompute"
        self._event("preempted", ranks, now, now, rid=rid, slot=state.slot,
                    mode=mode, phase="preempted")
        if swapped:
            self._event("swap-out", ranks, now, now, rid=rid, slot=state.slot,
                        phase="swap-out")

    def on_resume(self, state, now: float, swapped: bool) -> None:
        phase = "swap-in" if swapped else "resume-recompute"
        self._event(phase, self._ranks_of(state.slot), now, now,
                    rid=state.request.rid, slot=state.slot, phase=phase)

    def on_shed(self, request, now: float) -> None:
        self._event("abort", self.engine.all_ranks, now, now,
                    rid=request.rid, phase="shed")

    def on_timeout(self, request, now: float, where: str, retried: bool) -> None:
        label = "retry" if retried else "abort"
        self._event(label, self.engine.all_ranks, now, now,
                    rid=request.rid, phase=f"timeout-{where}")

    def on_finish(self, state, now: float) -> None:
        """A request completed: latency histograms, goodput, root event."""
        r = state.request
        e2e = now - r.arrival
        tpot = _finished_tpot(state)
        self._hist("serving/e2e_s").observe(e2e)
        self._hist("serving/tpot_s").observe(tpot)
        self._counter("serving/finished").inc()
        if self.slo is not None:
            slo_ttft, slo_tpot = self.slo
            ttft = state.first_token_time - r.arrival
            if ttft <= slo_ttft and tpot <= slo_tpot:
                good = len(state.generated)
                self.good_total += good
                self._counter("serving/good_tokens").inc(good)
        ranks = self._ranks_of(state.slot)
        self._event("request", ranks, r.arrival, now,
                    rid=r.rid, generated=len(state.generated), phase="request")
        self._event("complete", ranks, now, now, rid=r.rid, phase="complete")

    # ==================================================================
    def _lifecycle_deltas(self) -> None:
        """Mirror scheduler lifecycle counters into monotone registry counters."""
        for key, val in self.engine.scheduler.lifecycle.items():
            prev = self._lifecycle_prev.get(key, 0)
            if val > prev:
                self._counter(f"serving/{key}").inc(val - prev)
                self._lifecycle_prev[key] = val

    def _publish_gauges(self, now: float) -> None:
        sched = self.engine.scheduler
        cache = self.engine.cache
        arrived = sum(1 for r in sched.queue if r.arrival <= now)
        self._gauge("serving/queue_depth").set(arrived)
        self._gauge("serving/running").set(len(sched.active))
        self._gauge("serving/paused").set(len(sched.paused))
        cap = sum(p.capacity for p in cache.pools.values())
        used = sum(p.in_use for p in cache.pools.values())
        self._gauge("serving/kv_used_frac").set(used / cap if cap else 0.0)
        swap = self.engine.swap
        if swap is not None:
            frac = (
                swap.blocks_held / swap.capacity_blocks if swap.capacity_blocks else 0.0
            )
            self._gauge("serving/swap_used_frac").set(frac)
        if now > 0:
            self._gauge("serving/goodput_tokens_per_s").set(self.good_total / now)
            self._gauge("serving/throughput_tokens_per_s").set(self.gen_total / now)
