"""Seeded synthetic traffic for the serving engine.

A :class:`TrafficGenerator` produces a fixed-length list of
:class:`Request` objects with arrival times on the *simulated* clock,
prompt token ids, and output-length targets.  Everything is drawn from one
``numpy`` generator seeded explicitly, in a fixed order (arrival gap,
prompt length, output length, prompt tokens — per request), so the same
seed always yields byte-identical traffic: the serving report's
determinism rests on this.

Two arrival processes are supported:

* ``poisson`` — i.i.d. exponential inter-arrival gaps at ``rate_rps``;
* ``bursty``  — bursts of ``burst_size`` simultaneous arrivals, with
  exponential gaps between bursts sized so the *mean* offered load matches
  the same ``rate_rps``.

Prompt and output lengths are drawn from small mixed (choice) distributions
— short chat-like and longer completion-like requests interleaved — the
shape continuous batching exists to handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

ARRIVAL_PROFILES = ("poisson", "bursty")

#: (lengths, weights) for the mixed prompt/output distributions
PROMPT_LENGTHS: Tuple[Tuple[int, ...], Tuple[float, ...]] = (
    (4, 8, 12, 16),
    (0.35, 0.30, 0.20, 0.15),
)
OUTPUT_LENGTHS: Tuple[Tuple[int, ...], Tuple[float, ...]] = (
    (4, 8, 16),
    (0.40, 0.40, 0.20),
)


@dataclass(frozen=True)
class Request:
    """One inference request on the simulated clock."""

    rid: int
    arrival: float  # simulated seconds
    prompt: tuple = field(repr=False)  # token ids, length >= 1
    max_new: int = 1  # output tokens to generate, >= 1
    priority: int = 0  # higher = more important (preemption picks the lowest)
    deadline_s: Optional[float] = None  # e2e deadline relative to arrival

    def __post_init__(self):
        if len(self.prompt) < 1:
            raise ValueError(
                f"request {self.rid}: zero-length prompt (prompts need >= 1 token)"
            )
        if self.max_new < 1:
            raise ValueError(f"request {self.rid}: max_new must be >= 1, got {self.max_new}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"request {self.rid}: deadline_s must be positive, got {self.deadline_s}"
            )

    @property
    def prompt_len(self) -> int:
        return len(self.prompt)

    @property
    def total_tokens(self) -> int:
        return self.prompt_len + self.max_new

    @property
    def kv_positions(self) -> int:
        """KV-cache positions the request occupies: every token except the
        final sampled one is appended to the cache."""
        return self.prompt_len + self.max_new - 1


class TrafficGenerator:
    """Deterministic request stream for one serving run."""

    def __init__(
        self,
        seed: int,
        vocab_size: int,
        arrival: str = "poisson",
        rate_rps: float = 100.0,
        num_requests: int = 16,
        burst_size: int = 4,
        prompt_lengths: Optional[Sequence[Tuple]] = None,
        output_lengths: Optional[Sequence[Tuple]] = None,
        deadline_s: Optional[float] = None,
    ):
        if arrival not in ARRIVAL_PROFILES:
            raise ValueError(
                f"unknown arrival profile {arrival!r} (choose from {ARRIVAL_PROFILES})"
            )
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        if num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {num_requests}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self.seed = seed
        self.vocab_size = vocab_size
        self.arrival = arrival
        self.rate_rps = float(rate_rps)
        self.num_requests = num_requests
        self.burst_size = max(1, burst_size)
        self.prompt_lengths = tuple(prompt_lengths) if prompt_lengths else PROMPT_LENGTHS
        self.output_lengths = tuple(output_lengths) if output_lengths else OUTPUT_LENGTHS
        self.deadline_s = deadline_s
        for plen in self.prompt_lengths[0]:
            if plen < 1:
                raise ValueError(
                    f"prompt length distribution contains {plen}: zero-length "
                    "prompts are invalid (every prompt needs >= 1 token)"
                )
        for olen in self.output_lengths[0]:
            if olen < 1:
                raise ValueError(
                    f"output length distribution contains {olen}: every request "
                    "must generate >= 1 token"
                )

    # ------------------------------------------------------------------
    def generate(self) -> List[Request]:
        """The request list, sorted by (arrival, rid)."""
        rng = np.random.default_rng(self.seed)
        plen_vals, plen_w = self.prompt_lengths
        olen_vals, olen_w = self.output_lengths
        requests: List[Request] = []
        t = 0.0
        for rid in range(self.num_requests):
            if self.arrival == "poisson":
                t += float(rng.exponential(1.0 / self.rate_rps))
            else:  # bursty: a gap before each burst, none inside it
                if rid % self.burst_size == 0:
                    t += float(rng.exponential(self.burst_size / self.rate_rps))
            prompt_len = int(rng.choice(plen_vals, p=plen_w))
            max_new = int(rng.choice(olen_vals, p=olen_w))
            prompt = tuple(int(x) for x in rng.integers(0, self.vocab_size, size=prompt_len))
            requests.append(
                Request(
                    rid=rid,
                    arrival=t,
                    prompt=prompt,
                    max_new=max_new,
                    deadline_s=self.deadline_s,
                )
            )
        requests.sort(key=lambda r: (r.arrival, r.rid))
        return requests

    def describe(self) -> dict:
        """JSON-safe description of the traffic (goes into the report)."""
        doc = {
            "seed": self.seed,
            "arrival": self.arrival,
            "rate_rps": self.rate_rps,
            "num_requests": self.num_requests,
            "burst_size": self.burst_size if self.arrival == "bursty" else None,
            "prompt_lengths": [list(self.prompt_lengths[0]), list(self.prompt_lengths[1])],
            "output_lengths": [list(self.output_lengths[0]), list(self.output_lengths[1])],
        }
        # only present when set: the default document stays byte-identical
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        return doc
