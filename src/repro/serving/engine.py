"""Autoregressive serving engines over the 2-D (Optimus) and 1-D (Megatron)
model stacks.

Both engines run **token-level continuous batching**: every engine step
advances each active sequence by exactly one token through a batched
decode-shaped forward (global activation ``[B, h]`` — one row per lane).
Prompt tokens stream through the same kernel as generated tokens, so
prefill and decode interleave freely in one batch and admission/eviction
happen at every step boundary on the simulated clock (Orca-style
iteration-level scheduling).

Scheme-specific decode forwards reuse the training modules unchanged
(``Embedding2D``/``Linear2D``/``LayerNorm2D``/``MLP2D`` and their 1-D
twins) — SUMMA and the Megatron conjugate all-reduces accept any token
count, so the decode path exercises the exact communication/compute
accounting of training, including the ``REPRO_SUMMA_BATCHED`` batched-mesh
engine, which stays bit-exact here (asserted by the serving A/B benchmark).
Only attention is new: per-lane causal attention over the sharded KV cache
(:func:`repro.reference.attention.decode_attention_fwd`), fully local per
rank in both schemes.

Greedy sampling is distributed and *priced*: each rank finds its local
vocabulary stripe's (max, argmax), the candidates are all-gathered along
the stripe axis (mesh row for 2-D, the whole group for 1-D), and every
rank deterministically picks the winner — ties break toward the lowest
vocabulary index, matching a serial ``argmax``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.comm import collectives as coll
from repro.config import ModelConfig
from repro.core.layers import _ELEMWISE_COST
from repro.core.model import OptimusModel
from repro.megatron.model import MegatronModel
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D, SHARDED_1D
from repro.mesh.mesh import Mesh
from repro.mesh.partition import distribute_replicated_1d, distribute_row_blocked
from repro.reference.attention import decode_attention_fwd
from repro.resilience.faults import CollectiveTimeoutError, RankCrashError
from repro.resilience.injector import FaultInjector
from repro.runtime.simulator import Simulator
from repro.serving.kvcache import HostSwapSpace, KVShardGroup, ShardedKVCache
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    ServingOptions,
    SlotState,
)
from repro.serving.telemetry import ServingTelemetry
from repro.serving.traffic import Request


@dataclass(frozen=True)
class LaneInput:
    """One active sequence's contribution to a decode step."""

    slot: int
    token: int
    pos: int  # KV position this token is written to (== tokens fed so far)


@dataclass
class ServingResult:
    """Everything :func:`repro.serving.report` needs from one engine run."""

    completed: List[SlotState]
    steps: int
    lane_steps: int  # real (non-padding) lane advances
    padded_lane_steps: int  # padding lanes computed to keep SUMMA shapes
    prompt_tokens: int
    generated_tokens: int
    attribution: Dict[str, float]  # prefill/decode/padding/idle (+swap/recovery)
    scheduler_stats: dict
    cache_stats: dict
    clock: float
    #: lifecycle counters + shed/timeout rids; None on the default PR 8 path
    lifecycle: Optional[dict] = None
    #: alert-engine summary (rules + firing/resolved events); None unless
    #: an :class:`~repro.obs.alerts.AlertEngine` was armed for the run
    alerts: Optional[dict] = None


class ServingEngine:
    """Shared continuous-batching loop; subclasses provide the forward."""

    scheme = "base"

    def __init__(
        self,
        sim: Simulator,
        cfg: ModelConfig,
        options: Optional[ServingOptions] = None,
        injector: Optional[FaultInjector] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.options = options if options is not None else ServingOptions()
        self.injector = injector
        self.cache: ShardedKVCache
        self.scheduler: ContinuousBatchingScheduler
        self.swap: Optional[HostSwapSpace] = None
        self.all_ranks: Sequence[int] = []
        # telemetry knobs (set by make_engine; harmless defaults otherwise)
        self.slo: Optional[tuple] = None  # (slo_ttft, slo_tpot) for goodput
        self.counter_epoch = 0  # OpenMetrics counter reset epoch for this arm
        self.alerts = None  # Optional[repro.obs.alerts.AlertEngine]
        self.telemetry: Optional[ServingTelemetry] = None

    def _make_scheduler(self) -> ContinuousBatchingScheduler:
        """Build the swap tier (if configured) and the scheduler; called by
        subclasses once ``self.cache`` exists."""
        if self.options.policy == "preempt" and self.options.swap_blocks > 0:
            self.swap = HostSwapSpace(
                capacity_blocks=self.options.swap_blocks,
                rank_block_bytes=self.cache.bytes_per_rank_block(),
                gbps=self.options.swap_gbps,
            )
        return ContinuousBatchingScheduler(self.cache, self.options, self.swap)

    # -- subclass surface ----------------------------------------------
    def step(self, entries: List[LaneInput]) -> Dict[int, int]:
        """One batched decode step; returns {slot: sampled token}."""
        raise NotImplementedError

    def lanes_in_step(self, entries: List[LaneInput]) -> int:
        """Total lanes computed (including shape padding)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Roll back a failed decode step so it can be re-executed.

        Nothing committed: ``cache.commit`` only runs after a successful
        step, so partial K/V writes are positionally overwritten with
        identical values on re-execution.  Forward scratch is dropped, all
        ranks re-sync, and the cluster pays the restart charge."""
        self.model.drop_caches()
        self.model.buffers.reset_region("forward")
        self.sim.sync(self.all_ranks)
        self.sim.advance(self.all_ranks, self.options.restart_cost_s)

    def run(self, requests: List[Request]) -> ServingResult:
        sched = self.scheduler
        opts = self.options
        inj = self.injector
        # telemetry is read-only over the simulation (registry writes and —
        # when tracing — flat trace events only), so arming it can never
        # change a clock or a sampled token
        tel = ServingTelemetry(self, slo=self.slo, epoch=self.counter_epoch)
        self.telemetry = tel
        sched.observer = tel
        if inj is not None:
            inj.install(self.sim)
        sched.load(requests)
        attribution = {"prefill": 0.0, "decode": 0.0, "padding": 0.0, "idle": 0.0}
        # attribution keys are conditional so default-path reports stay
        # byte-identical to PR 8
        if opts.policy == "preempt":
            attribution["swap"] = 0.0
        if inj is not None:
            attribution["recovery"] = 0.0
        steps = lane_steps = padded_lane_steps = 0
        prompt_tokens = generated_tokens = 0
        step_no = 0

        while sched.incomplete():
            now = self.sim.elapsed()
            sched.intake(now)
            sched.expire(now)
            sched.resume(now)
            admitted = sched.admit(now)
            if admitted:
                tel.on_admitted(admitted, now)
            if sched.active:
                sched.prepare_step(now)
            t0 = self.sim.elapsed()
            if "swap" in attribution:
                # only swap transfers move the clock inside the scheduler
                attribution["swap"] += t0 - now
            if not sched.active:
                if not sched.incomplete():
                    break  # everything left was shed or expired
                # nothing runnable: idle-advance every device to the next
                # arrival (the simulated cluster sits empty, clock still runs)
                target = sched.next_arrival()
                for r in self.all_ranks:
                    dev = self.sim.device(r)
                    dev.clock = max(dev.clock, target)
                attribution["idle"] += max(0.0, target - t0)
                tel.on_idle(target)
                if self.alerts is not None:
                    for ev in self.alerts.evaluate(self.sim.metrics, target, step_no):
                        tel.on_alert(ev)
                continue

            entries = [
                LaneInput(slot=slot, token=state.next_input(), pos=state.fed)
                for slot, state in sorted(sched.active.items())
            ]
            prefill_lanes = sum(1 for e in entries if sched.active[e.slot].prefill_lane)
            if inj is not None:
                try:
                    inj.begin_step(step_no)
                    with self.sim.tracer.span(
                        "serve_step", self.all_ranks, category="step", step=step_no
                    ):
                        sampled = self.step(entries)
                except (RankCrashError, CollectiveTimeoutError):
                    # fired faults are consumed: re-executing the same
                    # step_no runs clean and produces identical tokens
                    self._recover()
                    attribution["recovery"] += self.sim.elapsed() - t0
                    sched.lifecycle["recovered_steps"] += 1
                    tel.on_recovery(t0, self.sim.elapsed(), step_no)
                    continue
            else:
                with self.sim.tracer.span(
                    "serve_step", self.all_ranks, category="step", step=step_no
                ):
                    sampled = self.step(entries)
            t1 = self.sim.elapsed()
            dt = t1 - t0

            total_lanes = self.lanes_in_step(entries)
            decode_lanes = len(entries) - prefill_lanes
            pad_lanes = total_lanes - len(entries)
            attribution["prefill"] += dt * prefill_lanes / total_lanes
            attribution["decode"] += dt * decode_lanes / total_lanes
            attribution["padding"] += dt * pad_lanes / total_lanes
            this_step = step_no
            steps += 1
            step_no += 1
            lane_steps += len(entries)
            padded_lane_steps += pad_lanes
            tel.on_lanes(entries, sched.active, this_step, t0, t1)

            prompt_delta = gen_delta = 0
            for e in entries:
                state = sched.active[e.slot]
                self.cache.commit(e.slot)
                if state.fed < state.replay_until:
                    sched.lifecycle["recomputed_tokens"] += 1
                elif state.in_prefill:
                    prompt_tokens += 1
                    prompt_delta += 1
                state.fed += 1
                # the sample is new progress exactly when every known token
                # (prompt + previously generated) has been fed; in the PR 8
                # flow this is the post-increment "not in_prefill" condition
                if state.fed >= state.request.prompt_len + len(state.generated):
                    state.generated.append(sampled[e.slot])
                    generated_tokens += 1
                    gen_delta += 1
                    if state.first_token_time is None:
                        state.first_token_time = t1
                        tel.on_first_token(state, t1)
                    if state.done:
                        sched.finish(e.slot, t1)
            tel.on_step(this_step, t1, prompt_delta, gen_delta)
            if self.alerts is not None:
                for ev in self.alerts.evaluate(self.sim.metrics, t1, this_step):
                    tel.on_alert(ev)

        lifecycle = None
        if opts.enabled or inj is not None or sched._has_deadlines:
            lifecycle = dict(sched.lifecycle)
            lifecycle["shed_rids"] = sorted(sched.shed_rids)
            lifecycle["timeout_rids"] = sorted(sched.timeout_rids)
            if inj is not None:
                lifecycle["injector"] = dict(inj.stats)
        cache_stats = self.cache.stats()
        if self.swap is not None:
            cache_stats["host_swap"] = self.swap.stats()
        return ServingResult(
            completed=list(sched.completed),
            steps=steps,
            lane_steps=lane_steps,
            padded_lane_steps=padded_lane_steps,
            prompt_tokens=prompt_tokens,
            generated_tokens=generated_tokens,
            attribution=attribution,
            scheduler_stats=dict(sched.stats),
            cache_stats=cache_stats,
            clock=self.sim.elapsed(),
            lifecycle=lifecycle,
            alerts=self.alerts.summary() if self.alerts is not None else None,
        )

    # ------------------------------------------------------------------
    def _charge_attention(self, dev, n_loc: int, ell: int, d: int, probs) -> None:
        dev.compute(2.0 * n_loc * ell * d)  # q·Kᵀ
        dev.compute(2.0 * n_loc * ell * d)  # probs·V
        dev.compute(_ELEMWISE_COST["softmax"] * probs.size, kind="elementwise")

    @staticmethod
    def _pick_winner(gathered: np.ndarray, stripes: int) -> np.ndarray:
        """Global argmax from per-stripe ``(max, argmax)`` pairs ``[B, 2k]``.

        Strictly-greater comparison walking stripes in order makes ties
        resolve to the lowest vocabulary index — identical to a serial
        ``np.argmax`` over the assembled logits row.
        """
        best_val = gathered[:, 0].copy()
        best_idx = gathered[:, 1].copy()
        for c in range(1, stripes):
            val = gathered[:, 2 * c]
            idx = gathered[:, 2 * c + 1]
            better = val > best_val
            best_val = np.where(better, val, best_val)
            best_idx = np.where(better, idx, best_idx)
        return best_idx


# ======================================================================
class OptimusServingEngine(ServingEngine):
    """Decode over the 2-D mesh: slots partitioned across mesh rows."""

    scheme = "optimus"

    def __init__(
        self,
        sim: Simulator,
        cfg: ModelConfig,
        params_global: dict,
        q: int,
        num_slots: int,
        block_size: int,
        blocks_per_group: int,
        options: Optional[ServingOptions] = None,
        injector: Optional[FaultInjector] = None,
    ):
        super().__init__(sim, cfg, options=options, injector=injector)
        if num_slots % q:
            raise ValueError(f"num_slots {num_slots} not divisible by mesh q={q}")
        cfg.validate_for_optimus(q, num_slots)
        self.mesh = Mesh(sim, q)
        self.model = OptimusModel(self.mesh, cfg, params_global, checkpoint_activations=False)
        self.q = q
        self.n_loc = cfg.num_heads // q
        self.slots_per_row = num_slots // q
        groups = [
            KVShardGroup(
                gid=i,
                ranks=tuple(self.mesh.rank(i, j) for j in range(q)),
                slots=tuple(range(i * self.slots_per_row, (i + 1) * self.slots_per_row)),
            )
            for i in range(q)
        ]
        self.cache = ShardedKVCache(
            sim,
            groups,
            num_layers=cfg.num_layers,
            heads_loc=self.n_loc,
            head_dim=cfg.head_dim,
            block_size=block_size,
            blocks_per_group=blocks_per_group,
            dtype="float64",
        )
        self.scheduler = self._make_scheduler()
        self.all_ranks = list(self.mesh.ranks)

    # ------------------------------------------------------------------
    def _rows_of(self, entries: List[LaneInput]) -> List[List[LaneInput]]:
        rows: List[List[LaneInput]] = [[] for _ in range(self.q)]
        for e in entries:
            rows[e.slot // self.slots_per_row].append(e)
        return rows

    def lanes_in_step(self, entries: List[LaneInput]) -> int:
        rows = self._rows_of(entries)
        return self.q * max(len(r) for r in rows)

    def step(self, entries: List[LaneInput]) -> Dict[int, int]:
        mesh, cfg, model = self.mesh, self.cfg, self.model
        q, n_loc, d = self.q, self.n_loc, cfg.head_dim
        rows = self._rows_of(entries)
        width = max(len(r) for r in rows)

        # BLOCKED_2D needs equal per-row lane counts: rows with fewer active
        # slots run padding lanes (token 0, length-1 self-attention, output
        # discarded) — the static-shape waste the report attributes to
        # "padding".
        ids = np.zeros((q * width, 1), dtype=np.int64)
        for i, row in enumerate(rows):
            for w, e in enumerate(row):
                ids[i * width + w, 0] = e.token
        x = model.embedding.forward(distribute_row_blocked(mesh, ids))

        for layer in model.layers:
            a = layer.ln1.forward(x)
            qkv = layer.attn.qkv_linear.forward(a)  # [q·width, 3h] blocked
            ctx_shards = {}
            for i in range(q):
                row = rows[i]
                for j in range(q):
                    rank = mesh.rank(i, j)
                    local = np.asarray(qkv.local(rank)).reshape((width, n_loc, 3, d))
                    dev = mesh.device(rank)
                    ctx = np.empty((width, n_loc, d), dtype=local.dtype)
                    for w in range(width):
                        k_vec = local[w, :, 1, :]
                        v_vec = local[w, :, 2, :]
                        if w < len(row):
                            e = row[w]
                            self.cache.write(e.slot, layer.index, rank, e.pos, k_vec, v_vec)
                            k_cat, v_cat = self.cache.gather(e.slot, layer.index, rank, e.pos + 1)
                        else:  # padding lane: fresh K/V only, nothing cached
                            k_cat = k_vec[:, None, :]
                            v_cat = v_vec[:, None, :]
                        c, probs = decode_attention_fwd(local[w, :, 0, :], k_cat, v_cat)
                        ctx[w] = c
                        self._charge_attention(dev, n_loc, k_cat.shape[1], d, probs)
                    ctx_shards[rank] = ctx.reshape((width, n_loc * d))
            ctx_dt = DTensor(mesh, BLOCKED_2D, ctx_shards, (q * width, cfg.hidden_size))
            x = x + layer.attn.out_linear.forward(ctx_dt)
            self._charge_add(x)
            x = x + layer.mlp.forward(layer.ln2.forward(x))
            self._charge_add(x)

        out = model.final_ln.forward(x)
        logits = model.lm_head.forward(out)  # [q·width, v] blocked
        sampled = self._sample_greedy(logits, rows, width)
        model.drop_caches()
        model.buffers.reset_region("forward")
        return sampled

    def _charge_add(self, dt: DTensor) -> None:
        for rank, shard in dt.shards.items():
            dev = self.mesh.device(rank)
            dev.compute(_ELEMWISE_COST["add"] * shard.size, kind="elementwise")

    def _sample_greedy(
        self, logits: DTensor, rows: List[List[LaneInput]], width: int
    ) -> Dict[int, int]:
        mesh, q = self.mesh, self.q
        v_loc = self.cfg.vocab_size // q
        sampled: Dict[int, int] = {}
        for i in range(q):
            grp = mesh.row_group(i)
            shards = {}
            for j in range(q):
                rank = mesh.rank(i, j)
                ll = np.asarray(logits.local(rank))
                mx = ll.max(axis=1)
                ix = ll.argmax(axis=1).astype(ll.dtype) + j * v_loc
                shards[rank] = np.stack([mx, ix], axis=1)  # [width, 2]
                mesh.device(rank).compute(2.0 * ll.size, kind="elementwise")
            gathered = coll.all_gather(grp, shards, axis=1)  # [width, 2q]
            best = self._pick_winner(np.asarray(gathered[mesh.rank(i, 0)]), stripes=q)
            for w, e in enumerate(rows[i]):
                sampled[e.slot] = int(best[w])
        return sampled


# ======================================================================
class MegatronServingEngine(ServingEngine):
    """Decode over a flat 1-D group: every rank sees every sequence."""

    scheme = "megatron"

    def __init__(
        self,
        sim: Simulator,
        cfg: ModelConfig,
        params_global: dict,
        num_slots: int,
        block_size: int,
        blocks_per_group: int,
        options: Optional[ServingOptions] = None,
        injector: Optional[FaultInjector] = None,
    ):
        super().__init__(sim, cfg, options=options, injector=injector)
        p = sim.num_ranks
        cfg.validate_for_megatron(p, num_slots)
        self.model = MegatronModel(sim, cfg, params_global, checkpoint_activations=False)
        self.group = self.model.group
        self.p = p
        self.n_loc = cfg.num_heads // p
        groups = [KVShardGroup(gid=0, ranks=tuple(self.group.ranks), slots=tuple(range(num_slots)))]
        self.cache = ShardedKVCache(
            sim,
            groups,
            num_layers=cfg.num_layers,
            heads_loc=self.n_loc,
            head_dim=cfg.head_dim,
            block_size=block_size,
            blocks_per_group=blocks_per_group,
            dtype="float64",
        )
        self.scheduler = self._make_scheduler()
        self.all_ranks = list(self.group.ranks)

    def lanes_in_step(self, entries: List[LaneInput]) -> int:
        return len(entries)  # replicated activations: no shape padding

    def step(self, entries: List[LaneInput]) -> Dict[int, int]:
        cfg, model, group = self.cfg, self.model, self.group
        n_loc, d = self.n_loc, cfg.head_dim
        B = len(entries)

        ids = np.array([[e.token] for e in entries], dtype=np.int64)
        x = model.embedding.forward(distribute_replicated_1d(group, ids))

        for layer in model.layers:
            a = layer.ln1.forward(x)
            qkv = layer.attn.qkv_linear.forward(a)  # [B, 3h] column-sharded
            ctx_shards = {}
            for rank in group.ranks:
                local = np.asarray(qkv.local(rank)).reshape((B, n_loc, 3, d))
                dev = group.sim.device(rank)
                ctx = np.empty((B, n_loc, d), dtype=local.dtype)
                for w, e in enumerate(entries):
                    k_vec, v_vec = local[w, :, 1, :], local[w, :, 2, :]
                    self.cache.write(e.slot, layer.index, rank, e.pos, k_vec, v_vec)
                    k_cat, v_cat = self.cache.gather(e.slot, layer.index, rank, e.pos + 1)
                    c, probs = decode_attention_fwd(local[w, :, 0, :], k_cat, v_cat)
                    ctx[w] = c
                    self._charge_attention(dev, n_loc, k_cat.shape[1], d, probs)
                ctx_shards[rank] = ctx.reshape((B, n_loc * d))
            ctx_dt = DTensor(group, SHARDED_1D(1), ctx_shards, (B, cfg.hidden_size))
            x = x + layer.attn.out_linear.forward(ctx_dt)
            self._charge_add(x)
            x = x + layer.mlp.forward(layer.ln2.forward(x))
            self._charge_add(x)

        out = model.final_ln.forward(x)
        logits = model.lm_head.forward(out)  # [B, v] vocab-sharded
        sampled = self._sample_greedy(logits, entries)
        model.drop_caches()
        model.buffers.reset_region("forward")
        return sampled

    def _charge_add(self, dt: DTensor) -> None:
        for rank, shard in dt.shards.items():
            dev = self.group.sim.device(rank)
            dev.compute(_ELEMWISE_COST["add"] * shard.size, kind="elementwise")

    def _sample_greedy(self, logits: DTensor, entries: List[LaneInput]) -> Dict[int, int]:
        group, p = self.group, self.p
        v_loc = self.cfg.vocab_size // p
        shards = {}
        for k, rank in enumerate(group.ranks):
            ll = np.asarray(logits.local(rank))
            mx = ll.max(axis=1)
            ix = ll.argmax(axis=1).astype(ll.dtype) + k * v_loc
            shards[rank] = np.stack([mx, ix], axis=1)  # [B, 2]
            group.sim.device(rank).compute(2.0 * ll.size, kind="elementwise")
        gathered = coll.all_gather(group, shards, axis=1)  # [B, 2p]
        best = self._pick_winner(np.asarray(gathered[group.ranks[0]]), stripes=p)
        return {e.slot: int(best[w]) for w, e in enumerate(entries)}


# ======================================================================
def make_engine(
    scheme: str,
    cfg: ModelConfig,
    params_global: dict,
    q: int,
    num_slots: int,
    block_size: int,
    blocks_per_group: int,
    options: Optional[ServingOptions] = None,
    injector: Optional[FaultInjector] = None,
    trace: bool = False,
    slo: Optional[tuple] = None,
    counter_epoch: int = 0,
    alerts=None,
) -> ServingEngine:
    """Build a fresh simulator + engine for one serving arm.

    ``q`` sizes both schemes to the same device count: a q×q mesh for
    Optimus, a flat p = q² group for Megatron (the paper's comparison).

    ``trace`` enables request-lifecycle tracing (see
    :mod:`repro.serving.telemetry`); ``slo`` = ``(slo_ttft, slo_tpot)``
    feeds the live goodput counters; ``counter_epoch`` is the OpenMetrics
    counter reset epoch for this arm; ``alerts`` is an optional armed
    :class:`~repro.obs.alerts.AlertEngine` evaluated at every step."""
    if scheme == "optimus":
        sim = Simulator.for_mesh(q, trace=trace)
        engine: ServingEngine = OptimusServingEngine(
            sim, cfg, params_global, q, num_slots, block_size, blocks_per_group,
            options=options, injector=injector,
        )
    elif scheme == "megatron":
        sim = Simulator.for_flat(q * q, trace=trace)
        engine = MegatronServingEngine(
            sim, cfg, params_global, num_slots, block_size, blocks_per_group,
            options=options, injector=injector,
        )
    else:
        raise ValueError(f"unknown serving scheme {scheme!r}")
    engine.slo = slo
    engine.counter_epoch = int(counter_epoch)
    engine.alerts = alerts
    return engine
