"""Inference serving over the 2-D (Optimus) and 1-D (Megatron) stacks.

Continuous batching + block-partitioned sharded KV-cache + seeded
synthetic traffic, reported as byte-deterministic ``repro-serve-v1`` JSON.
The robustness layer (all off by default) adds fault-injected decode with
token-identical recovery, preemption with KV swap-out/recompute, and a
deadline/retry/backpressure request lifecycle.
"""

from repro.serving.chaos import SERVE_SCHEMES, run_serve_chaos
from repro.serving.engine import (
    MegatronServingEngine,
    OptimusServingEngine,
    ServingEngine,
    ServingResult,
    make_engine,
)
from repro.serving.kvcache import (
    KV_MEMORY_TAG,
    KV_SWAP_TAG,
    HostSwapSpace,
    KVBlockPool,
    KVShardGroup,
    ShardedKVCache,
    SwapTicket,
)
from repro.serving.report import (
    REPORT_SCHEMA,
    compare_reports,
    percentile,
    run_ab,
    run_preempt_ab,
    run_serve,
)
from repro.serving.scheduler import (
    POLICIES,
    ContinuousBatchingScheduler,
    ServingOptions,
    SlotState,
)
from repro.serving.traffic import ARRIVAL_PROFILES, Request, TrafficGenerator

__all__ = [
    "ARRIVAL_PROFILES",
    "ContinuousBatchingScheduler",
    "HostSwapSpace",
    "KV_MEMORY_TAG",
    "KV_SWAP_TAG",
    "KVBlockPool",
    "KVShardGroup",
    "MegatronServingEngine",
    "OptimusServingEngine",
    "POLICIES",
    "REPORT_SCHEMA",
    "Request",
    "SERVE_SCHEMES",
    "ServingEngine",
    "ServingOptions",
    "ServingResult",
    "ShardedKVCache",
    "SlotState",
    "SwapTicket",
    "TrafficGenerator",
    "compare_reports",
    "make_engine",
    "percentile",
    "run_ab",
    "run_preempt_ab",
    "run_serve",
    "run_serve_chaos",
]
