"""Inference serving over the 2-D (Optimus) and 1-D (Megatron) stacks.

Continuous batching + block-partitioned sharded KV-cache + seeded
synthetic traffic, reported as byte-deterministic ``repro-serve-v1`` JSON.
"""

from repro.serving.engine import (
    MegatronServingEngine,
    OptimusServingEngine,
    ServingEngine,
    ServingResult,
    make_engine,
)
from repro.serving.kvcache import KV_MEMORY_TAG, KVBlockPool, KVShardGroup, ShardedKVCache
from repro.serving.report import (
    REPORT_SCHEMA,
    compare_reports,
    percentile,
    run_ab,
    run_serve,
)
from repro.serving.scheduler import ContinuousBatchingScheduler, SlotState
from repro.serving.traffic import ARRIVAL_PROFILES, Request, TrafficGenerator

__all__ = [
    "ARRIVAL_PROFILES",
    "ContinuousBatchingScheduler",
    "KV_MEMORY_TAG",
    "KVBlockPool",
    "KVShardGroup",
    "MegatronServingEngine",
    "OptimusServingEngine",
    "REPORT_SCHEMA",
    "Request",
    "ServingEngine",
    "ServingResult",
    "ShardedKVCache",
    "SlotState",
    "TrafficGenerator",
    "compare_reports",
    "make_engine",
    "percentile",
    "run_ab",
    "run_serve",
]
