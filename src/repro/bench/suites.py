"""The pinned benchmark suite.

Micro benchmarks isolate one subsystem (collectives, each SUMMA kernel, one
numeric training step per scheme, instrumentation overhead); macro
benchmarks run a Table-1-class dryrun stem.  Every workload is pinned —
fixed sizes, fixed seeds, fixed iteration counts — so wall-clock is
comparable across commits, and ``macro/optimus_stem_ab`` additionally runs
the same stem against the pre-optimization hot path
(:mod:`repro.bench.legacy`) to report a same-run speedup.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.core import bench
from repro.bench.legacy import pre_optimization
from repro.config import ModelConfig, tiny_config
from repro.core import summa

_STEM_CFG = ModelConfig(
    vocab_size=32000, hidden_size=1024, num_heads=16, num_layers=4, seq_len=512
)


def _sim_stats(sim) -> dict:
    return {
        "sim_time": sim.elapsed(),
        "sim_allocs": sum(d.memory.num_allocs for d in sim.devices),
    }


def _flat_group(p: int):
    from repro.comm.group import ProcessGroup
    from repro.runtime.simulator import Simulator

    sim = Simulator.for_flat(p)
    return sim, ProcessGroup(sim, sim.ranks, kind="bench")


# ----------------------------------------------------------------------
# micro
# ----------------------------------------------------------------------
@bench("micro/collectives", repeats=5)
def collectives_bench() -> dict:
    from repro.comm import collectives as coll

    sim, group = _flat_group(4)
    rng = np.random.default_rng(0)
    xs = {r: rng.standard_normal((64, 64)).astype(np.float32) for r in group.ranks}
    root = group.ranks[0]
    for _ in range(150):
        coll.broadcast(group, xs[root], root)
        coll.reduce(group, xs, root)
        coll.all_reduce(group, xs)
        coll.all_gather(group, xs, axis=0)
        coll.reduce_scatter(group, xs, axis=0)
    return _sim_stats(sim)


def _summa_setup(q: int = 2, n: int = 64):
    from repro.mesh.mesh import Mesh
    from repro.mesh.partition import distribute_blocked_2d
    from repro.runtime.simulator import Simulator

    sim = Simulator.for_mesh(q)
    mesh = Mesh(sim, q)
    rng = np.random.default_rng(0)
    a = distribute_blocked_2d(mesh, rng.standard_normal((n, n)).astype(np.float32))
    b = distribute_blocked_2d(mesh, rng.standard_normal((n, n)).astype(np.float32))
    return sim, mesh, a, b


def _summa_kernel(kernel_name: str) -> dict:
    sim, mesh, a, b = _summa_setup()
    kernel = getattr(summa, kernel_name)
    for _ in range(100):
        kernel(mesh, a, b)
    stats = _sim_stats(sim)
    pool = getattr(sim, "_array_pool", None)
    if pool is not None:
        stats["pool_hits"] = pool.stats()["hits"]
    return stats


@bench("micro/summa_ab", repeats=5)
def summa_ab_bench() -> dict:
    return _summa_kernel("summa_ab")


@bench("micro/summa_abt", repeats=5)
def summa_abt_bench() -> dict:
    return _summa_kernel("summa_abt")


@bench("micro/summa_atb", repeats=5)
def summa_atb_bench() -> dict:
    return _summa_kernel("summa_atb")


def _train_steps(scheme: str, steps: int = 6) -> dict:
    from repro.nn.init import init_transformer_params
    from repro.runtime.simulator import Simulator
    from repro.training import SGD, Trainer, copy_task_batch

    cfg = tiny_config(num_layers=2)
    params = init_transformer_params(cfg, seed=1)
    if scheme == "optimus":
        from repro.core.model import OptimusModel
        from repro.mesh.mesh import Mesh

        sim = Simulator.for_mesh(2)
        model = OptimusModel(Mesh(sim, 2), cfg, params)
    else:
        from repro.megatron.model import MegatronModel

        sim = Simulator.for_flat(2)
        model = MegatronModel(sim, cfg, params)

    def batches():
        k = 0
        while True:
            yield copy_task_batch(cfg, 4, seed=k)
            k += 1

    trainer = Trainer(model, SGD(model.parameters(), lr=0.1), batches())
    trainer.train_steps(1)  # warm-up: JIT-free but caches/pools fill here
    t0 = time.perf_counter()
    trainer.train_steps(steps)
    wall = time.perf_counter() - t0
    return {"wall_time": wall / steps, **_sim_stats(sim)}


@bench("micro/optimus_step", repeats=5)
def optimus_step_bench() -> dict:
    return _train_steps("optimus")


@bench("micro/megatron_step", repeats=5)
def megatron_step_bench() -> dict:
    return _train_steps("megatron")


@bench("micro/instrumentation", repeats=5)
def instrumentation_bench() -> dict:
    """Disabled-mode instrumentation overhead, measured (not asserted).

    Times the same SUMMA workload with all checking/tracing off and with
    span tracing on; ``overhead_ratio`` is traced/off.  The "off" arm is
    what every production run pays for the ``sim.is_enabled`` guards.
    """

    def run(trace: bool) -> float:
        sim, mesh, a, b = _summa_setup()
        sim.tracer.enabled = trace
        t0 = time.perf_counter()
        for _ in range(80):
            summa.summa_ab(mesh, a, b)
        return time.perf_counter() - t0

    run(False)  # warm
    off = run(False)
    traced = run(True)
    return {
        "wall_time": off,
        "traced_wall": traced,
        "overhead_ratio": traced / off if off else float("inf"),
    }


# ----------------------------------------------------------------------
# macro
# ----------------------------------------------------------------------
@bench("macro/optimus_stem")
def optimus_stem_bench() -> dict:
    from repro.experiments.runner import run_optimus_stem

    res = run_optimus_stem(_STEM_CFG, q=4, batch_size=8)
    return {
        "sim_time": res.forward_time + res.backward_time,
        "throughput_seq_per_s": res.throughput,
        "peak_sim_memory_bytes": res.peak_memory_bytes,
    }


@bench("macro/megatron_stem")
def megatron_stem_bench() -> dict:
    from repro.experiments.runner import run_megatron_stem

    res = run_megatron_stem(_STEM_CFG, p=16, batch_size=8)
    return {
        "sim_time": res.forward_time + res.backward_time,
        "throughput_seq_per_s": res.throughput,
        "peak_sim_memory_bytes": res.peak_memory_bytes,
    }


@bench("macro/optimus_stem_ab", repeats=2, gate=False)
def optimus_stem_ab_bench() -> dict:
    """Same-run A/B: current hot path vs the pre-optimization seed code.

    Not regression-gated: the ON arm's workload is already gated by
    ``macro/optimus_stem``; this benchmark's payload is the ``speedup``
    extra, measured within a single run so machine drift cancels.
    """
    from repro.experiments.runner import run_optimus_stem

    def timed(reps: int = 2) -> float:
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            run_optimus_stem(_STEM_CFG, q=4, batch_size=8)
            best = min(best, time.perf_counter() - t0)
        return best

    timed(1)  # warm both code paths' imports
    on = timed()
    with pre_optimization():
        off = timed()
    return {
        "wall_time": on,
        "pre_optimization_wall": off,
        "speedup": off / on if on else float("inf"),
    }


@bench("macro/summa_batched_ab", repeats=2, gate=False)
def summa_batched_ab_bench() -> dict:
    """Same-run A/B: batched-mesh engine vs per-rank SUMMA at q=8.

    Each arm resolves the ``REPRO_SUMMA_*`` flags from the environment
    *inside the arm* (:func:`repro.core.summa.resolve_env_flags` — per-arm
    resolution, not the import-time snapshot) after flipping
    ``REPRO_SUMMA_BATCHED``, and reports the flag set it actually ran with.
    The two arms must agree bit-exactly on numerics and on every per-rank
    counter and memory peak; any diff raises, failing the suite — this is
    the CI equivalence smoke.  Not regression-gated: the per-rank arm's
    workload is gated by ``micro/summa_*``; the payload is ``speedup``.
    """
    from repro.mesh.partition import assemble_blocked_2d

    q, n, iters = 8, 256, 10
    fields = (
        "clock", "flops", "flops_gemm", "bytes_comm", "weighted_comm_volume",
        "compute_time", "comm_time", "num_collectives",
    )

    def arm(flag: str):
        os.environ["REPRO_SUMMA_BATCHED"] = flag
        flags = summa.resolve_env_flags()
        sim, mesh, a, b = _summa_setup(q=q, n=n)
        kernels = (summa.summa_ab, summa.summa_abt, summa.summa_atb)
        for k in kernels:
            k(mesh, a, b)  # warm plans + pool
        outs = []
        t0 = time.perf_counter()
        for _ in range(iters):
            outs = [k(mesh, a, b) for k in kernels]
        wall = time.perf_counter() - t0
        digest = [assemble_blocked_2d(o) for o in outs]
        state = {
            r: tuple(getattr(sim.device(r), f) for f in fields)
            for r in mesh.ranks
        }
        peaks = {
            r: (sim.device(r).memory.current, sim.device(r).memory.peak)
            for r in mesh.ranks
        }
        return flags, wall, digest, state, peaks

    saved_env = os.environ.get("REPRO_SUMMA_BATCHED")
    saved_flags = summa.effective_flags()
    try:
        off_flags, off_wall, off_digest, off_state, off_peaks = arm("0")
        on_flags, on_wall, on_digest, on_state, on_peaks = arm("1")
    finally:
        if saved_env is None:
            os.environ.pop("REPRO_SUMMA_BATCHED", None)
        else:
            os.environ["REPRO_SUMMA_BATCHED"] = saved_env
        summa.configure(**saved_flags)
    if off_flags["batched"] or not on_flags["batched"]:
        raise AssertionError(f"per-arm flag resolution failed: off={off_flags} on={on_flags}")
    if not all(np.array_equal(x, y) for x, y in zip(off_digest, on_digest)):
        raise AssertionError("batched arm numerics diverge from per-rank arm")
    if off_state != on_state or off_peaks != on_peaks:
        raise AssertionError("batched arm accounting diverges from per-rank arm")
    return {
        "wall_time": on_wall,
        "per_rank_wall": off_wall,
        "speedup": off_wall / on_wall if on_wall else float("inf"),
        "flags_batched_arm": on_flags,
        "flags_per_rank_arm": off_flags,
        "equivalent": True,
        "q": q,
        "n": n,
    }


@bench("macro/serving_decode_ab", repeats=2, gate=False)
def serving_decode_ab_bench() -> dict:
    """Same-run A/B: the serving decode loop under the batched-mesh engine
    vs per-rank SUMMA.

    The decode forward rides the training linears, so the batched engine's
    bit-exactness guarantee must extend to serving: both arms' full
    ``repro-serve-v1`` documents (latencies, goodput, phase attribution,
    token checksums) must be byte-identical, modulo the flag snapshot.
    Any diff raises, failing the suite.  Not regression-gated; the payload
    is the host wall-clock ``speedup`` of the batched arm.
    """
    from repro.obs.ledger import canonical_json
    from repro.serving.report import run_serve

    def arm(flag: str):
        os.environ["REPRO_SUMMA_BATCHED"] = flag
        flags = summa.resolve_env_flags()
        t0 = time.perf_counter()
        report = run_serve(0, quick=True)
        wall = time.perf_counter() - t0
        report.pop("summa_flags")
        return flags, wall, canonical_json(report)

    saved_env = os.environ.get("REPRO_SUMMA_BATCHED")
    saved_flags = summa.effective_flags()
    try:
        arm("0")  # warm imports/caches off the clock
        off_flags, off_wall, off_doc = arm("0")
        on_flags, on_wall, on_doc = arm("1")
    finally:
        if saved_env is None:
            os.environ.pop("REPRO_SUMMA_BATCHED", None)
        else:
            os.environ["REPRO_SUMMA_BATCHED"] = saved_env
        summa.configure(**saved_flags)
    if off_flags["batched"] or not on_flags["batched"]:
        raise AssertionError(f"per-arm flag resolution failed: off={off_flags} on={on_flags}")
    if off_doc != on_doc:
        raise AssertionError("batched-mesh serving report diverges from per-rank arm")
    return {
        "wall_time": on_wall,
        "per_rank_wall": off_wall,
        "speedup": off_wall / on_wall if on_wall else float("inf"),
        "flags_batched_arm": on_flags,
        "flags_per_rank_arm": off_flags,
        "equivalent": True,
    }
