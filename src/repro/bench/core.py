"""Benchmark harness: registry, measurement, JSON results, and comparison.

Results are machine-readable (``repro-bench-v1`` schema)::

    {
      "schema": "repro-bench-v1",
      "host": {"platform": ..., "python": ..., "numpy": ...},
      "calibration": {"unit_time": <s>},         # fixed numpy workload
      "benchmarks": {
        "<name>": {
          "wall_time": <s>,                      # best of `repeats`
          "wall_times": [<s>, ...],
          "unit_times": [<s>, ...],              # calibration adjacent to each repeat
          "norm_wall": <units>,                  # median of wall_i / unit_i
          "sim_time": <simulated s> | null,
          "peak_rss_bytes": <int>,               # process high-water (monotonic)
          "sim_allocs": <int> | null,            # simulated allocation events
          "extra": {...}
        }, ...
      }
    }

Comparison against a committed baseline normalizes wall-clock by the
calibration ratio (the same pinned numpy workload timed in both runs), so a
faster or slower CI machine does not produce spurious verdicts.  The
calibration is interleaved with the repeats of *each* benchmark and the
gate uses the best per-repeat ``wall_i / unit_i`` ratio, so bursty noise
(a neighbour stealing the CPU for part of the run) inflates a repeat's
wall-clock and its adjacent calibration together and cancels out.  A
benchmark regresses when its normalized wall-clock exceeds the baseline by
more than ``threshold`` (default 20%).
"""

from __future__ import annotations

import json
import platform
import resource
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

#: registered benchmarks: name -> (fn, repeats, gate).  ``fn`` runs one pinned
#: workload and returns a dict; recognized keys: ``wall_time`` (self-timed
#: seconds, overriding the harness's outer timing), ``sim_time``,
#: ``sim_allocs``; everything else lands in ``extra``.
REGISTRY: Dict[str, tuple] = {}

RESERVED_KEYS = ("wall_time", "sim_time", "sim_allocs")


def bench(name: str, repeats: int = 3, gate: bool = True):
    """Register a pinned benchmark under ``name`` (e.g. ``micro/summa_ab``).

    ``gate=False`` records the benchmark but exempts its wall-clock from the
    ``--compare`` regression gate (for A/B-style benchmarks whose workload is
    already gated elsewhere and whose payload is in ``extra``).
    """

    def deco(fn: Callable[[], dict]):
        if name in REGISTRY:
            raise ValueError(f"duplicate benchmark {name!r}")
        REGISTRY[name] = (fn, repeats, gate)
        return fn

    return deco


@dataclass
class BenchResult:
    name: str
    wall_time: float
    wall_times: List[float]
    unit_times: List[float] = field(default_factory=list)
    norm_wall: Optional[float] = None  # median of wall_i / unit_i, machine units
    sim_time: Optional[float] = None
    peak_rss_bytes: int = 0
    sim_allocs: Optional[int] = None
    gated: bool = True
    extra: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "wall_time": self.wall_time,
            "wall_times": self.wall_times,
            "unit_times": self.unit_times,
            "norm_wall": self.norm_wall,
            "sim_time": self.sim_time,
            "peak_rss_bytes": self.peak_rss_bytes,
            "sim_allocs": self.sim_allocs,
            "gated": self.gated,
            "extra": self.extra,
        }


def peak_rss_bytes() -> int:
    """Process peak resident set size (monotonic high-water, bytes)."""
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes
    return int(ru * 1024) if platform.system() != "Darwin" else int(ru)


def calibrate(reps: int = 9) -> float:
    """Time a pinned workload; the machine-speed unit for comparisons.

    The workload is deliberately interpreter-heavy with *small* numpy ops —
    the same profile as the simulator's hot paths (dict bookkeeping, shape
    tuples, 64×64 block GEMMs) — so contention that slows Python more than
    it slows large BLAS kernels moves the unit and the benchmarks together.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((64, 64)).astype(np.float32)
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        d: dict = {}
        acc = 0.0
        for i in range(200):
            x = a @ a
            d[i % 8] = x.shape
            acc += float(x[0, 0])
            tuple(x.shape)
        float(acc)
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark(name: str, repeats: Optional[int] = None) -> BenchResult:
    fn, default_repeats, gate = REGISTRY[name]
    n = repeats if repeats is not None else default_repeats
    walls: List[float] = []
    units: List[float] = []
    out: dict = {}
    for _ in range(n):
        units.append(calibrate(reps=3))
        t0 = time.perf_counter()
        out = fn() or {}
        outer = time.perf_counter() - t0
        walls.append(float(out.get("wall_time", outer)))
    extra = {k: v for k, v in out.items() if k not in RESERVED_KEYS}
    return BenchResult(
        name=name,
        wall_time=min(walls),
        wall_times=walls,
        unit_times=units,
        norm_wall=statistics.median(w / u for w, u in zip(walls, units)),
        sim_time=out.get("sim_time"),
        peak_rss_bytes=peak_rss_bytes(),
        sim_allocs=out.get("sim_allocs"),
        gated=gate,
        extra=extra,
    )


def run_suite(
    only: Optional[List[str]] = None,
    repeats: Optional[int] = None,
    printer: Callable[[str], None] = print,
) -> dict:
    """Run (a subset of) the registered suite; returns the results document."""
    from repro.bench import suites  # noqa: F401  (registers the benchmarks)

    names = sorted(REGISTRY)
    if only:
        names = [n for n in names if any(pat in n for pat in only)]
        if not names:
            raise ValueError(f"no benchmark matches {only!r}")
    unit = calibrate()
    printer(f"calibration unit_time={unit * 1e3:.3f} ms")
    results = {}
    for name in names:
        r = run_benchmark(name, repeats)
        results[name] = r.to_json()
        sim = f" sim={r.sim_time:.4f}s" if r.sim_time is not None else ""
        allocs = f" allocs={r.sim_allocs}" if r.sim_allocs is not None else ""
        printer(f"{name:28s} wall={r.wall_time * 1e3:9.2f} ms{sim}{allocs}")
        for k, v in sorted(r.extra.items()):
            printer(f"{'':28s}   {k} = {v}")
    return {
        "schema": "repro-bench-v1",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "calibration": {"unit_time": unit},
        "benchmarks": results,
    }


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
@dataclass
class Comparison:
    name: str
    baseline_wall: float
    current_wall: float
    normalized_wall: float  # current wall in baseline machine-units
    ratio: float  # normalized / baseline; > 1 + threshold ⇒ regression
    regressed: bool


def compare(current: dict, baseline: dict, threshold: float = 0.20) -> List[Comparison]:
    """Compare two result documents; only benchmarks present in both count."""
    for doc, label in ((current, "current"), (baseline, "baseline")):
        if doc.get("schema") != "repro-bench-v1":
            raise ValueError(f"{label} results have unknown schema {doc.get('schema')!r}")
    unit_cur = float(current["calibration"]["unit_time"])
    unit_base = float(baseline["calibration"]["unit_time"])
    scale = unit_base / unit_cur if unit_cur else 1.0
    out = []
    for name, base in sorted(baseline["benchmarks"].items()):
        cur = current["benchmarks"].get(name)
        if cur is None:
            continue
        if not (base.get("gated", True) and cur.get("gated", True)):
            continue
        base_wall = float(base["wall_time"])
        cur_wall = float(cur["wall_time"])
        if base.get("norm_wall") and cur.get("norm_wall"):
            # per-benchmark interleaved calibration: robust to bursty noise
            ratio = float(cur["norm_wall"]) / float(base["norm_wall"])
            norm = ratio * base_wall
        else:
            norm = cur_wall * scale
            ratio = norm / base_wall if base_wall else float("inf")
        out.append(
            Comparison(
                name=name,
                baseline_wall=base_wall,
                current_wall=cur_wall,
                normalized_wall=norm,
                ratio=ratio,
                regressed=ratio > 1.0 + threshold,
            )
        )
    return out


def render_comparison(rows: List[Comparison], threshold: float) -> str:
    lines = [
        f"{'benchmark':28s} {'baseline':>12s} {'current*':>12s} {'ratio':>7s}  verdict",
        "-" * 72,
    ]
    for c in rows:
        verdict = "REGRESSED" if c.regressed else "ok"
        lines.append(
            f"{c.name:28s} {c.baseline_wall * 1e3:10.2f}ms "
            f"{c.normalized_wall * 1e3:10.2f}ms {c.ratio:6.2f}x  {verdict}"
        )
    lines.append(f"(* calibration-normalized; regression threshold {threshold:.0%})")
    return "\n".join(lines)


def load_results(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def save_results(doc: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
