"""Pre-optimization reference implementations for same-run A/B benchmarks.

The ``macro/optimus_stem_ab`` benchmark reports the speedup of the current
hot path over the *pre-optimization* code — measured in the same process, on
the same machine, so the ratio is meaningful regardless of where the suite
runs.  This module keeps verbatim copies of the seed implementations that
the optimization pass replaced and a context manager that swaps them in:

* ``ShapeArray.size`` / ``nbytes`` via ``np.prod`` (now ``math.prod``);
* ``ShapeArray.__init__`` / ``_binary`` / ``__matmul__`` without the
  tuple-fast-path, memoized broadcast-shape, and memoized float-promotion
  shortcuts;
* uncached ``result_float``;
* collectives without zero-copy single-rank groups, without in-place reduce
  accumulation, and recomputing α–β prices even when a precost is supplied;
* SUMMA without the plan cache and without the scratch-buffer pool
  (via :func:`repro.core.summa.optimizations`).

Everything here is test-covered for numeric equivalence with the optimized
path (``tests/test_bench.py``); only the cost profile differs.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.backend import dtypes as _dtypes
from repro.backend import ops
from repro.backend import shape_array as _sa_mod
from repro.backend.dtypes import as_dtype, bool_, float64
from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm import collectives as _coll
from repro.core import summa as _summa


# ----------------------------------------------------------------------
# seed ShapeArray internals
# ----------------------------------------------------------------------
def _legacy_init(self, shape, dtype=None):
    self.shape = tuple(int(s) for s in shape)
    self.dtype = as_dtype(dtype if dtype is not None else "float32")
    if any(s < 0 for s in self.shape):
        raise ValueError(f"negative dimension in shape {self.shape}")


def _legacy_size(self) -> int:
    return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1


def _legacy_nbytes(self) -> int:
    return self.size * self.dtype.itemsize


def _legacy_binary(self, other, bool_result=False):
    if isinstance(other, ShapeArray):
        oshape, odtype = other.shape, other.dtype
    elif isinstance(other, np.ndarray):
        oshape, odtype = other.shape, as_dtype(other.dtype)
    elif isinstance(other, (int, float, bool, np.generic)):
        oshape, odtype = (), self.dtype
    else:
        return NotImplemented
    shape = np.broadcast_shapes(self.shape, oshape)
    dtype = bool_ if bool_result else _legacy_result_float(self.dtype, odtype)
    return ShapeArray(shape, dtype)


def _legacy_matmul(self, other):
    if not isinstance(other, (ShapeArray, np.ndarray)):
        return NotImplemented
    a, b = self.shape, tuple(other.shape)
    if len(a) < 1 or len(b) < 1:
        raise ValueError("matmul operands must be at least 1-D")
    if len(a) == 1:
        a = (1,) + a
    if len(b) == 1:
        b = b + (1,)
    if a[-1] != b[-2]:
        raise ValueError(f"matmul inner dims mismatch: {self.shape} @ {tuple(other.shape)}")
    batch = np.broadcast_shapes(a[:-2], b[:-2])
    shape = batch + (a[-2], b[-1])
    odt = other.dtype if isinstance(other, ShapeArray) else as_dtype(other.dtype)
    return ShapeArray(shape, _legacy_result_float(self.dtype, odt))


def _legacy_result_float(*dts):
    ds = [as_dtype(d) for d in dts]
    floats = [d for d in ds if d.np_dtype.kind == "f"]
    if not floats:
        return float64
    return max(floats, key=lambda d: d.itemsize)


# ----------------------------------------------------------------------
# seed collectives (signatures accept — and ignore — a precost, because the
# optimized SUMMA exec path passes one positionally)
# ----------------------------------------------------------------------
def _legacy_copy(x):
    return x if is_shape_array(x) else np.array(x, copy=True)


def _legacy_broadcast(group, src, root, precost=None):
    if root not in group.ranks:
        raise ValueError(f"root {root} not in group {group.ranks}")
    nbytes = ops.nbytes(src)
    _coll._charge(
        group,
        "broadcast",
        group.model.broadcast_time(nbytes),
        nbytes,
        group.model.broadcast_weighted_volume(nbytes),
    )
    return {r: (src if r == root else _legacy_copy(src)) for r in group.ranks}


def _legacy_combine(group, shards, op):
    acc = _legacy_copy(shards[group.ranks[0]])
    for r in group.ranks[1:]:
        if op == "sum":
            acc = acc + shards[r]
        elif op == "max":
            acc = ops.maximum(acc, shards[r])
        else:
            raise ValueError(f"unsupported reduction op {op!r}")
    return acc


def _legacy_reduce(group, shards, root, op="sum", precost=None):
    if root not in group.ranks:
        raise ValueError(f"root {root} not in group {group.ranks}")
    _coll._check_shards(group, shards)
    acc = _legacy_combine(group, shards, op)
    nbytes = ops.nbytes(acc)
    _coll._charge(
        group,
        "reduce",
        group.model.reduce_time(nbytes),
        nbytes,
        group.model.reduce_weighted_volume(nbytes),
    )
    return {root: acc}


_SHAPE_ARRAY_PATCHES = {
    "__init__": _legacy_init,
    "size": property(_legacy_size),
    "nbytes": property(_legacy_nbytes),
    "_binary": _legacy_binary,
    "__matmul__": _legacy_matmul,
}

_MODULE_PATCHES = [
    # result_float is looked up through each consumer module's globals
    (_sa_mod, "result_float", _legacy_result_float),
    (ops, "result_float", _legacy_result_float),
    (_dtypes, "result_float", _legacy_result_float),
    (_coll, "broadcast", _legacy_broadcast),
    (_coll, "reduce", _legacy_reduce),
    (_coll, "_combine", _legacy_combine),
    (_coll, "_copy", _legacy_copy),
]


@contextmanager
def pre_optimization():
    """Run the enclosed block against the seed (pre-optimization) hot path."""
    saved_cls = {name: ShapeArray.__dict__[name] for name in _SHAPE_ARRAY_PATCHES}
    saved_mod = [(mod, name, getattr(mod, name)) for mod, name, _ in _MODULE_PATCHES]
    for name, impl in _SHAPE_ARRAY_PATCHES.items():
        setattr(ShapeArray, name, impl)
    for mod, name, impl in _MODULE_PATCHES:
        setattr(mod, name, impl)
    try:
        with _summa.optimizations(plan_cache=False, pool=False, batched=False):
            yield
    finally:
        for name, impl in saved_cls.items():
            setattr(ShapeArray, name, impl)
        for mod, name, impl in saved_mod:
            setattr(mod, name, impl)
