"""``python -m repro bench`` — run the suite, persist results, gate CI."""

from __future__ import annotations

import time
from typing import List, Optional

from repro.bench.core import (
    compare,
    load_results,
    render_comparison,
    run_suite,
    save_results,
)


def main(
    out: Optional[str] = None,
    baseline: Optional[str] = None,
    only: Optional[List[str]] = None,
    repeats: Optional[int] = None,
    threshold: float = 0.20,
    printer=print,
) -> int:
    doc = run_suite(only=only, repeats=repeats, printer=printer)
    if out:
        if out == "auto":
            out = f"BENCH_{time.strftime('%Y%m%d')}.json"
        save_results(doc, out)
        printer(f"results written to {out}")
    if baseline:
        rows = compare(doc, load_results(baseline), threshold=threshold)
        printer("")
        printer(render_comparison(rows, threshold))
        regressed = [c.name for c in rows if c.regressed]
        if regressed:
            printer(f"FAIL: {len(regressed)} benchmark(s) regressed: {', '.join(regressed)}")
            return 1
        printer("PASS: no benchmark regressed beyond threshold")
    return 0
