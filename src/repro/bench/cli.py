"""``python -m repro bench`` — run the suite, persist results, gate CI."""

from __future__ import annotations

import time
from typing import List, Optional

from repro.bench.core import (
    compare,
    load_results,
    render_comparison,
    run_suite,
    save_results,
)


def main(
    out: Optional[str] = None,
    baseline: Optional[str] = None,
    only: Optional[List[str]] = None,
    repeats: Optional[int] = None,
    threshold: float = 0.20,
    ledger: Optional[str] = None,
    printer=print,
) -> int:
    doc = run_suite(only=only, repeats=repeats, printer=printer)
    if out:
        if out == "auto":
            out = f"BENCH_{time.strftime('%Y%m%d')}.json"
        save_results(doc, out)
        printer(f"results written to {out}")
    comparison = None
    if baseline:
        comparison = compare(doc, load_results(baseline), threshold=threshold)
    if ledger:
        run_id = append_bench_record(
            ledger, doc, comparison=comparison, threshold=threshold, only=only
        )
        printer(f"ledger record {run_id} appended to {ledger}")
    if comparison is not None:
        printer("")
        printer(render_comparison(comparison, threshold))
        regressed = [c.name for c in comparison if c.regressed]
        if regressed:
            printer(f"FAIL: {len(regressed)} benchmark(s) regressed: {', '.join(regressed)}")
            return 1
        printer("PASS: no benchmark regressed beyond threshold")
    return 0


def append_bench_record(
    ledger,
    doc: dict,
    comparison=None,
    threshold: float = 0.20,
    only: Optional[List[str]] = None,
) -> str:
    """Append one ``bench`` record (full results + regression verdicts)."""
    from dataclasses import asdict

    from repro.obs.ledger import RunLedger, RunRecord, json_safe

    if not hasattr(ledger, "append"):
        ledger = RunLedger(ledger)
    extra = {
        "results": doc,
        "only": list(only) if only else None,
        "threshold": threshold,
    }
    if comparison is not None:
        extra["comparison"] = [asdict(c) for c in comparison]
        extra["regressed"] = [c.name for c in comparison if c.regressed]
    record = RunRecord(kind="bench", label="bench-suite", extra=json_safe(extra))
    run_id = ledger.append(record)
    return run_id
