"""Pinned micro/macro benchmark suite with machine-readable results.

``python -m repro bench`` runs the suite; ``--out`` writes a
``repro-bench-v1`` JSON document, ``--compare BASELINE.json`` exits nonzero
when any benchmark's calibration-normalized wall-clock regresses beyond the
threshold (default 20%).  See ``docs/simulator.md`` ("Performance &
benchmarking").
"""

from repro.bench.core import (
    REGISTRY,
    BenchResult,
    Comparison,
    bench,
    calibrate,
    compare,
    load_results,
    render_comparison,
    run_benchmark,
    run_suite,
    save_results,
)

__all__ = [
    "BenchResult",
    "Comparison",
    "REGISTRY",
    "bench",
    "calibrate",
    "compare",
    "load_results",
    "render_comparison",
    "run_benchmark",
    "run_suite",
    "save_results",
]
