"""Fused (chunked, online-softmax) attention — the paper's §6 extension.

The paper's conclusion points out that the attention scores occupy a
``[b, n, s, s]`` tensor — at the Table 3 scaling, 8× the memory of the
``[b, s, h]`` activations — while costing only ``bs²h`` MACs, and proposes
*operation fusion* to avoid materializing them.  This module implements that
proposal: attention computed over key/value chunks with an online softmax
(the FlashAttention recurrence), so the live intermediate is
``[b, n, s, chunk]`` instead of ``[b, n, s, s]``.

Both the unfused helpers (materialized probabilities) and the fused ones
share this file; the distributed layers pick via their ``fused`` flag.
Everything runs on the dispatching backend, so dryrun memory accounting
sees the reduction too.

Forward saves only O(b·n·s) softmax statistics (running max ``m`` and
normalizer ``l``); backward recomputes each chunk's probabilities from Q, K
and the saved statistics — the standard recompute trade, mirroring in
miniature what activation checkpointing does at layer granularity.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.backend import ops
from repro.reference.functional import softmax, softmax_bwd


# ----------------------------------------------------------------------
# unfused (materialized probabilities)
# ----------------------------------------------------------------------
def attention_fwd(q, k, v):
    """Plain attention on [b, n, s, d] operands; returns (out, probs)."""
    d = q.shape[-1]
    scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(d))
    probs = softmax(scores)
    return probs @ v, probs


def attention_bwd(q, k, v, probs, d_out):
    """Backward of :func:`attention_fwd` given the saved probabilities."""
    d = q.shape[-1]
    inv = 1.0 / math.sqrt(d)
    d_probs = d_out @ v.transpose(0, 1, 3, 2)
    d_v = probs.transpose(0, 1, 3, 2) @ d_out
    d_scores = softmax_bwd(probs, d_probs) * inv
    d_q = d_scores @ k
    d_k = d_scores.transpose(0, 1, 3, 2) @ q
    return d_q, d_k, d_v


def decode_attention_fwd(q_vec, k_cache, v_cache):
    """Single-token attention over a KV cache (the serving decode step).

    ``q_vec`` is the new token's query ``[n, d]``; ``k_cache``/``v_cache``
    hold the ``ℓ`` cached positions as ``[n, ℓ, d]`` (the new token's own
    K/V already appended, making the step causal by construction — a token
    only ever sees positions ``≤`` its own).  Returns ``(context [n, d],
    probs [n, ℓ])``.
    """
    d = q_vec.shape[-1]
    scores = (k_cache @ q_vec[:, :, None])[:, :, 0] * (1.0 / math.sqrt(d))
    probs = softmax(scores)
    ctx = (probs[:, None, :] @ v_cache)[:, 0, :]
    return ctx, probs


# ----------------------------------------------------------------------
# fused (chunked online softmax)
# ----------------------------------------------------------------------
def _chunks(s: int, chunk: int):
    for lo in range(0, s, chunk):
        yield lo, min(lo + chunk, s)


def fused_attention_fwd(q, k, v, chunk: int = 64) -> Tuple[object, object, object]:
    """Chunked attention; returns (out, m, l) with m/l of shape [b,n,s,1].

    The [s, s] score matrix never exists: each iteration touches a
    [s, chunk] slab and folds it into the running (max, normalizer, output)
    triple.
    """
    b = q  # alias for readability of shapes below
    d = q.shape[-1]
    s = q.shape[-2]
    inv = 1.0 / math.sqrt(d)
    m = ops.full(q.shape[:-1] + (1,), -1e30, dtype=q.dtype, backend=ops.backend_of(q))
    l = ops.zeros(q.shape[:-1] + (1,), dtype=q.dtype, backend=ops.backend_of(q))
    acc = ops.zeros(q.shape, dtype=q.dtype, backend=ops.backend_of(q))
    for lo, hi in _chunks(s, chunk):
        k_c = k[:, :, lo:hi, :]
        v_c = v[:, :, lo:hi, :]
        scores = (q @ k_c.transpose(0, 1, 3, 2)) * inv  # [b, n, s, c]
        m_new = ops.maximum(m, ops.max(scores, axis=-1, keepdims=True))
        scale = ops.exp(m - m_new)
        p = ops.exp(scores - m_new)
        l = l * scale + ops.sum(p, axis=-1, keepdims=True)
        acc = acc * scale + p @ v_c
        m = m_new
    out = acc / l
    return out, m, l


def fused_attention_bwd(q, k, v, out, m, l, d_out, chunk: int = 64):
    """Backward pass recomputing each chunk's probabilities from (m, l).

    Uses the identity dS = P ∘ (dP − D) with D = rowsum(dO ∘ O), which
    avoids ever holding the full probability or score matrix.
    """
    d = q.shape[-1]
    s = q.shape[-2]
    inv = 1.0 / math.sqrt(d)
    delta = ops.sum(d_out * out, axis=-1, keepdims=True)  # [b, n, s, 1]
    d_q = ops.zeros(q.shape, dtype=q.dtype, backend=ops.backend_of(q))
    d_k = ops.zeros(k.shape, dtype=k.dtype, backend=ops.backend_of(k))
    d_v = ops.zeros(v.shape, dtype=v.dtype, backend=ops.backend_of(v))
    for lo, hi in _chunks(s, chunk):
        k_c = k[:, :, lo:hi, :]
        v_c = v[:, :, lo:hi, :]
        scores = (q @ k_c.transpose(0, 1, 3, 2)) * inv
        p = ops.exp(scores - m) / l  # exact probabilities, recomputed
        d_p = d_out @ v_c.transpose(0, 1, 3, 2)
        d_scores = p * (d_p - delta) * inv
        d_q = d_q + d_scores @ k_c
        d_k[:, :, lo:hi, :] = _slice_add(d_k, lo, hi, d_scores.transpose(0, 1, 3, 2) @ q)
        d_v[:, :, lo:hi, :] = _slice_add(d_v, lo, hi, p.transpose(0, 1, 3, 2) @ d_out)
    return d_q, d_k, d_v


def _slice_add(target, lo, hi, update):
    """Return target[:, :, lo:hi, :] + update (works on both backends)."""
    from repro.backend.shape_array import is_shape_array

    if is_shape_array(target):
        return update
    return target[:, :, lo:hi, :] + update


def fused_attention_flops(b: int, n: int, s: int, d: int, backward: bool) -> float:
    """GEMM FLOPs of the fused path (per full attention block).

    Forward: QKᵀ and PV (2 × 2bns²d).  Backward: score recompute + the four
    gradient products — 5 × 2bns²d — one recompute GEMM more than the
    unfused backward, the price of not storing probabilities.
    """
    unit = 2.0 * b * n * s * s * d
    return 5.0 * unit if backward else 2.0 * unit
