"""Functional ops with analytic gradients, on the dispatching backend.

These are the *local* (no-communication) pieces shared by the serial
reference model and by the per-device code of both parallel schemes: GELU,
softmax, layer normalization (the paper's §3.2.2 formulas), and softmax
cross-entropy from logits.

Each ``*_bwd`` consumes the values its ``*_fwd`` returned (never recomputing
data-dependent quantities), matching how the paper's buffering scheme saves
``X̂`` and ``1/√(Var+ε)`` in forward for use in backward.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.backend import ops

_SQRT_2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


# ----------------------------------------------------------------------
# GELU (exact erf formulation, as in BERT/Megatron)
# ----------------------------------------------------------------------
def gelu(x):
    """GELU(x) = 0.5 · x · (1 + erf(x/√2))."""
    return 0.5 * x * (1.0 + ops.erf(x / _SQRT_2))


def gelu_grad(x):
    """dGELU/dx = Φ(x) + x·φ(x) with Φ the normal CDF, φ the pdf."""
    cdf = 0.5 * (1.0 + ops.erf(x / _SQRT_2))
    pdf = _INV_SQRT_2PI * ops.exp(-0.5 * x * x)
    return cdf + x * pdf


def gelu_bwd(x, dy):
    return dy * gelu_grad(x)


# ----------------------------------------------------------------------
# softmax over the last axis
# ----------------------------------------------------------------------
def softmax(x):
    """Numerically-stable softmax along the last axis."""
    z = x - ops.max(x, axis=-1, keepdims=True)
    e = ops.exp(z)
    return e / ops.sum(e, axis=-1, keepdims=True)


def softmax_bwd(y, dy):
    """Backward given the forward *output* y: dx = y ⊙ (dy − Σ y·dy)."""
    s = ops.sum(y * dy, axis=-1, keepdims=True)
    return y * (dy - s)


# ----------------------------------------------------------------------
# layer normalization over the last axis (paper §3.2.2)
# ----------------------------------------------------------------------
def layernorm_fwd(x, gamma, beta, eps: float = 1e-5):
    """Returns (out, x_hat, inv_std); the latter two are saved for backward."""
    mean = ops.mean(x, axis=-1, keepdims=True)
    var = ops.mean(x * x, axis=-1, keepdims=True) - mean * mean
    inv_std = 1.0 / ops.sqrt(var + eps)
    x_hat = (x - mean) * inv_std
    return x_hat * gamma + beta, x_hat, inv_std


def layernorm_bwd(dy, x_hat, inv_std, gamma):
    """The paper's gradient formula.

    dX = inv_std · [ dŶ − (1/h)·Σ dŶ − (1/h)·(Σ X̂·dŶ)·X̂ ]  with dŶ = γ·dy.

    Returns (dx, dgamma, dbeta) where dgamma/dbeta are *unreduced over
    tokens* only in the sense that we already sum over every leading axis —
    callers in the distributed setting re-reduce across devices as needed.
    """
    h = x_hat.shape[-1]
    dy_hat = dy * gamma
    m1 = ops.mean(dy_hat, axis=-1, keepdims=True)
    m2 = ops.mean(dy_hat * x_hat, axis=-1, keepdims=True)
    dx = inv_std * (dy_hat - m1 - x_hat * m2)
    reduce_axes = tuple(range(x_hat.ndim - 1))
    dgamma = ops.sum(dy * x_hat, axis=reduce_axes) if reduce_axes else dy * x_hat
    dbeta = ops.sum(dy, axis=reduce_axes) if reduce_axes else dy
    return dx, dgamma, dbeta


# ----------------------------------------------------------------------
# softmax cross-entropy from logits (paper §3.2.2)
# ----------------------------------------------------------------------
def cross_entropy_fwd(logits, labels) -> Tuple[object, object]:
    """Token-wise loss H = log Σᵢ eˣⁱ − x_l on 2-D logits [T, v].

    Returns (loss_per_token [T], softmax probs [T, v] saved for backward).
    """
    z = logits - ops.max(logits, axis=-1, keepdims=True)
    e = ops.exp(z)
    denom = ops.sum(e, axis=-1, keepdims=True)
    probs = e / denom
    log_denom = ops.log(denom)
    picked = ops.take_along_rows(z, labels)
    loss = log_denom.reshape((logits.shape[0],)) - picked
    return loss, probs


def cross_entropy_bwd(probs, labels, dloss):
    """d logits: qⱼ (j≠l), q_l − 1, scaled by the per-token upstream dloss."""
    if dloss.ndim == 1:
        dloss = dloss.reshape((dloss.shape[0], 1))
    grad = probs * dloss
    ones = ops.ones_like(ops.take_along_rows(probs, labels))
    ops.put_along_rows_add(grad, labels, -ones * dloss.reshape((dloss.shape[0],)))
    return grad
