"""Serial Mixture-of-Experts MLP — ground truth for the §6 MoE extension.

The paper's conclusion names MoE as the direction "to streamline the
communication and reduce memory redundancy" for.  We implement a Switch-
style top-1 routed expert MLP:

* gate: per-token softmax over E experts on ``x·W_g``;
* routing: each token is processed by its argmax expert only, the output
  scaled by the selected gate probability (which keeps the gate trainable);
* load balancing: the standard auxiliary loss ``E · Σₑ fₑ·mₑ`` where fₑ is
  the fraction of tokens routed to expert e and mₑ the mean gate
  probability of e — differentiable through mₑ.

Forward and backward are fully analytic; the test suite checks them against
finite differences, and the 2D version in :mod:`repro.core.moe` against
this one.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.reference import functional as F


def init_moe_params(
    hidden_size: int,
    num_experts: int,
    ffn_hidden: Optional[int] = None,
    seed: int = 0,
    dtype: str = "float64",
    prefix: str = "moe",
) -> Dict[str, np.ndarray]:
    """Global MoE parameters: a gate plus E independent expert MLPs."""
    rng = np.random.default_rng(seed)
    h = hidden_size
    f = ffn_hidden if ffn_hidden is not None else 4 * h
    params: Dict[str, np.ndarray] = {
        f"{prefix}.gate.weight": rng.normal(0, h**-0.5, size=(h, num_experts)).astype(dtype)
    }
    for e in range(num_experts):
        params[f"{prefix}.expert{e}.w1"] = rng.normal(0, h**-0.5, size=(h, f)).astype(dtype)
        params[f"{prefix}.expert{e}.b1"] = np.zeros(f, dtype=dtype)
        params[f"{prefix}.expert{e}.w2"] = rng.normal(0, f**-0.5, size=(f, h)).astype(dtype)
        params[f"{prefix}.expert{e}.b2"] = np.zeros(h, dtype=dtype)
    return params


class ReferenceMoE:
    """Top-1 routed expert MLP on a single device."""

    def __init__(
        self,
        params: Dict[str, np.ndarray],
        num_experts: int,
        aux_loss_coef: float = 0.01,
        prefix: str = "moe",
    ):
        self.params = params
        self.E = num_experts
        self.aux_loss_coef = aux_loss_coef
        self.prefix = prefix
        self.grads: Dict[str, np.ndarray] = {}
        self._saved = None

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, float]:
        """x [T, h] → (output [T, h], auxiliary load-balance loss)."""
        P = self.params
        T = x.shape[0]
        glogits = x @ P[f"{self.prefix}.gate.weight"]  # [T, E]
        gprobs = F.softmax(glogits)
        sel = np.argmax(np.asarray(gprobs), axis=-1)  # [T]
        scale = np.asarray(gprobs)[np.arange(T), sel]  # [T]

        out = np.zeros_like(x)
        pre, act = {}, {}
        for e in range(self.E):
            rows = np.nonzero(sel == e)[0]
            if rows.size == 0:
                pre[e] = act[e] = None
                continue
            xe = x[rows]
            pe = xe @ P[f"{self.prefix}.expert{e}.w1"] + P[f"{self.prefix}.expert{e}.b1"]
            ae = F.gelu(pe)
            out[rows] = ae @ P[f"{self.prefix}.expert{e}.w2"] + P[f"{self.prefix}.expert{e}.b2"]
            pre[e], act[e] = pe, ae

        y = out * scale[:, None]
        frac = np.bincount(sel, minlength=self.E) / T  # fₑ
        mean_prob = np.asarray(gprobs).mean(axis=0)  # mₑ
        aux = self.aux_loss_coef * self.E * float(frac @ mean_prob)
        self._saved = (x, gprobs, sel, scale, out, pre, act, frac)
        return y, aux

    # ------------------------------------------------------------------
    def backward(self, dy: np.ndarray, d_aux: float = 1.0) -> np.ndarray:
        """Returns dx; expert/gate grads accumulate into ``self.grads``."""
        if self._saved is None:
            raise RuntimeError("MoE backward before forward")
        P, G = self.params, self.grads
        x, gprobs, sel, scale, out, pre, act, frac = self._saved
        T = x.shape[0]

        d_out = dy * scale[:, None]
        d_scale = (dy * out).sum(axis=-1)  # [T]

        dx = np.zeros_like(x)
        for e in range(self.E):
            rows = np.nonzero(sel == e)[0]
            if rows.size == 0:
                continue
            w1 = P[f"{self.prefix}.expert{e}.w1"]
            w2 = P[f"{self.prefix}.expert{e}.w2"]
            d_oe = d_out[rows]
            d_ae = d_oe @ w2.T
            self._acc(f"{self.prefix}.expert{e}.w2", act[e].T @ d_oe)
            self._acc(f"{self.prefix}.expert{e}.b2", d_oe.sum(axis=0))
            d_pe = F.gelu_bwd(pre[e], d_ae)
            self._acc(f"{self.prefix}.expert{e}.w1", x[rows].T @ d_pe)
            self._acc(f"{self.prefix}.expert{e}.b1", d_pe.sum(axis=0))
            dx[rows] += d_pe @ w1.T

        # gate gradient: through the selected probability and the aux loss
        d_gprobs = np.zeros_like(np.asarray(gprobs))
        d_gprobs[np.arange(T), sel] += d_scale
        d_gprobs += d_aux * self.aux_loss_coef * self.E * frac[None, :] / T
        d_glogits = F.softmax_bwd(gprobs, d_gprobs)
        self._acc(f"{self.prefix}.gate.weight", x.T @ d_glogits)
        dx += d_glogits @ P[f"{self.prefix}.gate.weight"].T
        self._saved = None
        return dx

    def _acc(self, name: str, g: np.ndarray) -> None:
        self.grads[name] = self.grads.get(name, 0) + g

    def zero_grads(self) -> None:
        self.grads = {}

    # ------------------------------------------------------------------
    def expert_load(self, x: np.ndarray) -> np.ndarray:
        """Token counts per expert (routing diagnostics)."""
        glogits = x @ self.params[f"{self.prefix}.gate.weight"]
        sel = np.argmax(glogits, axis=-1)
        return np.bincount(sel, minlength=self.E)
