"""Single-device transformer with analytic forward and backward.

Architecture (pre-LN, BERT-scale shapes, paper Fig. 1):

    ids [b,s] ──embedding──▶ x [b·s, h]
    for each of N layers:
        x ← x + AttnOut( SelfAttention( LN1(x) ) )
        x ← x + MLP( LN2(x) )
    x ← FinalLN(x)
    logits = x @ Eᵀ   (lm-head, weight-tied with the embedding, paper §3.2.1)
    loss = mean over tokens of softmax cross-entropy

Weight layout convention (shared with both parallel schemes so parameters
can be copied verbatim): the QKV projection's output columns are ordered
head-major, i.e. for head k the 3·d consecutive columns are
``[q_k | k_k | v_k]``.  Column-partitioning this matrix over q (or p)
devices therefore assigns whole heads to devices, exactly the property both
Megatron (§2.2) and Optimus (§3.2.1) rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple


from repro.backend import ops
from repro.config import ModelConfig
from repro.reference import functional as F


@dataclass
class _LayerCache:
    x_in: object = None
    ln1: tuple = None  # (out, x_hat, inv_std)
    qkv: object = None  # pre-split [T, 3h]
    q: object = None
    k: object = None
    v: object = None
    attn_probs: object = None
    ctx_flat: object = None  # [T, h] input to the output projection
    attn_ln_out: object = None  # LN1 output, input of the QKV matmul
    x_mid: object = None  # after attention residual
    ln2: tuple = None
    mlp_pre: object = None  # W1 output, pre-GELU
    mlp_act: object = None  # GELU output
    ln2_out: object = None


class ReferenceTransformer:
    """Ground-truth serial model operating on global parameter arrays."""

    def __init__(self, config: ModelConfig, params: Dict[str, object]):
        self.cfg = config
        self.params = params
        self.grads: Dict[str, object] = {}
        self._caches: List[_LayerCache] = []
        self._final: dict = {}

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def forward(self, ids, labels=None):
        """Run the full model.

        Returns the mean token loss (scalar) when ``labels`` is given,
        otherwise the logits ``[b·s, v]``.
        """
        cfg = self.cfg
        b, s = ids.shape
        T = b * s
        self._caches = []
        self._final = {"ids": ids, "b": b, "s": s}

        table = self.params["embedding.table"]
        x = ops.take_rows(table, ids.reshape((T,)))  # [T, h]
        for l in range(cfg.num_layers):
            x = self._layer_forward(l, x, b, s)
        out, x_hat, inv_std = F.layernorm_fwd(
            x, self.params["final_ln.gamma"], self.params["final_ln.beta"], cfg.ln_eps
        )
        self._final.update({"ln": (x_hat, inv_std), "ln_out": out})
        logits = out @ ops.transpose(table)  # [T, v]
        if labels is None:
            return logits
        labels_flat = labels.reshape((T,))
        loss_tok, probs = F.cross_entropy_fwd(logits, labels_flat)
        self._final.update({"probs": probs, "labels": labels_flat})
        return ops.sum(loss_tok) / float(T)

    def _layer_forward(self, l: int, x, b: int, s: int):
        cfg = self.cfg
        P = self.params
        n, d, h = cfg.num_heads, cfg.head_dim, cfg.hidden_size
        T = b * s
        c = _LayerCache(x_in=x)

        out1, xh1, inv1 = F.layernorm_fwd(
            x, P[f"layer{l}.ln1.gamma"], P[f"layer{l}.ln1.beta"], cfg.ln_eps
        )
        c.ln1 = (xh1, inv1)
        c.attn_ln_out = out1

        qkv = out1 @ P[f"layer{l}.attn.wqkv"] + P[f"layer{l}.attn.bqkv"]  # [T, 3h]
        c.qkv = qkv
        qkv_r = qkv.reshape((b, s, n, 3, d))
        # head-major [q_k | k_k | v_k] columns → index the "3" axis
        q = qkv_r[:, :, :, 0, :].transpose(0, 2, 1, 3)  # [b, n, s, d]
        k = qkv_r[:, :, :, 1, :].transpose(0, 2, 1, 3)
        v = qkv_r[:, :, :, 2, :].transpose(0, 2, 1, 3)
        c.q, c.k, c.v = q, k, v

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(d))  # [b, n, s, s]
        probs = F.softmax(scores)
        c.attn_probs = probs
        ctx = probs @ v  # [b, n, s, d]
        ctx_flat = ctx.transpose(0, 2, 1, 3).reshape((T, h))
        c.ctx_flat = ctx_flat

        attn_out = ctx_flat @ P[f"layer{l}.attn.wo"] + P[f"layer{l}.attn.bo"]
        x_mid = x + attn_out
        c.x_mid = x_mid

        out2, xh2, inv2 = F.layernorm_fwd(
            x_mid, P[f"layer{l}.ln2.gamma"], P[f"layer{l}.ln2.beta"], cfg.ln_eps
        )
        c.ln2 = (xh2, inv2)
        c.ln2_out = out2

        pre = out2 @ P[f"layer{l}.mlp.w1"] + P[f"layer{l}.mlp.b1"]  # [T, 4h]
        act = F.gelu(pre)
        c.mlp_pre, c.mlp_act = pre, act
        mlp_out = act @ P[f"layer{l}.mlp.w2"] + P[f"layer{l}.mlp.b2"]
        self._caches.append(c)
        return x_mid + mlp_out

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(self) -> Dict[str, object]:
        """Backprop from the mean-token loss; fills and returns ``self.grads``."""
        cfg = self.cfg
        fin = self._final
        if "probs" not in fin:
            raise RuntimeError("backward() requires a prior forward() with labels")
        b, s = fin["b"], fin["s"]
        T = b * s
        table = self.params["embedding.table"]
        self.grads = {}

        dloss = ops.full((T,), 1.0 / T, dtype=fin["probs"].dtype.name
                         if hasattr(fin["probs"].dtype, "name") else "float64",
                         backend=ops.backend_of(fin["probs"]))
        dlogits = F.cross_entropy_bwd(fin["probs"], fin["labels"], dloss)  # [T, v]

        # lm-head: logits = ln_out @ tableᵀ
        d_ln_out = dlogits @ table
        d_table = ops.transpose(dlogits) @ fin["ln_out"]  # [v, h]

        x_hat, inv_std = fin["ln"]
        dx, dgamma, dbeta = F.layernorm_bwd(
            d_ln_out, x_hat, inv_std, self.params["final_ln.gamma"]
        )
        self.grads["final_ln.gamma"] = dgamma
        self.grads["final_ln.beta"] = dbeta

        for l in reversed(range(cfg.num_layers)):
            dx = self._layer_backward(l, dx, b, s)

        # embedding lookup backward: scatter-add token grads into the table
        d_table = d_table + self._embedding_scatter(dx, fin["ids"], table)
        self.grads["embedding.table"] = d_table
        return self.grads

    def _embedding_scatter(self, dx, ids, table):
        ids_flat = ids.reshape((dx.shape[0],))
        g = ops.zeros_like(table)
        ops.index_add(g, ids_flat, dx)
        return g

    def _layer_backward(self, l: int, dy, b: int, s: int):
        cfg = self.cfg
        P, G = self.params, self.grads
        c = self._caches[l]
        n, d, h = cfg.num_heads, cfg.head_dim, cfg.hidden_size
        T = b * s

        # ---- MLP branch: y = x_mid + act @ W2 + b2
        d_act = dy @ ops.transpose(P[f"layer{l}.mlp.w2"])
        G[f"layer{l}.mlp.w2"] = ops.transpose(c.mlp_act) @ dy
        G[f"layer{l}.mlp.b2"] = ops.sum(dy, axis=0)
        d_pre = F.gelu_bwd(c.mlp_pre, d_act)
        d_out2 = d_pre @ ops.transpose(P[f"layer{l}.mlp.w1"])
        G[f"layer{l}.mlp.w1"] = ops.transpose(c.ln2_out) @ d_pre
        G[f"layer{l}.mlp.b1"] = ops.sum(d_pre, axis=0)

        xh2, inv2 = c.ln2
        d_xmid_ln, dg2, db2 = F.layernorm_bwd(d_out2, xh2, inv2, P[f"layer{l}.ln2.gamma"])
        G[f"layer{l}.ln2.gamma"] = dg2
        G[f"layer{l}.ln2.beta"] = db2
        d_xmid = dy + d_xmid_ln  # residual

        # ---- attention output projection
        d_ctx_flat = d_xmid @ ops.transpose(P[f"layer{l}.attn.wo"])
        G[f"layer{l}.attn.wo"] = ops.transpose(c.ctx_flat) @ d_xmid
        G[f"layer{l}.attn.bo"] = ops.sum(d_xmid, axis=0)

        d_ctx = d_ctx_flat.reshape((b, s, n, d)).transpose(0, 2, 1, 3)  # [b,n,s,d]
        d_probs = d_ctx @ c.v.transpose(0, 1, 3, 2)  # [b,n,s,s]
        d_v = c.attn_probs.transpose(0, 1, 3, 2) @ d_ctx  # [b,n,s,d]
        d_scores = F.softmax_bwd(c.attn_probs, d_probs) * (1.0 / math.sqrt(d))
        d_q = d_scores @ c.k  # [b,n,s,d]
        d_k = d_scores.transpose(0, 1, 3, 2) @ c.q

        def _undo(t):  # [b,n,s,d] -> [b,s,n,d]
            return t.transpose(0, 2, 1, 3)

        d_qkv_r = ops.stack([_undo(d_q), _undo(d_k), _undo(d_v)], axis=3)  # [b,s,n,3,d]
        d_qkv = d_qkv_r.reshape((T, 3 * h))

        d_out1 = d_qkv @ ops.transpose(P[f"layer{l}.attn.wqkv"])
        G[f"layer{l}.attn.wqkv"] = ops.transpose(c.attn_ln_out) @ d_qkv
        G[f"layer{l}.attn.bqkv"] = ops.sum(d_qkv, axis=0)

        xh1, inv1 = c.ln1
        d_xin_ln, dg1, db1 = F.layernorm_bwd(d_out1, xh1, inv1, P[f"layer{l}.ln1.gamma"])
        G[f"layer{l}.ln1.gamma"] = dg1
        G[f"layer{l}.ln1.beta"] = db1
        return d_xmid + d_xin_ln  # residual into the layer input

    # ------------------------------------------------------------------
    # classification branch (paper Fig. 1, right side)
    # ------------------------------------------------------------------
    def forward_classification(self, ids, cls_labels=None):
        """Sequence classification: select token 0's final embedding and
        project to ``num_classes`` logits (requires ``cls_head.*`` params).

        Returns the mean loss when ``cls_labels`` [b] is given, else the
        class logits [b, C].
        """
        if "cls_head.weight" not in self.params:
            raise KeyError("parameters lack cls_head.* (init with num_classes>0)")
        cfg = self.cfg
        b, s = ids.shape
        T = b * s
        self._caches = []
        self._final = {"ids": ids, "b": b, "s": s}
        table = self.params["embedding.table"]
        x = ops.take_rows(table, ids.reshape((T,)))
        for l in range(cfg.num_layers):
            x = self._layer_forward(l, x, b, s)
        out, x_hat, inv_std = F.layernorm_fwd(
            x, self.params["final_ln.gamma"], self.params["final_ln.beta"], cfg.ln_eps
        )
        self._final.update({"ln": (x_hat, inv_std), "ln_out": out})
        x0 = out[::s]  # token 0 of every sequence: rows 0, s, 2s, ...
        logits = x0 @ self.params["cls_head.weight"] + self.params["cls_head.bias"]
        self._final["cls_x0"] = x0
        if cls_labels is None:
            return logits
        loss_seq, probs = F.cross_entropy_fwd(logits, cls_labels)
        self._final.update({"cls_probs": probs, "cls_labels": cls_labels})
        return ops.sum(loss_seq) / float(b)

    def backward_classification(self) -> Dict[str, object]:
        fin = self._final
        if "cls_probs" not in fin:
            raise RuntimeError(
                "backward_classification() requires forward_classification() "
                "with labels"
            )
        cfg = self.cfg
        b, s = fin["b"], fin["s"]
        T = b * s
        self.grads = {}
        dloss = ops.full(
            (b,), 1.0 / b, dtype="float64", backend=ops.backend_of(fin["cls_probs"])
        )
        dlogits = F.cross_entropy_bwd(fin["cls_probs"], fin["cls_labels"], dloss)
        w = self.params["cls_head.weight"]
        self.grads["cls_head.weight"] = ops.transpose(fin["cls_x0"]) @ dlogits
        self.grads["cls_head.bias"] = ops.sum(dlogits, axis=0)
        dx0 = dlogits @ ops.transpose(w)  # [b, h]
        d_ln_out = ops.zeros_like(fin["ln_out"])
        d_ln_out[::s] = dx0

        x_hat, inv_std = fin["ln"]
        dx, dgamma, dbeta = F.layernorm_bwd(
            d_ln_out, x_hat, inv_std, self.params["final_ln.gamma"]
        )
        self.grads["final_ln.gamma"] = dgamma
        self.grads["final_ln.beta"] = dbeta
        for l in reversed(range(cfg.num_layers)):
            dx = self._layer_backward(l, dx, b, s)
        self.grads["embedding.table"] = self._embedding_scatter(
            dx, fin["ids"], self.params["embedding.table"]
        )
        return self.grads

    # ------------------------------------------------------------------
    # utilities
    # ------------------------------------------------------------------
    def zero_grads(self) -> None:
        self.grads = {}

    def loss_and_grads(self, ids, labels) -> Tuple[object, Dict[str, object]]:
        loss = self.forward(ids, labels)
        return loss, self.backward()
