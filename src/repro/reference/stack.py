"""A contiguous stack of serial transformer layers with explicit backward.

Factored out of :class:`~repro.reference.model.ReferenceTransformer` so the
same verified layer math can serve (a) the full serial reference and (b)
pipeline-parallel stages, which each own a contiguous slice of layers
(paper §1's other parallelism family, implemented in :mod:`repro.pipeline`).

Parameters are read from a shared global dict by absolute layer index, so a
stack over layers [2, 5) of a 12-layer model uses ``layer2.* … layer4.*``
and writes gradients under the same names.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backend import ops
from repro.config import ModelConfig
from repro.reference import functional as F


@dataclass
class _LayerCache:
    x_in: object = None
    ln1: tuple = None
    attn_ln_out: object = None
    q: object = None
    k: object = None
    v: object = None
    attn_probs: object = None
    ctx_flat: object = None
    x_mid: object = None
    ln2: tuple = None
    ln2_out: object = None
    mlp_pre: object = None
    mlp_act: object = None


class LayerStack:
    """Serial pre-LN transformer layers ``[start, stop)`` of a model."""

    def __init__(
        self,
        cfg: ModelConfig,
        params: Dict[str, object],
        layer_indices: Optional[Sequence[int]] = None,
    ):
        self.cfg = cfg
        self.params = params
        self.layer_indices: List[int] = (
            list(layer_indices)
            if layer_indices is not None
            else list(range(cfg.num_layers))
        )
        self.grads: Dict[str, object] = {}
        self._caches: List[_LayerCache] = []

    # ------------------------------------------------------------------
    def forward(self, x, batch_size: int):
        """x [b·s, h] → activations after every layer in the slice."""
        self._caches = []
        b, s = batch_size, self.cfg.seq_len
        for l in self.layer_indices:
            x = self._layer_forward(l, x, b, s)
        return x

    def backward(self, dy):
        """dy for the slice output → dx for the slice input.

        Parameter gradients *accumulate* into ``self.grads`` (callers doing
        micro-batching rely on the accumulation).
        """
        if len(self._caches) != len(self.layer_indices):
            raise RuntimeError("backward before forward (or forward incomplete)")
        b = self._caches[0].x_in.shape[0] // self.cfg.seq_len
        for pos in reversed(range(len(self.layer_indices))):
            dy = self._layer_backward(pos, dy, b, self.cfg.seq_len)
        self._caches = []
        return dy

    def zero_grads(self) -> None:
        self.grads = {}

    def drop_caches(self) -> None:
        self._caches = []

    # cache export/import lets a pipeline engine keep several micro-batches'
    # activations in flight through one LayerStack instance
    def export_caches(self) -> list:
        caches, self._caches = self._caches, []
        return caches

    def import_caches(self, caches: list) -> None:
        self._caches = caches

    def _acc(self, name: str, g) -> None:
        if name in self.grads:
            self.grads[name] = self.grads[name] + g
        else:
            self.grads[name] = g

    # ------------------------------------------------------------------
    def _layer_forward(self, l: int, x, b: int, s: int):
        cfg, P = self.cfg, self.params
        n, d, h = cfg.num_heads, cfg.head_dim, cfg.hidden_size
        T = b * s
        c = _LayerCache(x_in=x)

        out1, xh1, inv1 = F.layernorm_fwd(
            x, P[f"layer{l}.ln1.gamma"], P[f"layer{l}.ln1.beta"], cfg.ln_eps
        )
        c.ln1 = (xh1, inv1)
        c.attn_ln_out = out1

        qkv = out1 @ P[f"layer{l}.attn.wqkv"] + P[f"layer{l}.attn.bqkv"]
        qkv_r = qkv.reshape((b, s, n, 3, d))
        q = qkv_r[:, :, :, 0, :].transpose(0, 2, 1, 3)
        k = qkv_r[:, :, :, 1, :].transpose(0, 2, 1, 3)
        v = qkv_r[:, :, :, 2, :].transpose(0, 2, 1, 3)
        c.q, c.k, c.v = q, k, v
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(d))
        probs = F.softmax(scores)
        c.attn_probs = probs
        ctx_flat = (probs @ v).transpose(0, 2, 1, 3).reshape((T, h))
        c.ctx_flat = ctx_flat
        attn_out = ctx_flat @ P[f"layer{l}.attn.wo"] + P[f"layer{l}.attn.bo"]
        x_mid = x + attn_out
        c.x_mid = x_mid

        out2, xh2, inv2 = F.layernorm_fwd(
            x_mid, P[f"layer{l}.ln2.gamma"], P[f"layer{l}.ln2.beta"], cfg.ln_eps
        )
        c.ln2 = (xh2, inv2)
        c.ln2_out = out2
        pre = out2 @ P[f"layer{l}.mlp.w1"] + P[f"layer{l}.mlp.b1"]
        act = F.gelu(pre)
        c.mlp_pre, c.mlp_act = pre, act
        mlp_out = act @ P[f"layer{l}.mlp.w2"] + P[f"layer{l}.mlp.b2"]
        self._caches.append(c)
        return x_mid + mlp_out

    def _layer_backward(self, pos: int, dy, b: int, s: int):
        cfg, P = self.cfg, self.params
        l = self.layer_indices[pos]
        c = self._caches[pos]
        n, d, h = cfg.num_heads, cfg.head_dim, cfg.hidden_size
        T = b * s

        d_act = dy @ ops.transpose(P[f"layer{l}.mlp.w2"])
        self._acc(f"layer{l}.mlp.w2", ops.transpose(c.mlp_act) @ dy)
        self._acc(f"layer{l}.mlp.b2", ops.sum(dy, axis=0))
        d_pre = F.gelu_bwd(c.mlp_pre, d_act)
        d_out2 = d_pre @ ops.transpose(P[f"layer{l}.mlp.w1"])
        self._acc(f"layer{l}.mlp.w1", ops.transpose(c.ln2_out) @ d_pre)
        self._acc(f"layer{l}.mlp.b1", ops.sum(d_pre, axis=0))

        xh2, inv2 = c.ln2
        d_xmid_ln, dg2, db2 = F.layernorm_bwd(d_out2, xh2, inv2, P[f"layer{l}.ln2.gamma"])
        self._acc(f"layer{l}.ln2.gamma", dg2)
        self._acc(f"layer{l}.ln2.beta", db2)
        d_xmid = dy + d_xmid_ln

        d_ctx_flat = d_xmid @ ops.transpose(P[f"layer{l}.attn.wo"])
        self._acc(f"layer{l}.attn.wo", ops.transpose(c.ctx_flat) @ d_xmid)
        self._acc(f"layer{l}.attn.bo", ops.sum(d_xmid, axis=0))

        d_ctx = d_ctx_flat.reshape((b, s, n, d)).transpose(0, 2, 1, 3)
        d_probs = d_ctx @ c.v.transpose(0, 1, 3, 2)
        d_v = c.attn_probs.transpose(0, 1, 3, 2) @ d_ctx
        d_scores = F.softmax_bwd(c.attn_probs, d_probs) * (1.0 / math.sqrt(d))
        d_q = d_scores @ c.k
        d_k = d_scores.transpose(0, 1, 3, 2) @ c.q

        def _undo(t):
            return t.transpose(0, 2, 1, 3)

        d_qkv = ops.stack([_undo(d_q), _undo(d_k), _undo(d_v)], axis=3).reshape(
            (T, 3 * h)
        )
        d_out1 = d_qkv @ ops.transpose(P[f"layer{l}.attn.wqkv"])
        self._acc(f"layer{l}.attn.wqkv", ops.transpose(c.attn_ln_out) @ d_qkv)
        self._acc(f"layer{l}.attn.bqkv", ops.sum(d_qkv, axis=0))

        xh1, inv1 = c.ln1
        d_xin_ln, dg1, db1 = F.layernorm_bwd(d_out1, xh1, inv1, P[f"layer{l}.ln1.gamma"])
        self._acc(f"layer{l}.ln1.gamma", dg1)
        self._acc(f"layer{l}.ln1.beta", db1)
        return d_xmid + d_xin_ln

    # ------------------------------------------------------------------
    def flops_forward(self, batch_size: int) -> float:
        """GEMM FLOPs of one forward through the slice (for cost charging)."""
        from repro.perfmodel.costs import layer_macs_forward

        cfg = self.cfg
        return 2.0 * len(self.layer_indices) * layer_macs_forward(
            batch_size, cfg.seq_len, cfg.hidden_size
        )

    def activation_bytes(self, batch_size: int, elem_size: int = 8) -> int:
        """Approximate bytes of one micro-batch's saved activations."""
        cfg = self.cfg
        T = batch_size * cfg.seq_len
        per_layer = (
            12.0 * T * cfg.hidden_size  # the flat tensors cached per layer
            + batch_size * cfg.num_heads * cfg.seq_len * cfg.seq_len
        )
        return int(per_layer * len(self.layer_indices) * elem_size)
