"""Serial (single-device) reference transformer.

This package is the numerical ground truth: the distributed Optimus and
Megatron implementations must match its forward values and parameter/input
gradients exactly (up to float round-off) when given the same global
parameters.  Gradients are analytic, verified by finite differences in the
test suite.
"""

from repro.reference import attention, functional
from repro.reference.model import ReferenceTransformer
from repro.reference.moe import ReferenceMoE, init_moe_params

__all__ = [
    "attention",
    "functional",
    "ReferenceTransformer",
    "ReferenceMoE",
    "init_moe_params",
]
