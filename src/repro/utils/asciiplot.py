"""Terminal line plots for the figure-reproduction harness.

The paper's Fig. 7 and Fig. 9 are line charts; the benchmarks regenerate the
underlying series and render them as ASCII so the *shape* (trends,
crossovers) is visible directly in test output without any plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

_MARKERS = "ox+*#@"


def line_plot(
    series: Dict[str, Sequence[float]],
    x_values: Sequence[float],
    width: int = 60,
    height: int = 16,
    title: str = "",
    ylabel: str = "",
    logy: bool = False,
) -> str:
    """Plot one or more named series against shared x values.

    Points are placed on a character grid; each series gets a marker from
    ``o x + * # @`` in declaration order.  Returns a multi-line string.
    """
    if not series:
        raise ValueError("no series to plot")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length {len(ys)} != x {len(x_values)}")

    def ty(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("log-scale plot requires positive values")
            return math.log10(v)
        return float(v)

    all_y = [ty(v) for ys in series.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(x_values), max(x_values)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in zip(x_values, ys):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((ty(y) - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{10**y_hi:.3g}" if logy else f"{y_hi:.3g}"
    bot_label = f"{10**y_lo:.3g}" if logy else f"{y_lo:.3g}"
    label_w = max(len(top_label), len(bot_label), len(ylabel))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_w)
        elif i == height - 1:
            prefix = bot_label.rjust(label_w)
        elif i == height // 2 and ylabel:
            prefix = ylabel.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    xticks = f"{x_lo:g}".ljust(width // 2) + f"{x_hi:g}".rjust(width // 2)
    lines.append(" " * (label_w + 2) + xticks)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
