"""Plain-text table rendering for the experiment harness output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width text table (right-aligned numeric style)."""
    cells: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(x) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1e5 or abs(x) < 1e-3:
            return f"{x:.3e}"
        return f"{x:.4f}"
    return str(x)


def format_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.2f} TiB"  # pragma: no cover
