"""Small shared utilities (text tables, byte formatting, ASCII plots)."""

from repro.utils.asciiplot import line_plot
from repro.utils.tables import format_bytes, format_table

__all__ = ["format_table", "format_bytes", "line_plot"]
