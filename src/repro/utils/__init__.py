"""Small shared utilities (text tables, byte formatting, ASCII plots)."""

from repro.utils.tables import format_table, format_bytes
from repro.utils.asciiplot import line_plot

__all__ = ["format_table", "format_bytes", "line_plot"]
