"""Checkpoint serialization: gather distributed parameters, save, restore.

The natural checkpoint format for this library is the *global* parameter
dict (the same representation every model is constructed from), so a saved
checkpoint can be reloaded into any scheme — serial, Megatron, Optimus, or
pipeline — at any device count whose divisibility constraints it satisfies.

Uses ``numpy.savez`` (one array per parameter) plus a small JSON metadata
blob (model config, step counter, user extras).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import ModelConfig
from repro.core.param import DistModule
from repro.mesh.partition import assemble_any

_META_KEY = "__repro_meta__"


def gather_parameters(model) -> Dict[str, np.ndarray]:
    """Collect a model's parameters as global numpy arrays.

    Accepts a :class:`~repro.core.param.DistModule` (Optimus / Megatron),
    a :class:`~repro.pipeline.engine.PipelineModel` or
    :class:`~repro.reference.model.ReferenceTransformer` (whose params are
    already global dicts), or a plain name→array dict.
    """
    if isinstance(model, DistModule):
        return {p.name: np.asarray(assemble_any(p.data)) for p in model.parameters()}
    params = getattr(model, "params", model)
    if not isinstance(params, dict):
        raise TypeError(f"cannot gather parameters from {type(model).__name__}")
    return {k: np.asarray(v) for k, v in params.items()}


def save_checkpoint(
    path,
    model,
    config: Optional[ModelConfig] = None,
    step: int = 0,
    extra: Optional[dict] = None,
) -> None:
    """Write a checkpoint: global parameters + JSON metadata."""
    params = gather_parameters(model)
    meta = {"step": int(step), "extra": extra or {}}
    if config is None:
        config = getattr(model, "cfg", None)
    if config is not None:
        meta["config"] = asdict(config)
    np.savez(
        path,
        **params,
        **{_META_KEY: np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)},
    )


def load_checkpoint(path) -> Tuple[Dict[str, np.ndarray], dict]:
    """Read a checkpoint back as (global params dict, metadata dict)."""
    with np.load(path) as data:
        meta = {}
        params = {}
        for key in data.files:
            if key == _META_KEY:
                meta = json.loads(bytes(data[key]).decode())
            else:
                params[key] = data[key]
    if "config" in meta:
        meta["config"] = ModelConfig(**meta["config"])
    return params, meta
