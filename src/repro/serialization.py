"""Checkpoint serialization: gather distributed parameters, save, restore.

The natural checkpoint format for this library is the *global* parameter
dict (the same representation every model is constructed from), so a saved
checkpoint can be reloaded into any scheme — serial, Megatron, Optimus, or
pipeline — at any device count whose divisibility constraints it satisfies.

Uses ``numpy.savez`` (one array per parameter) plus a small JSON metadata
blob (model config, step counter, user extras).

Durability guarantees (the resilience subsystem depends on these):

* **Atomic writes** — checkpoints are written to a temporary file in the
  destination directory and moved into place with :func:`os.replace`, so a
  crash mid-write can never leave a half-written file under the final name.
* **Integrity digest** — the metadata blob embeds a sha256 over every
  array's name, dtype, shape and raw bytes; :func:`load_checkpoint`
  recomputes and verifies it, raising :class:`CheckpointCorruptError` on
  any mismatch (and wrapping truncated-zip/JSON failures in the same
  exception) instead of surfacing a raw numpy/zipfile error.

Beyond bare parameters, :func:`save_training_checkpoint` captures the
*full* training state of a :class:`~repro.training.trainer.Trainer` —
optimizer moments (as global arrays, layout-independent like the
parameters), LR-schedule step, AMP loss scale, the data-iterator cursor
and RNG state — and :func:`apply_training_state` restores all of it, so a
resumed run continues the exact trajectory of an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import ModelConfig
from repro.core.param import DistModule, DistParam
from repro.mesh.partition import assemble_any, scatter_any

_META_KEY = "__repro_meta__"
_OPT_PREFIX = "__state__opt."


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file is truncated, corrupt, or fails digest verification."""


def gather_parameters(model) -> Dict[str, np.ndarray]:
    """Collect a model's parameters as global numpy arrays.

    Accepts a :class:`~repro.core.param.DistModule` (Optimus / Megatron),
    a :class:`~repro.pipeline.engine.PipelineModel` or
    :class:`~repro.reference.model.ReferenceTransformer` (whose params are
    already global dicts), any object exposing ``gathered_parameters()``
    (e.g. a data-parallel wrapper that gathers from one replica), or a
    plain name→array dict.
    """
    if isinstance(model, DistModule):
        return {p.name: np.asarray(assemble_any(p.data)) for p in model.parameters()}
    gathered = getattr(model, "gathered_parameters", None)
    if callable(gathered):
        return {k: np.asarray(v) for k, v in gathered().items()}
    params = getattr(model, "params", model)
    if not isinstance(params, dict):
        raise TypeError(f"cannot gather parameters from {type(model).__name__}")
    return {k: np.asarray(v) for k, v in params.items()}


def assign_parameters(model, params: Dict[str, np.ndarray]) -> None:
    """Write global parameter values into an existing model, in place.

    The restore counterpart of :func:`gather_parameters`: distributed
    parameters are re-scattered shard by shard (every replica of a name is
    restored, so data-parallel wrappers work unchanged); serial models get
    elementwise copies into their global arrays.
    """
    plist = getattr(model, "parameters", None)
    if callable(plist):
        dist_params = [p for p in plist() if isinstance(p, DistParam)]
        if dist_params:
            for p in dist_params:
                if p.name not in params:
                    raise KeyError(f"checkpoint is missing parameter {p.name!r}")
                scatter_any(p.data, params[p.name])
            return
    model_params = getattr(model, "params", None)
    if not isinstance(model_params, dict):
        raise TypeError(f"cannot assign parameters into {type(model).__name__}")
    for name, arr in model_params.items():
        if name not in params:
            raise KeyError(f"checkpoint is missing parameter {name!r}")
        np.asarray(arr)[...] = params[name]


# ----------------------------------------------------------------------
# integrity + atomicity
# ----------------------------------------------------------------------
def _digest_arrays(arrays: Dict[str, np.ndarray]) -> str:
    """sha256 over every array's name, dtype, shape and raw bytes."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(np.asarray(arrays[name]))
        h.update(name.encode())
        h.update(b"\0")
        h.update(str(a.dtype).encode())
        h.update(b"\0")
        h.update(repr(a.shape).encode())
        h.update(b"\0")
        h.update(a.tobytes())
    return h.hexdigest()


def _normalize_path(path) -> str:
    path = os.fspath(path)
    # np.savez appends ".npz" to extension-less paths; do it eagerly so the
    # atomic rename targets the name the caller will load from
    return path if path.endswith(".npz") else path + ".npz"


def _atomic_savez(path: str, arrays: Dict[str, object]) -> None:
    """Write an ``.npz`` to a temp file, then :func:`os.replace` into place."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _write_checkpoint(path, arrays: Dict[str, np.ndarray], meta: dict) -> str:
    path = _normalize_path(path)
    meta = dict(meta)
    meta["sha256"] = _digest_arrays(arrays)
    blob = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    _atomic_savez(path, {**arrays, _META_KEY: blob})
    return path


# ----------------------------------------------------------------------
# parameter checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(
    path,
    model,
    config: Optional[ModelConfig] = None,
    step: int = 0,
    extra: Optional[dict] = None,
) -> str:
    """Write a checkpoint: global parameters + JSON metadata.

    Returns the path actually written (with the ``.npz`` suffix applied).
    """
    params = gather_parameters(model)
    meta = {"step": int(step), "extra": extra or {}}
    if config is None:
        config = getattr(model, "cfg", None)
    if config is not None:
        meta["config"] = asdict(config)
    return _write_checkpoint(path, params, meta)


def _read_arrays(path) -> Tuple[Dict[str, np.ndarray], dict]:
    try:
        with np.load(path) as data:
            meta = {}
            arrays = {}
            for key in data.files:
                if key == _META_KEY:
                    meta = json.loads(bytes(data[key]).decode())
                else:
                    arrays[key] = data[key]
    except (
        OSError,
        ValueError,
        KeyError,
        EOFError,
        zipfile.BadZipFile,
        json.JSONDecodeError,
    ) as e:
        # truncated files and bad CRCs raise BadZipFile (a plain Exception,
        # not an OSError); truncated .npy entries inside an intact zip raise
        # ValueError/EOFError from numpy's header parser
        raise CheckpointCorruptError(
            f"checkpoint {path} is unreadable (truncated or corrupt): {e}"
        ) from e
    expected = meta.get("sha256")
    if expected is not None and _digest_arrays(arrays) != expected:
        raise CheckpointCorruptError(
            f"checkpoint {path} failed sha256 verification: contents do not "
            f"match the digest recorded at save time"
        )
    return arrays, meta


def load_checkpoint(path) -> Tuple[Dict[str, np.ndarray], dict]:
    """Read a checkpoint back as (global params dict, metadata dict).

    Verifies the embedded sha256 digest (when present) and raises
    :class:`CheckpointCorruptError` on truncated or corrupt files.
    """
    arrays, meta = _read_arrays(path)
    params = {k: v for k, v in arrays.items() if not k.startswith(_OPT_PREFIX)}
    if "config" in meta:
        meta["config"] = ModelConfig(**meta["config"])
    return params, meta


# ----------------------------------------------------------------------
# full training state
# ----------------------------------------------------------------------
@dataclass
class TrainingState:
    """Everything needed to continue a training run bit-exactly."""

    params: Dict[str, np.ndarray]
    meta: dict
    opt_slots: Dict[str, List[np.ndarray]] = field(default_factory=dict)

    @property
    def step(self) -> int:
        return int(self.meta.get("step", 0))

    @property
    def config(self) -> Optional[ModelConfig]:
        return self.meta.get("config")

    @property
    def trainer_state(self) -> dict:
        return self.meta.get("trainer", {})


def save_training_checkpoint(path, trainer, extra: Optional[dict] = None) -> str:
    """Checkpoint a trainer's *complete* state: parameters, optimizer
    moments, step counter, LR, AMP loss scale, data cursor, RNG state.

    Returns the path actually written.
    """
    arrays: Dict[str, np.ndarray] = dict(gather_parameters(trainer.model))
    optimizer = trainer.optimizer
    slots = getattr(optimizer, "state_slots", None)
    if callable(slots):
        for name, slot_arrays in slots().items():
            for k, a in enumerate(slot_arrays):
                arrays[f"{_OPT_PREFIX}{k}.{name}"] = np.asarray(a)
    meta = {
        "step": int(trainer.step),
        "trainer": trainer.state_dict(),
        "extra": extra or {},
    }
    config = getattr(trainer.model, "cfg", None)
    if config is not None:
        meta["config"] = asdict(config)
    return _write_checkpoint(path, arrays, meta)


def load_training_checkpoint(path) -> TrainingState:
    """Read back a full-state checkpoint written by
    :func:`save_training_checkpoint` (plain parameter checkpoints load too,
    with empty optimizer state)."""
    arrays, meta = _read_arrays(path)
    params: Dict[str, np.ndarray] = {}
    opt_slots: Dict[str, List[np.ndarray]] = {}
    slot_keys: Dict[str, Dict[int, np.ndarray]] = {}
    for key, arr in arrays.items():
        if key.startswith(_OPT_PREFIX):
            slot, name = key[len(_OPT_PREFIX) :].split(".", 1)
            slot_keys.setdefault(name, {})[int(slot)] = arr
        else:
            params[key] = arr
    for name, by_slot in slot_keys.items():
        opt_slots[name] = [by_slot[k] for k in sorted(by_slot)]
    if "config" in meta:
        meta["config"] = ModelConfig(**meta["config"])
    return TrainingState(params=params, meta=meta, opt_slots=opt_slots)


def apply_training_state(trainer, state: TrainingState) -> None:
    """Restore a :class:`TrainingState` into a trainer, in place.

    Parameters are re-scattered into the model, optimizer moments and the
    (t, lr) hyper-state reload, and the trainer's step counter, last finite
    loss, AMP loss scale, data-iterator cursor and RNG state all rewind to
    the values captured at save time.  Metric counters merge monotonically
    (never rewind) with their reset epoch bumped.
    """
    assign_parameters(trainer.model, state.params)
    ts = state.trainer_state
    optimizer = trainer.optimizer
    if state.opt_slots and callable(getattr(optimizer, "load_state_slots", None)):
        optimizer.load_state_slots(state.opt_slots)
    if "optimizer" in ts and callable(getattr(optimizer, "load_state_dict", None)):
        optimizer.load_state_dict(ts["optimizer"])
    trainer.step = state.step
    trainer._last_finite_loss = ts.get("last_finite_loss")
    scaler = getattr(trainer, "scaler", None)
    if scaler is not None and "scaler" in ts:
        scaler.load_state(ts["scaler"])
    if "data" in ts and callable(getattr(trainer.batches, "load_state", None)):
        trainer.batches.load_state(ts["data"])
    rng = getattr(trainer, "rng", None)
    if rng is not None and "rng" in ts:
        rng.bit_generator.state = ts["rng"]
    metrics = getattr(trainer, "metrics", None)
    if metrics is not None and ts.get("metrics"):
        # monotone max-merge + reset-epoch bump (OpenMetrics restart
        # semantics): counters never move backwards across a resume
        metrics.restore_counters(ts["metrics"])
