"""Optimus reproduction: 2D (SUMMA) tensor parallelism for transformers.

A full, from-scratch reproduction of *"An Efficient 2D Method for Training
Super-Large Deep Learning Models"* (Xu, Li, Gong & You) on a simulated
multi-device runtime: the Optimus 2D scheme, the Megatron 1D baseline, a
serial reference ground truth, the paper's memory-management system, and a
benchmark harness that regenerates every table and figure.

Quick start::

    from repro import OptimusModel, Mesh, Simulator, init_transformer_params
    from repro.config import ModelConfig

    cfg = ModelConfig(vocab_size=512, hidden_size=64, num_heads=8,
                      num_layers=2, seq_len=32)
    params = init_transformer_params(cfg, seed=0)
    sim = Simulator.for_mesh(q=2)          # 4 simulated GPUs in a 2x2 mesh
    model = OptimusModel(Mesh(sim, 2), cfg, params)
    ids, labels = model.synthetic_batch(8)
    loss = model.forward(ids, labels)
    model.backward()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from repro.config import ModelConfig, RunConfig, tiny_config
from repro.core import BufferManager, MoE2D, OptimusModel
from repro.hybrid import DataParallel
from repro.megatron import MegatronModel
from repro.mesh import Mesh
from repro.nn import init_transformer_params
from repro.pipeline import PipelineModel
from repro.reference import ReferenceTransformer
from repro.resilience import FaultInjector, FaultSchedule, ResilientTrainer
from repro.runtime import Simulator
from repro.serialization import (
    CheckpointCorruptError,
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
    save_training_checkpoint,
)

__version__ = "1.0.0"

__all__ = [
    "ModelConfig",
    "RunConfig",
    "tiny_config",
    "BufferManager",
    "MoE2D",
    "OptimusModel",
    "DataParallel",
    "MegatronModel",
    "Mesh",
    "init_transformer_params",
    "PipelineModel",
    "ReferenceTransformer",
    "Simulator",
    "save_checkpoint",
    "load_checkpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "CheckpointCorruptError",
    "FaultSchedule",
    "FaultInjector",
    "ResilientTrainer",
    "__version__",
]
