"""Shared neural-network utilities: parameter initialization and gradient
checking.  Both parallel schemes and the serial reference consume the *same*
globally-initialized parameter dict, which is what makes bit-level
equivalence testing between the three implementations possible.
"""

from repro.nn.gradcheck import check_grad, numerical_grad
from repro.nn.init import init_transformer_params, spectral_scale

__all__ = [
    "init_transformer_params",
    "spectral_scale",
    "numerical_grad",
    "check_grad",
]
