"""Shared neural-network utilities: parameter initialization and gradient
checking.  Both parallel schemes and the serial reference consume the *same*
globally-initialized parameter dict, which is what makes bit-level
equivalence testing between the three implementations possible.
"""

from repro.nn.init import init_transformer_params, spectral_scale
from repro.nn.gradcheck import numerical_grad, check_grad

__all__ = [
    "init_transformer_params",
    "spectral_scale",
    "numerical_grad",
    "check_grad",
]
