"""Global parameter initialization.

Parameters are always materialized as *global* arrays first (seeded, so every
run is reproducible), then partitioned onto devices by each scheme's layout.
In dryrun mode the same function returns ShapeArray placeholders with
identical shapes, so the distributed code paths are oblivious to the mode.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray
from repro.config import ModelConfig


def spectral_scale(fan_in: int) -> float:
    """Plain 1/√fan_in scaling used for all weight matrices."""
    return 1.0 / math.sqrt(fan_in)


def init_transformer_params(
    cfg: ModelConfig,
    seed: int = 0,
    backend: str = "numpy",
    dtype: str = "float64",
    include_embedding: bool = True,
    num_classes: int = 0,
) -> Dict[str, object]:
    """Create the full global parameter dict for a transformer.

    Names (per layer l):

    * ``embedding.table``                       [v, h]
    * ``layer{l}.ln1.gamma`` / ``.ln1.beta``    [h]
    * ``layer{l}.attn.wqkv`` / ``.attn.bqkv``   [h, 3h] / [3h] (head-major)
    * ``layer{l}.attn.wo`` / ``.attn.bo``       [h, h] / [h]
    * ``layer{l}.ln2.gamma`` / ``.ln2.beta``    [h]
    * ``layer{l}.mlp.w1`` / ``.mlp.b1``         [h, 4h] / [4h]
    * ``layer{l}.mlp.w2`` / ``.mlp.b2``         [4h, h] / [h]
    * ``final_ln.gamma`` / ``final_ln.beta``    [h]
    * ``cls_head.weight`` / ``cls_head.bias``   [h, C] / [C] (when
      ``num_classes`` > 0 — the paper's Fig. 1 classification branch)
    """
    rng = np.random.default_rng(seed)
    h, f, v = cfg.hidden_size, cfg.ffn_hidden, cfg.vocab_size
    resid_scale = 1.0 / math.sqrt(2.0 * cfg.num_layers)

    def w(shape, scale):
        if backend == "shape":
            return ShapeArray(shape, dtype)
        return rng.normal(0.0, scale, size=shape).astype(dtype)

    def zeros(shape):
        return ops.zeros(shape, dtype=dtype, backend=backend)

    def ones(shape):
        return ops.ones(shape, dtype=dtype, backend=backend)

    params: Dict[str, object] = {}
    if include_embedding:
        params["embedding.table"] = w((v, h), 0.02)
    for l in range(cfg.num_layers):
        params[f"layer{l}.ln1.gamma"] = ones((h,))
        params[f"layer{l}.ln1.beta"] = zeros((h,))
        params[f"layer{l}.attn.wqkv"] = w((h, 3 * h), spectral_scale(h))
        params[f"layer{l}.attn.bqkv"] = zeros((3 * h,))
        params[f"layer{l}.attn.wo"] = w((h, h), spectral_scale(h) * resid_scale)
        params[f"layer{l}.attn.bo"] = zeros((h,))
        params[f"layer{l}.ln2.gamma"] = ones((h,))
        params[f"layer{l}.ln2.beta"] = zeros((h,))
        params[f"layer{l}.mlp.w1"] = w((h, f), spectral_scale(h))
        params[f"layer{l}.mlp.b1"] = zeros((f,))
        params[f"layer{l}.mlp.w2"] = w((f, h), spectral_scale(f) * resid_scale)
        params[f"layer{l}.mlp.b2"] = zeros((h,))
    params["final_ln.gamma"] = ones((h,))
    params["final_ln.beta"] = zeros((h,))
    if num_classes:
        # the paper's Fig. 1 classification branch (sentence-level label)
        params["cls_head.weight"] = w((h, num_classes), spectral_scale(h))
        params["cls_head.bias"] = zeros((num_classes,))
    return params
