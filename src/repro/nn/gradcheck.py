"""Finite-difference gradient checking used throughout the test suite."""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_grad(f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6):
    """Central-difference gradient of a scalar function at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        fp = float(f(x))
        flat[i] = old - eps
        fm = float(f(x))
        flat[i] = old
        gflat[i] = (fp - fm) / (2.0 * eps)
    return g


def check_grad(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    analytic: np.ndarray,
    eps: float = 1e-6,
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> None:
    """Assert that ``analytic`` matches the finite-difference gradient."""
    num = numerical_grad(f, x, eps=eps)
    np.testing.assert_allclose(np.asarray(analytic), num, rtol=rtol, atol=atol)
