"""Hybrid data × tensor parallelism.

Production systems (including Colossal-AI, where Optimus landed) compose
tensor parallelism *within* a replica with data parallelism *across*
replicas: each replica processes its slice of the global batch, and
parameter gradients are all-reduced shard-by-shard across replicas before
the (purely local) optimizer step.  :class:`DataParallel` provides exactly
that composition over this library's tensor-parallel models.
"""

from repro.hybrid.data_parallel import DataParallel

__all__ = ["DataParallel"]
