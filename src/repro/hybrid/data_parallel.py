"""Data-parallel composition over tensor-parallel replicas.

``R`` replicas of an Optimus mesh (q×q each) occupy disjoint rank ranges of
one simulator: replica r owns ranks ``[r·q², (r+1)·q²)``.  A training step:

1. split the global batch into R equal replica-batches;
2. every replica runs its own tensor-parallel forward/backward — exactly
   the single-replica code, on its own mesh;
3. for every parameter shard position, an all-reduce *across replicas*
   (groups of size R containing the rank holding that shard in each
   replica) averages the gradients — the classic data-parallel gradient
   synchronization, here composed with the 2D layouts;
4. each rank updates its shard locally; replicas stay bit-identical because
   they apply identical updates to identical parameters.

The equivalence test asserts a hybrid step equals a single-replica
full-batch step, which equals serial training.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm import collectives as coll
from repro.comm.group import ProcessGroup
from repro.config import ModelConfig
from repro.core.model import OptimusModel
from repro.core.param import DistParam
from repro.mesh.mesh import Mesh
from repro.nn.init import init_transformer_params
from repro.runtime.simulator import Simulator


class DataParallel:
    """R Optimus replicas + cross-replica gradient averaging."""

    def __init__(
        self,
        sim: Simulator,
        cfg: ModelConfig,
        params_global: Dict[str, object],
        num_replicas: int,
        q: int,
        checkpoint_activations: bool = True,
        **model_kwargs,
    ):
        if num_replicas < 1:
            raise ValueError("need at least one replica")
        per = q * q
        if num_replicas * per > sim.num_ranks:
            raise ValueError(
                f"{num_replicas} replicas x {per} ranks need "
                f"{num_replicas * per} ranks, simulator has {sim.num_ranks}"
            )
        self.sim = sim
        self.cfg = cfg
        self.R = num_replicas
        self.q = q
        self.replicas: List[OptimusModel] = []
        for r in range(num_replicas):
            mesh = Mesh(sim, q, rank_offset=r * per)
            # every replica gets its own copies of the same initial values
            replica_params = {
                k: (v if is_shape_array(v) or r == 0 else np.array(v, copy=True))
                for k, v in params_global.items()
            }
            self.replicas.append(
                OptimusModel(
                    mesh, cfg, replica_params,
                    checkpoint_activations=checkpoint_activations, **model_kwargs,
                )
            )
        # one gradient-sync group per shard position of each parameter
        self._sync_groups = self._build_sync_groups()

    # ------------------------------------------------------------------
    def _build_sync_groups(self) -> Dict[str, Dict[int, ProcessGroup]]:
        """{param name: {replica-0 shard rank: cross-replica group}}."""
        if self.R == 1:
            return {}
        per = self.q * self.q
        groups: Dict[str, Dict[int, ProcessGroup]] = {}
        for p0 in self.replicas[0].parameters():
            by_pos = {}
            for rank0 in p0.data.shards:
                ranks = [rank0 + r * per for r in range(self.R)]
                by_pos[rank0] = ProcessGroup(self.sim, ranks, kind="dp")
            groups[p0.name] = by_pos
        return groups

    # ------------------------------------------------------------------
    def forward_backward(self, ids, labels) -> float:
        """One hybrid training iteration; returns the global mean loss.

        After this call every replica's parameter gradients equal the
        gradients of the full-batch mean loss.
        """
        b = ids.shape[0]
        if b % self.R:
            raise ValueError(f"batch {b} not divisible by {self.R} replicas")
        ids_r = self._split(ids)
        labels_r = self._split(labels)
        losses = []
        for r, model in enumerate(self.replicas):
            losses.append(model.forward(ids_r[r], labels_r[r]))
            model.backward()
        self._sync_gradients()
        if any(is_shape_array(l) for l in losses):
            return losses[0]
        return float(np.mean(losses))

    def _split(self, arr):
        if is_shape_array(arr):
            return [
                ShapeArray((arr.shape[0] // self.R,) + arr.shape[1:], arr.dtype)
            ] * self.R
        return np.split(np.asarray(arr), self.R, axis=0)

    def _sync_gradients(self) -> None:
        """All-reduce every gradient shard across replicas and average."""
        if self.R == 1:
            return
        by_name = [
            {p.name: p for p in model.parameters()} for model in self.replicas
        ]
        inv_r = 1.0 / self.R
        for name, by_pos in self._sync_groups.items():
            for rank0, group in by_pos.items():
                shards = {}
                for r, params in enumerate(by_name):
                    p = params[name]
                    if p.grad is None:
                        raise RuntimeError(f"{name}: replica {r} has no gradient")
                    # replica r holds this shard at rank0 + r·q² == group.ranks[r]
                    shards[group.ranks[r]] = p.grad.shards[group.ranks[r]]
                reduced = coll.all_reduce(group, shards)
                for r, params in enumerate(by_name):
                    params[name].grad.shards[group.ranks[r]] = (
                        reduced[group.ranks[r]] * inv_r
                    )

    # ------------------------------------------------------------------
    def parameters(self) -> List[DistParam]:
        """All replicas' parameters (synced grads → identical updates)."""
        out: List[DistParam] = []
        for model in self.replicas:
            out.extend(model.parameters())
        return out

    def zero_grads(self) -> None:
        for model in self.replicas:
            model.zero_grads()

    def drop_caches(self) -> None:
        for model in self.replicas:
            model.drop_caches()

    def gathered_parameters(self) -> Dict[str, np.ndarray]:
        """Global parameter arrays from replica 0 (replicas are identical);
        the checkpoint hook used by :func:`repro.serialization.gather_parameters`."""
        from repro.mesh.partition import assemble_any

        return {
            p.name: np.asarray(assemble_any(p.data))
            for p in self.replicas[0].parameters()
        }

    def replica(self, r: int) -> OptimusModel:
        return self.replicas[r]

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        num_replicas: int,
        q: int,
        cfg: ModelConfig,
        seed: int = 0,
        backend: str = "numpy",
        gpus_per_node: int = 4,
        **kw,
    ) -> "DataParallel":
        """Convenience: size a simulator and initialize shared parameters."""
        total = num_replicas * q * q
        num_nodes = -(-total // gpus_per_node)
        from repro.hardware.specs import frontera_rtx

        sim = Simulator(frontera_rtx(num_nodes, gpus_per_node), num_ranks=total,
                        backend=backend)
        dtype = "float32" if backend == "shape" else "float64"
        params = init_transformer_params(cfg, seed=seed, backend=backend, dtype=dtype)
        return cls(sim, cfg, params, num_replicas, q, **kw)
