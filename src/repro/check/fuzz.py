"""Seeded shape-fuzzing equivalence runner (``python -m repro check``).

Draws random model/mesh configurations — mesh dimension q, Megatron degree
p, batch, sequence length, hidden size, head count, layer count, vocabulary,
parameter dtype, and optimizer hyper-parameters — subject to the two
schemes' divisibility constraints, then runs one forward / backward /
optimizer step of

* the serial :class:`~repro.reference.model.ReferenceTransformer`,
* Optimus on a q×q mesh,
* Megatron on a flat p-rank group,

and diffs losses, every named gradient, and every named post-step parameter
across the three.  A trial passes only when all three agree to the dtype's
tolerance (float64: rtol 1e-9 — distributed summation order is the only
allowed difference; float32: rtol 1e-4).

While the distributed models run, the fuzzer keeps the full correctness
harness engaged: the collective contract checker
(:mod:`repro.check.contracts`) wraps every collective and the simulators
run with strict layout-invariant mode (:mod:`repro.check.invariants`), so
a fuzzed configuration that breaks an internal contract fails loudly at
the offending call rather than as an unexplained numeric diff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.config import ModelConfig

#: (rtol, atol) per parameter dtype
TOLERANCES = {
    "float64": (1e-9, 1e-12),
    "float32": (1e-4, 1e-6),
}


@dataclass(frozen=True)
class TrialSpec:
    """One fuzzed configuration (all divisibility constraints satisfied)."""

    q: int            # Optimus mesh dimension (p_optimus = q²)
    p: int            # Megatron tensor-parallel degree
    batch: int
    seq: int
    heads: int
    head_dim: int
    layers: int
    vocab: int
    dtype: str
    optimizer: str    # "sgd" | "adam"
    lr: float
    momentum: float
    weight_decay: float
    param_seed: int
    data_seed: int

    @property
    def hidden(self) -> int:
        return self.heads * self.head_dim

    def describe(self) -> str:
        opt = self.optimizer
        if self.momentum:
            opt += f"(m={self.momentum})"
        if self.weight_decay:
            opt += f"(wd={self.weight_decay})"
        return (
            f"q={self.q} p={self.p} b={self.batch} s={self.seq} "
            f"h={self.hidden} n={self.heads} N={self.layers} v={self.vocab} "
            f"{self.dtype} {opt}"
        )


def _divisors(n: int, lo: int, hi: int) -> List[int]:
    return [d for d in range(lo, hi + 1) if n % d == 0]


def draw_spec(rng: np.random.Generator, trial: int) -> TrialSpec:
    """Draw one valid configuration from a seeded generator.

    Constraints (see ``ModelConfig.validate_for_*``): Optimus needs
    b, h, n, v divisible by q; Megatron needs n, v, 4h divisible by p
    (4h % p follows from n % p since h = n·head_dim).
    """
    q = int(rng.choice([1, 2, 2, 3, 3]))
    heads = q * int(rng.integers(1, 3))          # n ∈ {q, 2q}
    p_candidates = _divisors(heads, 2, 4) or [1]
    p = int(rng.choice(p_candidates))
    head_dim = int(rng.choice([2, 4]))
    batch = q * int(rng.integers(1, 3))
    seq = int(rng.choice([4, 8]))
    layers = int(rng.integers(1, 3))
    lcm = q * p // math.gcd(q, p)
    vocab = lcm * int(rng.integers(8, 17))       # small but non-trivial
    dtype = str(rng.choice(["float64", "float64", "float32"]))
    optimizer = str(rng.choice(["sgd", "sgd", "adam"]))
    if optimizer == "adam":
        # Adam's ε-regularized rescaling m̂/(√v̂+ε) amplifies float32
        # rounding on near-zero-gradient params (e.g. fresh biases) to
        # O(lr)-sized update differences — no tolerance separates that
        # noise from a real bug, so Adam trials compare in float64.
        dtype = "float64"
    momentum = float(rng.choice([0.0, 0.9])) if optimizer == "sgd" else 0.0
    weight_decay = float(rng.choice([0.0, 0.01]))
    lr = 0.05 if optimizer == "sgd" else 1e-3
    return TrialSpec(
        q=q, p=p, batch=batch, seq=seq, heads=heads, head_dim=head_dim,
        layers=layers, vocab=vocab, dtype=dtype, optimizer=optimizer,
        lr=lr, momentum=momentum, weight_decay=weight_decay,
        param_seed=1000 + trial, data_seed=2000 + trial,
    )


@dataclass
class TrialResult:
    spec: TrialSpec
    passed: bool
    failures: List[str] = field(default_factory=list)
    max_loss_diff: float = 0.0
    max_grad_diff: float = 0.0
    max_param_diff: float = 0.0


# ----------------------------------------------------------------------
# one trial
# ----------------------------------------------------------------------
def _make_serial_optimizer(spec: TrialSpec, params):
    from repro.training.optim import SerialAdam, SerialSGD

    if spec.optimizer == "adam":
        return SerialAdam(params, lr=spec.lr, weight_decay=spec.weight_decay)
    return SerialSGD(
        params, lr=spec.lr, momentum=spec.momentum, weight_decay=spec.weight_decay
    )


def _make_dist_optimizer(spec: TrialSpec, model):
    from repro.training.optim import Adam, SGD

    if spec.optimizer == "adam":
        return Adam(model.parameters(), lr=spec.lr, weight_decay=spec.weight_decay)
    return SGD(
        model.parameters(), lr=spec.lr,
        momentum=spec.momentum, weight_decay=spec.weight_decay,
    )


def _run_distributed(spec: TrialSpec, cfg, ids, labels, scheme: str, strict: bool):
    """One forward/backward/step of a distributed scheme; returns
    (loss, assembled grads, assembled post-step params)."""
    from repro.mesh.partition import assemble_any
    from repro.nn.init import init_transformer_params
    from repro.runtime.simulator import Simulator

    params = init_transformer_params(cfg, seed=spec.param_seed, dtype=spec.dtype)
    if scheme == "optimus":
        from repro.core.model import OptimusModel
        from repro.mesh.mesh import Mesh

        sim = Simulator.for_mesh(q=spec.q, trace=True, strict_invariants=strict)
        model = OptimusModel(Mesh(sim, spec.q), cfg, params)
    else:
        from repro.megatron.model import MegatronModel

        sim = Simulator.for_flat(p=spec.p, trace=True, strict_invariants=strict)
        model = MegatronModel(sim, cfg, params)
    loss = float(model.forward(ids, labels))
    model.backward()
    named = model.named_parameters()
    grads = {name: np.asarray(assemble_any(p.grad)) for name, p in named.items()}
    opt = _make_dist_optimizer(spec, model)
    opt.step()
    if strict:
        model.validate_invariants()
    post = {name: np.asarray(assemble_any(p.data)) for name, p in named.items()}
    return loss, grads, post, sim


def _sim_state(sim) -> dict:
    """Every per-rank counter the batched engine must reproduce exactly."""
    fields = (
        "clock", "flops", "flops_gemm", "bytes_comm", "weighted_comm_volume",
        "compute_time", "comm_time", "num_collectives",
    )
    return {
        r: tuple(getattr(sim.device(r), f) for f in fields)
        + (sim.device(r).memory.current, sim.device(r).memory.peak)
        for r in sim.ranks
    }


def _diff(a, b) -> float:
    return float(np.max(np.abs(np.asarray(a, dtype="float64")
                               - np.asarray(b, dtype="float64"))))


def run_trial(
    spec: TrialSpec,
    strict: bool = True,
    contracts: bool = True,
    batched: bool = True,
) -> TrialResult:
    """Serial vs Optimus vs Megatron (vs batched-mesh Optimus) on one
    fuzzed configuration.

    The ``batched`` arm re-runs Optimus with the batched-mesh engine
    forced on and demands *bit-exact* agreement — numerics, per-rank
    clocks, bytes, memory peaks — with a per-rank Optimus run.  Both A/B
    runs happen outside the contract checker: the batched engine falls
    back to the per-rank path whenever the collectives are patched, so
    running it under the checker would silently compare per-rank against
    per-rank.
    """
    from repro.check.contracts import CollectiveContractChecker
    from repro.nn.init import init_transformer_params
    from repro.reference.model import ReferenceTransformer

    cfg = ModelConfig(
        vocab_size=spec.vocab,
        hidden_size=spec.hidden,
        num_heads=spec.heads,
        num_layers=spec.layers,
        seq_len=spec.seq,
        dtype=spec.dtype,
    )
    rng = np.random.default_rng(spec.data_seed)
    ids = rng.integers(0, cfg.vocab_size, size=(spec.batch, cfg.seq_len))
    labels = rng.integers(0, cfg.vocab_size, size=(spec.batch, cfg.seq_len))

    # --- serial ground truth -----------------------------------------
    params_ref = init_transformer_params(cfg, seed=spec.param_seed, dtype=spec.dtype)
    ref = ReferenceTransformer(cfg, params_ref)
    ref_loss, ref_grads = ref.loss_and_grads(ids, labels)
    ref_loss = float(ref_loss)
    ref_grads = {k: np.asarray(v) for k, v in ref_grads.items()}
    _make_serial_optimizer(spec, params_ref).step(ref_grads)

    # --- distributed schemes, under the full correctness harness -----
    checker = CollectiveContractChecker() if contracts else None
    schemes = {}
    try:
        if checker is not None:
            checker.install()
        for scheme in ("optimus", "megatron"):
            schemes[scheme] = _run_distributed(
                spec, cfg, ids, labels, scheme, strict
            )
    finally:
        if checker is not None:
            checker.uninstall()

    # --- batched-mesh A/B (outside the checker: see docstring) -------
    batched_ab = None
    if batched:
        from repro.core import summa as _summa

        def _optimus_arm(flag: bool):
            with _summa.optimizations(batched=flag):
                loss, grads, post, sim = _run_distributed(
                    spec, cfg, ids, labels, "optimus", strict
                )
            return loss, grads, post, _sim_state(sim)

        batched_ab = (_optimus_arm(False), _optimus_arm(True))

    # --- diff everything ---------------------------------------------
    rtol, atol = TOLERANCES[spec.dtype]
    result = TrialResult(spec=spec, passed=True)
    for scheme, (loss, grads, post, _sim) in schemes.items():
        dl = abs(loss - ref_loss)
        result.max_loss_diff = max(result.max_loss_diff, dl)
        if not np.isclose(loss, ref_loss, rtol=rtol, atol=atol):
            result.failures.append(
                f"{scheme}: loss {loss!r} != serial {ref_loss!r} (diff {dl:.3e})"
            )
        if set(grads) != set(ref_grads):
            result.failures.append(
                f"{scheme}: parameter names {sorted(grads)} != serial "
                f"{sorted(ref_grads)}"
            )
            continue
        for name, g_ref in ref_grads.items():
            d = _diff(grads[name], g_ref)
            result.max_grad_diff = max(result.max_grad_diff, d)
            if not np.allclose(grads[name], g_ref, rtol=rtol, atol=atol):
                result.failures.append(
                    f"{scheme}: grad {name} max diff {d:.3e}"
                )
        for name, p_ref in params_ref.items():
            d = _diff(post[name], p_ref)
            result.max_param_diff = max(result.max_param_diff, d)
            if not np.allclose(post[name], p_ref, rtol=rtol, atol=atol):
                result.failures.append(
                    f"{scheme}: post-step param {name} max diff {d:.3e}"
                )

    if batched_ab is not None:
        (l0, g0, p0, s0), (l1, g1, p1, s1) = batched_ab
        if l0 != l1:
            result.failures.append(
                f"batched: loss {l1!r} != per-rank {l0!r} (must be bit-exact)"
            )
        for label, ref_d, got_d in (("grad", g0, g1), ("post-step param", p0, p1)):
            for name in ref_d:
                if not np.array_equal(ref_d[name], got_d[name]):
                    d = _diff(got_d[name], ref_d[name])
                    result.failures.append(
                        f"batched: {label} {name} not bit-exact "
                        f"(max diff {d:.3e})"
                    )
        if s0 != s1:
            bad = [r for r in s0 if s0[r] != s1[r]]
            result.failures.append(
                f"batched: per-rank accounting diverges on ranks {bad}: "
                f"{s0[bad[0]]} != {s1[bad[0]]}"
            )
    result.passed = not result.failures
    return result


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def run_check(
    seed: int = 0,
    trials: int = 5,
    strict: bool = True,
    contracts: bool = True,
    batched: bool = True,
    printer: Callable[[str], None] = print,
) -> bool:
    """Run ``trials`` fuzzed equivalence trials; True when all pass."""
    rng = np.random.default_rng(seed)
    all_ok = True
    for t in range(trials):
        spec = draw_spec(rng, trial=seed * 10_000 + t)
        try:
            result = run_trial(
                spec, strict=strict, contracts=contracts, batched=batched
            )
        except Exception as exc:  # contract/invariant violations included
            all_ok = False
            printer(f"trial {t}: {spec.describe()}")
            printer(f"  ERROR {type(exc).__name__}: {exc}")
            continue
        status = "ok" if result.passed else "FAIL"
        printer(
            f"trial {t}: {spec.describe()}  [{status}]  "
            f"max diffs: loss {result.max_loss_diff:.2e} "
            f"grad {result.max_grad_diff:.2e} "
            f"param {result.max_param_diff:.2e}"
        )
        for f in result.failures:
            printer(f"  {f}")
        all_ok = all_ok and result.passed
    printer(
        "repro check: all trials passed (Optimus ≡ Megatron ≡ serial"
        + (" ≡ batched" if batched else "")
        + ")"
        if all_ok
        else "repro check: EQUIVALENCE FAILURES (see above)"
    )
    return all_ok


def main(
    seed: int = 0,
    trials: int = 5,
    strict: bool = True,
    contracts: bool = True,
    batched: bool = True,
) -> int:
    """CLI entry point for ``python -m repro check``."""
    return 0 if run_check(seed=seed, trials=trials, strict=strict,
                          contracts=contracts, batched=batched) else 1
