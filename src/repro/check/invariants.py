"""DTensor/layout invariant validation.

The paper's bit-for-bit equivalence argument (§2.4) rests on layout
contracts the distributed modules maintain implicitly: shard shapes tile
the global shape exactly, each scalar is owned by exactly one device for
the partitioned layouts, and replicated layouts hold bit-identical copies.
This module makes those contracts executable.

:func:`validate_dtensor` dispatches on the layout kind and raises
:class:`InvariantViolation` with a precise message on the first breach.
It is the engine behind the simulator's *strict mode*
(``Simulator(strict_invariants=True)`` or ``REPRO_STRICT_INVARIANTS=1``),
which validates every DTensor at construction time — and it can be called
directly on any DTensor in tests.

Contracts, by layout kind (``q`` = mesh dimension, ``g`` = group size,
``G`` = global shape):

* ``blocked_2d`` — 2-D; every shard in mesh row *i* shares one shape with
  exactly ``G[1]/q`` columns; the per-row row-counts partition ``G[0]`` in
  row order.  (Row blocks may be *ragged* — the MoE layer routes unequal
  token counts per expert — but must still tile exactly.)
* ``row_blocked`` — axis 0 split into q equal row blocks; the q devices of
  a mesh row hold bit-identical copies of their block.
* ``col_blocked`` — symmetric: split by mesh column, replicated within
  each column.
* ``replicated`` / ``replicated_1d`` — every rank holds the full array;
  all copies bit-identical.
* ``sharded_1d`` — split along ``layout.axis`` into g equal shards, one
  per group rank, in rank order.
* ``row0_cols`` — 1-D vector split into q equal blocks hosted by the q
  devices of mesh row 0 only (paper Fig. 5).
* ``row0_blockrows`` — 2-D matrix split along axis 0 into q blocks hosted
  by mesh row 0 only.
* ``rank0`` — a single shard holding the full array.

Replica bit-identity is only checkable on the numpy backend; dryrun
ShapeArrays carry no values, so strict mode degrades to pure shape/
ownership checking there.
"""

from __future__ import annotations

import numpy as np

from repro.backend.shape_array import is_shape_array


class InvariantViolation(AssertionError):
    """A DTensor does not satisfy its layout's contract."""


def _fail(dt, name, msg) -> None:
    label = f" ({name})" if name else ""
    raise InvariantViolation(
        f"DTensor{label} layout={dt.layout} global_shape={dt.global_shape}: {msg}"
    )


def _bit_identical(a, b) -> bool:
    if is_shape_array(a) or is_shape_array(b):
        return tuple(a.shape) == tuple(b.shape)  # dryrun: values don't exist
    return np.array_equal(np.asarray(a), np.asarray(b))


def _check_dtypes(dt, name) -> None:
    dtypes = {str(getattr(s, "dtype", None)) for s in dt.shards.values()}
    if len(dtypes) > 1:
        _fail(dt, name, f"shards disagree on dtype: {sorted(dtypes)}")


def _mesh_of(dt):
    """The owning Mesh, duck-typed by its ``q`` attribute (avoids imports)."""
    owner = dt.owner
    if getattr(owner, "q", None) is None:
        return None
    return owner


def _require_ranks(dt, name, expected) -> None:
    got = set(dt.shards)
    if got != set(expected):
        _fail(
            dt, name,
            f"rank set {sorted(got)} does not match layout owners {sorted(expected)}",
        )


# ----------------------------------------------------------------------
# per-layout validators
# ----------------------------------------------------------------------
def _validate_blocked_2d(dt, name) -> None:
    mesh = _mesh_of(dt)
    if mesh is None:
        _fail(dt, name, "blocked_2d requires a Mesh owner")
    if len(dt.global_shape) != 2:
        _fail(dt, name, "blocked_2d requires a 2-D global shape")
    R, C = dt.global_shape
    q = mesh.q
    if C % q != 0:
        _fail(dt, name, f"{C} columns not divisible by q={q}")
    _require_ranks(dt, name, mesh.ranks)
    rows_seen = 0
    for i in range(q):
        row_shapes = {tuple(dt.shards[mesh.rank(i, j)].shape) for j in range(q)}
        if len(row_shapes) != 1:
            _fail(dt, name, f"mesh row {i} shards disagree on shape: {sorted(row_shapes)}")
        shape = row_shapes.pop()
        if len(shape) != 2 or shape[1] != C // q:
            _fail(
                dt, name,
                f"mesh row {i} shard shape {shape} != (·, {C // q}) column block",
            )
        rows_seen += shape[0]
    if rows_seen != R:
        _fail(dt, name, f"row blocks sum to {rows_seen} rows, global has {R}")


def _validate_row_blocked(dt, name) -> None:
    mesh = _mesh_of(dt)
    if mesh is None:
        _fail(dt, name, "row_blocked requires a Mesh owner")
    q = mesh.q
    R = dt.global_shape[0]
    if R % q != 0:
        _fail(dt, name, f"axis 0 of {R} not divisible by q={q}")
    block = (R // q,) + dt.global_shape[1:]
    _require_ranks(dt, name, mesh.ranks)
    for i in range(q):
        ref = dt.shards[mesh.rank(i, 0)]
        if tuple(ref.shape) != block:
            _fail(dt, name, f"row {i} shard shape {tuple(ref.shape)} != {block}")
        for j in range(1, q):
            if not _bit_identical(ref, dt.shards[mesh.rank(i, j)]):
                _fail(dt, name, f"replicas in mesh row {i} are not bit-identical")


def _validate_col_blocked(dt, name) -> None:
    mesh = _mesh_of(dt)
    if mesh is None:
        _fail(dt, name, "col_blocked requires a Mesh owner")
    q = mesh.q
    R = dt.global_shape[0]
    if R % q != 0:
        _fail(dt, name, f"axis 0 of {R} not divisible by q={q}")
    block = (R // q,) + dt.global_shape[1:]
    _require_ranks(dt, name, mesh.ranks)
    for j in range(q):
        ref = dt.shards[mesh.rank(0, j)]
        if tuple(ref.shape) != block:
            _fail(dt, name, f"column {j} shard shape {tuple(ref.shape)} != {block}")
        for i in range(1, q):
            if not _bit_identical(ref, dt.shards[mesh.rank(i, j)]):
                _fail(dt, name, f"replicas in mesh column {j} are not bit-identical")


def _validate_replicated(dt, name) -> None:
    ranks = sorted(dt.shards)
    if not ranks:
        _fail(dt, name, "no shards")
    ref = dt.shards[ranks[0]]
    if tuple(ref.shape) != dt.global_shape:
        _fail(
            dt, name,
            f"replica shape {tuple(ref.shape)} != global {dt.global_shape}",
        )
    for r in ranks[1:]:
        s = dt.shards[r]
        if tuple(s.shape) != dt.global_shape:
            _fail(dt, name, f"rank {r} replica shape {tuple(s.shape)} != global")
        if not _bit_identical(ref, s):
            _fail(dt, name, f"replicas on ranks {ranks[0]} and {r} differ bitwise")


def _validate_sharded_1d(dt, name) -> None:
    group = dt.owner
    axis = dt.layout.axis
    if axis is None:
        _fail(dt, name, "sharded_1d layout carries no axis")
    ndim = len(dt.global_shape)
    axis = axis % ndim
    g = group.size
    if dt.global_shape[axis] % g != 0:
        _fail(
            dt, name,
            f"axis {axis} of {dt.global_shape[axis]} not divisible by group size {g}",
        )
    expected = list(dt.global_shape)
    expected[axis] = dt.global_shape[axis] // g
    expected = tuple(expected)
    _require_ranks(dt, name, group.ranks)
    for r in group.ranks:
        got = tuple(dt.shards[r].shape)
        if got != expected:
            _fail(dt, name, f"rank {r} shard shape {got} != {expected}")


def _validate_row0_cols(dt, name) -> None:
    mesh = _mesh_of(dt)
    if mesh is None:
        _fail(dt, name, "row0_cols requires a Mesh owner")
    if len(dt.global_shape) != 1:
        _fail(dt, name, "row0_cols requires a 1-D global shape")
    q = mesh.q
    n = dt.global_shape[0]
    if n % q != 0:
        _fail(dt, name, f"vector of {n} not divisible by q={q}")
    _require_ranks(dt, name, [mesh.rank(0, j) for j in range(q)])
    for j in range(q):
        got = tuple(dt.shards[mesh.rank(0, j)].shape)
        if got != (n // q,):
            _fail(dt, name, f"row-0 column {j} shard shape {got} != ({n // q},)")


def _validate_row0_blockrows(dt, name) -> None:
    mesh = _mesh_of(dt)
    if mesh is None:
        _fail(dt, name, "row0_blockrows requires a Mesh owner")
    if len(dt.global_shape) != 2:
        _fail(dt, name, "row0_blockrows requires a 2-D global shape")
    q = mesh.q
    R, C = dt.global_shape
    if R % q != 0:
        _fail(dt, name, f"{R} rows not divisible by q={q}")
    _require_ranks(dt, name, [mesh.rank(0, j) for j in range(q)])
    for j in range(q):
        got = tuple(dt.shards[mesh.rank(0, j)].shape)
        if got != (R // q, C):
            _fail(dt, name, f"row-0 column {j} shard shape {got} != ({R // q}, {C})")


def _validate_rank0(dt, name) -> None:
    if len(dt.shards) != 1:
        _fail(dt, name, f"rank0 layout must have exactly one shard, got {len(dt.shards)}")
    shard = next(iter(dt.shards.values()))
    if tuple(shard.shape) != dt.global_shape:
        _fail(dt, name, f"shard shape {tuple(shard.shape)} != global {dt.global_shape}")


_VALIDATORS = {
    "blocked_2d": _validate_blocked_2d,
    "row_blocked": _validate_row_blocked,
    "col_blocked": _validate_col_blocked,
    "replicated": _validate_replicated,
    "replicated_1d": _validate_replicated,
    "sharded_1d": _validate_sharded_1d,
    "row0_cols": _validate_row0_cols,
    "row0_blockrows": _validate_row0_blockrows,
    "rank0": _validate_rank0,
}


def validate_dtensor(dt, name: str = "") -> None:
    """Validate one DTensor against its layout contract.

    ``name`` only decorates the error message (parameter name, call site).
    Raises :class:`InvariantViolation` on the first breach; returns None
    when every invariant holds.
    """
    validator = _VALIDATORS.get(dt.layout.kind)
    if validator is None:
        _fail(dt, name, f"unknown layout kind {dt.layout.kind!r}")
    _check_dtypes(dt, name)
    validator(dt, name)
