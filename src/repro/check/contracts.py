"""Collective contract checking against a serial oracle.

:class:`CollectiveContractChecker` wraps every grouped collective in
:mod:`repro.comm.collectives` and, after each call, asserts

1. **MPI data semantics** against a pure-numpy serial oracle computed from
   a pre-call snapshot of the inputs: broadcast copies the root's buffer to
   every rank, reduce folds in *rank order* (so the check is bit-exact, not
   approximate), all_gather/gather concatenate in rank order,
   reduce_scatter/scatter split into equal rank-order slices;
2. **conservation laws**: every rank of the group is charged the same byte
   count, a single-rank group is charged nothing and advances no clock,
   the group's clocks are equal after the call (bulk-synchronous), and —
   when tracing is on — the observability comm-matrix row sums reconcile
   with the per-device byte counters after *every* call, not just at the
   end of a run;
3. **isolation**: no two ranks' output buffers alias each other (a shared
   buffer would let one simulated device silently corrupt another).

On the dryrun (ShapeArray) backend the oracle degrades to shape checking;
conservation and synchronization are still enforced.

The checker monkey-patches the module-level functions of
``repro.comm.collectives`` (and the re-exports in ``repro.comm``), which
covers every call site in the repo — all distributed modules call
``coll.<op>(...)`` through the module namespace.  Install it as a context
manager::

    with CollectiveContractChecker():
        model.forward(ids, labels)
        model.backward()

Any breach raises :class:`ContractViolation` at the offending call, with
the op name and group in the message.  The checker is reentrant-safe in
the "only one instance installed at a time" sense: installing a second
one raises rather than silently stacking wrappers.
"""

from __future__ import annotations

import inspect
import math
from collections import Counter
from typing import Dict, Optional

import numpy as np

from repro.backend.shape_array import is_shape_array

_WRAPPED_OPS = (
    "broadcast",
    "reduce",
    "all_reduce",
    "all_gather",
    "reduce_scatter",
    "scatter",
    "gather",
)

_installed: Optional["CollectiveContractChecker"] = None


class ContractViolation(AssertionError):
    """A collective broke its MPI semantics or a conservation law."""


def _snapshot(x):
    return x if is_shape_array(x) else np.array(x, copy=True)


def _snapshot_shards(shards: Dict[int, object]) -> Dict[int, object]:
    return {r: _snapshot(v) for r, v in shards.items()}


def _has_placeholder(*values) -> bool:
    for v in values:
        if is_shape_array(v):
            return True
        if isinstance(v, dict) and any(is_shape_array(s) for s in v.values()):
            return True
    return False


def _combine_oracle(group, shards, op):
    """Rank-order fold, mirroring collectives._combine bit-for-bit."""
    acc = np.array(shards[group.ranks[0]], copy=True)
    for r in group.ranks[1:]:
        if op == "sum":
            acc = acc + shards[r]
        elif op == "max":
            acc = np.maximum(acc, shards[r])
        else:  # unknown op: the collective itself raises before charging
            return None
    return acc


# ----------------------------------------------------------------------
# per-op oracles: (group, bound arguments) -> {rank: expected array}
# ----------------------------------------------------------------------
def _oracle_broadcast(group, a):
    return {r: a["src"] for r in group.ranks}


def _oracle_reduce(group, a):
    acc = _combine_oracle(group, a["shards"], a.get("op", "sum"))
    return None if acc is None else {a["root"]: acc}


def _oracle_all_reduce(group, a):
    acc = _combine_oracle(group, a["shards"], a.get("op", "sum"))
    return None if acc is None else {r: acc for r in group.ranks}


def _oracle_all_gather(group, a):
    full = np.concatenate(
        [a["shards"][r] for r in group.ranks], axis=a.get("axis", 0)
    )
    return {r: full for r in group.ranks}


def _oracle_reduce_scatter(group, a):
    acc = _combine_oracle(group, a["shards"], "sum")
    pieces = np.split(acc, group.size, axis=a.get("axis", 0))
    return {r: pieces[i] for i, r in enumerate(group.ranks)}


def _oracle_scatter(group, a):
    pieces = np.split(a["full"], group.size, axis=a.get("axis", 0))
    return {r: pieces[i] for i, r in enumerate(group.ranks)}


def _oracle_gather(group, a):
    full = np.concatenate(
        [a["shards"][r] for r in group.ranks], axis=a.get("axis", 0)
    )
    return {a["root"]: full}


_ORACLES = {
    "broadcast": _oracle_broadcast,
    "reduce": _oracle_reduce,
    "all_reduce": _oracle_all_reduce,
    "all_gather": _oracle_all_gather,
    "reduce_scatter": _oracle_reduce_scatter,
    "scatter": _oracle_scatter,
    "gather": _oracle_gather,
}


class CollectiveContractChecker:
    """Wrap the collectives module and validate every call (see module doc).

    ``reconcile_matrix`` — when True (default) and the simulator's tracer
    is enabled, recompute the rank→rank comm matrix after every collective
    and assert its row sums equal the per-device byte counters.  This is
    O(trace events) per call; turn it off for long traced runs where only
    the data semantics matter.
    """

    def __init__(self, reconcile_matrix: bool = True):
        self.reconcile_matrix = reconcile_matrix
        self.calls: Counter = Counter()
        self._originals: Optional[dict] = None

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> "CollectiveContractChecker":
        global _installed
        if self._originals is not None:
            raise RuntimeError("contract checker already installed")
        if _installed is not None:
            raise RuntimeError("another contract checker is already installed")
        from repro import comm as comm_pkg
        from repro.comm import collectives as coll_mod

        self._originals = {}
        for name in _WRAPPED_OPS:
            original = getattr(coll_mod, name)
            wrapper = self._wrap(name, original)
            self._originals[name] = original
            setattr(coll_mod, name, wrapper)
            if getattr(comm_pkg, name, None) is original:
                setattr(comm_pkg, name, wrapper)
        _installed = self
        return self

    def uninstall(self) -> None:
        global _installed
        if self._originals is None:
            return
        from repro import comm as comm_pkg
        from repro.comm import collectives as coll_mod

        for name, original in self._originals.items():
            setattr(coll_mod, name, original)
            if hasattr(comm_pkg, name):
                setattr(comm_pkg, name, original)
        self._originals = None
        if _installed is self:
            _installed = None

    def __enter__(self) -> "CollectiveContractChecker":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # the wrapper
    # ------------------------------------------------------------------
    def _wrap(self, name, fn):
        sig = inspect.signature(fn)

        def wrapper(group, *args, **kwargs):
            bound = sig.bind(group, *args, **kwargs)
            bound.apply_defaults()
            arguments = dict(bound.arguments)
            arguments.pop("group", None)
            dryrun = _has_placeholder(*arguments.values())
            snap = None
            if not dryrun:
                snap = {
                    k: (_snapshot_shards(v) if isinstance(v, dict) else
                        _snapshot(v) if hasattr(v, "shape") else v)
                    for k, v in arguments.items()
                }
            pre = self._pre_state(group)
            out = fn(group, *args, **kwargs)
            self.calls[name] += 1
            self._check_conservation(name, group, pre)
            if not dryrun:
                self._check_semantics(name, group, snap, out)
                self._check_isolation(name, group, out)
            return out

        wrapper.__name__ = f"checked_{name}"
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    @staticmethod
    def _pre_state(group):
        devs = [group.sim.device(r) for r in group.ranks]
        return {
            "bytes": [d.bytes_comm for d in devs],
            "weighted": [d.weighted_comm_volume for d in devs],
            "clocks": [d.clock for d in devs],
            "ncoll": [d.num_collectives for d in devs],
        }

    def _violation(self, name, group, msg):
        raise ContractViolation(
            f"collective contract broken: {name} on group "
            f"{group.kind!r} ranks={group.ranks}: {msg}"
        )

    def _check_conservation(self, name, group, pre) -> None:
        devs = [group.sim.device(r) for r in group.ranks]
        byte_deltas = [d.bytes_comm - b0 for d, b0 in zip(devs, pre["bytes"])]
        weighted_deltas = [
            d.weighted_comm_volume - w0 for d, w0 in zip(devs, pre["weighted"])
        ]
        clock_deltas = [d.clock - c0 for d, c0 in zip(devs, pre["clocks"])]
        ncoll_deltas = [d.num_collectives - n0 for d, n0 in zip(devs, pre["ncoll"])]

        if group.size == 1:
            if any(byte_deltas) or any(weighted_deltas):
                self._violation(
                    name, group, "single-rank group was charged communication"
                )
            if any(clock_deltas):
                self._violation(
                    name, group, "single-rank group's clock advanced"
                )
            return

        if len(set(byte_deltas)) != 1:
            self._violation(
                name, group, f"ranks charged unequal bytes: {byte_deltas}"
            )
        if byte_deltas[0] < 0 or weighted_deltas[0] < 0:
            self._violation(name, group, "negative communication charge")
        if any(n != 1 for n in ncoll_deltas):
            self._violation(
                name, group,
                f"num_collectives advanced by {ncoll_deltas}, expected 1 each",
            )
        if any(dt < 0 for dt in clock_deltas):
            self._violation(name, group, "a clock moved backwards")
        clocks = {group.sim.device(r).clock for r in group.ranks}
        if len(clocks) != 1:
            self._violation(
                name, group,
                f"clocks not synchronized after collective: {sorted(clocks)}",
            )
        if self.reconcile_matrix and group.sim.tracer.enabled:
            self._check_matrix(name, group)

    def _check_matrix(self, name, group) -> None:
        from repro.obs.comm_matrix import comm_matrix, row_sums

        sim = group.sim
        sums = row_sums(comm_matrix(sim))
        for r in range(sim.num_ranks):
            counter = sim.device(r).bytes_comm
            if not math.isclose(sums[r], counter, rel_tol=1e-9, abs_tol=1e-6):
                self._violation(
                    name, group,
                    f"comm-matrix row sum {sums[r]} != device {r} byte "
                    f"counter {counter} (bytes are not conserved)",
                )

    def _check_semantics(self, name, group, snap, out) -> None:
        oracle = _ORACLES[name]
        expected = oracle(group, snap)
        if expected is None:
            return
        if set(out) != set(expected):
            self._violation(
                name, group,
                f"output ranks {sorted(out)} != expected {sorted(expected)}",
            )
        for r, want in expected.items():
            got = out[r]
            if is_shape_array(got):
                if tuple(got.shape) != tuple(want.shape):
                    self._violation(
                        name, group,
                        f"rank {r} output shape {tuple(got.shape)} != "
                        f"{tuple(want.shape)}",
                    )
                continue
            if not np.array_equal(np.asarray(got), np.asarray(want)):
                self._violation(
                    name, group,
                    f"rank {r} output differs from the serial oracle",
                )

    def _check_isolation(self, name, group, out) -> None:
        items = [
            (r, v) for r, v in out.items() if not is_shape_array(v)
        ]
        for i, (r1, a) in enumerate(items):
            for r2, b in items[i + 1:]:
                if np.shares_memory(np.asarray(a), np.asarray(b)):
                    self._violation(
                        name, group,
                        f"ranks {r1} and {r2} received aliasing buffers",
                    )


def contract_checks(reconcile_matrix: bool = True) -> CollectiveContractChecker:
    """Context-manager sugar: ``with contract_checks(): ...``."""
    return CollectiveContractChecker(reconcile_matrix=reconcile_matrix)
