"""Correctness tooling: collective contracts, layout invariants, fuzzing.

Three layers, each usable on its own:

* :mod:`repro.check.contracts` — wrap every collective in
  :mod:`repro.comm.collectives` and assert MPI semantics against a serial
  oracle plus byte/clock conservation laws after every call;
* :mod:`repro.check.invariants` — validate any DTensor against its layout
  contract (tiling, ownership partition, replica bit-identity); installed
  as the simulator's *strict mode*;
* :mod:`repro.check.fuzz` — the ``python -m repro check`` seeded
  shape-fuzzing equivalence runner (Optimus vs Megatron vs serial).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.check.contracts import (
    CollectiveContractChecker,
    ContractViolation,
    contract_checks,
)
from repro.check.fuzz import TrialSpec, draw_spec, run_check, run_trial
from repro.check.invariants import InvariantViolation, validate_dtensor

__all__ = [
    "CollectiveContractChecker",
    "ContractViolation",
    "contract_checks",
    "InvariantViolation",
    "validate_dtensor",
    "strict_mode",
    "TrialSpec",
    "draw_spec",
    "run_check",
    "run_trial",
]


@contextmanager
def strict_mode(sim):
    """Temporarily enable strict DTensor invariant checking on ``sim``."""
    prev = sim.strict_invariants
    sim.strict_invariants = True
    try:
        yield sim
    finally:
        sim.strict_invariants = prev
