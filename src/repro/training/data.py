"""Synthetic and character-level data for the examples and tests.

The paper's experiments time randomly-initialized models on synthetic
batches (throughput, not accuracy, is the subject), so :func:`random_batch`
is the workhorse.  For the end-to-end training example we also provide a
byte-level character corpus (next-character language modelling on a fixed
text) and a copy task — both small enough to learn on a laptop yet real
enough to show the distributed training loop driving the loss down.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.config import ModelConfig

LOREM_TEXT = (
    "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod "
    "tempor incididunt ut labore et dolore magna aliqua ut enim ad minim "
    "veniam quis nostrud exercitation ullamco laboris nisi ut aliquip ex ea "
    "commodo consequat duis aute irure dolor in reprehenderit in voluptate "
    "velit esse cillum dolore eu fugiat nulla pariatur excepteur sint "
    "occaecat cupidatat non proident sunt in culpa qui officia deserunt "
    "mollit anim id est laborum "
) * 8


def random_batch(
    cfg: ModelConfig, batch_size: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniformly random (ids, labels) of shape [b, s] — the timing workload."""
    rng = np.random.default_rng(seed)
    shape = (batch_size, cfg.seq_len)
    return (
        rng.integers(0, cfg.vocab_size, size=shape),
        rng.integers(0, cfg.vocab_size, size=shape),
    )


def copy_task_batch(
    cfg: ModelConfig, batch_size: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Predict the input token itself — the simplest learnable LM task."""
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, cfg.vocab_size, size=(batch_size, cfg.seq_len))
    return ids, ids.copy()


class BatchStream:
    """A resumable batch iterator: ``fn(seed, cursor)`` indexed by a cursor.

    Plain generators cannot be checkpointed; a :class:`BatchStream` makes
    the data position part of the training state — :meth:`state` captures
    the (seed, cursor) pair and :meth:`load_state` rewinds to it, so a
    restarted run replays exactly the batches the uninterrupted run saw.
    """

    def __init__(self, fn, seed: int = 0, cursor: int = 0):
        self.fn = fn
        self.seed = seed
        self.cursor = cursor

    def __iter__(self) -> "BatchStream":
        return self

    def __next__(self) -> Tuple[np.ndarray, np.ndarray]:
        batch = self.fn(self.seed, self.cursor)
        self.cursor += 1
        return batch

    def state(self) -> dict:
        return {"seed": self.seed, "cursor": self.cursor}

    def load_state(self, d: dict) -> None:
        self.seed = int(d["seed"])
        self.cursor = int(d["cursor"])

    # common constructions -------------------------------------------------
    @classmethod
    def random(cls, cfg: ModelConfig, batch_size: int, seed: int = 0) -> "BatchStream":
        return cls(lambda s, k: random_batch(cfg, batch_size, seed=s + k), seed=seed)

    @classmethod
    def copy_task(cls, cfg: ModelConfig, batch_size: int, seed: int = 0) -> "BatchStream":
        return cls(lambda s, k: copy_task_batch(cfg, batch_size, seed=s + k), seed=seed)

    @classmethod
    def from_corpus(
        cls, corpus: "CharCorpus", batch_size: int, seq_len: int, seed: int = 0
    ) -> "BatchStream":
        return cls(
            lambda s, k: corpus.batch(batch_size, seq_len, seed=s + k), seed=seed
        )


class CharCorpus:
    """Byte-level next-character language modelling on a fixed text.

    The character vocabulary is padded up to ``vocab_size`` so divisibility
    constraints of the parallel schemes (v % q == 0) are satisfied without
    changing the text.
    """

    def __init__(self, text: str = LOREM_TEXT, vocab_size: int = 48):
        chars = sorted(set(text))
        if len(chars) > vocab_size:
            raise ValueError(
                f"text uses {len(chars)} characters but vocab_size={vocab_size}"
            )
        self.vocab_size = vocab_size
        self.stoi = {c: i for i, c in enumerate(chars)}
        self.itos = {i: c for c, i in self.stoi.items()}
        self.data = np.array([self.stoi[c] for c in text], dtype=np.int64)

    def encode(self, s: str) -> np.ndarray:
        return np.array([self.stoi[c] for c in s], dtype=np.int64)

    def decode(self, ids) -> str:
        return "".join(self.itos.get(int(i), "?") for i in np.asarray(ids).ravel())

    def batch(
        self, batch_size: int, seq_len: int, seed: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample windows; labels are the next character at every position."""
        rng = np.random.default_rng(seed)
        max_start = len(self.data) - seq_len - 1
        starts = rng.integers(0, max_start, size=batch_size)
        ids = np.stack([self.data[s : s + seq_len] for s in starts])
        labels = np.stack([self.data[s + 1 : s + seq_len + 1] for s in starts])
        return ids, labels

    def batches(
        self, batch_size: int, seq_len: int, seed: int = 0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        step = 0
        while True:
            yield self.batch(batch_size, seq_len, seed=seed + step)
            step += 1
