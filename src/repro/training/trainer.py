"""A scheme-agnostic training loop.

Works with :class:`~repro.core.model.OptimusModel`,
:class:`~repro.megatron.model.MegatronModel` or the serial reference (via a
thin adapter), since all three expose ``forward(ids, labels)`` and
``backward()``.

When the model runs on a simulator, each step is wrapped in a ``step`` span
(so traces show ``step > layer > op > collective`` nesting) and per-step
metrics — loss, simulated step time, the step's compute/comm split — are
published into a :class:`~repro.obs.metrics.MetricsRegistry` (the
simulator's own registry by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.runtime.events import NULL_SPAN
from repro.training.optim import clip_grads


def _find_sim(model):
    """The simulator behind a model, if any (serial reference has none)."""
    sim = getattr(model, "sim", None)
    if sim is not None:
        return sim
    mesh = getattr(model, "mesh", None)
    return getattr(mesh, "sim", None)


@dataclass
class TrainLog:
    losses: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)
    lrs: List[float] = field(default_factory=list)
    step_times: List[float] = field(default_factory=list)  # simulated seconds
    comm_fractions: List[float] = field(default_factory=list)

    @property
    def last_loss(self) -> float:
        return self.losses[-1]


class Trainer:
    """Forward / backward / clip / step loop over a batch iterator."""

    def __init__(
        self,
        model,
        optimizer,
        batches: Iterator[Tuple[object, object]],
        lr_schedule: Optional[Callable[[int], float]] = None,
        max_grad_norm: Optional[float] = None,
        log_every: int = 0,
        printer: Callable[[str], None] = print,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.batches = batches
        self.lr_schedule = lr_schedule
        self.max_grad_norm = max_grad_norm
        self.log_every = log_every
        self.printer = printer
        self.step = 0
        self.log = TrainLog()
        self.sim = _find_sim(model)
        if metrics is not None:
            self.metrics = metrics
        elif self.sim is not None:
            self.metrics = self.sim.metrics
        else:
            self.metrics = MetricsRegistry()

    def _one_step(self) -> float:
        ids, labels = next(self.batches)
        self.optimizer.zero_grad()
        loss = self.model.forward(ids, labels)
        self.model.backward()
        norm = float("nan")
        if self.max_grad_norm is not None:
            norm = clip_grads(self.optimizer.params, self.max_grad_norm)
        if self.lr_schedule is not None:
            self.optimizer.lr = self.lr_schedule(self.step)
        self.optimizer.step()
        self.log.grad_norms.append(norm)
        return float(loss)

    def train_steps(self, num_steps: int) -> TrainLog:
        sim = self.sim
        for _ in range(num_steps):
            if sim is not None:
                tr = sim.tracer
                t0 = sim.elapsed()
                compute0 = max(d.compute_time for d in sim.devices)
                comm0 = max(d.comm_time for d in sim.devices)
                with tr.span("step", sim.ranks, "step",
                             step=self.step) if tr.enabled else NULL_SPAN:
                    loss = self._one_step()
                step_time = sim.elapsed() - t0
                compute_dt = max(d.compute_time for d in sim.devices) - compute0
                comm_dt = max(d.comm_time for d in sim.devices) - comm0
                busy = compute_dt + comm_dt
                comm_frac = comm_dt / busy if busy else 0.0
            else:
                loss = self._one_step()
                step_time = float("nan")
                comm_frac = float("nan")
            self.step += 1
            self.log.losses.append(loss)
            self.log.lrs.append(self.optimizer.lr)
            self.log.step_times.append(step_time)
            self.log.comm_fractions.append(comm_frac)
            self.metrics.counter("train/steps").inc()
            self.metrics.histogram("train/loss").observe(loss)
            if sim is not None:
                self.metrics.histogram("train/step_time").observe(step_time)
                self.metrics.gauge("train/comm_fraction").set(comm_frac)
            if self.log_every and self.step % self.log_every == 0:
                self.printer(
                    f"step {self.step:5d}  loss {loss:.4f}  "
                    f"lr {self.optimizer.lr:.2e}"
                )
        return self.log
