"""A scheme-agnostic training loop.

Works with :class:`~repro.core.model.OptimusModel`,
:class:`~repro.megatron.model.MegatronModel` or the serial reference (via a
thin adapter), since all three expose ``forward(ids, labels)`` and
``backward()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.training.optim import clip_grads


@dataclass
class TrainLog:
    losses: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)
    lrs: List[float] = field(default_factory=list)

    @property
    def last_loss(self) -> float:
        return self.losses[-1]


class Trainer:
    """Forward / backward / clip / step loop over a batch iterator."""

    def __init__(
        self,
        model,
        optimizer,
        batches: Iterator[Tuple[object, object]],
        lr_schedule: Optional[Callable[[int], float]] = None,
        max_grad_norm: Optional[float] = None,
        log_every: int = 0,
        printer: Callable[[str], None] = print,
    ):
        self.model = model
        self.optimizer = optimizer
        self.batches = batches
        self.lr_schedule = lr_schedule
        self.max_grad_norm = max_grad_norm
        self.log_every = log_every
        self.printer = printer
        self.step = 0
        self.log = TrainLog()

    def train_steps(self, num_steps: int) -> TrainLog:
        for _ in range(num_steps):
            ids, labels = next(self.batches)
            self.optimizer.zero_grad()
            loss = self.model.forward(ids, labels)
            self.model.backward()
            norm = float("nan")
            if self.max_grad_norm is not None:
                norm = clip_grads(self.optimizer.params, self.max_grad_norm)
            if self.lr_schedule is not None:
                self.optimizer.lr = self.lr_schedule(self.step)
            self.optimizer.step()
            self.step += 1
            self.log.losses.append(float(loss))
            self.log.grad_norms.append(norm)
            self.log.lrs.append(self.optimizer.lr)
            if self.log_every and self.step % self.log_every == 0:
                self.printer(
                    f"step {self.step:5d}  loss {float(loss):.4f}  "
                    f"lr {self.optimizer.lr:.2e}"
                )
        return self.log
