"""A scheme-agnostic training loop.

Works with :class:`~repro.core.model.OptimusModel`,
:class:`~repro.megatron.model.MegatronModel` or the serial reference (via
the :class:`SerialModelAdapter` / :func:`make_serial_trainer` helpers),
since all of them expose ``forward(ids, labels)`` and ``backward()``.

When the model runs on a simulator, each step is wrapped in a ``step`` span
(so traces show ``step > layer > op > collective`` nesting) and per-step
metrics — loss, simulated step time, the step's compute/comm split — are
published into a :class:`~repro.obs.metrics.MetricsRegistry` (the
simulator's own registry by default).

The loop is factored into small overridable pieces so the resilience layer
can interpose without duplicating it:

* :meth:`Trainer._run_step` — one forward/backward/clip/update given a
  batch (re-executable: the SDC guard re-runs it on detected corruption);
* :meth:`Trainer._check_gradients` — a hook between backward and update
  (no-op here; :class:`~repro.resilience.trainer.ResilientTrainer` injects
  and detects silent data corruption in it);
* :meth:`Trainer._logged_step` — one step plus span/metrics/log bookkeeping.

A trainer also knows how to checkpoint itself: :meth:`state_dict` captures
the scalar training state (step counter, optimizer hyper-state, AMP loss
scale, data cursor, RNG state), and :meth:`save` / :meth:`resume` delegate
to :mod:`repro.serialization` for the full parameters-and-moments state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.runtime.events import NULL_SPAN
from repro.training.amp import scale_grads
from repro.training.optim import clip_grads


class TrainingDivergedError(RuntimeError):
    """The loss became non-finite (nan/inf)."""

    def __init__(self, step: int, loss: float, last_finite_loss: Optional[float]):
        self.step = step
        self.loss = loss
        self.last_finite_loss = last_finite_loss
        tail = (
            f"last finite loss was {last_finite_loss:.6g}"
            if last_finite_loss is not None
            else "no finite loss was ever recorded"
        )
        super().__init__(
            f"training diverged at step {step}: loss is {loss!r} ({tail})"
        )


def _find_sim(model):
    """The simulator behind a model, if any (serial reference has none)."""
    sim = getattr(model, "sim", None)
    if sim is not None:
        return sim
    mesh = getattr(model, "mesh", None)
    return getattr(mesh, "sim", None)


@dataclass
class TrainLog:
    losses: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)
    lrs: List[float] = field(default_factory=list)
    step_times: List[float] = field(default_factory=list)  # simulated seconds
    comm_fractions: List[float] = field(default_factory=list)

    @property
    def last_loss(self) -> float:
        return self.losses[-1]

    def truncate(self, num_steps: int) -> None:
        """Drop log entries beyond ``num_steps`` (checkpoint rollback)."""
        for lst in (
            self.losses,
            self.grad_norms,
            self.lrs,
            self.step_times,
            self.comm_fractions,
        ):
            del lst[num_steps:]


class Trainer:
    """Forward / backward / clip / step loop over a batch iterator."""

    def __init__(
        self,
        model,
        optimizer,
        batches: Iterator[Tuple[object, object]],
        lr_schedule: Optional[Callable[[int], float]] = None,
        max_grad_norm: Optional[float] = None,
        log_every: int = 0,
        printer: Callable[[str], None] = print,
        metrics: Optional[MetricsRegistry] = None,
        scaler=None,
        rng: Optional[np.random.Generator] = None,
        ledger=None,
        run_label: str = "",
        seed: Optional[int] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.batches = batches
        self.lr_schedule = lr_schedule
        self.max_grad_norm = max_grad_norm
        self.log_every = log_every
        self.printer = printer
        self.scaler = scaler
        self.rng = rng
        #: optional :class:`~repro.obs.ledger.RunLedger`; when set,
        #: :meth:`train_steps` appends one ``train`` record per call.
        #: ``None`` falls back to ``RunLedger.from_env()`` so every scheme —
        #: including pipeline runs — honors ``REPRO_LEDGER`` without its
        #: entry point having to plumb a ledger argument.  Building a record
        #: only reads counters, so losses and simulated clocks are
        #: bit-identical with the ledger on or off.
        if ledger is None:
            from repro.obs.ledger import RunLedger

            ledger = RunLedger.from_env()
        self.ledger = ledger
        self.run_label = run_label
        self.seed = seed
        self.step = 0
        self.log = TrainLog()
        self.sim = _find_sim(model)
        self._last_finite_loss: Optional[float] = None
        if metrics is not None:
            self.metrics = metrics
        elif self.sim is not None:
            self.metrics = self.sim.metrics
        else:
            self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # one step, in re-executable pieces
    # ------------------------------------------------------------------
    def _one_step(self) -> float:
        ids, labels = next(self.batches)
        return self._run_step(ids, labels)

    def _run_step(self, ids, labels) -> float:
        """One forward/backward/clip/update on a given batch.

        Pure in the batch: re-running it on the same (ids, labels) after
        zeroing gradients reproduces the same update, which is what lets
        the SDC guard retry a corrupted step.
        """
        self.optimizer.zero_grad()
        loss = float(self.model.forward(ids, labels))
        if not math.isfinite(loss):
            raise TrainingDivergedError(self.step, loss, self._last_finite_loss)
        self.model.backward()
        self._check_gradients(loss)
        norm = float("nan")
        if self.max_grad_norm is not None:
            norm = clip_grads(self.optimizer.params, self.max_grad_norm)
        if self.lr_schedule is not None:
            self.optimizer.lr = self.lr_schedule(self.step)
        if self.scaler is not None:
            # the scale is a power of two, so scale→unscale is bit-exact and
            # the trajectory matches unscaled training when nothing overflows
            scale_grads(self.optimizer.params, self.scaler.scale)
            self.scaler.step()
        else:
            self.optimizer.step()
        self.log.grad_norms.append(norm)
        self._last_finite_loss = loss
        return loss

    def _check_gradients(self, loss: float) -> None:
        """Hook between backward and update; the resilience layer overrides
        it to inject and detect silent data corruption."""

    def _logged_step(self) -> float:
        """One step plus span, timing, metrics and log bookkeeping."""
        sim = self.sim
        if sim is not None:
            tr = sim.tracer
            t0 = sim.elapsed()
            compute0 = max(d.compute_time for d in sim.devices)
            comm0 = max(d.comm_time for d in sim.devices)
            with tr.span("step", sim.ranks, "step",
                         step=self.step) if tr.enabled else NULL_SPAN:
                loss = self._one_step()
            step_time = sim.elapsed() - t0
            compute_dt = max(d.compute_time for d in sim.devices) - compute0
            comm_dt = max(d.comm_time for d in sim.devices) - comm0
            busy = compute_dt + comm_dt
            comm_frac = comm_dt / busy if busy else 0.0
        else:
            loss = self._one_step()
            step_time = float("nan")
            comm_frac = float("nan")
        self.step += 1
        self.log.losses.append(loss)
        self.log.lrs.append(self.optimizer.lr)
        self.log.step_times.append(step_time)
        self.log.comm_fractions.append(comm_frac)
        self.metrics.counter("train/steps").inc()
        self.metrics.histogram("train/loss").observe(loss)
        if sim is not None:
            self.metrics.histogram("train/step_time").observe(step_time)
            self.metrics.gauge("train/comm_fraction").set(comm_frac)
        if self.log_every and self.step % self.log_every == 0:
            self.printer(
                f"step {self.step:5d}  loss {loss:.4f}  "
                f"lr {self.optimizer.lr:.2e}"
            )
        return loss

    def train_steps(self, num_steps: int) -> TrainLog:
        for _ in range(num_steps):
            self._logged_step()
        if self.ledger is not None:
            self.ledger.append(self.ledger_record())
        return self.log

    def ledger_record(self, kind: str = "train"):
        """A :class:`~repro.obs.ledger.RunRecord` of this trainer's run so
        far — read-only over counters, metrics and the training log."""
        from repro.obs.ledger import RunRecord, _scheme_of, json_safe, record_from_sim

        scheme = _scheme_of(self.model)
        cfg = getattr(self.model, "cfg", None)
        doc = {
            "steps": self.step,
            "final_loss": self.log.losses[-1] if self.log.losses else None,
            "losses": list(self.log.losses),
            "step_times": list(self.log.step_times),
            "comm_fractions": list(self.log.comm_fractions),
            "label": self.run_label,
        }
        pipe = getattr(self.model, "pipe", None)
        if pipe is not None and hasattr(pipe, "schedule_name"):
            doc["pipeline"] = {
                "schedule": pipe.schedule_name,
                "num_stages": pipe.S,
                "num_micro_batches": pipe.m,
            }
        extra = json_safe(doc)
        if self.sim is None:
            return RunRecord(
                kind=kind,
                label=self.run_label,
                scheme=scheme,
                seed=self.seed,
                metrics=self.metrics.export(),
                extra=extra,
            )
        mesh = getattr(self.model, "mesh", None)
        mesh_doc = {"q": mesh.q} if mesh is not None and hasattr(mesh, "q") else None
        return record_from_sim(
            kind,
            self.sim,
            label=self.run_label,
            scheme=scheme,
            seed=self.seed,
            config=cfg,
            mesh=mesh_doc,
            extra=extra,
        )

    # ------------------------------------------------------------------
    # checkpoint / restart
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Scalar training state (everything except arrays); paired with the
        parameter/moment arrays by
        :func:`repro.serialization.save_training_checkpoint`."""
        state: dict = {"step": self.step, "last_finite_loss": self._last_finite_loss}
        if callable(getattr(self.optimizer, "state_dict", None)):
            state["optimizer"] = self.optimizer.state_dict()
        if self.scaler is not None:
            state["scaler"] = self.scaler.state()
        if callable(getattr(self.batches, "state", None)):
            state["data"] = self.batches.state()
        if self.rng is not None:
            state["rng"] = self.rng.bit_generator.state
        # counters only: campaign-cumulative totals must survive a resume
        # with OpenMetrics restart semantics (monotone value, bumped
        # ``_created`` epoch); gauges/histograms describe the live process
        state["metrics"] = self.metrics.counters_state()
        return state

    def save(self, path) -> str:
        """Write a full-state checkpoint; returns the path written."""
        from repro.serialization import save_training_checkpoint

        return save_training_checkpoint(path, self)

    def resume(self, source) -> int:
        """Restore full training state from a checkpoint path (or an
        already-loaded :class:`~repro.serialization.TrainingState`) and
        return the step to continue from."""
        from repro.serialization import (
            TrainingState,
            apply_training_state,
            load_training_checkpoint,
        )

        state = (
            source
            if isinstance(source, TrainingState)
            else load_training_checkpoint(source)
        )
        apply_training_state(self, state)
        self.log.truncate(self.step)
        return self.step


# ----------------------------------------------------------------------
# serial reference adapters
# ----------------------------------------------------------------------
class SerialModelAdapter:
    """Give :class:`~repro.reference.model.ReferenceTransformer` the
    ``forward()`` / ``backward()`` surface the trainer expects."""

    def __init__(self, ref):
        self.ref = ref
        self.cfg = ref.cfg
        self.params = ref.params
        self.grads = None
        self._pending = None

    def forward(self, ids, labels) -> float:
        loss, grads = self.ref.loss_and_grads(ids, labels)
        self._pending = grads
        return loss

    def backward(self) -> None:
        self.grads = self._pending


class SerialOptimizerAdapter:
    """Bridge a serial optimizer (explicit grads dict) to the trainer's
    ``zero_grad()`` / ``step()`` protocol."""

    params = ()  # no DistParams: grad clipping is a no-op on the serial path

    def __init__(self, opt, model: SerialModelAdapter):
        self.opt = opt
        self.model = model

    @property
    def lr(self) -> float:
        return self.opt.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.opt.lr = value

    def zero_grad(self) -> None:
        self.model.grads = None

    def step(self) -> None:
        if self.model.grads is not None:
            self.opt.step(self.model.grads)

    def state_dict(self) -> dict:
        return self.opt.state_dict()

    def load_state_dict(self, d: dict) -> None:
        self.opt.load_state_dict(d)

    def state_slots(self):
        return self.opt.state_slots()

    def load_state_slots(self, slots) -> None:
        self.opt.load_state_slots(slots)


def make_serial_trainer(cfg, batches, optimizer=None, params=None, seed=1, **kw):
    """A :class:`Trainer` over the serial reference model: builds the model
    from ``params`` (or a fresh seeded init) and wires both adapters."""
    from repro.nn import init_transformer_params
    from repro.reference import ReferenceTransformer
    from repro.training.optim import SerialAdam

    if params is None:
        params = init_transformer_params(cfg, seed=seed)
    model = SerialModelAdapter(ReferenceTransformer(cfg, params))
    if optimizer is None:
        optimizer = SerialAdam(params, lr=1e-2)
    return Trainer(model, SerialOptimizerAdapter(optimizer, model), batches, **kw)


# ----------------------------------------------------------------------
# pipeline adapters
# ----------------------------------------------------------------------
class PipelineModelAdapter:
    """Give :class:`~repro.pipeline.engine.PipelineModel` the ``forward()``
    / ``backward()`` surface the trainer expects.

    The pipeline engine runs forward *and* backward in one fused
    ``forward_backward`` call (the schedule interleaves them), so
    ``forward`` runs the whole iteration and ``backward`` is a no-op —
    gradients are already accumulated in ``pipe.grads`` under the global
    parameter names when it is called."""

    def __init__(self, pipe):
        self.pipe = pipe
        self.cfg = pipe.cfg
        self.sim = pipe.sim
        self.params = pipe.params

    def forward(self, ids, labels) -> float:
        return self.pipe.forward_backward(ids, labels)

    def backward(self) -> None:
        pass


class PipelineOptimizerAdapter:
    """Bridge a serial optimizer (explicit grads dict) to the trainer's
    ``zero_grad()`` / ``step()`` protocol, sourcing gradients from the
    pipeline engine's mean-loss-scaled accumulator."""

    params = ()  # no DistParams: grad clipping is a no-op on this path

    def __init__(self, opt, pipe):
        self.opt = opt
        self.pipe = pipe

    @property
    def lr(self) -> float:
        return self.opt.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.opt.lr = value

    def zero_grad(self) -> None:
        self.pipe.zero_grads()

    def step(self) -> None:
        if self.pipe.grads:
            self.opt.step(self.pipe.scaled_grads())

    def state_dict(self) -> dict:
        return self.opt.state_dict()

    def load_state_dict(self, d: dict) -> None:
        self.opt.load_state_dict(d)

    def state_slots(self):
        return self.opt.state_slots()

    def load_state_slots(self, slots) -> None:
        self.opt.load_state_slots(slots)


def make_pipeline_trainer(
    cfg,
    batches,
    optimizer=None,
    params=None,
    seed=1,
    schedule: str = "1f1b",
    num_micro_batches: int = 4,
    num_stages: int = 2,
    sim=None,
    **kw,
):
    """A :class:`Trainer` over the GPipe/1F1B pipeline engine.

    Builds a flat ``num_stages``-rank simulator (unless one is supplied),
    wires both pipeline adapters, and — like every trainer — appends a
    ``train`` ledger record per :meth:`Trainer.train_steps` call whenever a
    ledger is passed or ``REPRO_LEDGER`` is set."""
    from repro.nn import init_transformer_params
    from repro.pipeline import PipelineModel
    from repro.runtime import Simulator
    from repro.training.optim import SerialAdam

    if params is None:
        params = init_transformer_params(cfg, seed=seed)
    if sim is None:
        sim = Simulator.for_flat(num_stages)
    pipe = PipelineModel(
        sim,
        cfg,
        params,
        num_micro_batches=num_micro_batches,
        schedule=schedule,
        num_stages=num_stages,
    )
    model = PipelineModelAdapter(pipe)
    if optimizer is None:
        optimizer = SerialAdam(params, lr=1e-2)
    kw.setdefault("seed", seed)
    return Trainer(model, PipelineOptimizerAdapter(optimizer, pipe), batches, **kw)
