"""Mixed-precision training support: dynamic loss scaling.

The paper lists mixed-precision training with dynamic loss scaling
[Micikevicius et al.] among the orthogonal techniques Optimus composes with
(§1).  The numerics of this reproduction run in float32/float64, so what
matters here is the *protocol*: gradients are produced at ``scale×`` the
true values, checked for overflow (inf/nan), unscaled before the optimizer
step, and the scale adapts — halving on overflow (the step is skipped) and
doubling after ``growth_interval`` clean steps.

Works with any of the distributed models: scaling multiplies every gradient
shard in place (layout-preserving), so the optimizer sees exactly the
gradients it would have seen in unscaled training whenever no overflow
occurred — the equivalence test asserts bit-equality of trajectories.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.backend.shape_array import is_shape_array
from repro.core.param import DistParam


def grads_finite(params: Iterable[DistParam]) -> bool:
    """True when every gradient shard is free of inf/nan.

    Dryrun placeholders carry no values and are treated as finite.
    """
    for p in params:
        if p.grad is None:
            continue
        for shard in p.grad.shards.values():
            if is_shape_array(shard):
                continue
            if not np.isfinite(np.asarray(shard)).all():
                return False
    return True


def scale_grads(params: Iterable[DistParam], factor: float) -> None:
    """Multiply every gradient shard by ``factor`` (layout preserved)."""
    for p in params:
        if p.grad is not None:
            p.grad = p.grad.map(lambda g: g * factor)


class DynamicLossScaler:
    """The standard dynamic loss-scaling state machine.

    Usage::

        scaler = DynamicLossScaler(optimizer)
        loss = model.forward(ids, labels) * scaler.scale   # scaled objective
        model.backward()          # gradients come out scaled
        stepped = scaler.step()   # unscale + overflow check + maybe step

    ``step()`` returns False when an overflow was detected: the gradients
    are discarded, the scale halves, and the parameters are untouched.

    The scale is clamped to ``[min_scale, max_scale]``: the floor keeps the
    unscale well-defined after repeated overflows, the ceiling (default
    2**24, float16's reciprocal-epsilon neighbourhood) stops a long run of
    clean steps from doubling the scale to float infinity — which would
    make every subsequent step overflow permanently.
    """

    def __init__(
        self,
        optimizer,
        init_scale: float = 2.0**16,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 2000,
        min_scale: float = 1.0,
        max_scale: float = 2.0**24,
    ):
        if init_scale <= 0 or growth_factor <= 1.0 or not 0 < backoff_factor < 1:
            raise ValueError("invalid loss-scaler hyperparameters")
        if not min_scale <= init_scale <= max_scale:
            raise ValueError(
                f"init_scale {init_scale} outside [{min_scale}, {max_scale}]"
            )
        self.optimizer = optimizer
        self.scale = float(init_scale)
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.min_scale = min_scale
        self.max_scale = max_scale
        self._good_steps = 0
        self.num_overflows = 0

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Unscale, check, and apply (or skip) the optimizer step."""
        params: List[DistParam] = self.optimizer.params
        scale_grads(params, 1.0 / self.scale)
        if not grads_finite(params):
            self.num_overflows += 1
            self._good_steps = 0
            self.scale = max(self.min_scale, self.scale * self.backoff_factor)
            self.optimizer.zero_grad()
            return False
        self.optimizer.step()
        self._good_steps += 1
        if self._good_steps >= self.growth_interval:
            # cap the growth: unbounded doubling eventually reaches float
            # inf, after which every unscale produces zeros/NaNs and every
            # step is skipped forever
            self.scale = min(self.max_scale, self.scale * self.growth_factor)
            self._good_steps = 0
        return True

    def state(self) -> dict:
        return {
            "scale": self.scale,
            "good_steps": self._good_steps,
            "num_overflows": self.num_overflows,
        }

    def load_state(self, d: dict) -> None:
        """Restore :meth:`state` output (checkpoint resume)."""
        self.scale = float(d["scale"])
        self._good_steps = int(d["good_steps"])
        self.num_overflows = int(d["num_overflows"])
