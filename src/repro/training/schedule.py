"""Learning-rate schedules."""

from __future__ import annotations

import math
from typing import Callable


def constant_lr(lr: float) -> Callable[[int], float]:
    """lr(step) = lr."""
    return lambda step: lr


def warmup_cosine(
    lr: float, warmup_steps: int, total_steps: int, min_lr: float = 0.0
) -> Callable[[int], float]:
    """Linear warmup to ``lr`` then cosine decay to ``min_lr``."""
    if warmup_steps < 0 or total_steps <= warmup_steps:
        raise ValueError("need 0 <= warmup_steps < total_steps")

    def fn(step: int) -> float:
        if step < warmup_steps:
            return lr * (step + 1) / max(1, warmup_steps)
        t = (step - warmup_steps) / (total_steps - warmup_steps)
        t = min(1.0, t)
        return min_lr + 0.5 * (lr - min_lr) * (1.0 + math.cos(math.pi * t))

    return fn
