"""Optimizers for distributed and serial parameters.

Distributed optimizers update each :class:`DistParam` shard in place on its
owning device.  Because every layout either owns each scalar exactly once
(BLOCKED_2D, SHARDED_1D, ROW0_COLS) or replicates both parameter and
gradient identically (REPLICATED_1D, LN/bias in Megatron), a purely local
update preserves consistency — no parameter synchronization collective is
ever needed, exactly as in the paper's design where "a same parameter is
hosted and updated in a single device" (§3.2.2).

In dryrun mode the arithmetic is skipped (placeholders carry no data) but
optimizer-state memory is still charged, so the Fig. 9 memory search sees
momentum/Adam state.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import is_shape_array
from repro.core.param import DistParam

_UNIQUE_LAYOUTS = {"blocked_2d", "sharded_1d", "row0_cols"}


class _DistOptimizerBase:
    """Shared machinery: state allocation, update dispatch, flop charging."""

    n_state_slots = 0  # extra arrays per parameter (momentum, adam m/v, ...)

    def __init__(self, params: Iterable[DistParam], lr: float, sim=None):
        self.params: List[DistParam] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr
        self.sim = sim  # optional: charge state memory and update flops
        self.t = 0
        self._state: Dict[int, dict] = {}
        for p in self.params:
            self._state[id(p)] = self._init_state(p)

    def _init_state(self, p: DistParam) -> dict:
        state = {
            "slots": [
                {r: ops.zeros_like(s) for r, s in p.data.shards.items()}
                for _ in range(self.n_state_slots)
            ]
        }
        if self.sim is not None and self.n_state_slots:
            for rank, shard in p.data.shards.items():
                self.sim.device(rank).memory.alloc(
                    self.n_state_slots * ops.nbytes(shard), "optimizer_state"
                )
        return state

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self, subset: Optional[Iterable[DistParam]] = None) -> None:
        """Apply one update; ``subset`` supports per-layer immediate updates
        (the paper's §3.2.3 option 2)."""
        self.t += 1
        for p in subset if subset is not None else self.params:
            if p.grad is None:
                continue
            state = self._state[id(p)]
            for rank, shard in p.data.shards.items():
                g = p.grad.shards[rank]
                if self.sim is not None:
                    self.sim.device(rank).compute(
                        self._flops_per_element() * shard.size, kind="elementwise"
                    )
                if is_shape_array(shard):
                    continue  # dryrun: accounting only
                self._update_shard(shard, g, state, rank)

    # subclass hooks -----------------------------------------------------
    def _update_shard(self, shard, grad, state, rank) -> None:  # pragma: no cover
        raise NotImplementedError

    def _flops_per_element(self) -> float:  # pragma: no cover
        return 2.0

    # checkpoint support -------------------------------------------------
    def state_dict(self) -> dict:
        """Scalar hyper-state (step counter, current LR)."""
        return {"t": self.t, "lr": self.lr}

    def load_state_dict(self, d: dict) -> None:
        self.t = int(d["t"])
        self.lr = float(d["lr"])

    def state_slots(self) -> Dict[str, List[np.ndarray]]:
        """Per-parameter state arrays (momentum, Adam m/v) as *global*
        arrays, assembled exactly like the parameters themselves — so
        optimizer state, like parameters, checkpoints layout-independently.

        Data-parallel replicas share parameter names with bit-identical
        state; the first occurrence wins.
        """
        from repro.mesh.dtensor import DTensor
        from repro.mesh.partition import assemble_any

        out: Dict[str, List[np.ndarray]] = {}
        for p in self.params:
            if p.name in out:
                continue  # replicated copy (data parallelism)
            slots = self._state[id(p)]["slots"]
            if any(is_shape_array(s) for slot in slots for s in slot.values()):
                raise ValueError("cannot checkpoint optimizer state in dryrun mode")
            out[p.name] = [
                np.asarray(
                    assemble_any(
                        DTensor(p.data.owner, p.data.layout, slot, p.data.global_shape)
                    )
                )
                for slot in slots
            ]
        return out

    def load_state_slots(self, slots: Dict[str, List[np.ndarray]]) -> None:
        """Restore :meth:`state_slots` output in place (every replica of a
        shared name is restored)."""
        from repro.mesh.dtensor import DTensor
        from repro.mesh.partition import scatter_any

        for p in self.params:
            if p.name not in slots:
                continue
            local = self._state[id(p)]["slots"]
            arrays = slots[p.name]
            if len(arrays) != len(local):
                raise ValueError(
                    f"optimizer state for {p.name!r} has {len(arrays)} slots, "
                    f"expected {len(local)}"
                )
            for slot, a in zip(local, arrays):
                scatter_any(
                    DTensor(p.data.owner, p.data.layout, slot, p.data.global_shape), a
                )


class SGD(_DistOptimizerBase):
    """Plain / momentum SGD with optional decoupled weight decay.

    Weight decay is *decoupled* (SGDW, Loshchilov & Hutter): the parameter
    is shrunk by ``1 − lr·wd`` before the gradient step, so the decay never
    enters the momentum buffer.  Folding ``wd·θ`` into the gradient instead
    (coupled L2) would let momentum carry stale decay terms across steps —
    a different trajectory than the docstring promises.
    """

    def __init__(self, params, lr=0.1, momentum=0.0, weight_decay=0.0, sim=None):
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.n_state_slots = 1 if momentum else 0
        super().__init__(params, lr, sim)

    def _update_shard(self, shard, grad, state, rank) -> None:
        g = np.asarray(grad)
        if self.weight_decay:
            shard *= 1.0 - self.lr * self.weight_decay
        if self.momentum:
            buf = state["slots"][0][rank]
            buf *= self.momentum
            buf += g
            g = buf
        shard -= self.lr * g

    def _flops_per_element(self) -> float:
        # update (mul+sub) + momentum (mul+add) + decoupled decay (one mul)
        return 2.0 + (2.0 if self.momentum else 0.0) + (1.0 if self.weight_decay else 0.0)


class Adam(_DistOptimizerBase):
    """Adam (Kingma & Ba) with bias correction.

    ``weight_decay`` here is classic *coupled* L2 regularization (added to
    the gradient before the moment updates), matching :class:`SerialAdam`.
    """

    n_state_slots = 2

    def __init__(
        self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0, sim=None
    ):
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        super().__init__(params, lr, sim)

    def _update_shard(self, shard, grad, state, rank) -> None:
        b1, b2 = self.betas
        g = np.asarray(grad)
        if self.weight_decay:
            g = g + self.weight_decay * np.asarray(shard)
        m = state["slots"][0][rank]
        v = state["slots"][1][rank]
        m *= b1
        m += (1 - b1) * g
        v *= b2
        v += (1 - b2) * g * g
        mhat = m / (1 - b1**self.t)
        vhat = v / (1 - b2**self.t)
        shard -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def _flops_per_element(self) -> float:
        # moments + bias correction + update, plus the coupled-L2 mul/add
        return 12.0 + (2.0 if self.weight_decay else 0.0)


def make_immediate_updater(optimizer, buffers=None):
    """§3.2.3 option 2: update each layer's parameters the moment its
    backward finishes, then reset the parameter-gradient buffer.

    Pass the returned callable as ``model.backward(on_layer_backward=...)``.
    The optimizer's later full ``step()`` skips these parameters (their
    gradients are cleared), so mixing immediate and deferred updates in one
    iteration is safe.
    """

    def _update(layer) -> None:
        params = layer.parameters()
        optimizer.step(subset=params)
        for p in params:
            p.zero_grad()
        if buffers is not None:
            buffers.reset_region("param_grad")
            buffers.trim_region("param_grad")

    return _update


# ----------------------------------------------------------------------
# serial counterparts (for the reference model / equivalence tests)
# ----------------------------------------------------------------------
class SerialSGD:
    """Serial mirror of :class:`SGD` — identical decoupled-decay update
    order, so the dist-vs-serial trajectory tests compare like with like."""

    def __init__(self, params: Dict[str, np.ndarray], lr=0.1, momentum=0.0, weight_decay=0.0):
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._buf = {k: np.zeros_like(v) for k, v in params.items()} if momentum else None

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        for name, p in self.params.items():
            if name not in grads:
                continue
            g = np.asarray(grads[name])
            if self.weight_decay:
                p *= 1.0 - self.lr * self.weight_decay
            if self.momentum:
                self._buf[name] = self.momentum * self._buf[name] + g
                g = self._buf[name]
            p -= self.lr * g

    def state_dict(self) -> dict:
        return {"t": 0, "lr": self.lr}

    def load_state_dict(self, d: dict) -> None:
        self.lr = float(d["lr"])

    def state_slots(self) -> Dict[str, List[np.ndarray]]:
        if self._buf is None:
            return {}
        return {name: [np.array(buf, copy=True)] for name, buf in self._buf.items()}

    def load_state_slots(self, slots: Dict[str, List[np.ndarray]]) -> None:
        if self._buf is None:
            return
        for name, arrays in slots.items():
            if name in self._buf:
                self._buf[name][...] = arrays[0]


class SerialAdam:
    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        self.params = params
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = {k: np.zeros_like(v) for k, v in params.items()}
        self._v = {k: np.zeros_like(v) for k, v in params.items()}

    def step(self, grads) -> None:
        self.t += 1
        b1, b2 = self.betas
        for name, p in self.params.items():
            if name not in grads:
                continue
            g = np.asarray(grads[name])
            if self.weight_decay:
                g = g + self.weight_decay * p
            self._m[name] = b1 * self._m[name] + (1 - b1) * g
            self._v[name] = b2 * self._v[name] + (1 - b2) * g * g
            mhat = self._m[name] / (1 - b1**self.t)
            vhat = self._v[name] / (1 - b2**self.t)
            p -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def state_dict(self) -> dict:
        return {"t": self.t, "lr": self.lr}

    def load_state_dict(self, d: dict) -> None:
        self.t = int(d["t"])
        self.lr = float(d["lr"])

    def state_slots(self) -> Dict[str, List[np.ndarray]]:
        return {
            name: [np.array(self._m[name], copy=True), np.array(self._v[name], copy=True)]
            for name in self.params
        }

    def load_state_slots(self, slots: Dict[str, List[np.ndarray]]) -> None:
        for name, arrays in slots.items():
            if name in self._m:
                self._m[name][...] = arrays[0]
                self._v[name][...] = arrays[1]


# ----------------------------------------------------------------------
# gradient utilities
# ----------------------------------------------------------------------
def grad_norm(params: Iterable[DistParam]) -> float:
    """Global L2 norm of all gradients, counting each scalar exactly once."""
    total = 0.0
    for p in params:
        if p.grad is None:
            continue
        if p.grad.layout.kind in _UNIQUE_LAYOUTS:
            shards = p.grad.shards.values()
        else:  # replicated layouts: any single copy carries the full gradient
            shards = [next(iter(p.grad.shards.values()))]
        for s in shards:
            if is_shape_array(s):
                return float("nan")
            total += float(np.sum(np.asarray(s) ** 2))
    return math.sqrt(total)


def clip_grads(params: Iterable[DistParam], max_norm: float) -> float:
    """Scale all gradients so the global norm is at most ``max_norm``."""
    params = list(params)
    norm = grad_norm(params)
    if norm > max_norm and norm > 0 and not math.isnan(norm):
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad.map(lambda g: g * scale)
    return norm
