"""Training utilities: optimizers over distributed parameters, synthetic and
character-level data, LR schedules, and a scheme-agnostic trainer loop."""

from repro.training.amp import DynamicLossScaler, grads_finite, scale_grads
from repro.training.data import (
    LOREM_TEXT,
    BatchStream,
    CharCorpus,
    copy_task_batch,
    random_batch,
)
from repro.training.optim import (
    SGD,
    Adam,
    SerialAdam,
    SerialSGD,
    clip_grads,
    grad_norm,
    make_immediate_updater,
)
from repro.training.schedule import constant_lr, warmup_cosine
from repro.training.trainer import (
    PipelineModelAdapter,
    PipelineOptimizerAdapter,
    SerialModelAdapter,
    SerialOptimizerAdapter,
    Trainer,
    TrainingDivergedError,
    make_pipeline_trainer,
    make_serial_trainer,
)

__all__ = [
    "DynamicLossScaler",
    "grads_finite",
    "scale_grads",
    "SGD",
    "Adam",
    "SerialSGD",
    "SerialAdam",
    "grad_norm",
    "clip_grads",
    "make_immediate_updater",
    "random_batch",
    "BatchStream",
    "CharCorpus",
    "copy_task_batch",
    "LOREM_TEXT",
    "constant_lr",
    "warmup_cosine",
    "Trainer",
    "TrainingDivergedError",
    "SerialModelAdapter",
    "SerialOptimizerAdapter",
    "PipelineModelAdapter",
    "PipelineOptimizerAdapter",
    "make_serial_trainer",
    "make_pipeline_trainer",
]
