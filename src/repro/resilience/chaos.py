"""Seeded chaos campaigns: inject faults, recover, prove nothing was lost.

For each parallelism scheme (Optimus 2×2, Megatron p=2, hybrid 2-replica
data parallel over 2×2 meshes) the campaign runs the same tiny training
job twice:

1. a **fault-free baseline** — plain :class:`Trainer`, no injector
   installed (the zero-overhead path);
2. a **chaos run** — fresh identical model, a seeded
   :class:`~repro.resilience.faults.FaultSchedule` covering the whole
   fault menu (rank crash, message corruption, transient collective
   failure, straggler window, gradient SDC) and a
   :class:`~repro.resilience.trainer.ResilientTrainer` with periodic
   checkpointing.

The campaign passes only if the chaos run's loss trajectory is
**bit-exactly equal** to the baseline's — recovery loses nothing — and
reports retry counts, MTTR and the recovery overhead (extra simulated
seconds) per scheme.  Everything is derived from the campaign seed: two
runs with the same seed produce identical campaign JSON (no wall-clock
times or filesystem paths appear in the report).

A one-step *probe* run first counts the collectives each scheme issues per
step, so the message-corruption fault can deterministically target a
collective in the backward pass (75% through the step's reduces) — where a
flipped exponent bit is guaranteed to reach the gradient guards.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict

import numpy as np

from repro.config import tiny_config
from repro.resilience.faults import (
    FaultSchedule,
    GradientSDC,
    MessageCorruption,
    RankCrash,
    Straggler,
    TransientCollectiveFault,
)
from repro.resilience.injector import FaultInjector
from repro.resilience.trainer import ResilientTrainer
from repro.training.data import BatchStream
from repro.training.optim import Adam
from repro.training.trainer import Trainer

SCHEMES = ("optimus", "megatron", "hybrid")

#: the collective kind each scheme's gradient path runs through
_GRAD_KIND = {"optimus": "reduce", "megatron": "all_reduce", "hybrid": "all_reduce"}

_BATCH = 4  # divisible by q=2 (Optimus rows) and by R·q = 4 (hybrid)


class _HybridAdapter:
    """Give :class:`~repro.hybrid.data_parallel.DataParallel` the model
    surface the trainer expects (its ``forward_backward`` is one fused call)."""

    def __init__(self, dp):
        self.dp = dp
        self.sim = dp.sim
        self.cfg = dp.cfg

    def forward(self, ids, labels) -> float:
        return self.dp.forward_backward(ids, labels)

    def backward(self) -> None:
        pass  # forward_backward already ran it

    def parameters(self):
        return self.dp.parameters()

    def gathered_parameters(self):
        return self.dp.gathered_parameters()

    def drop_caches(self) -> None:
        self.dp.drop_caches()


def _make_model(scheme: str, cfg, param_seed: int = 1, trace: bool = False):
    if scheme == "optimus":
        from repro.core import OptimusModel
        from repro.mesh import Mesh
        from repro.nn import init_transformer_params
        from repro.runtime import Simulator

        sim = Simulator.for_mesh(q=2, trace=trace)
        return OptimusModel(
            Mesh(sim, 2), cfg, init_transformer_params(cfg, seed=param_seed)
        )
    if scheme == "megatron":
        from repro.megatron import MegatronModel
        from repro.nn import init_transformer_params
        from repro.runtime import Simulator

        sim = Simulator.for_flat(p=2, trace=trace)
        return MegatronModel(sim, cfg, init_transformer_params(cfg, seed=param_seed))
    if scheme == "hybrid":
        from repro.hybrid.data_parallel import DataParallel

        dp = DataParallel.build(num_replicas=2, q=2, cfg=cfg, seed=param_seed)
        dp.sim.tracer.enabled = trace
        return _HybridAdapter(dp)
    raise ValueError(f"unknown scheme {scheme!r} (choose from {SCHEMES})")


def _make_trainer(scheme, cfg, seed, resilient=False, trace=False, **kw):
    model = _make_model(scheme, cfg, trace=trace)
    optimizer = Adam(model.parameters(), lr=1e-2)
    batches = BatchStream.copy_task(cfg, _BATCH, seed=seed)
    cls = ResilientTrainer if resilient else Trainer
    return cls(model, optimizer, batches, **kw)


def _probe_collective_counts(scheme, cfg, seed) -> dict:
    """Collectives issued per kind in one training step (layout-stable)."""
    injector = FaultInjector(FaultSchedule(), seed=seed)
    trainer = _make_trainer(scheme, cfg, seed, resilient=True, injector=injector)
    trainer.train_steps(1)
    return dict(injector._kind_counts)


def default_schedule(
    scheme: str, rng: np.random.Generator, num_steps: int, num_ranks: int,
    collective_counts: dict,
) -> FaultSchedule:
    """One of everything, at seeded distinct steps inside the run."""
    kind = _GRAD_KIND[scheme]
    steps = rng.choice(np.arange(1, num_steps), size=4, replace=False)
    crash_step, corrupt_step, transient_step, sdc_step = (int(s) for s in steps)
    # 75% through the step's grad-kind collectives lands in the backward
    # pass, so the flipped bit reaches a gradient and trips the SDC guard
    corrupt_index = int(0.75 * collective_counts.get(kind, 1))
    return FaultSchedule.of(
        RankCrash(step=crash_step, rank=int(rng.integers(num_ranks))),
        MessageCorruption(step=corrupt_step, index=corrupt_index, kind=kind),
        TransientCollectiveFault(
            step=transient_step, index=1, kind=kind, fails=2,
            mode="flaky" if int(rng.integers(2)) else "timeout",
        ),
        Straggler(
            rank=int(rng.integers(num_ranks)),
            start_step=max(1, num_steps - 2), num_steps=2, factor=3.0,
        ),
        GradientSDC(step=sdc_step),
    )


def run_scheme(
    scheme: str,
    seed: int,
    num_steps: int,
    checkpoint_every: int,
    ckpt_dir: str,
    trace: bool = False,
):
    """One scheme's baseline + chaos pair; returns (result dict, chaos sim)."""
    cfg = tiny_config(num_layers=2)
    counts = _probe_collective_counts(scheme, cfg, seed)

    baseline = _make_trainer(scheme, cfg, seed)
    base_log = baseline.train_steps(num_steps)
    base_elapsed = baseline.sim.elapsed()

    rng = np.random.default_rng([seed, SCHEMES.index(scheme)])
    num_ranks = baseline.sim.num_ranks
    schedule = default_schedule(scheme, rng, num_steps, num_ranks, counts)
    injector = FaultInjector(schedule, seed=seed)
    chaos = _make_trainer(
        scheme, cfg, seed, resilient=True, trace=trace,
        injector=injector,
        checkpoint_every=checkpoint_every,
        checkpoint_path=os.path.join(ckpt_dir, f"{scheme}-ckpt"),
    )
    chaos_log = chaos.train_steps(num_steps)
    chaos_elapsed = chaos.sim.elapsed()

    loss_match = chaos_log.losses == base_log.losses
    faults_fired = (
        injector.stats["crashes"] >= 1
        and injector.stats["corruptions"] >= 1
        and injector.stats["retries"] >= 1
        and injector.stats["sdc_injected"] >= 1
    )
    result = {
        "scheme": scheme,
        "steps": num_steps,
        "ok": bool(loss_match and faults_fired),
        "loss_match": bool(loss_match),
        "faults_fired": bool(faults_fired),
        "final_loss": chaos_log.losses[-1],
        "baseline_elapsed_s": base_elapsed,
        "chaos_elapsed_s": chaos_elapsed,
        "recovery_overhead_s": chaos_elapsed - base_elapsed,
        "stats": dict(injector.stats),
        "recoveries": list(chaos.recoveries),
        "mttr_s": [r["mttr_s"] for r in chaos.recoveries],
        "collectives_per_step": counts,
        "faults": [
            {"type": type(f).__name__, **asdict(f)} for f in schedule.all_faults()
        ],
    }
    return result, chaos.sim


def run_campaign(
    seed: int = 0,
    quick: bool = False,
    steps=None,
    schemes=None,
    trace_out=None,
    ledger=None,
) -> dict:
    """Run the full campaign; returns the (JSON-serializable) report."""
    num_steps = steps or (6 if quick else 10)
    if num_steps < 5:
        raise ValueError("chaos campaigns need at least 5 steps")
    checkpoint_every = 2 if quick else 3
    schemes = tuple(schemes) if schemes else SCHEMES
    for s in schemes:
        if s not in SCHEMES:
            raise ValueError(f"unknown chaos scheme {s!r} (choose from {SCHEMES})")
    results = []
    ckpt_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        for scheme in schemes:
            result, sim = run_scheme(
                scheme, seed, num_steps, checkpoint_every, ckpt_dir,
                trace=trace_out is not None,
            )
            results.append(result)
            if ledger is not None:
                from repro.obs.ledger import json_safe, record_from_sim

                ledger.append(
                    record_from_sim(
                        "chaos",
                        sim,
                        label=f"chaos-{scheme}",
                        scheme=scheme,
                        seed=seed,
                        config=tiny_config(num_layers=2),
                        extra=json_safe(result),
                    )
                )
            if trace_out is not None:
                from repro.obs.perfetto import write_chrome_trace

                root, ext = os.path.splitext(trace_out)
                write_chrome_trace(sim, f"{root}-{scheme}{ext or '.json'}")
    finally:
        for name in os.listdir(ckpt_dir):
            os.unlink(os.path.join(ckpt_dir, name))
        os.rmdir(ckpt_dir)
    return {
        "version": "repro-chaos-v1",
        "seed": seed,
        "quick": bool(quick),
        "steps": num_steps,
        "checkpoint_every": checkpoint_every,
        "schemes": results,
        "ok": all(r["ok"] for r in results),
    }


def render(report: dict) -> str:
    lines = [
        f"chaos campaign  seed={report['seed']}  steps={report['steps']}  "
        f"checkpoint_every={report['checkpoint_every']}",
        f"{'scheme':<10} {'ok':<5} {'losses':<10} {'crash':>5} {'retry':>5} "
        f"{'corrupt':>7} {'sdc':>4} {'overhead_s':>11}",
    ]
    for r in report["schemes"]:
        s = r["stats"]
        lines.append(
            f"{r['scheme']:<10} {'PASS' if r['ok'] else 'FAIL':<5} "
            f"{'bit-exact' if r['loss_match'] else 'DIVERGED':<10} "
            f"{s['crashes']:>5} {s['retries']:>5} {s['corruptions']:>7} "
            f"{s['sdc_injected']:>4} {r['recovery_overhead_s']:>11.3f}"
        )
    lines.append(
        "OK: every scheme recovered to a bit-exact trajectory"
        if report["ok"]
        else "FAIL: recovery equivalence violated"
    )
    return "\n".join(lines)


def main(
    seed: int = 0,
    quick: bool = False,
    steps=None,
    schemes=None,
    out=None,
    trace_out=None,
    ledger=None,
) -> int:
    if ledger is not None and not hasattr(ledger, "append"):
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(ledger)
    try:
        report = run_campaign(
            seed=seed, quick=quick, steps=steps, schemes=schemes,
            trace_out=trace_out, ledger=ledger,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(render(report))
    if out:
        with open(out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {out}")
    return 0 if report["ok"] else 1
