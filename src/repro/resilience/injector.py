"""Deterministic fault injection into the simulator's collectives.

The injector installs itself on a :class:`~repro.runtime.simulator.Simulator`
(``sim.fault_injector``); every collective in :mod:`repro.comm.collectives`
checks that single attribute and, when armed, routes through
:meth:`FaultInjector.on_collective`.  With no injector installed the check
costs one attribute read — the zero-overhead-when-off contract.

All fault decisions come from the :class:`~repro.resilience.faults.FaultSchedule`
plus a seeded generator (victim-rank and victim-element choices), so a
(schedule, seed) pair replays identically.  Every injected delay — timeouts,
exponential backoff, straggler skew — is charged to the *simulated* clock
through the same ``sync``/``advance`` primitives the α–β model uses, so
fault overhead shows up in ``sim.elapsed()``, per-step timings, and the
Perfetto trace (as ``fault`` events), not just in counters.  Flaky retry
attempts re-run the real collective and discard the result: the wire moved
the bytes, so byte counters and the comm-matrix reconciliation stay exact.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.backend.shape_array import is_shape_array
from repro.resilience.faults import (
    CollectiveTimeoutError,
    FaultSchedule,
    RankCrashError,
)

_UNIQUE_GRAD_LAYOUTS = ("blocked_2d", "sharded_1d", "row0_cols")


def _flip_high_bit(arr: np.ndarray, flat_index: int, bit: int) -> bool:
    """OR a high exponent bit into one element, in place.

    Setting the exponent MSB drives the magnitude to ~1e308 (float64) /
    ~1e38 (float32), which the gradient-norm and non-finite guards are
    guaranteed to notice downstream.  Returns False for non-float arrays
    (nothing corrupted).  Works on non-contiguous shards (collective
    outputs can be axis-1 splits) by staging the one element.
    """
    if arr.dtype == np.float64:
        utype, b = np.uint64, min(bit, 62)
    elif arr.dtype == np.float32:
        utype, b = np.uint32, min(bit, 30)
    else:
        return False
    if arr.size == 0:
        return False
    pos = np.unravel_index(flat_index % arr.size, arr.shape)
    one = np.array([arr[pos]], dtype=arr.dtype)
    one.view(utype)[0] |= utype(1) << utype(b)
    arr[pos] = one[0]
    return True


class FaultInjector:
    """Replays a :class:`FaultSchedule` against a simulator, deterministically."""

    def __init__(
        self,
        schedule: FaultSchedule,
        seed: int = 0,
        max_retries: int = 5,
        timeout_s: float = 1.0,
        backoff_base_s: float = 0.05,
    ):
        self.schedule = schedule
        self.seed = seed
        self.max_retries = max_retries
        self.timeout_s = timeout_s
        self.backoff_base_s = backoff_base_s
        self.rng = np.random.default_rng(seed)
        self.sim = None
        self.armed = False
        self._step = 0
        self._collective_index = 0
        self._kind_counts: Dict[str, int] = {}
        self._active_stragglers: List = []
        self._straggler_marks: Dict[int, float] = {}
        #: plain-python tallies (the same quantities also go to sim.metrics)
        self.stats = {"crashes": 0, "retries": 0, "corruptions": 0, "sdc_injected": 0}

    # ------------------------------------------------------------------
    def install(self, sim) -> "FaultInjector":
        self.sim = sim
        sim.fault_injector = self
        self.armed = True
        return self

    def uninstall(self) -> None:
        if self.sim is not None and self.sim.fault_injector is self:
            self.sim.fault_injector = None
        self.armed = False

    def _invoke(self, run: Callable):
        """Run the real collective with the injector disarmed (reentrancy)."""
        self.armed = False
        try:
            return run()
        finally:
            self.armed = True

    # ------------------------------------------------------------------
    # step boundary
    # ------------------------------------------------------------------
    def begin_step(self, step: int) -> None:
        """Called by the resilient trainer before each step; raises
        :class:`RankCrashError` when a crash is scheduled here."""
        self._step = step
        self._collective_index = 0
        self._kind_counts = {}
        self._active_stragglers = self.schedule.stragglers_active(step)
        active_ranks = {s.rank for s in self._active_stragglers}
        for s in self._active_stragglers:
            self._straggler_marks.setdefault(s.rank, self.sim.device(s.rank).compute_time)
        for rank in list(self._straggler_marks):
            if rank not in active_ranks:
                del self._straggler_marks[rank]
        crash = self.schedule.match_crash(step)
        if crash is not None:
            crash.consumed = True
            self.stats["crashes"] += 1
            self.sim.metrics.counter("resilience/crashes").inc()
            if self.sim.tracer.enabled:
                now = self.sim.device(crash.rank).clock
                self.sim.tracer.record(
                    "fault", (crash.rank,), now, now, label="crash",
                    attrs={"step": step},
                )
            raise RankCrashError(crash.rank, step)

    # ------------------------------------------------------------------
    # collective boundary
    # ------------------------------------------------------------------
    def on_collective(self, kind: str, group, run: Callable):
        sim = self.sim
        idx = self._collective_index
        self._collective_index += 1
        kidx = self._kind_counts.get(kind, 0)
        self._kind_counts[kind] = kidx + 1
        if self._active_stragglers:
            self._apply_straggler_skew()
        transient = self.schedule.match_transient(self._step, idx, kidx, kind)
        if transient is not None:
            transient.consumed = True
            t0 = sim.elapsed()
            for attempt in range(transient.fails):
                if attempt >= self.max_retries:
                    raise CollectiveTimeoutError(
                        f"{kind} over ranks {list(group.ranks)} still failing "
                        f"after {attempt} retries (step {self._step}, "
                        f"collective #{idx})"
                    )
                self._charge_failed_attempt(kind, group, transient, run, attempt)
            sim.metrics.histogram("resilience/retry_time").observe(
                sim.elapsed() - t0
            )
        corruption = self.schedule.match_corruption(self._step, idx, kidx, kind)
        result = self._invoke(run)
        if corruption is not None:
            corruption.consumed = True
            result = self._corrupt_result(kind, corruption, result)
        return result

    def _charge_failed_attempt(self, kind, group, fault, run, attempt) -> None:
        sim = self.sim
        if fault.mode == "flaky":
            # the attempt really ran on the wire (bytes + α–β time charged,
            # normal trace event recorded); the payload failed the transport
            # checksum and is dropped
            self._invoke(run)
        t0 = sim.sync(group.ranks)
        dt = self.backoff_base_s * (2.0**attempt)
        if fault.mode == "timeout":
            dt += self.timeout_s
        sim.advance(group.ranks, dt)
        self.stats["retries"] += 1
        sim.metrics.counter("resilience/retries", kind=kind).inc()
        if sim.tracer.enabled:
            sim.tracer.record(
                "fault", group.ranks, t0, t0 + dt, label=f"{kind}:{fault.mode}",
                attrs={"step": self._step, "attempt": attempt},
            )

    def _corrupt_result(self, kind: str, fault, result):
        ranks = sorted(result)
        if fault.victim_rank is not None and fault.victim_rank in result:
            victim = fault.victim_rank
        else:
            victim = ranks[int(self.rng.integers(len(ranks)))]
        arr = result[victim]
        if is_shape_array(arr):
            return result  # dryrun carries no data to corrupt
        # corrupt a copy: for broadcast the root's output aliases the
        # caller's source buffer, which must stay pristine
        corrupted = np.array(arr, copy=True)
        index = int(self.rng.integers(max(corrupted.size, 1)))
        if not _flip_high_bit(corrupted, index, fault.bit):
            return result  # non-float payload (e.g. token ids): leave it
        result = dict(result)
        result[victim] = corrupted
        self.stats["corruptions"] += 1
        sim = self.sim
        sim.metrics.counter("resilience/corruptions", kind=kind).inc()
        if sim.tracer.enabled:
            now = sim.device(victim).clock
            sim.tracer.record(
                "fault", (victim,), now, now, label=f"{kind}:corrupt",
                attrs={"step": self._step, "bit": fault.bit},
            )
        return result

    def _apply_straggler_skew(self) -> None:
        """Convert compute done since the last collective into extra clock
        time on straggling ranks; the next ``sync`` makes everyone wait."""
        for s in self._active_stragglers:
            dev = self.sim.device(s.rank)
            done = dev.compute_time - self._straggler_marks[s.rank]
            if done > 0:
                self.sim.metrics.counter("resilience/straggler_time").inc(
                    (s.factor - 1.0) * done
                )
                dev.clock += (s.factor - 1.0) * done
                self._straggler_marks[s.rank] = dev.compute_time

    # ------------------------------------------------------------------
    # gradient SDC (after backward, before the guards)
    # ------------------------------------------------------------------
    def on_gradients(self, step: int, params) -> None:
        fault = self.schedule.match_sdc(step)
        if fault is None:
            return
        candidates = [p for p in params if p.grad is not None]
        if fault.param is not None:
            candidates = [p for p in candidates if p.name == fault.param]
        if not candidates:
            return
        fault.consumed = True
        p = candidates[int(self.rng.integers(len(candidates)))]
        shard_ranks = sorted(p.grad.shards)
        if p.grad.layout.kind in _UNIQUE_GRAD_LAYOUTS:
            targets = [shard_ranks[int(self.rng.integers(len(shard_ranks)))]]
        else:
            targets = shard_ranks  # replicated layouts: corrupt consistently
        first = p.grad.shards[targets[0]]
        if is_shape_array(first):
            return
        index = int(self.rng.integers(max(np.asarray(first).size, 1)))
        flipped = False
        for r in targets:
            flipped = _flip_high_bit(np.asarray(p.grad.shards[r]), index, fault.bit)
        if not flipped:
            return
        self.stats["sdc_injected"] += 1
        sim = self.sim
        sim.metrics.counter("resilience/sdc_injected").inc()
        if sim.tracer.enabled:
            now = sim.device(targets[0]).clock
            sim.tracer.record(
                "fault", tuple(targets), now, now, label=f"sdc:{p.name}",
                attrs={"step": step, "bit": fault.bit},
            )
