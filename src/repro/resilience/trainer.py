"""A trainer that survives the fault model.

:class:`ResilientTrainer` extends the base
:class:`~repro.training.trainer.Trainer` with three recovery mechanisms,
matched to the three fault classes that escape the collectives' built-in
retry machinery:

* **periodic full-state checkpointing + restart** for fail-stop faults
  (rank crashes) and exhausted collective retries — the run rolls back to
  the last checkpoint and replays, and because checkpoints capture the
  complete training state (parameters, optimizer moments, LR step, loss
  scale, data cursor, RNG state) the replayed trajectory is bit-identical
  to an uninterrupted run;
* **gradient guards + step re-execution** for silent data corruption —
  after every backward the gradients are checked for non-finite values and
  an implausible global norm; a trip discards the step's gradients and
  re-runs the same batch (the injected fault is one-shot, so the re-run is
  clean — exactly the semantics of a transient memory/link SDC);
* **simulated-time accounting of all downtime** — checkpoint writes,
  restart latency and re-executed compute all advance the BSP clock, so
  MTTR and recovery overhead are measurable in ``sim.elapsed()``, the
  ``resilience/*`` metrics and the Perfetto trace (``recovery`` events).

Log entries past the restored step are truncated on rollback, so
``trainer.log`` always reads as one continuous, fault-free trajectory.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.resilience.faults import (
    CollectiveTimeoutError,
    RankCrashError,
    SDCDetectedError,
)
from repro.resilience.injector import FaultInjector
from repro.training.amp import grads_finite
from repro.training.optim import grad_norm
from repro.training.trainer import Trainer, TrainingDivergedError, TrainLog


class ResilientTrainer(Trainer):
    """Trainer + fault injector + checkpoint/restart + SDC guards."""

    def __init__(
        self,
        *args,
        injector: Optional[FaultInjector] = None,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        restart_cost_s: float = 30.0,
        io_bandwidth: float = 4e9,
        sdc_grad_norm_max: float = 1e8,
        max_step_retries: int = 3,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.injector = injector
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.restart_cost_s = restart_cost_s
        self.io_bandwidth = io_bandwidth
        self.sdc_grad_norm_max = sdc_grad_norm_max
        self.max_step_retries = max_step_retries
        self.recoveries = []
        self._last_checkpoint = None
        self._ckpt_bytes = 0
        if injector is not None:
            if self.sim is None:
                raise ValueError("fault injection needs a simulated model")
            injector.install(self.sim)

    # ------------------------------------------------------------------
    def train_steps(self, num_steps: int) -> TrainLog:
        target = self.step + num_steps
        while self.step < target:
            try:
                self._maybe_checkpoint()
                if self.injector is not None:
                    self.injector.begin_step(self.step)
                self._logged_step()
            except (RankCrashError, CollectiveTimeoutError) as e:
                self._recover(e)
        if self.ledger is not None:
            self.ledger.append(self.ledger_record())
        return self.log

    def _one_step(self) -> float:
        ids, labels = next(self.batches)
        for attempt in range(self.max_step_retries + 1):
            try:
                return self._run_step(ids, labels)
            except (SDCDetectedError, TrainingDivergedError):
                if attempt >= self.max_step_retries:
                    raise
                # discard the poisoned step and re-run the same batch; the
                # recomputation's cost lands on the simulated clock
                self.optimizer.zero_grad()
                self.metrics.counter("resilience/step_retries").inc()

    def _check_gradients(self, loss: float) -> None:
        if self.injector is not None:
            self.injector.on_gradients(self.step, self.optimizer.params)
        params = self.optimizer.params
        if not params:
            return  # serial adapter: no distributed gradients to guard
        if not grads_finite(params):
            self.metrics.counter("resilience/sdc_detected").inc()
            raise SDCDetectedError(
                f"non-finite gradients after backward at step {self.step}"
            )
        with np.errstate(over="ignore"):  # a corrupted 1e308 entry squares to inf
            norm = grad_norm(params)
        if norm > self.sdc_grad_norm_max:
            self.metrics.counter("resilience/sdc_detected").inc()
            raise SDCDetectedError(
                f"gradient norm {norm:.3e} exceeds SDC ceiling "
                f"{self.sdc_grad_norm_max:.3e} at step {self.step}"
            )

    # ------------------------------------------------------------------
    # checkpoint / recovery
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        if not self.checkpoint_every or self.step % self.checkpoint_every:
            return
        if self.checkpoint_path is None:
            raise ValueError("checkpoint_every set but checkpoint_path is None")
        path = self.save(self.checkpoint_path)
        self._last_checkpoint = path
        self._ckpt_bytes = os.path.getsize(path)
        self.metrics.counter("resilience/checkpoints").inc()
        sim = self.sim
        if sim is not None:
            dt = self._ckpt_bytes / self.io_bandwidth
            t0 = sim.sync(sim.ranks)
            sim.advance(sim.ranks, dt)
            if sim.tracer.enabled:
                sim.tracer.record(
                    "checkpoint", sim.ranks, t0, t0 + dt,
                    nbytes=0, label=f"step{self.step}",
                    attrs={"step": self.step, "file_bytes": self._ckpt_bytes},
                )

    def _recover(self, cause: Exception) -> None:
        """Roll back to the last checkpoint and charge the downtime."""
        if self._last_checkpoint is None:
            raise cause  # nothing to restart from: the failure is fatal
        sim = self.sim
        failed_step = self.step
        t0 = sim.sync(sim.ranks) if sim is not None else 0.0
        self.optimizer.zero_grad()
        self.resume(self._last_checkpoint)
        drop = getattr(self.model, "drop_caches", None)
        if callable(drop):
            drop()
        mttr = self.restart_cost_s + self._ckpt_bytes / self.io_bandwidth
        if sim is not None:
            sim.advance(sim.ranks, mttr)
            if sim.tracer.enabled:
                sim.tracer.record(
                    "recovery", sim.ranks, t0, t0 + mttr,
                    nbytes=0, label=type(cause).__name__,
                    attrs={
                        "failed_step": failed_step,
                        "restored_step": self.step,
                    },
                )
        self.metrics.counter("resilience/recoveries").inc()
        self.metrics.histogram("resilience/mttr").observe(mttr)
        self.recoveries.append(
            {
                "cause": type(cause).__name__,
                "detail": str(cause),
                "failed_step": failed_step,
                "restored_step": self.step,
                "mttr_s": mttr,
            }
        )
