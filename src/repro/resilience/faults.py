"""The fault model: what can go wrong, and when.

Faults are declarative — a :class:`FaultSchedule` is a list of fault specs,
each pinned to a training step (and, for collective-level faults, to the
n-th collective call of that step).  The injector consults the schedule at
well-defined points (step boundaries, collective entry, after backward),
so a given (schedule, seed) pair replays the exact same fault sequence on
every run: chaos campaigns are deterministic by construction.

The menu mirrors what operators of week-long jobs actually see:

* :class:`RankCrash` — a device dies at a step boundary (fail-stop);
  recovery is checkpoint/restart.
* :class:`TransientCollectiveFault` — a link flap: a collective attempt
  times out (``mode="timeout"``) or delivers garbage that fails the
  transport checksum and is discarded (``mode="flaky"``); recovery is
  retry with exponential backoff, every attempt charged to the simulated
  clock (and, for flaky attempts, to the byte counters — the wire moved
  the data even though it was thrown away).
* :class:`MessageCorruption` — a corrupt payload that *passes* transport
  checks: one rank's output buffer gets a flipped high-exponent bit.  Only
  the end-to-end guards (non-finite loss, gradient-norm ceiling) can catch
  it; recovery is step re-execution.
* :class:`Straggler` — one rank computes ``factor×`` slower for a window
  of steps.  No recovery needed; the BSP clock prices the skew (everyone
  waits at the next collective), making straggler cost measurable.
* :class:`GradientSDC` — a bit flip lands directly in a gradient shard
  after backward (memory corruption rather than link corruption);
  detected by the gradient guards, recovered by step re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


class RankCrashError(RuntimeError):
    """A simulated rank died (fail-stop)."""

    def __init__(self, rank: int, step: int):
        self.rank = rank
        self.step = step
        super().__init__(f"rank {rank} crashed at step {step}")


class CollectiveTimeoutError(RuntimeError):
    """A collective kept failing past the retry budget."""


class SDCDetectedError(RuntimeError):
    """A gradient guard tripped: silent data corruption detected."""


@dataclass
class RankCrash:
    step: int
    rank: int = 0
    consumed: bool = False


@dataclass
class TransientCollectiveFault:
    """The ``index``-th collective of kind ``kind`` in ``step`` fails
    ``fails`` times before succeeding."""

    step: int
    index: int = 0
    kind: str = "any"
    fails: int = 1
    mode: str = "flaky"  # "flaky": bytes move, result discarded; "timeout": no bytes
    consumed: bool = False

    def __post_init__(self):
        if self.mode not in ("flaky", "timeout"):
            raise ValueError(f"unknown transient fault mode {self.mode!r}")


@dataclass
class MessageCorruption:
    """Flip an exponent bit in one rank's output of a specific collective."""

    step: int
    index: int = 0
    kind: str = "any"
    victim_rank: Optional[int] = None  # None: seeded choice among receivers
    bit: int = 62  # exponent MSB of float64; clamped for narrower dtypes
    consumed: bool = False


@dataclass
class Straggler:
    """Rank ``rank`` computes ``factor×`` slower during the step window."""

    rank: int
    start_step: int
    num_steps: int = 1
    factor: float = 2.0

    def active(self, step: int) -> bool:
        return self.start_step <= step < self.start_step + self.num_steps


@dataclass
class GradientSDC:
    """Flip an exponent bit in a gradient shard right after backward."""

    step: int
    param: Optional[str] = None  # None: seeded choice
    bit: int = 62
    consumed: bool = False


@dataclass
class FaultSchedule:
    crashes: List[RankCrash] = field(default_factory=list)
    transients: List[TransientCollectiveFault] = field(default_factory=list)
    corruptions: List[MessageCorruption] = field(default_factory=list)
    stragglers: List[Straggler] = field(default_factory=list)
    sdc: List[GradientSDC] = field(default_factory=list)

    @classmethod
    def of(cls, *faults) -> "FaultSchedule":
        """Build a schedule from a flat list of fault specs."""
        sched = cls()
        for f in faults:
            if isinstance(f, RankCrash):
                sched.crashes.append(f)
            elif isinstance(f, TransientCollectiveFault):
                sched.transients.append(f)
            elif isinstance(f, MessageCorruption):
                sched.corruptions.append(f)
            elif isinstance(f, Straggler):
                sched.stragglers.append(f)
            elif isinstance(f, GradientSDC):
                sched.sdc.append(f)
            else:
                raise TypeError(f"not a fault spec: {f!r}")
        return sched

    def all_faults(self) -> list:
        return [
            *self.crashes, *self.transients, *self.corruptions,
            *self.stragglers, *self.sdc,
        ]

    # matching ----------------------------------------------------------
    def match_crash(self, step: int) -> Optional[RankCrash]:
        for f in self.crashes:
            if not f.consumed and f.step == step:
                return f
        return None

    @staticmethod
    def _collective_match(f, step: int, index: int, kind_index: int, kind: str) -> bool:
        """``f.index`` counts all collectives of the step when ``f.kind`` is
        "any", else only collectives of ``f.kind`` — "the first reduce of
        step 3" is robust to unrelated collectives interleaving."""
        if f.consumed or f.step != step:
            return False
        if f.kind == "any":
            return f.index == index
        return f.kind == kind and f.index == kind_index

    def match_transient(
        self, step: int, index: int, kind_index: int, kind: str
    ) -> Optional[TransientCollectiveFault]:
        for f in self.transients:
            if self._collective_match(f, step, index, kind_index, kind):
                return f
        return None

    def match_corruption(
        self, step: int, index: int, kind_index: int, kind: str
    ) -> Optional[MessageCorruption]:
        for f in self.corruptions:
            if self._collective_match(f, step, index, kind_index, kind):
                return f
        return None

    def match_sdc(self, step: int) -> Optional[GradientSDC]:
        for f in self.sdc:
            if not f.consumed and f.step == step:
                return f
        return None

    def stragglers_active(self, step: int) -> List[Straggler]:
        return [s for s in self.stragglers if s.active(step)]
