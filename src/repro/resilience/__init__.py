"""Fault injection and recovery: the simulator's unhappy path.

The paper's target jobs run for weeks on 64-GPU clusters, where rank
crashes, link flaps, stragglers and silent data corruption are routine.
This package adds a deterministic, seeded fault injector wired into the
collectives (:mod:`repro.resilience.injector`), a declarative fault model
(:mod:`repro.resilience.faults`), a trainer with checkpoint/restart and
SDC guards (:mod:`repro.resilience.trainer`), and seeded chaos campaigns
that prove recovery is lossless (:mod:`repro.resilience.chaos`, surfaced
as ``python -m repro chaos``).  With no injector installed the whole
machinery costs one attribute read per collective — the same
zero-overhead-when-off bar as ``repro.check`` and ``repro.bench``.
"""

from repro.resilience.faults import (
    CollectiveTimeoutError,
    FaultSchedule,
    GradientSDC,
    MessageCorruption,
    RankCrash,
    RankCrashError,
    SDCDetectedError,
    Straggler,
    TransientCollectiveFault,
)
from repro.resilience.injector import FaultInjector
from repro.resilience.trainer import ResilientTrainer

__all__ = [
    "FaultSchedule",
    "FaultInjector",
    "ResilientTrainer",
    "RankCrash",
    "TransientCollectiveFault",
    "MessageCorruption",
    "Straggler",
    "GradientSDC",
    "RankCrashError",
    "CollectiveTimeoutError",
    "SDCDetectedError",
]
