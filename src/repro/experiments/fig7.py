"""Figure 7 — weak-scaling (left) and strong-scaling (right) efficiency.

Efficiency is ``E = T_serial / (p · T_p)`` where ``T_serial`` is the serial
execution time of the *same* problem.  The paper could not run the large
problems on one GPU and extrapolated from a unit problem; the simulator has
no such memory limit, so we obtain ``T_serial`` directly by executing the
full problem on a 1-device mesh (where no communication is charged) —
exactly the quantity the paper approximates.

The claims to reproduce (§5.1–5.2): weak-scaling efficiency decreases for
both schemes but Optimus overtakes Megatron from 16 GPUs on, with a growing
margin; in strong scaling Megatron's efficiency trend is worse than
Optimus's, and Optimus's absolute throughput rises with p until it
surpasses Megatron at 64 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import ModelConfig, table2_weak_scaling, table3_strong_scaling
from repro.experiments.runner import run_megatron_stem, run_optimus_stem
from repro.utils.tables import format_table


@dataclass(frozen=True)
class EfficiencyPoint:
    mode: str  # "weak" / "strong"
    scheme: str
    num_devices: int
    t_parallel: float
    t_serial: float

    @property
    def efficiency(self) -> float:
        return self.t_serial / (self.num_devices * self.t_parallel)


def _serial_time(cfg: ModelConfig, batch_size: int) -> float:
    """Full-problem time on a 1×1 mesh (communication-free by construction)."""
    res = run_optimus_stem(cfg, q=1, batch_size=batch_size)
    return res.forward_time + res.backward_time


def run_weak() -> List[EfficiencyPoint]:
    points: List[EfficiencyPoint] = []
    for setting in table2_weak_scaling():
        p = setting["num_devices"]
        q = int(round(p**0.5))
        rm = run_megatron_stem(setting["model_megatron"], p, setting["batch_megatron"])
        t1_m = _serial_time(setting["model_megatron"], setting["batch_megatron"])
        points.append(
            EfficiencyPoint("weak", "megatron", p, rm.forward_time + rm.backward_time, t1_m)
        )
        ro = run_optimus_stem(setting["model_optimus"], q, setting["batch_optimus"])
        t1_o = _serial_time(setting["model_optimus"], setting["batch_optimus"])
        points.append(
            EfficiencyPoint("weak", "optimus", p, ro.forward_time + ro.backward_time, t1_o)
        )
    return points


def run_strong() -> List[EfficiencyPoint]:
    points: List[EfficiencyPoint] = []
    for setting in table3_strong_scaling():
        p = setting["num_devices"]
        q = int(round(p**0.5))
        rm = run_megatron_stem(setting["model_megatron"], p, setting["batch_megatron"])
        t1_m = _serial_time(setting["model_megatron"], setting["batch_megatron"])
        points.append(
            EfficiencyPoint("strong", "megatron", p, rm.forward_time + rm.backward_time, t1_m)
        )
        ro = run_optimus_stem(setting["model_optimus"], q, setting["batch_optimus"])
        t1_o = _serial_time(setting["model_optimus"], setting["batch_optimus"])
        points.append(
            EfficiencyPoint("strong", "optimus", p, ro.forward_time + ro.backward_time, t1_o)
        )
    return points


def plot(points: List[EfficiencyPoint], mode: str) -> str:
    """ASCII rendering of one Fig. 7 panel."""
    from repro.utils import line_plot

    pts = [p for p in points if p.mode == mode]
    ps = sorted({p.num_devices for p in pts})
    series = {}
    for scheme in ("megatron", "optimus"):
        by_p = {p.num_devices: p.efficiency for p in pts if p.scheme == scheme}
        series[scheme] = [by_p[p] for p in ps]
    return line_plot(
        series, ps, title=f"Figure 7 ({mode} scaling efficiency)", ylabel="E"
    )


def render(points: List[EfficiencyPoint]) -> str:
    return format_table(
        ["mode", "scheme", "p", "T_p (s)", "T_serial (s)", "efficiency"],
        [
            [pt.mode, pt.scheme, pt.num_devices, pt.t_parallel, pt.t_serial, pt.efficiency]
            for pt in points
        ],
        title="Figure 7 — scaling efficiency",
    )


def main() -> str:  # pragma: no cover - exercised via benchmarks
    out = render(run_weak() + run_strong())
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
