"""Experiment reproduction: one module per table/figure of the paper.

All timing rows come from dryrun (shape-backend) simulation of the exact
workload the paper measures — the 24-layer transformer stem with
checkpointed backward — on the Frontera-RTX hardware model.  Memory rows
come from strict-capacity dryrun searches.  See EXPERIMENTS.md for
paper-vs-measured values.
"""

from repro.experiments import fig7, fig8, fig9, report, table1, table2, table3
from repro.experiments.runner import StemResult, run_megatron_stem, run_optimus_stem

__all__ = [
    "StemResult",
    "run_optimus_stem",
    "run_megatron_stem",
    "table1",
    "table2",
    "table3",
    "fig7",
    "fig8",
    "fig9",
    "report",
]
