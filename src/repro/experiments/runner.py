"""Dryrun execution of the paper's measurement workload.

The paper times "the stem of Transformer, or the consecutive Transformer
layers" (§5): one forward and one checkpointed backward of N=24 layers.
These helpers build the stem in shape (dryrun) mode at any scale, run one
iteration, and report the per-sequence times / throughput / inference
columns of Tables 2–3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ModelConfig
from repro.core.model import OptimusModel
from repro.megatron.model import MegatronModel
from repro.mesh.mesh import Mesh
from repro.nn.init import init_transformer_params
from repro.runtime.simulator import Simulator


@dataclass(frozen=True)
class StemResult:
    """One table row: absolute and per-sequence times for one iteration."""

    scheme: str
    num_devices: int
    batch_size: int
    hidden_size: int
    num_heads: int
    forward_time: float
    backward_time: float
    peak_memory_bytes: float
    compute_time: float = 0.0
    comm_time: float = 0.0

    @property
    def forward_per_seq(self) -> float:
        return self.forward_time / self.batch_size

    @property
    def backward_per_seq(self) -> float:
        return self.backward_time / self.batch_size

    @property
    def throughput(self) -> float:
        """Sequences/s of a full training iteration (paper's definition)."""
        return self.batch_size / (self.forward_time + self.backward_time)

    @property
    def inference(self) -> float:
        """Sequences/s of the forward pass only (paper's definition)."""
        return self.batch_size / self.forward_time

    @property
    def comm_fraction(self) -> float:
        """Fraction of the busiest device's time spent in communication."""
        busy = self.compute_time + self.comm_time
        return self.comm_time / busy if busy else 0.0


def _stem_params(cfg: ModelConfig, dtype: str = "float32"):
    return init_transformer_params(
        cfg, backend="shape", dtype=dtype, include_embedding=False
    )


def _record_stem(ledger, label: str, sim, cfg: ModelConfig, res: StemResult, **mesh):
    """Append one ``experiment`` ledger record for a completed stem run."""
    from dataclasses import asdict

    from repro.obs.ledger import json_safe, record_from_sim

    ledger.append(
        record_from_sim(
            "experiment",
            sim,
            label=label,
            scheme=res.scheme,
            config=cfg,
            mesh=mesh or None,
            extra=json_safe(
                {
                    "workload": "stem",
                    "batch_size": res.batch_size,
                    "result": asdict(res),
                }
            ),
        )
    )


def run_optimus_stem(
    cfg: ModelConfig,
    q: int,
    batch_size: int,
    arrangement: str = "bunched",
    gpus_per_node: int = 4,
    checkpoint: bool = True,
    strict_memory: bool = False,
    ledger=None,
    run_label: str = "stem",
    trace: bool = False,
) -> StemResult:
    """One forward + one checkpointed backward of the Optimus stem.

    ``trace=True`` records spans/events so the ledger record carries a
    critical-path attribution summary; clocks, bytes and memory peaks are
    bit-identical either way (the tracer is append-only bookkeeping).
    """
    sim = Simulator.for_mesh(
        q=q,
        gpus_per_node=gpus_per_node,
        arrangement_kind=arrangement,
        backend="shape",
        strict_memory=strict_memory,
        trace=trace,
    )
    mesh = Mesh(sim, q)
    model = OptimusModel(
        mesh, cfg, _stem_params(cfg), checkpoint_activations=checkpoint, stem_only=True
    )
    model.stem_forward(batch_size)
    fwd = sim.elapsed()
    model.stem_backward()
    total = sim.elapsed()
    res = StemResult(
        scheme="optimus",
        num_devices=q * q,
        batch_size=batch_size,
        hidden_size=cfg.hidden_size,
        num_heads=cfg.num_heads,
        forward_time=fwd,
        backward_time=total - fwd,
        peak_memory_bytes=sim.peak_memory(),
        compute_time=max(d.compute_time for d in sim.devices),
        comm_time=max(d.comm_time for d in sim.devices),
    )
    if ledger is not None:
        _record_stem(ledger, run_label, sim, cfg, res, q=q, arrangement=arrangement)
    return res


def run_megatron_stem(
    cfg: ModelConfig,
    p: int,
    batch_size: int,
    gpus_per_node: int = 4,
    checkpoint: bool = True,
    checkpoint_layout: str = "distributed",
    strict_memory: bool = False,
    ledger=None,
    run_label: str = "stem",
    trace: bool = False,
) -> StemResult:
    """One forward + one checkpointed backward of the Megatron stem."""
    sim = Simulator.for_flat(
        p=p, gpus_per_node=gpus_per_node, backend="shape",
        strict_memory=strict_memory, trace=trace,
    )
    model = MegatronModel(
        sim,
        cfg,
        _stem_params(cfg),
        checkpoint_activations=checkpoint,
        checkpoint_layout=checkpoint_layout,
        stem_only=True,
    )
    model.stem_forward(batch_size)
    fwd = sim.elapsed()
    model.stem_backward()
    total = sim.elapsed()
    res = StemResult(
        scheme="megatron",
        num_devices=p,
        batch_size=batch_size,
        hidden_size=cfg.hidden_size,
        num_heads=cfg.num_heads,
        forward_time=fwd,
        backward_time=total - fwd,
        peak_memory_bytes=sim.peak_memory(),
        compute_time=max(d.compute_time for d in sim.devices),
        comm_time=max(d.comm_time for d in sim.devices),
    )
    if ledger is not None:
        _record_stem(ledger, run_label, sim, cfg, res)
    return res
