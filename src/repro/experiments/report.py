"""Consolidated report generation.

Collects the rendered tables the benchmark suite persisted under
``benchmarks/results/`` into one markdown report, with the paper's headline
claims summarized up top.  Exposed as ``python -m repro report``.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional

#: display order and titles of the persisted result files
SECTIONS: List[tuple] = [
    ("table1", "Table 1 — per-layer communication & computation costs"),
    ("table2", "Table 2 — weak scaling"),
    ("table3", "Table 3 — strong scaling"),
    ("fig7_weak", "Figure 7 (left) — weak-scaling efficiency"),
    ("fig7_strong", "Figure 7 (right) — strong-scaling efficiency"),
    ("fig8", "Figure 8 — GPU arrangement"),
    ("fig9", "Figure 9 — memory limits"),
    ("isoefficiency", "Isoefficiency analysis (§3.1.2)"),
    ("ablation_buffers", "Ablation — §3.2.3 memory management"),
    ("parallelism_comparison", "Extension — parallelism families compared"),
    ("hybrid_scaling", "Extension — hybrid data × tensor scaling"),
]

HEADER = """# Reproduction report

Generated from the rendered outputs of the benchmark suite
(`pytest benchmarks/`).  Headline claims:

* Optimus overtakes Megatron in weak-scaling throughput from 16 GPUs on,
  reaching ~1.35× training / ~1.6× inference at 64 GPUs (paper: 1.48×/1.79×).
* In strong scaling Optimus's throughput rises with p and passes Megatron at
  64 GPUs (measured ratio 1.11×, the paper's exact value).
* The maximum batch size within 16 GB grows with p for Optimus and shrinks
  for Megatron — 8.1× apart at 64 GPUs (paper: 8×).
* Simulator counters match the paper's Table 1 cost formulas to ≤0.1%
  (plus only the documented small terms).
"""


def default_results_dir() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def collect(results_dir: Optional[pathlib.Path] = None) -> Dict[str, str]:
    """Read whatever result files exist; returns {section key: text}."""
    d = pathlib.Path(results_dir) if results_dir else default_results_dir()
    out: Dict[str, str] = {}
    if not d.is_dir():
        return out
    for key, _ in SECTIONS:
        path = d / f"{key}.txt"
        if path.is_file():
            out[key] = path.read_text().rstrip()
    return out


def render(results: Dict[str, str]) -> str:
    """Assemble the markdown report from collected sections."""
    parts = [HEADER]
    missing = []
    for key, title in SECTIONS:
        if key in results:
            parts.append(f"## {title}\n\n```\n{results[key]}\n```")
        else:
            missing.append(title)
    if missing:
        parts.append(
            "## Missing sections\n\nRun `pytest benchmarks/` to generate:\n"
            + "\n".join(f"* {t}" for t in missing)
        )
    return "\n\n".join(parts) + "\n"


def main(results_dir: Optional[pathlib.Path] = None, output: Optional[pathlib.Path] = None) -> str:
    text = render(collect(results_dir))
    if output is not None:
        pathlib.Path(output).write_text(text)
    print(text)
    return text
