"""Figure 9 — memory limits: maximum runnable batch size vs device count.

Same weak-scaling configurations as Table 2 (h ∝ q, N = 24, s = 512); for
each device count we search the largest batch whose per-device peak —
measured on the byte-accurate dryrun allocator, including parameters,
gradients, distributed checkpoints and the working set — fits a 16 GB GPU.

The paper's claims to reproduce: Megatron's limit *decreases* with p (its
replicated activations grow with h ∝ √p), Optimus's *increases* (batch per
device stays constant while everything is 1/p-distributed), reaching
b = 480 on 64 GPUs — 8× Megatron's limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import table2_weak_scaling
from repro.hardware.specs import RTX5000
from repro.perfmodel.memory_model import max_batch_size
from repro.utils.tables import format_table

#: Fig. 9 anchors stated in the paper text (§5.3): Optimus runs b=480 on 64
#: GPUs, 8× Megatron's limit (i.e. Megatron ≈ 60).
PAPER_LIMITS: Dict[int, Dict[str, Optional[int]]] = {
    4: {"megatron": None, "optimus": None},
    16: {"megatron": None, "optimus": None},
    36: {"megatron": None, "optimus": None},
    64: {"megatron": 60, "optimus": 480},
}


@dataclass(frozen=True)
class Fig9Row:
    num_devices: int
    scheme: str
    hidden_size: int
    max_batch: int
    paper: Optional[int]


def run(
    capacity_bytes: float = RTX5000.memory_bytes,
    optimizer_slots: int = 0,
    method: str = "measure",
) -> List[Fig9Row]:
    rows: List[Fig9Row] = []
    for setting in table2_weak_scaling():
        p = setting["num_devices"]
        for scheme, cfg_key in (("megatron", "model_megatron"), ("optimus", "model_optimus")):
            cfg = setting[cfg_key]
            limit = max_batch_size(
                scheme,
                cfg,
                p,
                capacity_bytes,
                method=method,
                optimizer_slots=optimizer_slots,
            )
            rows.append(
                Fig9Row(p, scheme, cfg.hidden_size, limit, PAPER_LIMITS[p][scheme])
            )
    return rows


def render(rows: List[Fig9Row]) -> str:
    return format_table(
        ["p", "scheme", "h", "max batch", "paper"],
        [
            [r.num_devices, r.scheme, r.hidden_size, r.max_batch, r.paper or "-"]
            for r in rows
        ],
        title="Figure 9 — maximum batch size within 16 GB per device",
    )


def plot(rows: List[Fig9Row]) -> str:
    """ASCII rendering of the Fig. 9 max-batch curves."""
    from repro.utils import line_plot

    ps = sorted({r.num_devices for r in rows})
    series = {}
    for scheme in ("megatron", "optimus"):
        by_p = {r.num_devices: r.max_batch for r in rows if r.scheme == scheme}
        series[scheme] = [by_p[p] for p in ps]
    return line_plot(
        series, ps, title="Figure 9 (maximum batch size)", ylabel="max b"
    )


def ratio_at(rows: List[Fig9Row], p: int) -> float:
    by = {(r.scheme, r.num_devices): r for r in rows}
    return by[("optimus", p)].max_batch / by[("megatron", p)].max_batch


def main() -> str:  # pragma: no cover - exercised via benchmarks
    rows = run()
    out = render(rows)
    out += f"\nOptimus/Megatron max-batch ratio at p=64: {ratio_at(rows, 64):.1f}x (paper: 8x)"
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
