"""Table 1 — communication and computation costs per transformer layer.

Validates the simulator against the paper's closed forms: we run a
single-layer stem, read each device's β-weighted communication volume
(``log₂(g)·B`` per tree collective, ``2(g−1)/g·B`` per ring all-reduce —
exactly the units of Table 1) and its GEMM MAC count, and compare with the
formulas of :mod:`repro.perfmodel.costs`.

Measured values sit slightly above the formulas because the real layer also
performs the small collectives Table 1 ignores: LayerNorm statistic
all-reduces ([T_loc, 2] buffers), bias broadcasts, dγ/dβ reductions, and —
for Megatron's backward — the distributed-checkpoint all-gather.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List

from repro.config import ModelConfig
from repro.core.model import OptimusModel
from repro.megatron.model import MegatronModel
from repro.mesh.mesh import Mesh
from repro.nn.init import init_transformer_params
from repro.perfmodel import costs
from repro.runtime.simulator import Simulator
from repro.utils.tables import format_table

DEFAULT_CFG = ModelConfig(
    vocab_size=51200, hidden_size=4096, num_heads=64, num_layers=1, seq_len=512
)


@dataclass(frozen=True)
class Table1Row:
    scheme: str
    phase: str  # "forward" / "backward"
    quantity: str  # "comm (scalars)" / "compute (MACs)"
    measured: float
    model: float

    @property
    def ratio(self) -> float:
        return self.measured / self.model if self.model else float("nan")


def _measure(scheme: str, cfg: ModelConfig, p: int, b: int):
    params = init_transformer_params(
        cfg, backend="shape", dtype="float32", include_embedding=False
    )
    if scheme == "optimus":
        q = int(round(p**0.5))
        sim = Simulator.for_mesh(q=q, backend="shape")
        model = OptimusModel(Mesh(sim, q), cfg, params, stem_only=True)
    else:
        sim = Simulator.for_flat(p=p, backend="shape")
        model = MegatronModel(sim, cfg, params, stem_only=True)

    elem = 4  # stems run in float32; Table 1 counts scalars
    model.stem_forward(b)
    fwd_comm = sim.max_weighted_comm_volume() / elem
    fwd_macs = max(d.flops_gemm for d in sim.devices) / 2.0
    model.stem_backward()
    bwd_comm = sim.max_weighted_comm_volume() / elem - fwd_comm
    bwd_macs = max(d.flops_gemm for d in sim.devices) / 2.0 - fwd_macs
    return fwd_comm, bwd_comm, fwd_macs, bwd_macs


def run(cfg: ModelConfig = DEFAULT_CFG, p: int = 16, batch_size: int = 16) -> List[Table1Row]:
    """Measure one layer of both schemes and pair with the Table 1 formulas."""
    cfg = dataclasses.replace(cfg, num_layers=1)
    b, s, h = batch_size, cfg.seq_len, cfg.hidden_size
    rows: List[Table1Row] = []
    for scheme in ("megatron", "optimus"):
        fwd_comm, bwd_comm, fwd_macs, bwd_macs = _measure(scheme, cfg, p, b)
        t1 = costs.TABLE1[scheme]
        rows += [
            Table1Row(scheme, "forward", "comm (scalars)", fwd_comm, t1.forward_comm(b, s, h, p)),
            Table1Row(scheme, "backward", "comm (scalars)", bwd_comm, t1.backward_comm(b, s, h, p)),
            Table1Row(scheme, "forward", "compute (MACs)", fwd_macs, t1.forward_macs(b, s, h, p)),
            Table1Row(scheme, "backward", "compute (MACs)", bwd_macs, t1.backward_macs(b, s, h, p)),
        ]
    return rows


def render(rows: List[Table1Row]) -> str:
    return format_table(
        ["scheme", "phase", "quantity", "measured", "Table 1 model", "ratio"],
        [[r.scheme, r.phase, r.quantity, r.measured, r.model, r.ratio] for r in rows],
        title="Table 1 — per-layer costs: simulator vs paper formulas",
    )


def main() -> str:  # pragma: no cover - exercised via benchmarks
    out = render(run())
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
