"""Table 3 — strong scaling: fixed problem size, 4 → 64 GPUs.

The paper fixes h ≈ 3072, s = 512, N = 24 and scales devices.  Because
Megatron needs n divisible by p it runs n = 64 (72 at p = 36, with h bumped
to 3096); Optimus only needs n divisible by q so it keeps n = 24.  Megatron
cannot host b = 24 so it uses b = 12 (per-sequence metrics are unaffected —
both communication and computation are proportional to b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import table3_strong_scaling
from repro.experiments.runner import StemResult, run_megatron_stem, run_optimus_stem
from repro.utils.tables import format_table

#: The paper's Table 3 values: p -> (fwd/seq, bwd/seq, throughput, inference)
PAPER_MEGATRON: Dict[int, Tuple[float, float, float, float]] = {
    4: (0.1225, 0.4749, 1.6737, 8.1616),
    16: (0.1143, 0.4293, 1.8397, 8.7521),
    36: (0.1212, 0.4512, 1.7470, 8.2503),
    64: (0.1195, 0.5306, 1.8180, 8.3711),
}
#: note: the paper's p=4 inference entry (0.4415) is an evident typo; the
#: consistent value 1/0.1888 ≈ 5.30 is used for comparisons instead.
PAPER_OPTIMUS: Dict[int, Tuple[float, float, float, float]] = {
    4: (0.1888, 0.5691, 1.3195, 5.2966),
    16: (0.1950, 0.5704, 1.4095, 5.1285),
    36: (0.1625, 0.4764, 1.5653, 6.1542),
    64: (0.1253, 0.3716, 2.0123, 7.9808),
}


@dataclass(frozen=True)
class Table3Row:
    result: StemResult
    paper: Tuple[float, float, float, float]

    def as_list(self) -> list:
        r, pp = self.result, self.paper
        return [
            r.num_devices, r.scheme, r.batch_size, r.hidden_size, r.num_heads,
            r.forward_per_seq, pp[0], r.backward_per_seq, pp[1],
            r.throughput, pp[2], r.inference, pp[3],
        ]


def run() -> List[Table3Row]:
    rows: List[Table3Row] = []
    for setting in table3_strong_scaling():
        p = setting["num_devices"]
        q = int(round(p**0.5))
        rm = run_megatron_stem(setting["model_megatron"], p, setting["batch_megatron"])
        rows.append(Table3Row(rm, PAPER_MEGATRON[p]))
        ro = run_optimus_stem(setting["model_optimus"], q, setting["batch_optimus"])
        rows.append(Table3Row(ro, PAPER_OPTIMUS[p]))
    return rows


def render(rows: List[Table3Row]) -> str:
    return format_table(
        [
            "p", "scheme", "b", "h", "heads",
            "fwd/seq", "(paper)", "bwd/seq", "(paper)",
            "thr", "(paper)", "inf", "(paper)",
        ],
        [r.as_list() for r in rows],
        title="Table 3 — strong scaling (simulated vs paper-measured)",
    )


def optimus_trend(rows: List[Table3Row]) -> List[float]:
    """Optimus throughput by p — the paper's 'increasing trend' claim."""
    return [r.result.throughput for r in rows if r.result.scheme == "optimus"]


def main() -> str:  # pragma: no cover - exercised via benchmarks
    rows = run()
    out = render(rows)
    by = {(r.result.scheme, r.result.num_devices): r.result for r in rows}
    ratio = by[("optimus", 64)].throughput / by[("megatron", 64)].throughput
    out += f"\nOptimus/Megatron throughput at p=64: {ratio:.2f}x (paper: 1.11x)"
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
