"""Table 2 — weak scaling on 4 → 64 GPUs, Megatron vs Optimus.

Reproduces the paper's setting: fixed parameters per device (h ∝ q = √p),
N = 24 layers, s = 512, batch sizes exactly as the paper ran them (Optimus
grows b with q, Megatron shrinks b to stay within memory).  All four
reported columns — forward time / batch size, backward time / batch size,
throughput, inference — use the paper's definitions (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import table2_weak_scaling
from repro.experiments.runner import StemResult, run_megatron_stem, run_optimus_stem
from repro.utils.tables import format_table

#: The paper's Table 2 values: p -> (fwd/seq, bwd/seq, throughput, inference)
PAPER_MEGATRON: Dict[int, Tuple[float, float, float, float]] = {
    4: (0.0793, 0.2613, 2.9363, 13.1047),
    16: (0.2081, 0.5149, 1.3831, 4.8046),
    36: (0.3379, 0.7955, 0.8823, 2.9596),
    64: (0.4638, 1.0963, 0.6410, 2.1560),
}
PAPER_OPTIMUS: Dict[int, Tuple[float, float, float, float]] = {
    4: (0.0985, 0.2979, 2.5229, 10.1502),
    16: (0.1764, 0.5312, 1.4134, 5.6704),
    36: (0.1901, 0.5759, 1.3055, 5.2593),
    64: (0.2589, 0.7935, 0.9502, 3.8625),
}


@dataclass(frozen=True)
class Table2Row:
    result: StemResult
    paper: Tuple[float, float, float, float]

    def as_list(self) -> list:
        r, pp = self.result, self.paper
        return [
            r.num_devices,
            r.scheme,
            r.batch_size,
            r.hidden_size,
            r.num_heads,
            r.forward_per_seq,
            pp[0],
            r.backward_per_seq,
            pp[1],
            r.throughput,
            pp[2],
            r.inference,
            pp[3],
        ]


def run() -> List[Table2Row]:
    """All eight rows (four device counts × two schemes)."""
    rows: List[Table2Row] = []
    for setting in table2_weak_scaling():
        p = setting["num_devices"]
        q = int(round(p**0.5))
        rm = run_megatron_stem(setting["model_megatron"], p, setting["batch_megatron"])
        rows.append(Table2Row(rm, PAPER_MEGATRON[p]))
        ro = run_optimus_stem(setting["model_optimus"], q, setting["batch_optimus"])
        rows.append(Table2Row(ro, PAPER_OPTIMUS[p]))
    return rows


def render(rows: List[Table2Row]) -> str:
    return format_table(
        [
            "p", "scheme", "b", "h", "heads",
            "fwd/seq", "(paper)", "bwd/seq", "(paper)",
            "thr", "(paper)", "inf", "(paper)",
        ],
        [r.as_list() for r in rows],
        title="Table 2 — weak scaling (simulated vs paper-measured)",
    )


def speedup_at(rows: List[Table2Row], p: int) -> Tuple[float, float]:
    """(training speedup, inference speedup) of Optimus over Megatron at p."""
    by = {(r.result.scheme, r.result.num_devices): r.result for r in rows}
    meg, opt = by[("megatron", p)], by[("optimus", p)]
    return opt.throughput / meg.throughput, opt.inference / meg.inference


def main() -> str:  # pragma: no cover - exercised via benchmarks
    rows = run()
    out = render(rows)
    tr, inf = speedup_at(rows, 64)
    out += f"\nOptimus speedup over Megatron on 64 GPUs: {tr:.2f}x training, {inf:.2f}x inference"
    out += "\n(paper: 1.48x training, 1.79x inference)"
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
