"""Figure 8 — naive vs bunched GPU arrangement.

The paper's observation: on 4 nodes × 4 GPUs with a 4×4 mesh placed
row-major (naive), every mesh column spans all 4 nodes and the 4 concurrent
column broadcasts crowd each node's single NIC; the bunched arrangement
(one 2×2 sub-mesh per node) halves both the nodes spanned and the crowding.

We reproduce it at two granularities: the single-collective level (time of
one column broadcast under each arrangement, from the α–β model) and the
end-to-end level (full stem iteration time under each arrangement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.comm.cost import GroupCommModel
from repro.config import ModelConfig
from repro.experiments.runner import run_optimus_stem
from repro.hardware import (
    ClusterTopology,
    bunched_arrangement,
    frontera_rtx,
    naive_arrangement,
)
from repro.utils.tables import format_table

DEFAULT_CFG = ModelConfig(
    vocab_size=51200, hidden_size=4096, num_heads=64, num_layers=24, seq_len=512
)


@dataclass(frozen=True)
class Fig8Row:
    level: str  # "column broadcast" / "stem iteration"
    naive_time: float
    bunched_time: float

    @property
    def speedup(self) -> float:
        return self.naive_time / self.bunched_time


def broadcast_comparison(q: int = 4, nbytes: int = 64 * 2**20) -> Fig8Row:
    """One column broadcast of ``nbytes``, all q columns concurrent."""
    cluster = frontera_rtx(num_nodes=q * q // 4)
    topo = ClusterTopology(cluster)
    cols = [[i * q + j for i in range(q)] for j in range(q)]
    times = {}
    for name, arr in (
        ("naive", naive_arrangement(cluster, q)),
        ("bunched", bunched_arrangement(cluster, q)),
    ):
        model = GroupCommModel.build(topo, arr, cols[0], siblings=cols)
        times[name] = model.broadcast_time(nbytes)
    return Fig8Row("column broadcast", times["naive"], times["bunched"])


def stem_comparison(cfg: ModelConfig = DEFAULT_CFG, q: int = 4, batch_size: int = 64) -> Fig8Row:
    """Full 24-layer iteration time under each arrangement."""
    times = {}
    for name in ("naive", "bunched"):
        res = run_optimus_stem(cfg, q, batch_size, arrangement=name)
        times[name] = res.forward_time + res.backward_time
    return Fig8Row("stem iteration", times["naive"], times["bunched"])


def run() -> List[Fig8Row]:
    return [broadcast_comparison(), stem_comparison()]


def render(rows: List[Fig8Row]) -> str:
    return format_table(
        ["level", "naive (s)", "bunched (s)", "speedup"],
        [[r.level, r.naive_time, r.bunched_time, r.speedup] for r in rows],
        title="Figure 8 — GPU arrangement (4 nodes x 4 GPUs, 4x4 mesh)",
    )


def main() -> str:  # pragma: no cover - exercised via benchmarks
    out = render(run())
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
