"""Optional execution tracing for the simulator.

A :class:`Tracer` collects :class:`TraceEvent` records (collectives and
compute regions with start/end simulated times).  Tracing is off by default;
tests and the examples use it to inspect timelines and to assert scheduling
properties (e.g. that concurrent row broadcasts do not serialize).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    kind: str  # "broadcast", "reduce", "all_reduce", "compute", ...
    ranks: Tuple[int, ...]
    t_start: float
    t_end: float
    nbytes: float = 0.0
    label: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class Tracer:
    enabled: bool = False
    events: List[TraceEvent] = field(default_factory=list)

    def record(
        self,
        kind: str,
        ranks,
        t_start: float,
        t_end: float,
        nbytes: float = 0.0,
        label: str = "",
    ) -> None:
        if self.enabled:
            self.events.append(
                TraceEvent(kind, tuple(ranks), t_start, t_end, nbytes, label)
            )

    def clear(self) -> None:
        self.events.clear()

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def total_time(self, kind: Optional[str] = None) -> float:
        evs = self.events if kind is None else self.of_kind(kind)
        return sum(e.duration for e in evs)
