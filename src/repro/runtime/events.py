"""Execution tracing for the simulator: flat events and hierarchical spans.

Two complementary record types, both stamped in *simulated* time:

* :class:`TraceEvent` — flat, per-occurrence records of collectives,
  point-to-point transfers and compute kernels.  These carry the byte and
  β-weighted volumes the cost model charged, and back the communication
  matrix and the collective-stats aggregations.

* :class:`Span` — hierarchical, per-rank regions (``step > layer > op >
  collective``) opened and closed with :meth:`Tracer.span`.  Each rank in a
  span gets its own record with that rank's begin/end clock, a stable span
  id, and the parent span id on the same rank, so exporters can rebuild the
  nesting exactly (and the Perfetto exporter renders one track per rank).

Tracing is off by default and must cost ~nothing when disabled: hot call
sites are expected to check :attr:`Tracer.enabled` *before* building
argument tuples, and :meth:`Tracer.span` returns a shared no-op context
manager without touching any per-rank state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    kind: str  # "broadcast", "reduce", "all_reduce", "p2p", "compute", ...
    ranks: Tuple[int, ...]
    t_start: float
    t_end: float
    nbytes: float = 0.0
    label: str = ""
    weighted: float = 0.0  # β-weighted volume charged per participant
    attrs: Optional[Mapping[str, object]] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class Span:
    """One rank's view of a hierarchical trace region."""

    name: str
    category: str  # "step", "layer", "op", "collective", ...
    rank: int
    t_start: float
    t_end: float
    depth: int  # nesting depth on this rank (0 = top level)
    sid: int  # span id, shared by all ranks of the same region
    parent: Optional[int]  # enclosing span's sid on this rank, if any
    attrs: Mapping[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """An open span: captures per-rank begin clocks, closes on ``__exit__``."""

    __slots__ = ("tracer", "name", "category", "ranks", "attrs", "sid", "_t0", "_parent", "_depth")

    def __init__(self, tracer: "Tracer", name: str, ranks, category: str, attrs):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.ranks = tuple(ranks)
        self.attrs = attrs
        self.sid = tracer._next_sid()
        self._t0: Dict[int, float] = {}
        self._parent: Dict[int, Optional[int]] = {}
        self._depth: Dict[int, int] = {}

    def __enter__(self) -> "_SpanHandle":
        clock = self.tracer.clock_of
        for r in self.ranks:
            stack = self.tracer._stacks.setdefault(r, [])
            self._parent[r] = stack[-1] if stack else None
            self._depth[r] = len(stack)
            self._t0[r] = clock(r) if clock is not None else 0.0
            stack.append(self.sid)
        return self

    def __exit__(self, *exc) -> bool:
        clock = self.tracer.clock_of
        for r in self.ranks:
            stack = self.tracer._stacks[r]
            if not stack or stack[-1] != self.sid:
                raise RuntimeError(
                    f"span {self.name!r} (sid {self.sid}) closed out of order on "
                    f"rank {r}: open stack {stack}"
                )
            stack.pop()
            self.tracer.spans.append(
                Span(
                    name=self.name,
                    category=self.category,
                    rank=r,
                    t_start=self._t0[r],
                    t_end=clock(r) if clock is not None else 0.0,
                    depth=self._depth[r],
                    sid=self.sid,
                    parent=self._parent[r],
                    attrs=self.attrs,
                )
            )
        return False


class Tracer:
    """Event/span recorder; ``enabled`` toggles notify the owning simulator.

    ``enabled`` is a property so that direct writes (``sim.tracer.enabled =
    True``, common in tests) keep the simulator's precomputed
    :attr:`~repro.runtime.simulator.Simulator.is_enabled` fast-path flag in
    sync via the ``on_toggle`` callback.
    """

    __slots__ = ("_enabled", "events", "spans", "clock_of", "on_toggle", "_stacks", "_sid")

    def __init__(
        self,
        enabled: bool = False,
        events: Optional[List[TraceEvent]] = None,
        spans: Optional[List[Span]] = None,
        clock_of: Optional[Callable[[int], float]] = None,
    ):
        self._enabled = bool(enabled)
        self.events: List[TraceEvent] = events if events is not None else []
        self.spans: List[Span] = spans if spans is not None else []
        #: per-rank simulated clock source, wired up by the Simulator
        self.clock_of = clock_of
        #: called after every ``enabled`` write (wired up by the Simulator)
        self.on_toggle: Optional[Callable[[], None]] = None
        self._stacks: Dict[int, List[int]] = {}
        self._sid = 0

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        if self.on_toggle is not None:
            self.on_toggle()

    def _next_sid(self) -> int:
        self._sid += 1
        return self._sid

    # ------------------------------------------------------------------
    # flat events
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        ranks,
        t_start: float,
        t_end: float,
        nbytes: float = 0.0,
        label: str = "",
        weighted: float = 0.0,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> None:
        if self.enabled:
            self.events.append(
                TraceEvent(kind, tuple(ranks), t_start, t_end, nbytes, label, weighted, attrs)
            )

    # ------------------------------------------------------------------
    # hierarchical spans
    # ------------------------------------------------------------------
    def span(self, name: str, ranks, category: str = "op", **attrs):
        """Open a nested region over ``ranks``; use as a context manager.

        Returns a shared no-op when tracing is disabled, so call sites may
        write ``with tracer.span(...)`` unconditionally — though hot loops
        should still guard on :attr:`enabled` to skip kwargs construction.
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, ranks, category, attrs)

    @property
    def open_span_count(self) -> int:
        return sum(len(s) for s in self._stacks.values())

    def spans_of(
        self, category: Optional[str] = None, rank: Optional[int] = None
    ) -> List[Span]:
        out = self.spans
        if category is not None:
            out = [s for s in out if s.category == category]
        if rank is not None:
            out = [s for s in out if s.rank == rank]
        return list(out) if out is self.spans else out

    def max_depth(self, rank: Optional[int] = None) -> int:
        spans = self.spans if rank is None else [s for s in self.spans if s.rank == rank]
        return max((s.depth for s in spans), default=-1) + 1

    # ------------------------------------------------------------------
    # maintenance / queries
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self.events.clear()
        self.spans.clear()
        self._stacks.clear()

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def total_time(self, kind: Optional[str] = None) -> float:
        evs = self.events if kind is None else self.of_kind(kind)
        return sum(e.duration for e in evs)
