"""Per-device memory accounting.

The paper's memory argument (§3.1.1, Fig. 9) is entirely about *bytes per
device*: Megatron replicates activations (``O(bsh)`` per device) while
Optimus fully distributes them (``O(bsh/p)``).  The :class:`MemoryMeter`
tracks current and peak usage with optional capacity enforcement so the
Fig. 9 max-batch-size search can detect out-of-memory exactly where a real
16 GB GPU would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional


class MemSample(NamedTuple):
    """One point of a per-rank allocation timeline (simulated time)."""

    t: float
    tag: str
    tag_bytes: int  # bytes held under ``tag`` after the operation
    total: int  # total bytes in use on the rank after the operation


class OutOfDeviceMemory(RuntimeError):
    """Raised when a strict-capacity allocation exceeds device memory."""

    def __init__(self, rank: int, requested: int, current: int, capacity: int):
        self.rank = rank
        self.requested = requested
        self.current = current
        self.capacity = capacity
        super().__init__(
            f"rank {rank}: OOM allocating {requested} B "
            f"(in use {current} B of {capacity} B)"
        )


@dataclass
class MemoryMeter:
    """Byte counter with peak tracking and optional capacity enforcement."""

    rank: int
    capacity: Optional[int] = None  # None = unlimited (no OOM checking)
    strict: bool = False
    current: int = 0
    peak: int = 0
    num_allocs: int = 0  # allocation events — a fragmentation-pressure proxy
    by_tag: Dict[str, int] = field(default_factory=dict)
    #: simulated-clock source (wired by the Simulator to the owning device)
    clock_fn: Optional[Callable[[], float]] = None
    #: per-allocation timeline; ``None`` (the default) disables sampling
    timeline: Optional[List[MemSample]] = None

    def enable_timeline(self) -> None:
        """Start recording a (time, tag, bytes) sample per alloc/free."""
        if self.timeline is None:
            self.timeline = []

    def _sample(self, tag: str) -> None:
        self.timeline.append(
            MemSample(
                t=self.clock_fn() if self.clock_fn is not None else 0.0,
                tag=tag,
                tag_bytes=self.by_tag.get(tag, 0),
                total=self.current,
            )
        )

    def alloc(self, nbytes: int, tag: str = "untagged") -> int:
        """Charge an allocation; returns the byte count for convenience."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("negative allocation")
        if self.strict and self.capacity is not None and self.current + nbytes > self.capacity:
            raise OutOfDeviceMemory(self.rank, nbytes, self.current, self.capacity)
        self.current += nbytes
        self.num_allocs += 1
        self.by_tag[tag] = self.by_tag.get(tag, 0) + nbytes
        if self.current > self.peak:
            self.peak = self.current
        if self.timeline is not None:
            self._sample(tag)
        return nbytes

    def free(self, nbytes: int, tag: str = "untagged") -> None:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("negative free")
        if nbytes > self.current:
            raise ValueError(
                f"rank {self.rank}: freeing {nbytes} B but only {self.current} B in use"
            )
        tagged = self.by_tag.get(tag, 0)
        if nbytes > tagged:
            raise ValueError(
                f"rank {self.rank}: freeing {nbytes} B from tag {tag!r} "
                f"which holds only {tagged} B"
            )
        self.current -= nbytes
        self.by_tag[tag] = tagged - nbytes
        if self.timeline is not None:
            self._sample(tag)

    def free_tag(self, tag: str) -> int:
        """Release everything charged under a tag; returns bytes freed."""
        n = self.by_tag.get(tag, 0)
        if n:
            self.free(n, tag)
        return n

    def reset_peak(self) -> None:
        self.peak = self.current

    @property
    def headroom(self) -> Optional[int]:
        if self.capacity is None:
            return None
        return self.capacity - self.current
