"""The single-controller SPMD simulator.

One :class:`Simulator` instance models a job: a cluster, a rank→GPU
arrangement, and one :class:`SimDevice` per rank.  All distributed modules
(Optimus, Megatron) execute against a simulator; collectives in
:mod:`repro.comm` use its topology to price communication and its devices to
advance bulk-synchronous clocks.

Design note — why single-controller: running one OS process per simulated
rank (mpi4py-style) would give no additional fidelity here, since the
simulation is deterministic and bulk-synchronous; a single controller that
loops over ranks keeps the numerics bit-reproducible, makes every rank's
state inspectable in tests, and is dramatically faster for the q≤8 meshes we
execute numerically.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.hardware.arrangement import Arrangement, linear_arrangement, make_arrangement
from repro.hardware.specs import ClusterSpec, frontera_rtx
from repro.hardware.topology import ClusterTopology
from repro.obs.metrics import MetricsRegistry
from repro.runtime.device import SimDevice
from repro.runtime.events import Tracer
from repro.runtime.memory import MemoryMeter, MemSample


class Simulator:
    """A simulated multi-device job."""

    def __init__(
        self,
        cluster: ClusterSpec,
        num_ranks: Optional[int] = None,
        arrangement: Optional[Arrangement] = None,
        strict_memory: bool = False,
        backend: str = "numpy",
        trace: bool = False,
        strict_invariants: Optional[bool] = None,
    ):
        self.cluster = cluster
        self.num_ranks = num_ranks if num_ranks is not None else cluster.num_devices
        if self.num_ranks > cluster.num_devices:
            raise ValueError(
                f"{self.num_ranks} ranks do not fit on {cluster.num_devices} devices"
            )
        self.arrangement = (
            arrangement
            if arrangement is not None
            else linear_arrangement(cluster, self.num_ranks)
        )
        if self.arrangement.num_ranks != self.num_ranks:
            raise ValueError("arrangement rank count does not match simulator")
        self.topology = ClusterTopology(cluster)
        self.backend = backend  # "numpy" (real data) or "shape" (dryrun)
        # strict mode: validate every DTensor built on this simulator against
        # its layout contract (repro.check.invariants).  Costs O(data) per
        # DTensor, so it is opt-in — per simulator, or process-wide via the
        # REPRO_STRICT_INVARIANTS environment variable (used by CI).
        if strict_invariants is None:
            strict_invariants = os.environ.get(
                "REPRO_STRICT_INVARIANTS", ""
            ).lower() in ("1", "true", "yes", "on")
        self._strict_invariants = bool(strict_invariants)
        self.tracer = Tracer(enabled=trace)
        self.tracer.on_toggle = self._refresh_is_enabled
        #: precomputed instrumentation flag: True iff *any* per-call checking
        #: or tracing (strict invariants, span/event tracing) is active.  Hot
        #: paths guard on this single attribute so that disabled-mode
        #: overhead is two attribute reads (``sim.is_enabled``) — the
        #: ``micro/instrumentation`` benchmark measures exactly this.
        self.is_enabled = self._strict_invariants or trace
        self.metrics = MetricsRegistry()
        #: fault injector (repro.resilience), or None.  Collectives check
        #: this single attribute; when None (the default) the fault
        #: machinery costs one attribute read and contributes nothing to
        #: numerics, clocks, byte counters or traces.
        self.fault_injector = None
        self.devices: List[SimDevice] = [
            SimDevice(
                rank=r,
                spec=cluster.device,
                memory=MemoryMeter(
                    rank=r, capacity=cluster.device.memory_bytes, strict=strict_memory
                ),
                tracer=self.tracer,
            )
            for r in range(self.num_ranks)
        ]
        self.tracer.clock_of = lambda r: self.devices[r].clock
        for d in self.devices:
            d.memory.clock_fn = (lambda dev=d: dev.clock)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_mesh(
        cls,
        q: int,
        gpus_per_node: int = 4,
        arrangement_kind: str = "bunched",
        **kw,
    ) -> "Simulator":
        """Build a simulator sized for a q×q mesh on Frontera-like nodes."""
        p = q * q
        num_nodes = -(-p // gpus_per_node)  # ceil
        cluster = frontera_rtx(num_nodes, gpus_per_node)
        arr = make_arrangement(cluster, q, arrangement_kind)
        return cls(cluster, num_ranks=p, arrangement=arr, **kw)

    @classmethod
    def for_flat(cls, p: int, gpus_per_node: int = 4, **kw) -> "Simulator":
        """Build a simulator for a flat p-rank (Megatron-style) group."""
        num_nodes = -(-p // gpus_per_node)
        cluster = frontera_rtx(num_nodes, gpus_per_node)
        return cls(cluster, num_ranks=p, arrangement=linear_arrangement(cluster, p), **kw)

    # ------------------------------------------------------------------
    # device access and clock management
    # ------------------------------------------------------------------
    def device(self, rank: int) -> SimDevice:
        return self.devices[rank]

    @property
    def ranks(self) -> range:
        return range(self.num_ranks)

    def sync(self, ranks: Sequence[int]) -> float:
        """Barrier over a rank set; returns the synchronized time."""
        t = max(self.devices[r].clock for r in ranks)
        for r in ranks:
            self.devices[r].clock = t
        return t

    def advance(self, ranks: Sequence[int], dt: float) -> None:
        for r in ranks:
            self.devices[r].clock += dt

    def elapsed(self) -> float:
        """Simulated wall-clock of the job so far (slowest rank)."""
        return max(d.clock for d in self.devices)

    def reset_time(self, keep_trace: bool = False) -> None:
        """Zero clocks and compute/comm counters; memory state is kept.

        ``keep_trace=True`` preserves accumulated trace events and spans —
        useful when an experiment times phases separately but wants one
        continuous timeline exported at the end.
        """
        for d in self.devices:
            d.reset_counters(reset_clock=True)
        if not keep_trace:
            self.tracer.clear()

    # ------------------------------------------------------------------
    # correctness checking
    # ------------------------------------------------------------------
    def _refresh_is_enabled(self) -> None:
        self.is_enabled = self._strict_invariants or self.tracer.enabled

    @property
    def strict_invariants(self) -> bool:
        return self._strict_invariants

    @strict_invariants.setter
    def strict_invariants(self, value: bool) -> None:
        self._strict_invariants = bool(value)
        self._refresh_is_enabled()

    def enable_strict_invariants(self) -> None:
        """Validate every subsequently-built DTensor against its layout."""
        self.strict_invariants = True

    def disable_strict_invariants(self) -> None:
        self.strict_invariants = False

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_memory_timeline(self) -> None:
        """Start per-allocation (time, tag, bytes) sampling on every rank."""
        for d in self.devices:
            d.memory.enable_timeline()

    def memory_timeline(self) -> Dict[int, List[MemSample]]:
        """Per-rank allocation timelines (empty lists when sampling is off)."""
        return {d.rank: list(d.memory.timeline or []) for d in self.devices}

    def comm_matrix(self, weighted: bool = False):
        """Rank→rank traffic matrix from the trace (requires ``trace=True``)."""
        from repro.obs.comm_matrix import comm_matrix

        return comm_matrix(self, weighted=weighted)

    # ------------------------------------------------------------------
    # aggregate statistics
    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        return sum(d.flops for d in self.devices)

    def total_bytes_comm(self) -> float:
        return sum(d.bytes_comm for d in self.devices)

    def max_weighted_comm_volume(self) -> float:
        return max(d.weighted_comm_volume for d in self.devices)

    def peak_memory(self) -> int:
        return max(d.memory.peak for d in self.devices)

    def memory_report(self) -> Dict[int, Dict[str, int]]:
        return {
            d.rank: {"current": d.memory.current, "peak": d.memory.peak}
            for d in self.devices
        }

    def watermarks(self) -> List[Dict[str, float]]:
        """Per-rank high-water counters for the run ledger: peak/current
        memory, allocation events, and the cumulative compute/comm split."""
        return [
            {
                "rank": d.rank,
                "peak_bytes": int(d.memory.peak),
                "current_bytes": int(d.memory.current),
                "num_allocs": int(d.memory.num_allocs),
                "clock": d.clock,
                "flops": d.flops,
                "flops_gemm": d.flops_gemm,
                "bytes_comm": d.bytes_comm,
                "weighted_comm_volume": d.weighted_comm_volume,
                "compute_time": d.compute_time,
                "comm_time": d.comm_time,
                "num_collectives": int(d.num_collectives),
            }
            for d in self.devices
        ]

    def summary(self) -> Dict[str, float]:
        return {
            "elapsed": self.elapsed(),
            "total_flops": self.total_flops(),
            "total_bytes_comm": self.total_bytes_comm(),
            "peak_memory_bytes": float(self.peak_memory()),
            "max_compute_time": max(d.compute_time for d in self.devices),
            "max_comm_time": max(d.comm_time for d in self.devices),
        }
