"""Post-run analysis of simulator state: utilization, breakdowns, timelines.

These helpers turn the raw per-device counters and trace events into the
quantities performance engineers actually look at — busy/idle fractions,
compute-vs-communication splits, per-collective traffic totals — and back
the "time breakdown" columns of the comparison benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.runtime.events import Tracer
from repro.runtime.simulator import Simulator


@dataclass(frozen=True)
class DeviceBreakdown:
    rank: int
    compute_time: float
    comm_time: float
    idle_time: float
    total_time: float

    @property
    def busy_fraction(self) -> float:
        return (self.compute_time + self.comm_time) / self.total_time if self.total_time else 0.0

    @property
    def comm_fraction(self) -> float:
        busy = self.compute_time + self.comm_time
        return self.comm_time / busy if busy else 0.0


def device_breakdowns(sim: Simulator) -> List[DeviceBreakdown]:
    """Per-device compute / communication / idle split of the run so far.

    Idle is measured against the job's elapsed time (slowest rank), so the
    slowest device shows ~zero idle and everyone else's idle is the time
    they spent waiting at collectives or on pipeline dependencies.
    """
    elapsed = sim.elapsed()
    out = []
    for d in sim.devices:
        idle = max(0.0, elapsed - d.compute_time - d.comm_time)
        out.append(
            DeviceBreakdown(
                rank=d.rank,
                compute_time=d.compute_time,
                comm_time=d.comm_time,
                idle_time=idle,
                total_time=elapsed,
            )
        )
    return out


def utilization(sim: Simulator) -> float:
    """Mean busy fraction across devices (1.0 = perfectly balanced, no waits)."""
    bds = device_breakdowns(sim)
    if not bds:
        return 0.0
    return sum(b.busy_fraction for b in bds) / len(bds)


def comm_fraction(sim: Simulator) -> float:
    """Fraction of the critical path spent communicating (slowest rank)."""
    slowest = max(sim.devices, key=lambda d: d.clock)
    busy = slowest.compute_time + slowest.comm_time
    return slowest.comm_time / busy if busy else 0.0


@dataclass(frozen=True)
class CollectiveStats:
    kind: str
    count: int
    total_bytes: float  # payload bytes, counted once per event
    total_time: float
    total_weighted: float = 0.0  # β-weighted volume charged per participant
    total_bytes_charged: float = 0.0  # bytes as the device counters saw them


def collective_stats(tracer: Tracer) -> Dict[str, CollectiveStats]:
    """Aggregate traced communication events by kind (requires trace=True).

    Covers grouped collectives *and* point-to-point transfers; compute
    events are excluded.  ``total_bytes_charged`` multiplies each payload by
    its participant count (both endpoints for p2p), which is exactly what
    the per-device ``bytes_comm`` counters accumulate — so
    ``sum(s.total_bytes_charged) == sim.total_bytes_comm()`` for a fully
    traced run.
    """
    agg: Dict[str, List] = {}
    for e in tracer.events:
        # request/alert are serving-lifecycle annotations, not traffic
        if e.kind in ("compute", "request", "alert"):
            continue
        agg.setdefault(e.kind, []).append(e)
    return {
        kind: CollectiveStats(
            kind=kind,
            count=len(evs),
            total_bytes=sum(e.nbytes for e in evs),
            total_time=sum(e.duration for e in evs),
            total_weighted=sum(e.weighted * len(e.ranks) for e in evs),
            total_bytes_charged=sum(e.nbytes * len(e.ranks) for e in evs),
        )
        for kind, evs in agg.items()
    }


@dataclass(frozen=True)
class RankActivity:
    """Busy/idle split of one rank derived purely from trace records."""

    rank: int
    busy_time: float
    idle_time: float
    total_time: float

    @property
    def busy_fraction(self) -> float:
        return self.busy_time / self.total_time if self.total_time else 0.0


def _union_length(intervals: List) -> float:
    """Total length of a union of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    cur_start, cur_end = intervals[0]
    for s, e in intervals[1:]:
        if s > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = s, e
        else:
            cur_end = max(cur_end, e)
    return total + (cur_end - cur_start)


def rank_activity(
    tracer: Tracer, num_ranks: int, elapsed: Optional[float] = None
) -> List[RankActivity]:
    """Per-rank busy/idle fractions from trace events alone.

    Busy intervals are compute slices, collective participation, and the
    *receiving* side of point-to-point transfers (the sender's copy engine
    does not stall its compute stream).  Overlaps are unioned, so a rank is
    never more than 100% busy.  Unlike :func:`device_breakdowns`, this needs
    only a tracer — e.g. one loaded back from an exported trace.
    """
    per_rank: Dict[int, List] = {r: [] for r in range(num_ranks)}
    for e in tracer.events:
        if e.duration <= 0:
            continue
        if e.kind in ("request", "alert"):  # annotations, not occupancy
            continue
        if e.kind == "compute":
            targets = (e.ranks[0],)
        elif e.kind == "p2p":
            targets = (e.ranks[1],)
        else:
            targets = e.ranks
        for r in targets:
            per_rank[r].append((e.t_start, e.t_end))
    horizon = elapsed
    if horizon is None:
        horizon = max((e.t_end for e in tracer.events), default=0.0)
    out = []
    for r in range(num_ranks):
        busy = _union_length(per_rank[r])
        out.append(
            RankActivity(
                rank=r,
                busy_time=busy,
                idle_time=max(0.0, horizon - busy),
                total_time=horizon,
            )
        )
    return out


def load_imbalance(sim: Simulator) -> float:
    """max/mean compute time across devices (1.0 = perfectly balanced)."""
    times = [d.compute_time for d in sim.devices]
    mean = sum(times) / len(times)
    return max(times) / mean if mean else 1.0


def format_breakdown(sim: Simulator, title: str = "") -> str:
    """Human-readable per-device breakdown table."""
    from repro.utils.tables import format_table

    rows = [
        [b.rank, b.compute_time, b.comm_time, b.idle_time,
         f"{b.busy_fraction:.1%}", f"{b.comm_fraction:.1%}"]
        for b in device_breakdowns(sim)
    ]
    return format_table(
        ["rank", "compute (s)", "comm (s)", "idle (s)", "busy", "comm share"],
        rows,
        title=title or "Per-device time breakdown",
    )
