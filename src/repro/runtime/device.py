"""A single simulated accelerator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.specs import DeviceSpec
from repro.runtime.events import Tracer
from repro.runtime.memory import MemoryMeter


@dataclass
class SimDevice:
    """One rank's device: BSP clock, compute/comm counters, memory meter.

    Counters:

    * ``flops`` — scalar multiply-adds executed locally (2·m·k·n per GEMM);
    * ``bytes_comm`` — raw bytes this device received in collectives;
    * ``weighted_comm_volume`` — the paper's cost-model quantity: bytes
      multiplied by the per-collective stage factor (``log₂ g`` for tree
      broadcast/reduce, ``2(g−1)/g`` for ring all-reduce).  Summed over a
      transformer layer this reproduces Table 1's communication column
      exactly, which is how the Table 1 benchmark validates the simulator.
    """

    rank: int
    spec: DeviceSpec
    memory: MemoryMeter
    clock: float = 0.0
    flops: float = 0.0
    flops_gemm: float = 0.0  # matmul-only MAC·2 count (Table 1 validation)
    bytes_comm: float = 0.0
    weighted_comm_volume: float = 0.0
    compute_time: float = 0.0
    comm_time: float = 0.0
    num_collectives: int = 0
    tracer: Optional[Tracer] = None  # wired by the Simulator

    def compute(self, flops: float, kind: str = "gemm") -> float:
        """Charge a local computation; returns the simulated duration.

        ``kind`` separates GEMM FLOPs (the paper's Table 1 counts only
        matrix-product multiply-adds) from elementwise work (GELU, softmax,
        layernorm), which is charged to the clock but excluded from
        ``flops_gemm``.
        """
        if flops < 0:
            raise ValueError("negative flops")
        dt = flops / self.spec.effective_flops
        self.flops += flops
        if kind == "gemm":
            self.flops_gemm += flops
        self.compute_time += dt
        t0 = self.clock
        self.clock += dt
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.record(
                "compute", (self.rank,), t0, self.clock,
                label=kind, attrs={"flops": flops},
            )
        return dt

    def charge_comm(self, dt: float, nbytes: float, weighted_volume: float) -> None:
        """Record one collective's contribution (clock advance is separate)."""
        self.comm_time += dt
        self.bytes_comm += nbytes
        self.weighted_comm_volume += weighted_volume
        self.num_collectives += 1

    def reset_counters(self, reset_clock: bool = True) -> None:
        if reset_clock:
            self.clock = 0.0
        self.flops = 0.0
        self.flops_gemm = 0.0
        self.bytes_comm = 0.0
        self.weighted_comm_volume = 0.0
        self.compute_time = 0.0
        self.comm_time = 0.0
        self.num_collectives = 0
