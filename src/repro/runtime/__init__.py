"""Simulated multi-device runtime.

A :class:`Simulator` owns one :class:`SimDevice` per rank.  Devices carry a
bulk-synchronous-parallel clock, FLOP and communication counters, and a
byte-accurate :class:`MemoryMeter`.  Collectives (in :mod:`repro.comm`)
advance and synchronize clocks using the α–β cost model; local compute
charges ``flops / effective_flops`` seconds.

The same runtime backs both execution modes: in numeric mode device shards
hold real numpy data, in dryrun mode they hold ShapeArray placeholders — the
accounting is identical because it is driven by shapes, not data.
"""

from repro.runtime.device import SimDevice
from repro.runtime.events import NULL_SPAN, Span, TraceEvent, Tracer
from repro.runtime.memory import MemoryMeter, MemSample, OutOfDeviceMemory
from repro.runtime.simulator import Simulator

__all__ = [
    "MemoryMeter",
    "MemSample",
    "OutOfDeviceMemory",
    "SimDevice",
    "Simulator",
    "NULL_SPAN",
    "Span",
    "TraceEvent",
    "Tracer",
]
