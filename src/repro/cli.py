"""Command-line interface: regenerate any of the paper's tables and figures.

Usage::

    python -m repro table2            # weak scaling (Table 2)
    python -m repro fig9              # memory limits (Figure 9)
    python -m repro all               # every table and figure
    python -m repro verify            # quick numerical equivalence check
    python -m repro check --trials 5  # fuzzed equivalence + contract checks
    python -m repro profile table1 --trace-out trace.json --mem-timeline
    python -m repro critpath table1 --folded stem.folded
    python -m repro ledger compact --dry-run

Each experiment command prints the same rows/series the paper reports, side
by side with the paper's measured values.  ``profile`` runs a small traced
instance of an experiment workload and emits span/communication/memory
reports plus a Perfetto-loadable ``trace.json`` (see docs/simulator.md,
"Profiling and tracing").
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _cmd_table1() -> None:
    from repro.experiments import table1

    table1.main()


def _cmd_table2() -> None:
    from repro.experiments import table2

    table2.main()


def _cmd_table3() -> None:
    from repro.experiments import table3

    table3.main()


def _cmd_fig7() -> None:
    from repro.experiments import fig7

    weak, strong = fig7.run_weak(), fig7.run_strong()
    print(fig7.render(weak + strong))
    print()
    print(fig7.plot(weak, "weak"))
    print()
    print(fig7.plot(strong, "strong"))


def _cmd_fig8() -> None:
    from repro.experiments import fig8

    fig8.main()


def _cmd_fig9() -> None:
    from repro.experiments import fig9

    rows = fig9.run()
    print(fig9.render(rows))
    print(f"Optimus/Megatron ratio at p=64: {fig9.ratio_at(rows, 64):.2f}x (paper: 8x)")
    print()
    print(fig9.plot(rows))


def _cmd_isoefficiency() -> None:
    from repro.perfmodel import isoefficiency_work
    from repro.utils import format_table

    rows = [
        [p, isoefficiency_work("megatron", p), isoefficiency_work("optimus", p)]
        for p in (4, 16, 64, 256, 1024, 4096)
    ]
    print(
        format_table(
            ["p", "W needed (Megatron)", "W needed (Optimus)"],
            rows,
            title="Isoefficiency at E=0.8 (W~p³ vs W~(√p·log p)³, §3.1.2)",
        )
    )


def _cmd_report() -> None:
    from repro.experiments import report

    report.main()


def _cmd_verify() -> None:
    """Tiny end-to-end equivalence check across all three implementations."""
    import numpy as np

    from repro.config import tiny_config
    from repro.core import OptimusModel
    from repro.megatron import MegatronModel
    from repro.mesh import Mesh
    from repro.nn import init_transformer_params
    from repro.reference import ReferenceTransformer
    from repro.runtime import Simulator

    cfg = tiny_config(num_layers=2)
    params = init_transformer_params(cfg, seed=1)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, cfg.vocab_size, size=(6, cfg.seq_len))
    labels = rng.integers(0, cfg.vocab_size, size=(6, cfg.seq_len))

    ref_loss = float(ReferenceTransformer(cfg, params).forward(ids, labels))
    sim = Simulator.for_mesh(q=2)
    opt_loss = OptimusModel(Mesh(sim, 2), cfg, params).forward(ids, labels)
    meg_loss = MegatronModel(Simulator.for_flat(p=3), cfg, params).forward(ids, labels)
    print(f"serial reference loss : {ref_loss:.12f}")
    print(f"Optimus (2x2)    loss : {opt_loss:.12f}  (diff {abs(opt_loss - ref_loss):.2e})")
    print(f"Megatron (p=3)   loss : {meg_loss:.12f}  (diff {abs(meg_loss - ref_loss):.2e})")
    ok = abs(opt_loss - ref_loss) < 1e-9 and abs(meg_loss - ref_loss) < 1e-9
    print("OK: all three implementations agree" if ok else "MISMATCH")
    if not ok:  # pragma: no cover
        sys.exit(1)


COMMANDS: Dict[str, Callable[[], None]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "isoefficiency": _cmd_isoefficiency,
    "report": _cmd_report,
    "verify": _cmd_verify,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the Optimus paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")
    for name in sorted(COMMANDS) + ["all"]:
        sub.add_parser(name, help=f"regenerate {name}")

    from repro.obs.profile import EXPERIMENTS  # cheap: no heavy imports at top level

    prof = sub.add_parser(
        "profile",
        help="run a traced experiment workload and report spans/comm/memory",
    )
    prof.add_argument("experiment", choices=sorted(EXPERIMENTS))
    prof.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Perfetto/Chrome trace_event JSON file",
    )
    prof.add_argument(
        "--mem-timeline", action="store_true",
        help="sample a per-allocation memory timeline on every rank",
    )
    prof.add_argument(
        "--scheme", choices=("optimus", "megatron"), default="optimus",
        help="which parallelism scheme to profile (default: optimus)",
    )
    prof.add_argument(
        "--top", type=int, default=12, help="rows in the top-span report"
    )

    crit = sub.add_parser(
        "critpath",
        help="trace an experiment workload, attribute every nanosecond "
        "(compute/comm/stall/overhead) and rank critical-path bottlenecks "
        "against the α–β cost model",
    )
    crit.add_argument("experiment", choices=sorted(EXPERIMENTS))
    crit.add_argument(
        "--scheme", choices=("optimus", "megatron"), default="optimus",
        help="which parallelism scheme to analyze (default: optimus)",
    )
    crit.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the deterministic repro-critpath-v1 JSON document",
    )
    crit.add_argument(
        "--folded", default=None, metavar="PATH",
        help="write a collapsed-stack flamegraph (speedscope/flamegraph.pl)",
    )
    crit.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print only the canonical JSON document to stdout",
    )
    crit.add_argument(
        "--top", type=int, default=12, help="rows in the bottleneck table"
    )
    crit.add_argument(
        "--calibrate", action="store_true",
        help="emit a canonical-JSON α–β cost-model adjustment suggestion "
        "from the measured/predicted bottleneck ratios (no automatic "
        "application)",
    )
    crit.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="with --calibrate: store the suggestion as a ledger extra",
    )

    led = sub.add_parser(
        "ledger", help="run-ledger maintenance (see subcommands)"
    )
    led_sub = led.add_subparsers(
        dest="ledger_command", required=True, metavar="subcommand"
    )
    led_compact = led_sub.add_parser(
        "compact",
        help="rewrite the ledger keeping the latest record per "
        "(config fingerprint, git rev); run_ids are preserved",
    )
    led_compact.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger JSONL file/dir (default: benchmarks/ledger/ledger.jsonl)",
    )
    led_compact.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the compacted ledger here instead of in place",
    )
    led_compact.add_argument(
        "--dry-run", action="store_true",
        help="report what would be dropped without writing anything",
    )

    bch = sub.add_parser(
        "bench",
        help="run the pinned micro/macro benchmark suite "
        "(machine-readable results, optional regression gate)",
    )
    bch.add_argument(
        "--out", default=None, metavar="PATH",
        help="write repro-bench-v1 JSON results (use 'auto' for BENCH_<date>.json)",
    )
    bch.add_argument(
        "--compare", default=None, metavar="BASELINE.json", dest="baseline",
        help="compare against a baseline; exit 1 on wall-clock regression",
    )
    bch.add_argument(
        "--only", action="append", default=None, metavar="PATTERN",
        help="run only benchmarks whose name contains PATTERN (repeatable)",
    )
    bch.add_argument(
        "--repeats", type=int, default=None,
        help="override per-benchmark repeat count",
    )
    bch.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative wall-clock regression threshold (default 0.20)",
    )
    bch.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append a 'bench' record to this run-ledger JSONL file/dir",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign: crash/corrupt/retry/restart, "
        "verify recovery reaches a bit-exact loss trajectory",
    )
    chaos.add_argument("--seed", type=int, default=0, help="campaign seed")
    chaos.add_argument(
        "--quick", action="store_true", help="short campaign (CI smoke job)"
    )
    chaos.add_argument(
        "--serve", action="store_true",
        help="serving campaign instead of training: crash/flaky-link/straggler "
        "faults inside the decode loop, recovery must be token-identical",
    )
    chaos.add_argument(
        "--steps", type=int, default=None, help="training steps per run (>= 5)"
    )
    chaos.add_argument(
        "--scheme", action="append", default=None, dest="schemes",
        choices=("optimus", "megatron", "hybrid"),
        help="restrict to a scheme (repeatable; default: all three)",
    )
    chaos.add_argument(
        "--out", default=None, metavar="PATH", help="write campaign JSON report"
    )
    chaos.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write per-scheme Perfetto traces of the chaos runs",
    )
    chaos.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append per-scheme 'chaos' records to this run-ledger file/dir",
    )

    dash = sub.add_parser(
        "dash",
        help="render a static HTML dashboard + OpenMetrics file from the "
        "run ledger (collects missing evidence first)",
    )
    dash.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger JSONL file/dir (default: benchmarks/ledger/ledger.jsonl)",
    )
    dash.add_argument(
        "--out", default=None, metavar="PATH",
        help="dashboard HTML path (default: <ledger dir>/dash.html)",
    )
    dash.add_argument(
        "--openmetrics", default=None, metavar="PATH",
        help="OpenMetrics text path (default: <ledger dir>/metrics.txt)",
    )
    dash.add_argument(
        "--baseline", default="benchmarks/baseline.json", metavar="PATH",
        help="bench baseline for the regression section",
    )
    dash.add_argument(
        "--no-collect", action="store_true",
        help="render only what the ledger already holds (no new runs)",
    )

    srv = sub.add_parser(
        "serve",
        help="serve seeded synthetic traffic through the Optimus/Megatron "
        "decode engines (continuous batching, sharded KV-cache) and emit a "
        "byte-deterministic repro-serve-v1 report",
    )
    srv.add_argument("--seed", type=int, default=0, help="traffic seed")
    srv.add_argument(
        "--quick", action="store_true",
        help="short poisson-only run (CI smoke job)",
    )
    srv.add_argument(
        "--scheme", action="append", default=None,
        choices=("optimus", "megatron"),
        help="restrict to a scheme (repeatable; default: both)",
    )
    srv.add_argument(
        "--arrival", action="append", default=None,
        choices=("poisson", "bursty"),
        help="restrict to an arrival profile (repeatable; default: both)",
    )
    srv.add_argument("--requests", type=int, default=None, help="request count")
    srv.add_argument(
        "--rate", type=float, default=None, help="mean offered load (requests/s)"
    )
    srv.add_argument("--q", type=int, default=None, help="mesh side (devices = q²)")
    srv.add_argument(
        "--slots", type=int, default=None, help="concurrent sequence slots"
    )
    srv.add_argument(
        "--block-size", type=int, default=None, help="KV-cache block size (tokens)"
    )
    srv.add_argument(
        "--blocks", type=int, default=None,
        help="KV blocks per optimus row-group (megatron gets q× for equal "
        "per-device bytes)",
    )
    srv.add_argument(
        "--slo-ttft", type=float, default=None,
        help="SLO: time-to-first-token bound (simulated seconds)",
    )
    srv.add_argument(
        "--slo-tpot", type=float, default=None,
        help="SLO: time-per-output-token bound (simulated seconds)",
    )
    srv.add_argument(
        "--out", default=None, metavar="PATH", help="write the JSON report here"
    )
    srv.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append per-arm 'serve' records to this run-ledger file/dir",
    )
    srv.add_argument(
        "--compare", default=None, metavar="BASELINE.json",
        help="SLO regression gate: exit 1 if p99 latency or goodput regresses",
    )
    srv.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative SLO regression threshold (default 0.20)",
    )
    srv.add_argument(
        "--ab", action="store_true",
        help="run batched-mesh vs per-rank arms and demand byte equality",
    )
    srv.add_argument(
        "--policy", default=None, choices=("reserve", "preempt"),
        help="admission policy: conservative whole-footprint reservation "
        "(default) or prompt-footprint admission with preemption",
    )
    srv.add_argument(
        "--swap-blocks", type=int, default=None, metavar="N",
        help="host swap capacity in KV blocks for preempted sequences "
        "(0 = recompute fallback only)",
    )
    srv.add_argument(
        "--swap-bw", type=float, default=None, metavar="GBPS",
        help="host swap link bandwidth per rank (GB/s, default 16)",
    )
    srv.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="e2e deadline applied to every request (simulated seconds)",
    )
    srv.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="idempotent retry budget per request after a deadline timeout",
    )
    srv.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="overload backpressure: shed arrivals beyond this waiting-room depth",
    )
    srv.add_argument(
        "--preempt-ab", action="store_true",
        help="run reserve vs preempt(swap) vs preempt(recompute) arms on an "
        "overload profile and gate on preemption winning",
    )
    srv.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve a live OpenMetrics endpoint on 127.0.0.1:PORT while the "
        "run executes (0 = ephemeral port; simulated outputs unchanged)",
    )
    srv.add_argument(
        "--metrics-hold", type=float, default=None, metavar="SECONDS",
        help="keep the metrics endpoint up this long after the run so late "
        "scrapers catch the final state (/quitquitquit ends it early)",
    )
    srv.add_argument(
        "--alerts", action="store_true",
        help="arm the stock SLO alert rules (p99-TTFT/TPOT burn, queue-depth "
        "ceiling, KV-occupancy high-water, goodput floor); adds an 'alerts' "
        "section per arm",
    )
    srv.add_argument(
        "--alert-rules", default=None, metavar="RULES.json",
        help="arm a custom JSON list of alert rules instead of the stock set",
    )
    srv.add_argument(
        "--sweep", default=None, metavar="RATE1,RATE2,...",
        help="latency-vs-load sweep: run the seeded traffic at each offered "
        "load and emit a repro-serve-sweep-v1 report (one ledger record per "
        "point with --ledger; the dashboard charts the curve)",
    )

    chk = sub.add_parser(
        "check",
        help="fuzzed Optimus/Megatron/serial equivalence under contract "
        "and invariant checking",
    )
    chk.add_argument("--seed", type=int, default=0, help="fuzzing seed")
    chk.add_argument("--trials", type=int, default=5, help="number of trials")
    chk.add_argument(
        "--no-strict", action="store_true",
        help="skip DTensor layout-invariant validation",
    )
    chk.add_argument(
        "--no-contracts", action="store_true",
        help="skip collective contract checking",
    )
    chk.add_argument(
        "--no-batched", action="store_true",
        help="skip the batched-mesh vs per-rank bit-exactness arm",
    )

    met = sub.add_parser(
        "metrics",
        help="live OpenMetrics endpoints (see subcommands)",
    )
    met_sub = met.add_subparsers(
        dest="metrics_command", required=True, metavar="subcommand"
    )
    met_serve = met_sub.add_parser(
        "serve",
        help="serve the run ledger's newest per-kind metrics over HTTP "
        "(re-read on every scrape; validated OpenMetrics)",
    )
    met_serve.add_argument(
        "ledger", nargs="?", default="benchmarks/ledger",
        help="ledger JSONL file/dir (default: benchmarks/ledger)",
    )
    met_serve.add_argument(
        "--port", type=int, default=9464,
        help="listen port on 127.0.0.1 (0 = ephemeral; default 9464)",
    )
    met_serve.add_argument(
        "--hold", type=float, default=None, metavar="SECONDS",
        help="serve for this long then exit (default: until ctrl-c or "
        "/quitquitquit)",
    )

    args = parser.parse_args(argv)
    if args.command == "critpath":
        from repro.obs.critpath import main as critpath_main

        return critpath_main(
            args.experiment,
            scheme=args.scheme,
            out=args.out,
            folded=args.folded,
            top=args.top,
            as_json=args.as_json,
            calibrate=args.calibrate,
            ledger=args.ledger,
        )
    if args.command == "metrics":
        from repro.obs.live import serve_ledger_metrics

        return serve_ledger_metrics(args.ledger, port=args.port, hold=args.hold)
    if args.command == "ledger":
        from repro.obs.ledger import compact_main

        return compact_main(
            ledger=args.ledger, out=args.out, dry_run=args.dry_run
        )
    if args.command == "bench":
        from repro.bench.cli import main as bench_main

        return bench_main(
            out=args.out,
            baseline=args.baseline,
            only=args.only,
            repeats=args.repeats,
            threshold=args.threshold,
            ledger=args.ledger,
        )
    if args.command == "chaos":
        if args.serve:
            from repro.serving.chaos import SERVE_SCHEMES
            from repro.serving.chaos import main as serve_chaos_main

            return serve_chaos_main(
                seed=args.seed,
                quick=args.quick,
                schemes=args.schemes or SERVE_SCHEMES,
                out=args.out,
                ledger_dir=args.ledger,
            )
        from repro.resilience.chaos import main as chaos_main

        return chaos_main(
            seed=args.seed,
            quick=args.quick,
            steps=args.steps,
            schemes=args.schemes,
            out=args.out,
            trace_out=args.trace_out,
            ledger=args.ledger,
        )
    if args.command == "dash":
        from repro.obs.dash import main as dash_main

        return dash_main(
            ledger=args.ledger,
            out=args.out,
            openmetrics_out=args.openmetrics,
            baseline=args.baseline,
            no_collect=args.no_collect,
        )
    if args.command == "serve":
        from repro.serving.report import cmd_serve

        return cmd_serve(args)
    if args.command == "check":
        from repro.check.fuzz import main as check_main

        return check_main(
            seed=args.seed,
            trials=args.trials,
            strict=not args.no_strict,
            contracts=not args.no_contracts,
            batched=not args.no_batched,
        )
    if args.command == "profile":
        from repro.obs.profile import main as profile_main

        return profile_main(
            args.experiment,
            trace_out=args.trace_out,
            mem_timeline=args.mem_timeline,
            scheme=args.scheme,
            top=args.top,
        )
    if args.command == "all":
        for name in ("table1", "table2", "table3", "fig7", "fig8", "fig9", "isoefficiency"):
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            COMMANDS[name]()
    else:
        COMMANDS[args.command]()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
