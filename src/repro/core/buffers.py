"""Memory pre-allocation and systematic buffering (paper §3.2.3, Fig. 6).

The paper manually manages five reusable per-device buffers so that SUMMA's
frequent temporary allocations (cloning parameters, receiving broadcasts)
never fragment device memory:

* **workspace** — scratch for in-flight broadcast/reduce blocks;
* **forward** — outputs of SUMMA-style ops during a layer's forward pass;
* **backward** — input gradients of SUMMA-style ops during backward;
* **param_grad** — parameter gradients of the current layer;
* **conjunction** — the activation-gradient hand-off between consecutive
  layers (so the backward buffer can be reset per layer).

We model this with logical *regions*.  In **managed** mode each region is a
grow-only arena: its charged memory is the high-water mark of concurrent
holdings, and "allocation" inside the arena is free (1 allocation event per
growth).  In **unmanaged** mode (the ablation baseline) every hold is a real
allocation event and every release a free — same peak bytes, but orders of
magnitude more allocator traffic, the fragmentation pressure the paper set
out to remove.

The paper's three additional options (§3.2.3 items 1–3) are exposed as
flags:

1. ``merge_fwd_bwd`` — forward and backward regions share one arena;
2. ``immediate_update`` — the optimizer consumes ``param_grad`` right after
   each layer's backward so the region resets per layer (handled by the
   trainer; the region API supports it via :meth:`reset_region`);
3. ``skip_matmul_outputs`` — matmul outputs are not buffered during the
   checkpointed re-forward (their values are not needed to compute input
   gradients), shrinking the forward region during backward.

A measured finding worth recording: under activation checkpointing,
arena-level fwd/bwd merging (option 1) does **not** reduce the peak — the
recomputed forward tensors and the backward gradients are live at the same
time, so a shared arena simply reaches the sum of both high-water marks.
The savings the paper describes require slot-level reuse, which option 3
delivers (see the ablation benchmark).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.runtime.simulator import Simulator

REGIONS = ("workspace", "forward", "backward", "param_grad", "conjunction", "checkpoint")


class ArrayPool:
    """A free-list of real numpy scratch buffers, keyed by nbytes-class.

    The SUMMA kernels produce one partial-product block per rank per step;
    before this pool every such block was a fresh ``ndarray`` allocation
    that died microseconds later.  The pool hands out views over recycled
    power-of-two byte buffers instead: :meth:`acquire` returns a C-contiguous
    array of the exact requested shape/dtype (suitable as a ``np.matmul``
    ``out=`` target, which is bit-identical to an out-of-place product), and
    :meth:`release` returns its backing storage to the free list.

    This pools *host* allocations of the simulator process itself — the
    simulated-device arenas are :class:`BufferManager`'s job.  Keying by
    rounded byte class rather than exact shape lets one buffer serve every
    same-sized block shape that SUMMA's three algorithms cycle through.
    """

    #: buffers kept per size class before further releases are dropped
    MAX_PER_CLASS = 16

    __slots__ = ("_free", "_backing", "hits", "misses", "dropped")

    def __init__(self):
        self._free: Dict[int, List[np.ndarray]] = {}
        self._backing: Dict[int, np.ndarray] = {}  # id(view) -> raw buffer
        self.hits = 0
        self.misses = 0
        self.dropped = 0

    @staticmethod
    def _class_of(nbytes: int) -> int:
        return 1 << (nbytes - 1).bit_length() if nbytes > 1 else 1

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A C-contiguous uninitialized array of ``shape``/``dtype``."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize if shape else dt.itemsize
        cls = self._class_of(max(nbytes, 1))
        free = self._free.get(cls)
        if free:
            raw = free.pop()
            self.hits += 1
        else:
            raw = np.empty(cls, dtype=np.uint8)
            self.misses += 1
        view = raw[:nbytes].view(dt).reshape(shape)
        self._backing[id(view)] = raw
        return view

    def release(self, view: np.ndarray) -> None:
        """Return an acquired array's storage to the free list."""
        raw = self._backing.pop(id(view), None)
        if raw is None:
            return  # not pool-owned (or already released): nothing to do
        free = self._free.setdefault(raw.nbytes, [])
        if len(free) < self.MAX_PER_CLASS:
            free.append(raw)
        else:
            self.dropped += 1

    def stats(self) -> Dict[str, int]:
        pooled = sum(len(v) for v in self._free.values())
        pooled_bytes = sum(cls * len(v) for cls, v in self._free.items())
        return {
            "hits": self.hits,
            "misses": self.misses,
            "dropped": self.dropped,
            "live": len(self._backing),
            "free_buffers": pooled,
            "free_bytes": pooled_bytes,
        }

    def clear(self) -> None:
        self._free.clear()
        self._backing.clear()


@dataclass
class _Region:
    usage: int = 0  # live bytes logically held
    capacity: int = 0  # arena size actually charged (managed mode)


class BufferManager:
    """Per-device logical memory regions with managed/unmanaged semantics."""

    def __init__(
        self,
        sim: Simulator,
        ranks: Optional[Iterable[int]] = None,
        managed: bool = True,
        merge_fwd_bwd: bool = False,
        skip_matmul_outputs: bool = False,
    ):
        self.sim = sim
        self.ranks = list(ranks) if ranks is not None else list(sim.ranks)
        self.managed = managed
        self.merge_fwd_bwd = merge_fwd_bwd
        self.skip_matmul_outputs = skip_matmul_outputs
        #: set by the model around checkpoint recomputation; when
        #: ``skip_matmul_outputs`` is on, matmul outputs are not re-buffered
        #: during recompute (their values are never needed for input
        #: gradients — §3.2.3 option 3)
        self.in_recompute = False
        self._regions: Dict[str, Dict[int, _Region]] = {
            name: {r: _Region() for r in self.ranks} for name in REGIONS
        }

    # ------------------------------------------------------------------
    def _canonical(self, region: str) -> str:
        if region not in REGIONS:
            raise ValueError(f"unknown region {region!r}")
        if self.merge_fwd_bwd and region == "backward":
            return "forward"
        return region

    def _tag(self, region: str) -> str:
        return f"buffer:{region}"

    def hold(self, region: str, rank: int, nbytes: int) -> int:
        """Logically place ``nbytes`` in a region; returns bytes held."""
        nbytes = int(nbytes)
        region = self._canonical(region)
        st = self._regions[region][rank]
        mem = self.sim.device(rank).memory
        st.usage += nbytes
        if self.managed:
            if st.usage > st.capacity:
                mem.alloc(st.usage - st.capacity, self._tag(region))
                st.capacity = st.usage
                # arena growths are rare — publish the new high-water mark
                self.sim.metrics.gauge(
                    "buffer_capacity_bytes", region=region, rank=rank
                ).set(st.capacity)
        else:
            mem.alloc(nbytes, self._tag(region))
        return nbytes

    def release(self, region: str, rank: int, nbytes: int) -> None:
        """Logically release ``nbytes``; frees real memory in unmanaged mode."""
        nbytes = int(nbytes)
        region = self._canonical(region)
        st = self._regions[region][rank]
        if nbytes > st.usage:
            raise ValueError(
                f"rank {rank}: releasing {nbytes} B from region {region!r} "
                f"holding {st.usage} B"
            )
        st.usage -= nbytes
        if not self.managed:
            self.sim.device(rank).memory.free(nbytes, self._tag(region))

    def reset_region(self, region: str, rank: Optional[int] = None) -> None:
        """Drop all logical holdings of a region (arena retained if managed)."""
        region = self._canonical(region)
        targets = self.ranks if rank is None else [rank]
        for r in targets:
            st = self._regions[region][r]
            if not self.managed and st.usage:
                self.sim.device(r).memory.free(st.usage, self._tag(region))
            st.usage = 0

    def trim_region(self, region: str, rank: Optional[int] = None) -> None:
        """Shrink a managed arena's capacity to its current usage.

        Models re-allocating a pre-sized buffer at a smaller footprint —
        used by §3.2.3 option 3 to re-size the forward buffer for the
        recompute phase, where matmul outputs are no longer buffered.
        """
        region = self._canonical(region)
        targets = self.ranks if rank is None else [rank]
        for r in targets:
            st = self._regions[region][r]
            if self.managed and st.capacity > st.usage:
                self.sim.device(r).memory.free(
                    st.capacity - st.usage, self._tag(region)
                )
                st.capacity = st.usage

    @contextmanager
    def scratch(self, rank: int, nbytes: int):
        """Hold workspace bytes for the duration of a SUMMA step."""
        self.hold("workspace", rank, nbytes)
        try:
            yield
        finally:
            self.release("workspace", rank, nbytes)

    # ------------------------------------------------------------------
    def usage(self, region: str, rank: int) -> int:
        return self._regions[self._canonical(region)][rank].usage

    def capacity(self, region: str, rank: int) -> int:
        st = self._regions[self._canonical(region)][rank]
        return st.capacity if self.managed else st.usage

    def total_capacity(self, rank: int) -> int:
        return sum(self.capacity(name, rank) for name in REGIONS)

    def release_all(self) -> None:
        """Free every region's real memory (model teardown)."""
        for name in REGIONS:
            for r in self.ranks:
                st = self._regions[name][r]
                mem = self.sim.device(r).memory
                charged = st.capacity if self.managed else st.usage
                if charged:
                    mem.free(charged, self._tag(name))
                st.usage = 0
                st.capacity = 0
