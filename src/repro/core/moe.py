"""2D-parallel Mixture-of-Experts MLP — the paper's §6 MoE direction.

Layout design, following Optimus's own conventions:

* the gate ``[h, E]`` is a non-SUMMA parameter: hosted by mesh row 0, split
  along h over columns (Fig. 5), broadcast down columns in forward; gate
  logits are completed by a row all-reduce of the per-column partial
  products, leaving ``[T_loc, E]`` *replicated within each mesh row* — so
  every device of a row makes identical routing decisions for its own b/q
  sequences, with no extra communication;
* each expert's MLP weights are ordinary ``BLOCKED_2D`` SUMMA operands
  (reusing :class:`~repro.core.layers.Linear2D` verbatim), so an expert's
  sub-batch flows through the same Algorithm-1/2/3 machinery as the dense
  MLP.  SUMMA is indifferent to different mesh rows carrying different
  token counts — row broadcasts never leave their row — which is exactly
  what makes token routing compose with the 2D scheme;
* token dispatch itself is free of communication: tokens live in mesh rows,
  and routing only permutes rows *within* a row block.

This "streamlines the communication" as §6 asks: the only MoE-specific
traffic is the tiny gate all-reduce; everything else is the dense path's.

Dryrun note: routing is data-dependent, so the shape backend assumes
balanced expert load (T_loc/E tokens each) — the standard capacity-factor-1
assumption of Switch-style MoE cost models.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm import collectives as coll
from repro.core.buffers import BufferManager
from repro.core.cls_head import ROW0_BLOCKROWS, distribute_row0_blockrows
from repro.core.layers import Linear2D
from repro.core.param import DistModule, DistParam, charge_param_memory
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D
from repro.mesh.mesh import Mesh
from repro.reference import functional as F


def _balanced_counts(total: int, parts: int):
    base, rem = divmod(total, parts)
    return [base + (1 if k < rem else 0) for k in range(parts)]


class MoE2D(DistModule):
    """Top-1 routed expert MLP on a q×q mesh."""

    _cache_attrs = ("_saved",)

    def __init__(
        self,
        mesh: Mesh,
        params: Dict[str, object],
        num_experts: int,
        aux_loss_coef: float = 0.01,
        prefix: str = "moe",
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.mesh = mesh
        self.E = num_experts
        self.aux_loss_coef = aux_loss_coef
        self.prefix = prefix
        self.buffers = buffers
        self.gate = self.register_param(
            DistParam(
                f"{prefix}.gate.weight",
                distribute_row0_blockrows(mesh, params[f"{prefix}.gate.weight"]),
            )
        )
        charge_param_memory(self.gate, mesh.sim)
        self.experts = []
        for e in range(num_experts):
            fc1 = Linear2D(
                mesh, f"{prefix}.expert{e}.fc1",
                params[f"{prefix}.expert{e}.w1"], params[f"{prefix}.expert{e}.b1"],
                buffers,
                weight_name=f"{prefix}.expert{e}.w1",
                bias_name=f"{prefix}.expert{e}.b1",
            )
            fc2 = Linear2D(
                mesh, f"{prefix}.expert{e}.fc2",
                params[f"{prefix}.expert{e}.w2"], params[f"{prefix}.expert{e}.b2"],
                buffers,
                weight_name=f"{prefix}.expert{e}.w2",
                bias_name=f"{prefix}.expert{e}.b2",
            )
            self.register_module(fc1)
            self.register_module(fc2)
            self.experts.append((fc1, fc2))
        self._saved = None

    # ------------------------------------------------------------------
    # gate
    # ------------------------------------------------------------------
    def _gate_logits(self, x: DTensor):
        mesh, q = self.mesh, self.mesh.q
        w_local = {}
        for j in range(q):
            root = mesh.rank(0, j)
            w_local.update(
                coll.broadcast(mesh.col_group(j), self.gate.data.local(root), root)
            )
        partial = {}
        for rank in mesh.ranks:
            xl = x.local(rank)
            partial[rank] = xl @ w_local[rank]
            mesh.device(rank).compute(2.0 * xl.shape[0] * xl.shape[1] * self.E)
        logits = {}
        for i in range(q):
            grp = mesh.row_group(i)
            logits.update(coll.all_reduce(grp, {r: partial[r] for r in grp.ranks}))
        return logits, w_local

    # ------------------------------------------------------------------
    def forward(self, x: DTensor) -> Tuple[DTensor, object]:
        """x BLOCKED_2D [T, h] → (output [T, h], auxiliary balance loss)."""
        mesh, q, E = self.mesh, self.mesh.q, self.E
        T, h = x.global_shape
        glogits, w_local = self._gate_logits(x)

        gprobs, sel, scale = {}, {}, {}
        for rank in mesh.ranks:
            p = F.softmax(glogits[rank])
            gprobs[rank] = p
            if is_shape_array(p):
                sel[rank] = None  # dryrun: balanced assumption below
                scale[rank] = ShapeArray((p.shape[0],), p.dtype)
            else:
                s = np.argmax(np.asarray(p), axis=-1)
                sel[rank] = s
                scale[rank] = np.asarray(p)[np.arange(p.shape[0]), s]
            mesh.device(rank).compute(8.0 * p.size, kind="elementwise")

        # dispatch: per mesh row, gather each expert's tokens and run its MLP
        out = {rank: ops.zeros_like(x.local(rank)) for rank in mesh.ranks}
        rows_by_expert = {}
        pre_by_expert = {}
        te_by_expert = {}
        for e in range(E):
            shards, rows = {}, {}
            any_tokens = False
            for rank in mesh.ranks:
                xl = x.local(rank)
                if is_shape_array(xl):
                    count = _balanced_counts(xl.shape[0], E)[e]
                    rows[rank] = count
                    shards[rank] = ShapeArray((count, xl.shape[1]), xl.dtype)
                    any_tokens = any_tokens or count > 0
                else:
                    r = np.nonzero(sel[rank] == e)[0]
                    rows[rank] = r
                    shards[rank] = np.asarray(xl)[r]
                    any_tokens = any_tokens or r.size > 0
            rows_by_expert[e] = rows
            # logical token count of this expert's sub-batch: one row-block
            # representative per mesh row (counts are row-uniform)
            t_e = 0
            for i in range(q):
                r0 = rows[mesh.rank(i, 0)]
                t_e += r0 if isinstance(r0, int) else int(np.size(r0))
            te_by_expert[e] = t_e
            if not any_tokens:
                pre_by_expert[e] = None
                continue
            fc1, fc2 = self.experts[e]
            sub = DTensor(mesh, BLOCKED_2D, shards, (t_e, h))
            pre = fc1.forward(sub)
            act = pre.map(F.gelu)
            pre_by_expert[e] = pre
            y_e = fc2.forward(act)
            for rank in mesh.ranks:
                self._scatter_rows(out[rank], rows[rank], y_e.local(rank))

        y_shards = {}
        for rank in mesh.ranks:
            if is_shape_array(out[rank]):
                y_shards[rank] = out[rank]
            else:
                y_shards[rank] = out[rank] * np.asarray(scale[rank])[:, None]
            mesh.device(rank).compute(out[rank].size, kind="elementwise")
        y = DTensor(mesh, BLOCKED_2D, y_shards, (T, h))

        aux, frac = self._aux_loss(gprobs, sel, T)
        self._saved = (x, gprobs, sel, scale, out, rows_by_expert, pre_by_expert,
                       te_by_expert, w_local, frac, T)
        return y, aux

    @staticmethod
    def _scatter_rows(target, rows, values) -> None:
        if is_shape_array(target):
            return
        if np.size(rows):
            target[rows] = np.asarray(values)

    def _aux_loss(self, gprobs, sel, T: int):
        """Switch aux loss: E·Σₑ fₑ·mₑ over the *global* batch."""
        mesh, q, E = self.mesh, self.mesh.q, self.E
        stats = {}
        for rank in mesh.ranks:
            p = gprobs[rank]
            if is_shape_array(p):
                stats[rank] = ShapeArray((2, E), p.dtype)
            else:
                counts = np.bincount(sel[rank], minlength=E).astype(np.asarray(p).dtype)
                stats[rank] = np.stack([counts, np.asarray(p).sum(axis=0)])
        # each row's devices hold identical stats; one per-row copy summed
        # over rows via a column all-reduce gives the global statistics
        for j in range(q):
            grp = mesh.col_group(j)
            reduced = coll.all_reduce(grp, {r: stats[r] for r in grp.ranks})
            stats.update(reduced)
        st = stats[mesh.rank(0, 0)]
        if is_shape_array(st):
            return ShapeArray((), st.dtype), st
        frac = np.asarray(st)[0] / T
        mean_prob = np.asarray(st)[1] / T
        return self.aux_loss_coef * E * float(frac @ mean_prob), frac

    # ------------------------------------------------------------------
    def backward(self, dy: DTensor, d_aux: float = 1.0) -> DTensor:
        if self._saved is None:
            raise RuntimeError("MoE backward before forward")
        mesh, q, E = self.mesh, self.mesh.q, self.E
        (x, gprobs, sel, scale, out, rows_by_expert, pre_by_expert,
         te_by_expert, w_local, frac, T) = self._saved
        h = x.global_shape[1]

        d_out, d_scale = {}, {}
        for rank in mesh.ranks:
            dyl = dy.local(rank)
            if is_shape_array(dyl):
                d_out[rank] = dyl
                d_scale[rank] = ShapeArray((dyl.shape[0],), dyl.dtype)
            else:
                d_out[rank] = np.asarray(dyl) * np.asarray(scale[rank])[:, None]
                d_scale[rank] = (np.asarray(dyl) * out[rank]).sum(axis=-1)
        # d_scale needs the full h contraction: complete it across the row
        for i in range(q):
            grp = mesh.row_group(i)
            reduced = coll.all_reduce(
                grp, {r: d_scale[r] for r in grp.ranks}
            )
            d_scale.update(reduced)

        dx = {rank: ops.zeros_like(x.local(rank)) for rank in mesh.ranks}
        for e in range(E):
            if pre_by_expert[e] is None:
                continue
            fc1, fc2 = self.experts[e]
            rows = rows_by_expert[e]
            d_sub = {}
            for rank in mesh.ranks:
                d_sub[rank] = self._gather_rows(d_out[rank], rows[rank], E, e)
            d_oe = DTensor(mesh, BLOCKED_2D, d_sub, (te_by_expert[e], h))
            d_ae = fc2.backward(d_oe)
            d_pe = pre_by_expert[e].zip_map(d_ae, lambda pre, da: F.gelu_bwd(pre, da))
            d_xe = fc1.backward(d_pe)
            for rank in mesh.ranks:
                self._scatter_add_rows(dx[rank], rows[rank], d_xe.local(rank))

        # gate backward
        dw_partials = {j: {} for j in range(q)}
        for rank in mesh.ranks:
            i, j = mesh.coords(rank)
            p = gprobs[rank]
            if is_shape_array(p):
                d_glogits = ShapeArray(p.shape, p.dtype)
            else:
                d_gp = np.zeros_like(np.asarray(p))
                d_gp[np.arange(p.shape[0]), sel[rank]] += np.asarray(d_scale[rank])
                d_gp += d_aux * self.aux_loss_coef * E * np.asarray(frac)[None, :] / T
                d_glogits = F.softmax_bwd(np.asarray(p), d_gp)
            xl = x.local(rank)
            dw_partials[j][rank] = ops.transpose(xl) @ d_glogits
            dx[rank] = dx[rank] + d_glogits @ ops.transpose(w_local[rank])
            dev = mesh.device(rank)
            dev.compute(2.0 * xl.shape[1] * xl.shape[0] * E)
            dev.compute(2.0 * xl.shape[0] * E * xl.shape[1])
        dw_shards = {}
        for j in range(q):
            root = mesh.rank(0, j)
            dw_shards[root] = coll.reduce(mesh.col_group(j), dw_partials[j], root)[root]
        self.gate.add_grad(
            DTensor(mesh, ROW0_BLOCKROWS, dw_shards, self.gate.data.global_shape)
        )
        self._saved = None
        return DTensor(mesh, BLOCKED_2D, dx, x.global_shape)

    @staticmethod
    def _gather_rows(arr, rows, E: int, e: int):
        if is_shape_array(arr):
            count = rows if isinstance(rows, int) else 0
            return ShapeArray((count, arr.shape[1]), arr.dtype)
        return np.asarray(arr)[rows]

    @staticmethod
    def _scatter_add_rows(target, rows, values) -> None:
        if is_shape_array(target):
            return
        if np.size(rows):
            np.add.at(target, np.asarray(rows), np.asarray(values))
