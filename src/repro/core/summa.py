"""SUMMA matrix products on a q×q mesh (paper §2.4, Algorithms 1–3).

All three products consume and produce ``BLOCKED_2D`` DTensors.  Following
the paper's key observation, the set {AB, ABᵀ, AᵀB} is closed under
differentiation (Eqs. 1–3):

    C = AB   →  dA = dC·Bᵀ (Alg. 2),  dB = Aᵀ·dC (Alg. 3)
    C = ABᵀ  →  dA = dC·B  (Alg. 1),  dB = dCᵀ·A (Alg. 3)
    C = AᵀB  →  dA = B·dCᵀ (Alg. 2*), dB = A·dC  (Alg. 1)

so every backward pass is again a composition of these three primitives —
no new communication patterns are needed (see :func:`grads_of_ab` etc.).

Communication per step l:

* Alg. 1 broadcasts ``A_{il}`` in every row and ``B_{lj}`` in every column;
* Alg. 2 broadcasts ``B_{lj}`` in columns and *reduces* partial products in
  rows to the step's owner column l;
* Alg. 3 broadcasts ``A_{il}`` in rows and reduces partials in columns.

Each local block product charges ``2·(m/q)(k/q)(n/q)`` FLOPs; broadcast /
reduce scratch lives in the buffer manager's workspace region (§3.2.3).

Hot-path engineering (this module is the simulator's innermost loop):

* **Plan cache** — the communication schedule of a SUMMA product (which
  group broadcasts which root's block, the α–β price of every collective,
  per-rank FLOP and scratch-byte counts) depends only on ``(mesh, global
  shapes, dtypes)``.  It is computed once per distinct key and cached on
  the mesh, so the q-step loop stops recomputing group membership, byte
  counts, and tree-stage timing on every call.  Plans charge *identical*
  quantities to the uncached path by construction — the ``repro check``
  oracle and the collective contract checker both run against planned
  execution.
* **Scratch-buffer pool** — per-step partial products go through
  :class:`~repro.core.buffers.ArrayPool` (``np.matmul(..., out=pooled)``
  followed by an in-place accumulate), which is bit-identical to the
  out-of-place product while eliminating the per-step ndarray allocations.

Both optimizations can be disabled — per call site via :func:`configure` /
:func:`optimizations`, or process-wide via ``REPRO_SUMMA_PLAN_CACHE=0`` and
``REPRO_SUMMA_POOL=0`` — which is how ``repro bench`` measures their effect
(the ``macro/optimus_stem_ab`` A/B benchmark).

* **Batched-mesh execution** (opt-in, ``REPRO_SUMMA_BATCHED=1``) — the
  simulator executes ranks one at a time in Python loops, so a q×q mesh
  costs q² interpreter round-trips per SUMMA step.  When every per-rank
  block of a product shares one shape and dtype (the uniform, non-MoE
  case), the per-step gemms are one *batched* matrix product: stacking the
  q row blocks of A and q column blocks of B along a leading rank axis
  turns step l's q² rank-local products into a single broadcasted
  ``np.matmul`` (``(q,1,m,k) @ (1,q,k,n) → (q,q,m,n)``), and the reduce
  folds of Algorithms 2–3 into vectorized in-place adds in group-rank
  order.  Results are scattered back as views into per-rank DTensor
  shards.  Accounting is *replayed* from the plan in the exact per-rank
  call order (charge-only collectives, per-gemm ``device.compute`` and
  workspace holds), so clocks, byte counters, weighted volumes, memory
  peaks, and trace events/spans are bit-identical to the per-rank path.
  Ragged shard signatures (MoE expert blocks), dryrun ShapeArrays, q=1
  meshes, armed fault injectors and patched collectives (the contract
  checker, the legacy bench arm) all fall back to the per-rank path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

import numpy as np

from repro.backend import ops
from repro.backend.dtypes import result_float
from repro.backend.shape_array import is_shape_array
from repro.comm import collectives as coll
from repro.core.buffers import ArrayPool, BufferManager
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D
from repro.mesh.mesh import Mesh
from repro.runtime.events import NULL_SPAN


def _env_flag(name: str, default: bool = True) -> bool:
    v = os.environ.get(name)
    if v is None:
        return default
    return v.lower() not in ("0", "false", "no", "off")


_PLAN_CACHE_ENABLED = _env_flag("REPRO_SUMMA_PLAN_CACHE")
_POOL_ENABLED = _env_flag("REPRO_SUMMA_POOL")
_BATCHED_ENABLED = _env_flag("REPRO_SUMMA_BATCHED", default=False)

#: the unpatched collectives entry points.  The batched engine bypasses
#: per-rank broadcast/reduce calls, so whenever these module attributes have
#: been replaced (collective contract checker, the legacy pre-optimization
#: bench arm, test monkey-patching) it must fall back to the per-rank path
#: or the patcher would observe nothing.
_PRISTINE_BROADCAST = coll.broadcast
_PRISTINE_REDUCE = coll.reduce


def configure(
    plan_cache: Optional[bool] = None,
    pool: Optional[bool] = None,
    batched: Optional[bool] = None,
):
    """Toggle the plan cache / scratch pool / batched engine; returns the
    previous settings as a ``(plan_cache, pool, batched)`` tuple."""
    global _PLAN_CACHE_ENABLED, _POOL_ENABLED, _BATCHED_ENABLED
    previous = (_PLAN_CACHE_ENABLED, _POOL_ENABLED, _BATCHED_ENABLED)
    if plan_cache is not None:
        _PLAN_CACHE_ENABLED = bool(plan_cache)
    if pool is not None:
        _POOL_ENABLED = bool(pool)
    if batched is not None:
        _BATCHED_ENABLED = bool(batched)
    return previous


@contextmanager
def optimizations(
    plan_cache: bool = True, pool: bool = True, batched: Optional[bool] = None
):
    """Scoped toggle, mainly for A/B benchmarking and tests.

    ``batched=None`` leaves the batched-engine setting untouched (it is
    opt-in, unlike the default-on plan cache and pool)."""
    previous = configure(plan_cache, pool, batched)
    try:
        yield
    finally:
        configure(*previous)


def flags_from_env() -> dict:
    """The REPRO_SUMMA_* flag set as the *current* environment resolves it.

    Unlike the module globals (snapshotted once at import), this re-reads
    ``os.environ`` on every call — it is how ``repro bench`` A/B arms that
    flip ``REPRO_SUMMA_BATCHED`` between arms inside one process get
    per-arm flag resolution instead of the import-time snapshot.
    """
    return {
        "plan_cache": _env_flag("REPRO_SUMMA_PLAN_CACHE"),
        "pool": _env_flag("REPRO_SUMMA_POOL"),
        "batched": _env_flag("REPRO_SUMMA_BATCHED", default=False),
    }


def resolve_env_flags() -> dict:
    """Re-read the REPRO_SUMMA_* environment and apply it; returns the
    flags now in effect (per-arm resolution for in-process A/B runs)."""
    flags = flags_from_env()
    configure(**flags)
    return flags


def effective_flags() -> dict:
    """The flag set actually in effect right now (for bench JSON records)."""
    return {
        "plan_cache": _PLAN_CACHE_ENABLED,
        "pool": _POOL_ENABLED,
        "batched": _BATCHED_ENABLED,
    }


def _check_blocked(x: DTensor, name: str) -> None:
    if x.layout != BLOCKED_2D:
        raise ValueError(f"{name} must be BLOCKED_2D, got {x.layout}")
    if len(x.global_shape) != 2:
        raise ValueError(f"{name} must be a 2-D matrix, got {x.global_shape}")


def _gemm_flops(a_shape, b_cols: int) -> float:
    m, k = a_shape
    return 2.0 * m * k * b_cols


def _pool_of(sim) -> ArrayPool:
    pool = getattr(sim, "_array_pool", None)
    if pool is None:
        pool = sim._array_pool = ArrayPool()
    return pool


# ----------------------------------------------------------------------
# execution plans
# ----------------------------------------------------------------------
class _Plan:
    """The precomputed schedule of one SUMMA product on one mesh.

    ``steps`` holds, per SUMMA step l, tuples of

    * broadcast ops  — ``(group, root, (dt, nbytes, weighted))``;
    * gemm ops       — ``(rank, device, flops, scratch_nbytes, out_shape)``;
    * reduce ops     — ``(group, root, (dt, nbytes, weighted))`` (Algs. 2–3).

    The precost triples are exactly what the collective would recompute from
    the block's byte size, so charging is identical to unplanned execution.
    """

    __slots__ = ("steps", "numeric", "out_dtype", "batched")

    def __init__(self, steps, numeric, out_dtype):
        self.steps = steps
        self.numeric = numeric
        self.out_dtype = out_dtype
        #: lazily-built batched-mesh descriptor: ``None`` = not yet
        #: examined, ``False`` = ineligible (ragged/dryrun/q=1), else a
        #: :class:`_BatchedDesc`.  Built on first batched execution so the
        #: per-rank path never pays for it.
        self.batched = None


def _dtype_sig(mesh: Mesh, x: DTensor):
    # Per-rank dtypes, not just the DTensor-level (first shard's) dtype:
    # non-strict mode permits mixed per-shard dtypes, and a mixed tensor
    # colliding with the uniform plan would reuse the wrong out-dtype and
    # wrong scratch/broadcast byte counts (stale-cache bug, PR 7).
    shards = x.shards
    return tuple(shards[r].dtype.name for r in mesh.ranks)


def _out_dtype(a: DTensor, b: DTensor, numeric: bool):
    ablk = next(iter(a.shards.values()))
    bblk = next(iter(b.shards.values()))
    if numeric:
        return np.result_type(ablk.dtype, bblk.dtype)
    return result_float(ablk.dtype, bblk.dtype)


def _bcast_op(group, root, blk):
    nb = ops.nbytes(blk)
    model = group.model
    return (group, root, (model.broadcast_time(nb), nb, model.broadcast_weighted_volume(nb)))


def _reduce_op(group, root, nbytes):
    model = group.model
    return (group, root, (model.reduce_time(nbytes), nbytes, model.reduce_weighted_volume(nbytes)))


def _shape_sig(mesh: Mesh, x: DTensor):
    # Per-rank local shapes, not just the global shape: ragged BLOCKED_2D
    # tensors (e.g. MoE expert blocks sized by routed token counts) share a
    # global shape across calls while their block shapes differ.
    shards = x.shards
    return tuple(shards[r].shape for r in mesh.ranks)


def _plan_key(mesh: Mesh, algo: str, a: DTensor, b: DTensor, numeric: bool):
    return (
        algo,
        a.global_shape,
        b.global_shape,
        _shape_sig(mesh, a),
        _shape_sig(mesh, b),
        _dtype_sig(mesh, a),
        _dtype_sig(mesh, b),
        numeric,
    )


def _get_plan(mesh: Mesh, algo: str, a: DTensor, b: DTensor, builder) -> _Plan:
    numeric = not is_shape_array(next(iter(a.shards.values())))
    if not _PLAN_CACHE_ENABLED:
        return builder(mesh, a, b, numeric)
    cache = getattr(mesh, "_summa_plans", None)
    if cache is None:
        cache = mesh._summa_plans = {}
    key = _plan_key(mesh, algo, a, b, numeric)
    plan = cache.get(key)
    if plan is None:
        plan = cache[key] = builder(mesh, a, b, numeric)
    return plan


def plan_cache_size(mesh: Mesh) -> int:
    """Number of cached SUMMA plans on a mesh (observability/test hook)."""
    return len(getattr(mesh, "_summa_plans", ()))


def _build_ab(mesh: Mesh, a: DTensor, b: DTensor, numeric: bool) -> _Plan:
    q = mesh.q
    out_dtype = _out_dtype(a, b, numeric)
    steps = []
    for l in range(q):
        a_bc = []
        for i in range(q):
            root = mesh.rank(i, l)
            a_bc.append(_bcast_op(mesh.row_groups[i], root, a.shards[root]))
        b_bc = []
        for j in range(q):
            root = mesh.rank(l, j)
            b_bc.append(_bcast_op(mesh.col_groups[j], root, b.shards[root]))
        gemms = []
        for rank in mesh.ranks:
            i, j = mesh.coords(rank)
            ablk = a.shards[mesh.rank(i, l)]
            bblk = b.shards[mesh.rank(l, j)]
            m, k = ablk.shape
            n = bblk.shape[1]
            scratch = ops.nbytes(ablk) + ops.nbytes(bblk)
            gemms.append((rank, mesh.device(rank), 2.0 * m * k * n, scratch, (m, n)))
        steps.append((a_bc, b_bc, gemms))
    return _Plan(steps, numeric, out_dtype)


def _build_abt(mesh: Mesh, a: DTensor, b: DTensor, numeric: bool) -> _Plan:
    q = mesh.q
    out_dtype = _out_dtype(a, b, numeric)
    itemsize = np.dtype(out_dtype).itemsize if numeric else out_dtype.itemsize
    steps = []
    for l in range(q):
        b_bc = []
        for j in range(q):
            root = mesh.rank(l, j)
            b_bc.append(_bcast_op(mesh.col_groups[j], root, b.shards[root]))
        rows = []
        for i in range(q):
            gemms = []
            m = n = 0
            for j in range(q):
                rank = mesh.rank(i, j)
                ablk = a.shards[rank]
                bblk = b.shards[mesh.rank(l, j)]
                m, k = ablk.shape
                n = bblk.shape[0]
                gemms.append(
                    (rank, mesh.device(rank), 2.0 * m * k * n, ops.nbytes(bblk), (m, n))
                )
            root = mesh.rank(i, l)
            rows.append((gemms, _reduce_op(mesh.row_groups[i], root, m * n * itemsize)))
        steps.append((b_bc, rows))
    return _Plan(steps, numeric, out_dtype)


def _build_atb(mesh: Mesh, a: DTensor, b: DTensor, numeric: bool) -> _Plan:
    q = mesh.q
    out_dtype = _out_dtype(a, b, numeric)
    itemsize = np.dtype(out_dtype).itemsize if numeric else out_dtype.itemsize
    steps = []
    for l in range(q):
        a_bc = []
        for i in range(q):
            root = mesh.rank(i, l)
            a_bc.append(_bcast_op(mesh.row_groups[i], root, a.shards[root]))
        cols = []
        for j in range(q):
            gemms = []
            m = n = 0
            for i in range(q):
                rank = mesh.rank(i, j)
                ablk = a.shards[mesh.rank(i, l)]
                bblk = b.shards[rank]
                k, m = ablk.shape
                n = bblk.shape[1]
                gemms.append(
                    (rank, mesh.device(rank), 2.0 * m * k * n, ops.nbytes(ablk), (m, n))
                )
            root = mesh.rank(l, j)
            cols.append((gemms, _reduce_op(mesh.col_groups[j], root, m * n * itemsize)))
        steps.append((a_bc, cols))
    return _Plan(steps, numeric, out_dtype)


# ----------------------------------------------------------------------
# batched-mesh execution (REPRO_SUMMA_BATCHED)
# ----------------------------------------------------------------------
class _BatchedDesc:
    """Stacking descriptor for one plan: which shards feed each step's
    batched stage and where the stacked results scatter back to."""

    __slots__ = ("q", "grid", "a_shape", "b_shape")

    def __init__(self, q, grid, a_shape, b_shape):
        self.q = q
        self.grid = grid  # grid[i][j] = mesh rank of coordinate (i, j)
        self.a_shape = a_shape  # uniform per-rank block shape of A
        self.b_shape = b_shape  # uniform per-rank block shape of B


def _uniform_sig(x: DTensor):
    """(shape, dtype) if every shard agrees on both, else None (ragged)."""
    it = iter(x.shards.values())
    first = next(it)
    shape, dtype = first.shape, first.dtype
    for s in it:
        if s.shape != shape or s.dtype != dtype:
            return None
    return tuple(shape), dtype


def _batched_of(plan: _Plan, mesh: Mesh, a: DTensor, b: DTensor):
    """The plan's batched descriptor, or None when ineligible."""
    desc = plan.batched
    if desc is None:
        desc = False
        if plan.numeric and mesh.q > 1:
            sig_a = _uniform_sig(a)
            sig_b = _uniform_sig(b)
            if sig_a is not None and sig_b is not None:
                q = mesh.q
                grid = [[mesh.rank(i, j) for j in range(q)] for i in range(q)]
                desc = _BatchedDesc(q, grid, sig_a[0], sig_b[0])
        plan.batched = desc
    return desc or None


def _batched_ready(sim) -> bool:
    """Runtime gates the plan cannot capture: unpatched collectives and a
    disarmed fault injector (both need the per-rank call sequence)."""
    inj = sim.fault_injector
    if inj is not None and inj.armed:
        return False
    return (
        coll.broadcast is _PRISTINE_BROADCAST and coll.reduce is _PRISTINE_REDUCE
    )


def _replay_gemms(gemms, buffers) -> None:
    """Charge a step's gemm accounting in exact per-rank order: workspace
    hold, device compute, workspace release — identical to the per-rank
    executors minus the numeric product."""
    for rank, dev, flops, scratch, _shape in gemms:
        if buffers is not None:
            buffers.hold("workspace", rank, scratch)
        try:
            dev.compute(flops)
        finally:
            if buffers is not None:
                buffers.release("workspace", rank, scratch)


def _stacked(pool, shards, roots, shape, dtype):
    """Stack per-rank blocks along a new leading axis (pooled when on)."""
    q = len(roots)
    out = (
        pool.acquire((q,) + shape, dtype)
        if pool is not None
        else np.empty((q,) + shape, dtype)
    )
    for t, root in enumerate(roots):
        out[t] = shards[root]
    return out


def _maybe_release(pool, *views) -> None:
    if pool is not None:
        for v in views:
            pool.release(v)


def _batched_ab(mesh, a, b, plan, buffers, desc, M, N) -> DTensor:
    sim = mesh.sim
    tr = sim.tracer
    traced = tr.enabled
    pool = _pool_of(sim) if _POOL_ENABLED else None
    ashards, bshards = a.shards, b.shards
    q = desc.q
    mb = desc.a_shape[0]
    nb = desc.b_shape[1]
    adt = a.dtype
    bdt = b.dtype
    cstk = None
    with tr.span("summa_ab", mesh.ranks, "op", M=M, K=a.global_shape[1], N=N,
                 q=q) if traced else NULL_SPAN:
        for l, (a_bc, b_bc, gemms) in enumerate(plan.steps):
            with tr.span(
                "summa_step", mesh.ranks, "summa", algo="ab", step=l
            ) if traced else NULL_SPAN:
                # accounting replay, exact per-rank order
                for group, root, cost in a_bc:
                    coll.charge_only(group, "broadcast", cost)
                for group, root, cost in b_bc:
                    coll.charge_only(group, "broadcast", cost)
                _replay_gemms(gemms, buffers)
                # the step's q² rank-local products as one batched stage
                astk = _stacked(pool, ashards, [desc.grid[i][l] for i in range(q)],
                                desc.a_shape, adt)
                bstk = _stacked(pool, bshards, [desc.grid[l][j] for j in range(q)],
                                desc.b_shape, bdt)
                if cstk is None:
                    # the output backing must outlive the call (shards are
                    # views into it), so it is never pool-owned
                    cstk = np.empty((q, q, mb, nb), plan.out_dtype)
                    ops.batched_outer_matmul(astk, bstk, out=cstk)
                else:
                    tmp = (
                        pool.acquire((q, q, mb, nb), plan.out_dtype)
                        if pool is not None
                        else np.empty((q, q, mb, nb), plan.out_dtype)
                    )
                    ops.batched_outer_matmul(astk, bstk, out=tmp)
                    np.add(cstk, tmp, out=cstk)
                    _maybe_release(pool, tmp)
                _maybe_release(pool, astk, bstk)
    c_shards = {
        desc.grid[i][j]: cstk[i, j] for i in range(q) for j in range(q)
    }
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


def _batched_abt(mesh, a, b, plan, buffers, desc, M, N) -> DTensor:
    sim = mesh.sim
    tr = sim.tracer
    traced = tr.enabled
    pool = _pool_of(sim) if _POOL_ENABLED else None
    ashards, bshards = a.shards, b.shards
    q = desc.q
    mb = desc.a_shape[0]
    nb = desc.b_shape[0]  # B is [N, K]; a row-l block is (nb, kb)
    # the full A stack is step-invariant: build it once per call (keep the
    # acquired view — the pool releases by identity, not by shape)
    araw = _stacked(
        pool, ashards, [desc.grid[i][j] for i in range(q) for j in range(q)],
        desc.a_shape, a.dtype,
    )
    afull = araw.reshape((q, q) + desc.a_shape)
    bdt = b.dtype
    c_shards = {}
    with tr.span("summa_abt", mesh.ranks, "op", M=M, K=a.global_shape[1], N=N,
                 q=q) if traced else NULL_SPAN:
        for l, (b_bc, rows) in enumerate(plan.steps):
            with tr.span(
                "summa_step", mesh.ranks, "summa", algo="abt", step=l
            ) if traced else NULL_SPAN:
                for group, root, cost in b_bc:
                    coll.charge_only(group, "broadcast", cost)
                for gemms, (rgroup, root, rcost) in rows:
                    _replay_gemms(gemms, buffers)
                    coll.charge_only(rgroup, "reduce", rcost)
                bstk = _stacked(pool, bshards, [desc.grid[l][j] for j in range(q)],
                                desc.b_shape, bdt)
                part = (
                    pool.acquire((q, q, mb, nb), plan.out_dtype)
                    if pool is not None
                    else np.empty((q, q, mb, nb), plan.out_dtype)
                )
                # part[i, j] = A_ij · B_ljᵀ — same BLAS gemm per slice as
                # the per-rank `ablk @ bblk.T`
                ops.batched_matmul_transb(afull, bstk, out=part)
                # fold over j in row-group rank order: copy-then-add is
                # exactly collectives._combine's in-place fast path
                out_l = ops.fold_stack_sum(part, axis=1)
                for i in range(q):
                    c_shards[desc.grid[i][l]] = out_l[i]
                _maybe_release(pool, part, bstk)
    _maybe_release(pool, araw)
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


def _batched_atb(mesh, a, b, plan, buffers, desc, M, N) -> DTensor:
    sim = mesh.sim
    tr = sim.tracer
    traced = tr.enabled
    pool = _pool_of(sim) if _POOL_ENABLED else None
    ashards, bshards = a.shards, b.shards
    q = desc.q
    mb = desc.a_shape[1]  # A is [K, M]; a block is (kb, mb)
    nb = desc.b_shape[1]
    braw = _stacked(
        pool, bshards, [desc.grid[i][j] for i in range(q) for j in range(q)],
        desc.b_shape, b.dtype,
    )
    bfull = braw.reshape((q, q) + desc.b_shape)
    adt = a.dtype
    c_shards = {}
    with tr.span("summa_atb", mesh.ranks, "op", M=M, K=a.global_shape[0], N=N,
                 q=q) if traced else NULL_SPAN:
        for l, (a_bc, cols) in enumerate(plan.steps):
            with tr.span(
                "summa_step", mesh.ranks, "summa", algo="atb", step=l
            ) if traced else NULL_SPAN:
                for group, root, cost in a_bc:
                    coll.charge_only(group, "broadcast", cost)
                for gemms, (cgroup, root, rcost) in cols:
                    _replay_gemms(gemms, buffers)
                    coll.charge_only(cgroup, "reduce", rcost)
                astk = _stacked(pool, ashards, [desc.grid[i][l] for i in range(q)],
                                desc.a_shape, adt)
                part = (
                    pool.acquire((q, q, mb, nb), plan.out_dtype)
                    if pool is not None
                    else np.empty((q, q, mb, nb), plan.out_dtype)
                )
                # part[i, j] = A_ilᵀ · B_ij
                ops.batched_matmul_transa(astk, bfull, out=part)
                # fold over i in column-group rank order
                out_l = ops.fold_stack_sum(part, axis=0)
                for j in range(q):
                    c_shards[desc.grid[l][j]] = out_l[j]
                _maybe_release(pool, part, astk)
    _maybe_release(pool, braw)
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


# ----------------------------------------------------------------------
# the three products
# ----------------------------------------------------------------------
def summa_ab(
    mesh: Mesh,
    a: DTensor,
    b: DTensor,
    buffers: Optional[BufferManager] = None,
) -> DTensor:
    """Algorithm 1: ``C = A·B`` with A=[M,K], B=[K,N] both 2-D blocked."""
    _check_blocked(a, "A")
    _check_blocked(b, "B")
    M, K = a.global_shape
    K2, N = b.global_shape
    if K != K2:
        raise ValueError(f"inner dims mismatch: A {a.global_shape} · B {b.global_shape}")
    plan = _get_plan(mesh, "ab", a, b, _build_ab)
    sim = mesh.sim
    if _BATCHED_ENABLED and _batched_ready(sim):
        desc = _batched_of(plan, mesh, a, b)
        if desc is not None:
            return _batched_ab(mesh, a, b, plan, buffers, desc, M, N)
    tr = sim.tracer
    traced = tr.enabled
    pool = _pool_of(sim) if (_POOL_ENABLED and plan.numeric) else None
    ashards, bshards = a.shards, b.shards
    c_shards = {}
    with tr.span("summa_ab", mesh.ranks, "op", M=M, K=K, N=N, q=mesh.q) if traced else NULL_SPAN:
        for l, (a_bc, b_bc, gemms) in enumerate(plan.steps):
            with tr.span(
                "summa_step", mesh.ranks, "summa", algo="ab", step=l
            ) if traced else NULL_SPAN:
                a_recv = {}
                for group, root, cost in a_bc:
                    a_recv.update(coll.broadcast(group, ashards[root], root, cost))
                b_recv = {}
                for group, root, cost in b_bc:
                    b_recv.update(coll.broadcast(group, bshards[root], root, cost))
                for rank, dev, flops, scratch, out_shape in gemms:
                    ablk, bblk = a_recv[rank], b_recv[rank]
                    if buffers is not None:
                        buffers.hold("workspace", rank, scratch)
                    try:
                        acc = c_shards.get(rank)
                        if acc is None:
                            c_shards[rank] = ablk @ bblk
                        elif pool is not None:
                            tmp = pool.acquire(out_shape, plan.out_dtype)
                            np.matmul(ablk, bblk, out=tmp)
                            np.add(acc, tmp, out=acc)
                            pool.release(tmp)
                        else:
                            c_shards[rank] = acc + (ablk @ bblk)
                        dev.compute(flops)
                    finally:
                        if buffers is not None:
                            buffers.release("workspace", rank, scratch)
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


def summa_abt(
    mesh: Mesh,
    a: DTensor,
    b: DTensor,
    buffers: Optional[BufferManager] = None,
) -> DTensor:
    """Algorithm 2: ``C = A·Bᵀ`` with A=[M,K], B=[N,K]; C=[M,N]."""
    _check_blocked(a, "A")
    _check_blocked(b, "B")
    M, K = a.global_shape
    N, K2 = b.global_shape
    if K != K2:
        raise ValueError(f"inner dims mismatch: A {a.global_shape} · Bᵀ of {b.global_shape}")
    plan = _get_plan(mesh, "abt", a, b, _build_abt)
    sim = mesh.sim
    if _BATCHED_ENABLED and _batched_ready(sim):
        desc = _batched_of(plan, mesh, a, b)
        if desc is not None:
            return _batched_abt(mesh, a, b, plan, buffers, desc, M, N)
    tr = sim.tracer
    traced = tr.enabled
    # q=1: the size-1 reduce is zero-copy, so a pooled partial would become
    # the output shard and never return to the pool (leak, PR 7)
    pool = _pool_of(sim) if (_POOL_ENABLED and plan.numeric and mesh.q > 1) else None
    ashards, bshards = a.shards, b.shards
    c_shards = {}
    with tr.span("summa_abt", mesh.ranks, "op", M=M, K=K, N=N, q=mesh.q) if traced else NULL_SPAN:
        for l, (b_bc, rows) in enumerate(plan.steps):
            with tr.span(
                "summa_step", mesh.ranks, "summa", algo="abt", step=l
            ) if traced else NULL_SPAN:
                b_recv = {}
                for group, root, cost in b_bc:
                    b_recv.update(coll.broadcast(group, bshards[root], root, cost))
                for gemms, (rgroup, root, rcost) in rows:
                    partials = {}
                    pooled = [] if pool is not None else None
                    for rank, dev, flops, scratch, out_shape in gemms:
                        ablk, bblk = ashards[rank], b_recv[rank]
                        if buffers is not None:
                            buffers.hold("workspace", rank, scratch)
                        try:
                            if pool is not None:
                                tmp = pool.acquire(out_shape, plan.out_dtype)
                                np.matmul(ablk, ops.transpose(bblk), out=tmp)
                                partials[rank] = tmp
                                pooled.append(tmp)
                            else:
                                partials[rank] = ablk @ ops.transpose(bblk)
                            dev.compute(flops)
                        finally:
                            if buffers is not None:
                                buffers.release("workspace", rank, scratch)
                    reduced = coll.reduce(rgroup, partials, root, "sum", rcost)
                    out = reduced[root]
                    c_shards[root] = out
                    if pooled:
                        for tmp in pooled:
                            if tmp is not out:
                                pool.release(tmp)
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


def summa_atb(
    mesh: Mesh,
    a: DTensor,
    b: DTensor,
    buffers: Optional[BufferManager] = None,
) -> DTensor:
    """Algorithm 3: ``C = Aᵀ·B`` with A=[K,M], B=[K,N]; C=[M,N]."""
    _check_blocked(a, "A")
    _check_blocked(b, "B")
    K, M = a.global_shape
    K2, N = b.global_shape
    if K != K2:
        raise ValueError(f"inner dims mismatch: Aᵀ of {a.global_shape} · B {b.global_shape}")
    plan = _get_plan(mesh, "atb", a, b, _build_atb)
    sim = mesh.sim
    if _BATCHED_ENABLED and _batched_ready(sim):
        desc = _batched_of(plan, mesh, a, b)
        if desc is not None:
            return _batched_atb(mesh, a, b, plan, buffers, desc, M, N)
    tr = sim.tracer
    traced = tr.enabled
    # q=1: see summa_abt — pooled partials would leak into the output
    pool = _pool_of(sim) if (_POOL_ENABLED and plan.numeric and mesh.q > 1) else None
    ashards, bshards = a.shards, b.shards
    c_shards = {}
    with tr.span("summa_atb", mesh.ranks, "op", M=M, K=K, N=N, q=mesh.q) if traced else NULL_SPAN:
        for l, (a_bc, cols) in enumerate(plan.steps):
            with tr.span(
                "summa_step", mesh.ranks, "summa", algo="atb", step=l
            ) if traced else NULL_SPAN:
                a_recv = {}
                for group, root, cost in a_bc:
                    a_recv.update(coll.broadcast(group, ashards[root], root, cost))
                for gemms, (rgroup, root, rcost) in cols:
                    partials = {}
                    pooled = [] if pool is not None else None
                    for rank, dev, flops, scratch, out_shape in gemms:
                        ablk, bblk = a_recv[rank], bshards[rank]
                        if buffers is not None:
                            buffers.hold("workspace", rank, scratch)
                        try:
                            if pool is not None:
                                tmp = pool.acquire(out_shape, plan.out_dtype)
                                np.matmul(ops.transpose(ablk), bblk, out=tmp)
                                partials[rank] = tmp
                                pooled.append(tmp)
                            else:
                                partials[rank] = ops.transpose(ablk) @ bblk
                            dev.compute(flops)
                        finally:
                            if buffers is not None:
                                buffers.release("workspace", rank, scratch)
                    reduced = coll.reduce(rgroup, partials, root, "sum", rcost)
                    out = reduced[root]
                    c_shards[root] = out
                    if pooled:
                        for tmp in pooled:
                            if tmp is not out:
                                pool.release(tmp)
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


# ----------------------------------------------------------------------
# closed-set backward identities (paper Eqs. 1–3)
# ----------------------------------------------------------------------
def grads_of_ab(mesh, a, b, dc, buffers=None):
    """(dA, dB) for ``C = A·B`` (Eq. 1): dA = dC·Bᵀ, dB = Aᵀ·dC."""
    da = summa_abt(mesh, dc, b, buffers)
    db = summa_atb(mesh, a, dc, buffers)
    return da, db


def grads_of_abt(mesh, a, b, dc, buffers=None):
    """(dA, dB) for ``C = A·Bᵀ`` (Eq. 3): dA = dC·B, dB = dCᵀ·A."""
    da = summa_ab(mesh, dc, b, buffers)
    db = summa_atb(mesh, dc, a, buffers)
    return da, db


def grads_of_atb(mesh, a, b, dc, buffers=None):
    """(dA, dB) for ``C = Aᵀ·B`` (Eq. 2): dA = B·dCᵀ, dB = A·dC."""
    da = summa_abt(mesh, b, dc, buffers)
    db = summa_ab(mesh, a, dc, buffers)
    return da, db
