"""SUMMA matrix products on a q×q mesh (paper §2.4, Algorithms 1–3).

All three products consume and produce ``BLOCKED_2D`` DTensors.  Following
the paper's key observation, the set {AB, ABᵀ, AᵀB} is closed under
differentiation (Eqs. 1–3):

    C = AB   →  dA = dC·Bᵀ (Alg. 2),  dB = Aᵀ·dC (Alg. 3)
    C = ABᵀ  →  dA = dC·B  (Alg. 1),  dB = dCᵀ·A (Alg. 3)
    C = AᵀB  →  dA = B·dCᵀ (Alg. 2*), dB = A·dC  (Alg. 1)

so every backward pass is again a composition of these three primitives —
no new communication patterns are needed (see :func:`grad_ab` etc.).

Communication per step l:

* Alg. 1 broadcasts ``A_{il}`` in every row and ``B_{lj}`` in every column;
* Alg. 2 broadcasts ``B_{lj}`` in columns and *reduces* partial products in
  rows to the step's owner column l;
* Alg. 3 broadcasts ``A_{il}`` in rows and reduces partials in columns.

Each local block product charges ``2·(m/q)(k/q)(n/q)`` FLOPs; broadcast /
reduce scratch lives in the buffer manager's workspace region (§3.2.3).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from repro.backend import ops
from repro.core.buffers import BufferManager
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D
from repro.mesh.mesh import Mesh
from repro.comm import collectives as coll
from repro.runtime.events import NULL_SPAN


def _check_blocked(x: DTensor, name: str) -> None:
    if x.layout != BLOCKED_2D:
        raise ValueError(f"{name} must be BLOCKED_2D, got {x.layout}")
    if len(x.global_shape) != 2:
        raise ValueError(f"{name} must be a 2-D matrix, got {x.global_shape}")


def _scratch(buffers: Optional[BufferManager], rank: int, nbytes: int):
    return buffers.scratch(rank, nbytes) if buffers is not None else nullcontext()


def _gemm_flops(a_shape, b_cols: int) -> float:
    m, k = a_shape
    return 2.0 * m * k * b_cols


def summa_ab(
    mesh: Mesh,
    a: DTensor,
    b: DTensor,
    buffers: Optional[BufferManager] = None,
) -> DTensor:
    """Algorithm 1: ``C = A·B`` with A=[M,K], B=[K,N] both 2-D blocked."""
    _check_blocked(a, "A")
    _check_blocked(b, "B")
    M, K = a.global_shape
    K2, N = b.global_shape
    if K != K2:
        raise ValueError(f"inner dims mismatch: A {a.global_shape} · B {b.global_shape}")
    q = mesh.q
    tr = mesh.sim.tracer
    traced = tr.enabled
    c_shards = {rank: None for rank in mesh.ranks}
    with tr.span("summa_ab", mesh.ranks, "op", M=M, K=K, N=N, q=q) if traced else NULL_SPAN:
        for l in range(q):
            with tr.span("summa_step", mesh.ranks, "summa", algo="ab", step=l) if traced else NULL_SPAN:
                # broadcast A_{il} within each row i (root = device (i, l))
                a_recv = {}
                for i in range(q):
                    root = mesh.rank(i, l)
                    out = coll.broadcast(mesh.row_group(i), a.local(root), root)
                    a_recv.update(out)
                # broadcast B_{lj} within each column j (root = device (l, j))
                b_recv = {}
                for j in range(q):
                    root = mesh.rank(l, j)
                    out = coll.broadcast(mesh.col_group(j), b.local(root), root)
                    b_recv.update(out)
                for rank in mesh.ranks:
                    ablk, bblk = a_recv[rank], b_recv[rank]
                    with _scratch(buffers, rank, ops.nbytes(ablk) + ops.nbytes(bblk)):
                        prod = ablk @ bblk
                        mesh.device(rank).compute(_gemm_flops(ablk.shape, bblk.shape[1]))
                        c_shards[rank] = prod if c_shards[rank] is None else c_shards[rank] + prod
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


def summa_abt(
    mesh: Mesh,
    a: DTensor,
    b: DTensor,
    buffers: Optional[BufferManager] = None,
) -> DTensor:
    """Algorithm 2: ``C = A·Bᵀ`` with A=[M,K], B=[N,K]; C=[M,N]."""
    _check_blocked(a, "A")
    _check_blocked(b, "B")
    M, K = a.global_shape
    N, K2 = b.global_shape
    if K != K2:
        raise ValueError(f"inner dims mismatch: A {a.global_shape} · Bᵀ of {b.global_shape}")
    q = mesh.q
    tr = mesh.sim.tracer
    traced = tr.enabled
    c_shards = {}
    with tr.span("summa_abt", mesh.ranks, "op", M=M, K=K, N=N, q=q) if traced else NULL_SPAN:
        for l in range(q):
            with tr.span("summa_step", mesh.ranks, "summa", algo="abt", step=l) if traced else NULL_SPAN:
                # broadcast B_{lj} within each column j (root = device (l, j))
                b_recv = {}
                for j in range(q):
                    root = mesh.rank(l, j)
                    out = coll.broadcast(mesh.col_group(j), b.local(root), root)
                    b_recv.update(out)
                # every device forms A_{ij}·(B_{lj})ᵀ then rows reduce to column l
                for i in range(q):
                    partials = {}
                    for j in range(q):
                        rank = mesh.rank(i, j)
                        ablk, bblk = a.local(rank), b_recv[rank]
                        with _scratch(buffers, rank, ops.nbytes(bblk)):
                            partials[rank] = ablk @ ops.transpose(bblk)
                            mesh.device(rank).compute(_gemm_flops(ablk.shape, bblk.shape[0]))
                    root = mesh.rank(i, l)
                    reduced = coll.reduce(mesh.row_group(i), partials, root)
                    c_shards[root] = reduced[root]
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


def summa_atb(
    mesh: Mesh,
    a: DTensor,
    b: DTensor,
    buffers: Optional[BufferManager] = None,
) -> DTensor:
    """Algorithm 3: ``C = Aᵀ·B`` with A=[K,M], B=[K,N]; C=[M,N]."""
    _check_blocked(a, "A")
    _check_blocked(b, "B")
    K, M = a.global_shape
    K2, N = b.global_shape
    if K != K2:
        raise ValueError(f"inner dims mismatch: Aᵀ of {a.global_shape} · B {b.global_shape}")
    q = mesh.q
    tr = mesh.sim.tracer
    traced = tr.enabled
    c_shards = {}
    with tr.span("summa_atb", mesh.ranks, "op", M=M, K=K, N=N, q=q) if traced else NULL_SPAN:
        for l in range(q):
            with tr.span("summa_step", mesh.ranks, "summa", algo="atb", step=l) if traced else NULL_SPAN:
                # broadcast A_{il} within each row i (root = device (i, l))
                a_recv = {}
                for i in range(q):
                    root = mesh.rank(i, l)
                    out = coll.broadcast(mesh.row_group(i), a.local(root), root)
                    a_recv.update(out)
                # every device forms (A_{il})ᵀ·B_{ij} then columns reduce to row l
                for j in range(q):
                    partials = {}
                    for i in range(q):
                        rank = mesh.rank(i, j)
                        ablk, bblk = a_recv[rank], b.local(rank)
                        with _scratch(buffers, rank, ops.nbytes(ablk)):
                            partials[rank] = ops.transpose(ablk) @ bblk
                            mesh.device(rank).compute(_gemm_flops((ablk.shape[1], ablk.shape[0]), bblk.shape[1]))
                    root = mesh.rank(l, j)
                    reduced = coll.reduce(mesh.col_group(j), partials, root)
                    c_shards[root] = reduced[root]
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


# ----------------------------------------------------------------------
# closed-set backward identities (paper Eqs. 1–3)
# ----------------------------------------------------------------------
def grads_of_ab(mesh, a, b, dc, buffers=None):
    """(dA, dB) for ``C = A·B`` (Eq. 1): dA = dC·Bᵀ, dB = Aᵀ·dC."""
    da = summa_abt(mesh, dc, b, buffers)
    db = summa_atb(mesh, a, dc, buffers)
    return da, db


def grads_of_abt(mesh, a, b, dc, buffers=None):
    """(dA, dB) for ``C = A·Bᵀ`` (Eq. 3): dA = dC·B, dB = dCᵀ·A."""
    da = summa_ab(mesh, dc, b, buffers)
    db = summa_atb(mesh, dc, a, buffers)
    return da, db


def grads_of_atb(mesh, a, b, dc, buffers=None):
    """(dA, dB) for ``C = Aᵀ·B`` (Eq. 2): dA = B·dCᵀ, dB = A·dC."""
    da = summa_abt(mesh, b, dc, buffers)
    db = summa_ab(mesh, a, dc, buffers)
    return da, db
