"""SUMMA matrix products on a q×q mesh (paper §2.4, Algorithms 1–3).

All three products consume and produce ``BLOCKED_2D`` DTensors.  Following
the paper's key observation, the set {AB, ABᵀ, AᵀB} is closed under
differentiation (Eqs. 1–3):

    C = AB   →  dA = dC·Bᵀ (Alg. 2),  dB = Aᵀ·dC (Alg. 3)
    C = ABᵀ  →  dA = dC·B  (Alg. 1),  dB = dCᵀ·A (Alg. 3)
    C = AᵀB  →  dA = B·dCᵀ (Alg. 2*), dB = A·dC  (Alg. 1)

so every backward pass is again a composition of these three primitives —
no new communication patterns are needed (see :func:`grads_of_ab` etc.).

Communication per step l:

* Alg. 1 broadcasts ``A_{il}`` in every row and ``B_{lj}`` in every column;
* Alg. 2 broadcasts ``B_{lj}`` in columns and *reduces* partial products in
  rows to the step's owner column l;
* Alg. 3 broadcasts ``A_{il}`` in rows and reduces partials in columns.

Each local block product charges ``2·(m/q)(k/q)(n/q)`` FLOPs; broadcast /
reduce scratch lives in the buffer manager's workspace region (§3.2.3).

Hot-path engineering (this module is the simulator's innermost loop):

* **Plan cache** — the communication schedule of a SUMMA product (which
  group broadcasts which root's block, the α–β price of every collective,
  per-rank FLOP and scratch-byte counts) depends only on ``(mesh, global
  shapes, dtypes)``.  It is computed once per distinct key and cached on
  the mesh, so the q-step loop stops recomputing group membership, byte
  counts, and tree-stage timing on every call.  Plans charge *identical*
  quantities to the uncached path by construction — the ``repro check``
  oracle and the collective contract checker both run against planned
  execution.
* **Scratch-buffer pool** — per-step partial products go through
  :class:`~repro.core.buffers.ArrayPool` (``np.matmul(..., out=pooled)``
  followed by an in-place accumulate), which is bit-identical to the
  out-of-place product while eliminating the per-step ndarray allocations.

Both optimizations can be disabled — per call site via :func:`configure` /
:func:`optimizations`, or process-wide via ``REPRO_SUMMA_PLAN_CACHE=0`` and
``REPRO_SUMMA_POOL=0`` — which is how ``repro bench`` measures their effect
(the ``macro/optimus_stem_ab`` A/B benchmark).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

import numpy as np

from repro.backend import ops
from repro.backend.dtypes import result_float
from repro.backend.shape_array import is_shape_array
from repro.comm import collectives as coll
from repro.core.buffers import ArrayPool, BufferManager
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D
from repro.mesh.mesh import Mesh
from repro.runtime.events import NULL_SPAN


def _env_flag(name: str, default: bool = True) -> bool:
    v = os.environ.get(name)
    if v is None:
        return default
    return v.lower() not in ("0", "false", "no", "off")


_PLAN_CACHE_ENABLED = _env_flag("REPRO_SUMMA_PLAN_CACHE")
_POOL_ENABLED = _env_flag("REPRO_SUMMA_POOL")


def configure(plan_cache: Optional[bool] = None, pool: Optional[bool] = None):
    """Toggle the plan cache / scratch pool; returns the previous settings."""
    global _PLAN_CACHE_ENABLED, _POOL_ENABLED
    previous = (_PLAN_CACHE_ENABLED, _POOL_ENABLED)
    if plan_cache is not None:
        _PLAN_CACHE_ENABLED = bool(plan_cache)
    if pool is not None:
        _POOL_ENABLED = bool(pool)
    return previous


@contextmanager
def optimizations(plan_cache: bool = True, pool: bool = True):
    """Scoped toggle, mainly for A/B benchmarking and tests."""
    previous = configure(plan_cache, pool)
    try:
        yield
    finally:
        configure(*previous)


def _check_blocked(x: DTensor, name: str) -> None:
    if x.layout != BLOCKED_2D:
        raise ValueError(f"{name} must be BLOCKED_2D, got {x.layout}")
    if len(x.global_shape) != 2:
        raise ValueError(f"{name} must be a 2-D matrix, got {x.global_shape}")


def _gemm_flops(a_shape, b_cols: int) -> float:
    m, k = a_shape
    return 2.0 * m * k * b_cols


def _pool_of(sim) -> ArrayPool:
    pool = getattr(sim, "_array_pool", None)
    if pool is None:
        pool = sim._array_pool = ArrayPool()
    return pool


# ----------------------------------------------------------------------
# execution plans
# ----------------------------------------------------------------------
class _Plan:
    """The precomputed schedule of one SUMMA product on one mesh.

    ``steps`` holds, per SUMMA step l, tuples of

    * broadcast ops  — ``(group, root, (dt, nbytes, weighted))``;
    * gemm ops       — ``(rank, device, flops, scratch_nbytes, out_shape)``;
    * reduce ops     — ``(group, root, (dt, nbytes, weighted))`` (Algs. 2–3).

    The precost triples are exactly what the collective would recompute from
    the block's byte size, so charging is identical to unplanned execution.
    """

    __slots__ = ("steps", "numeric", "out_dtype")

    def __init__(self, steps, numeric, out_dtype):
        self.steps = steps
        self.numeric = numeric
        self.out_dtype = out_dtype


def _dtype_name(x) -> str:
    return x.dtype.name


def _out_dtype(a: DTensor, b: DTensor, numeric: bool):
    ablk = next(iter(a.shards.values()))
    bblk = next(iter(b.shards.values()))
    if numeric:
        return np.result_type(ablk.dtype, bblk.dtype)
    return result_float(ablk.dtype, bblk.dtype)


def _bcast_op(group, root, blk):
    nb = ops.nbytes(blk)
    model = group.model
    return (group, root, (model.broadcast_time(nb), nb, model.broadcast_weighted_volume(nb)))


def _reduce_op(group, root, nbytes):
    model = group.model
    return (group, root, (model.reduce_time(nbytes), nbytes, model.reduce_weighted_volume(nbytes)))


def _shape_sig(mesh: Mesh, x: DTensor):
    # Per-rank local shapes, not just the global shape: ragged BLOCKED_2D
    # tensors (e.g. MoE expert blocks sized by routed token counts) share a
    # global shape across calls while their block shapes differ.
    shards = x.shards
    return tuple(shards[r].shape for r in mesh.ranks)


def _plan_key(mesh: Mesh, algo: str, a: DTensor, b: DTensor, numeric: bool):
    return (
        algo,
        a.global_shape,
        b.global_shape,
        _shape_sig(mesh, a),
        _shape_sig(mesh, b),
        _dtype_name(a),
        _dtype_name(b),
        numeric,
    )


def _get_plan(mesh: Mesh, algo: str, a: DTensor, b: DTensor, builder) -> _Plan:
    numeric = not is_shape_array(next(iter(a.shards.values())))
    if not _PLAN_CACHE_ENABLED:
        return builder(mesh, a, b, numeric)
    cache = getattr(mesh, "_summa_plans", None)
    if cache is None:
        cache = mesh._summa_plans = {}
    key = _plan_key(mesh, algo, a, b, numeric)
    plan = cache.get(key)
    if plan is None:
        plan = cache[key] = builder(mesh, a, b, numeric)
    return plan


def plan_cache_size(mesh: Mesh) -> int:
    """Number of cached SUMMA plans on a mesh (observability/test hook)."""
    return len(getattr(mesh, "_summa_plans", ()))


def _build_ab(mesh: Mesh, a: DTensor, b: DTensor, numeric: bool) -> _Plan:
    q = mesh.q
    out_dtype = _out_dtype(a, b, numeric)
    steps = []
    for l in range(q):
        a_bc = []
        for i in range(q):
            root = mesh.rank(i, l)
            a_bc.append(_bcast_op(mesh.row_groups[i], root, a.shards[root]))
        b_bc = []
        for j in range(q):
            root = mesh.rank(l, j)
            b_bc.append(_bcast_op(mesh.col_groups[j], root, b.shards[root]))
        gemms = []
        for rank in mesh.ranks:
            i, j = mesh.coords(rank)
            ablk = a.shards[mesh.rank(i, l)]
            bblk = b.shards[mesh.rank(l, j)]
            m, k = ablk.shape
            n = bblk.shape[1]
            scratch = ops.nbytes(ablk) + ops.nbytes(bblk)
            gemms.append((rank, mesh.device(rank), 2.0 * m * k * n, scratch, (m, n)))
        steps.append((a_bc, b_bc, gemms))
    return _Plan(steps, numeric, out_dtype)


def _build_abt(mesh: Mesh, a: DTensor, b: DTensor, numeric: bool) -> _Plan:
    q = mesh.q
    out_dtype = _out_dtype(a, b, numeric)
    itemsize = np.dtype(out_dtype).itemsize if numeric else out_dtype.itemsize
    steps = []
    for l in range(q):
        b_bc = []
        for j in range(q):
            root = mesh.rank(l, j)
            b_bc.append(_bcast_op(mesh.col_groups[j], root, b.shards[root]))
        rows = []
        for i in range(q):
            gemms = []
            m = n = 0
            for j in range(q):
                rank = mesh.rank(i, j)
                ablk = a.shards[rank]
                bblk = b.shards[mesh.rank(l, j)]
                m, k = ablk.shape
                n = bblk.shape[0]
                gemms.append(
                    (rank, mesh.device(rank), 2.0 * m * k * n, ops.nbytes(bblk), (m, n))
                )
            root = mesh.rank(i, l)
            rows.append((gemms, _reduce_op(mesh.row_groups[i], root, m * n * itemsize)))
        steps.append((b_bc, rows))
    return _Plan(steps, numeric, out_dtype)


def _build_atb(mesh: Mesh, a: DTensor, b: DTensor, numeric: bool) -> _Plan:
    q = mesh.q
    out_dtype = _out_dtype(a, b, numeric)
    itemsize = np.dtype(out_dtype).itemsize if numeric else out_dtype.itemsize
    steps = []
    for l in range(q):
        a_bc = []
        for i in range(q):
            root = mesh.rank(i, l)
            a_bc.append(_bcast_op(mesh.row_groups[i], root, a.shards[root]))
        cols = []
        for j in range(q):
            gemms = []
            m = n = 0
            for i in range(q):
                rank = mesh.rank(i, j)
                ablk = a.shards[mesh.rank(i, l)]
                bblk = b.shards[rank]
                k, m = ablk.shape
                n = bblk.shape[1]
                gemms.append(
                    (rank, mesh.device(rank), 2.0 * m * k * n, ops.nbytes(ablk), (m, n))
                )
            root = mesh.rank(l, j)
            cols.append((gemms, _reduce_op(mesh.col_groups[j], root, m * n * itemsize)))
        steps.append((a_bc, cols))
    return _Plan(steps, numeric, out_dtype)


# ----------------------------------------------------------------------
# the three products
# ----------------------------------------------------------------------
def summa_ab(
    mesh: Mesh,
    a: DTensor,
    b: DTensor,
    buffers: Optional[BufferManager] = None,
) -> DTensor:
    """Algorithm 1: ``C = A·B`` with A=[M,K], B=[K,N] both 2-D blocked."""
    _check_blocked(a, "A")
    _check_blocked(b, "B")
    M, K = a.global_shape
    K2, N = b.global_shape
    if K != K2:
        raise ValueError(f"inner dims mismatch: A {a.global_shape} · B {b.global_shape}")
    plan = _get_plan(mesh, "ab", a, b, _build_ab)
    sim = mesh.sim
    tr = sim.tracer
    traced = tr.enabled
    pool = _pool_of(sim) if (_POOL_ENABLED and plan.numeric) else None
    ashards, bshards = a.shards, b.shards
    c_shards = {}
    with tr.span("summa_ab", mesh.ranks, "op", M=M, K=K, N=N, q=mesh.q) if traced else NULL_SPAN:
        for l, (a_bc, b_bc, gemms) in enumerate(plan.steps):
            with tr.span(
                "summa_step", mesh.ranks, "summa", algo="ab", step=l
            ) if traced else NULL_SPAN:
                a_recv = {}
                for group, root, cost in a_bc:
                    a_recv.update(coll.broadcast(group, ashards[root], root, cost))
                b_recv = {}
                for group, root, cost in b_bc:
                    b_recv.update(coll.broadcast(group, bshards[root], root, cost))
                for rank, dev, flops, scratch, out_shape in gemms:
                    ablk, bblk = a_recv[rank], b_recv[rank]
                    if buffers is not None:
                        buffers.hold("workspace", rank, scratch)
                    try:
                        acc = c_shards.get(rank)
                        if acc is None:
                            c_shards[rank] = ablk @ bblk
                        elif pool is not None:
                            tmp = pool.acquire(out_shape, plan.out_dtype)
                            np.matmul(ablk, bblk, out=tmp)
                            np.add(acc, tmp, out=acc)
                            pool.release(tmp)
                        else:
                            c_shards[rank] = acc + (ablk @ bblk)
                        dev.compute(flops)
                    finally:
                        if buffers is not None:
                            buffers.release("workspace", rank, scratch)
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


def summa_abt(
    mesh: Mesh,
    a: DTensor,
    b: DTensor,
    buffers: Optional[BufferManager] = None,
) -> DTensor:
    """Algorithm 2: ``C = A·Bᵀ`` with A=[M,K], B=[N,K]; C=[M,N]."""
    _check_blocked(a, "A")
    _check_blocked(b, "B")
    M, K = a.global_shape
    N, K2 = b.global_shape
    if K != K2:
        raise ValueError(f"inner dims mismatch: A {a.global_shape} · Bᵀ of {b.global_shape}")
    plan = _get_plan(mesh, "abt", a, b, _build_abt)
    sim = mesh.sim
    tr = sim.tracer
    traced = tr.enabled
    pool = _pool_of(sim) if (_POOL_ENABLED and plan.numeric) else None
    ashards, bshards = a.shards, b.shards
    c_shards = {}
    with tr.span("summa_abt", mesh.ranks, "op", M=M, K=K, N=N, q=mesh.q) if traced else NULL_SPAN:
        for l, (b_bc, rows) in enumerate(plan.steps):
            with tr.span(
                "summa_step", mesh.ranks, "summa", algo="abt", step=l
            ) if traced else NULL_SPAN:
                b_recv = {}
                for group, root, cost in b_bc:
                    b_recv.update(coll.broadcast(group, bshards[root], root, cost))
                for gemms, (rgroup, root, rcost) in rows:
                    partials = {}
                    pooled = [] if pool is not None else None
                    for rank, dev, flops, scratch, out_shape in gemms:
                        ablk, bblk = ashards[rank], b_recv[rank]
                        if buffers is not None:
                            buffers.hold("workspace", rank, scratch)
                        try:
                            if pool is not None:
                                tmp = pool.acquire(out_shape, plan.out_dtype)
                                np.matmul(ablk, ops.transpose(bblk), out=tmp)
                                partials[rank] = tmp
                                pooled.append(tmp)
                            else:
                                partials[rank] = ablk @ ops.transpose(bblk)
                            dev.compute(flops)
                        finally:
                            if buffers is not None:
                                buffers.release("workspace", rank, scratch)
                    reduced = coll.reduce(rgroup, partials, root, "sum", rcost)
                    out = reduced[root]
                    c_shards[root] = out
                    if pooled:
                        for tmp in pooled:
                            if tmp is not out:
                                pool.release(tmp)
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


def summa_atb(
    mesh: Mesh,
    a: DTensor,
    b: DTensor,
    buffers: Optional[BufferManager] = None,
) -> DTensor:
    """Algorithm 3: ``C = Aᵀ·B`` with A=[K,M], B=[K,N]; C=[M,N]."""
    _check_blocked(a, "A")
    _check_blocked(b, "B")
    K, M = a.global_shape
    K2, N = b.global_shape
    if K != K2:
        raise ValueError(f"inner dims mismatch: Aᵀ of {a.global_shape} · B {b.global_shape}")
    plan = _get_plan(mesh, "atb", a, b, _build_atb)
    sim = mesh.sim
    tr = sim.tracer
    traced = tr.enabled
    pool = _pool_of(sim) if (_POOL_ENABLED and plan.numeric) else None
    ashards, bshards = a.shards, b.shards
    c_shards = {}
    with tr.span("summa_atb", mesh.ranks, "op", M=M, K=K, N=N, q=mesh.q) if traced else NULL_SPAN:
        for l, (a_bc, cols) in enumerate(plan.steps):
            with tr.span(
                "summa_step", mesh.ranks, "summa", algo="atb", step=l
            ) if traced else NULL_SPAN:
                a_recv = {}
                for group, root, cost in a_bc:
                    a_recv.update(coll.broadcast(group, ashards[root], root, cost))
                for gemms, (rgroup, root, rcost) in cols:
                    partials = {}
                    pooled = [] if pool is not None else None
                    for rank, dev, flops, scratch, out_shape in gemms:
                        ablk, bblk = a_recv[rank], bshards[rank]
                        if buffers is not None:
                            buffers.hold("workspace", rank, scratch)
                        try:
                            if pool is not None:
                                tmp = pool.acquire(out_shape, plan.out_dtype)
                                np.matmul(ops.transpose(ablk), bblk, out=tmp)
                                partials[rank] = tmp
                                pooled.append(tmp)
                            else:
                                partials[rank] = ops.transpose(ablk) @ bblk
                            dev.compute(flops)
                        finally:
                            if buffers is not None:
                                buffers.release("workspace", rank, scratch)
                    reduced = coll.reduce(rgroup, partials, root, "sum", rcost)
                    out = reduced[root]
                    c_shards[root] = out
                    if pooled:
                        for tmp in pooled:
                            if tmp is not out:
                                pool.release(tmp)
    return DTensor(mesh, BLOCKED_2D, c_shards, (M, N))


# ----------------------------------------------------------------------
# closed-set backward identities (paper Eqs. 1–3)
# ----------------------------------------------------------------------
def grads_of_ab(mesh, a, b, dc, buffers=None):
    """(dA, dB) for ``C = A·B`` (Eq. 1): dA = dC·Bᵀ, dB = Aᵀ·dC."""
    da = summa_abt(mesh, dc, b, buffers)
    db = summa_atb(mesh, a, dc, buffers)
    return da, db


def grads_of_abt(mesh, a, b, dc, buffers=None):
    """(dA, dB) for ``C = A·Bᵀ`` (Eq. 3): dA = dC·B, dB = dCᵀ·A."""
    da = summa_ab(mesh, dc, b, buffers)
    db = summa_atb(mesh, dc, a, buffers)
    return da, db


def grads_of_atb(mesh, a, b, dc, buffers=None):
    """(dA, dB) for ``C = Aᵀ·B`` (Eq. 2): dA = B·dCᵀ, dB = A·dC."""
    da = summa_abt(mesh, b, dc, buffers)
    db = summa_ab(mesh, a, dc, buffers)
    return da, db
