"""The full Optimus model: embedding → N 2-D transformer layers → final LN
→ tied LM head → vocabulary-2D cross-entropy, with distributed activation
checkpointing and the Fig. 6 buffer schedule.

With checkpointing (the paper's default): during forward only each layer's
*input* is kept (in the checkpoint region, bsh/p bytes per device per
layer); all intra-layer activations are dropped and their buffer regions
reset.  During backward each layer's forward is recomputed from its
checkpoint before its backward runs — hence the paper's 3× backward compute
and the 3× backward communication ratio unique to Optimus (communication
happens inside SUMMA ops, so the re-forward re-pays it; Megatron's
re-forward re-pays its all-reduces too, giving its 2→... see Table 1
discussion in §4).  Between layers the activation gradient is cloned into
the conjunction region so forward/backward buffers can be reset (Fig. 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray
from repro.config import ModelConfig
from repro.core.buffers import BufferManager
from repro.core.embedding import Embedding2D, LMHead2D
from repro.core.layers import TransformerLayer2D
from repro.core.loss import CrossEntropy2D
from repro.core.param import DistModule
from repro.mesh.dtensor import DTensor
from repro.mesh.mesh import Mesh
from repro.mesh.partition import distribute_row_blocked
from repro.runtime.events import NULL_SPAN


class OptimusModel(DistModule):
    """Paper's 2-D tensor-parallel transformer on a q×q mesh."""

    def __init__(
        self,
        mesh: Mesh,
        cfg: ModelConfig,
        params_global: Dict[str, object],
        checkpoint_activations: bool = True,
        buffers: Optional[BufferManager] = None,
        manage_buffers: bool = True,
        stem_only: bool = False,
        fused_attention: bool = False,
        attention_chunk: int = 64,
    ):
        super().__init__()
        self.mesh = mesh
        self.cfg = cfg
        self.checkpoint = checkpoint_activations
        self.stem_only = stem_only
        self.fused_attention = fused_attention
        self.buffers = buffers if buffers is not None else BufferManager(
            mesh.sim, ranks=mesh.ranks, managed=manage_buffers
        )
        self.embedding = None
        self.lm_head = None
        self.final_ln = None
        self.loss_fn = None
        self.cls_head = None
        if not stem_only:
            self.embedding = self.register_module(
                Embedding2D(mesh, cfg, params_global["embedding.table"], self.buffers)
            )
        self.layers: List[TransformerLayer2D] = [
            self.register_module(
                TransformerLayer2D(
                    mesh, cfg, l, params_global, self.buffers,
                    fused_attention=fused_attention,
                    attention_chunk=attention_chunk,
                )
            )
            for l in range(cfg.num_layers)
        ]
        from repro.core.layers import LayerNorm2D  # local import avoids cycle

        if not stem_only:
            self.final_ln = self.register_module(
                LayerNorm2D(
                    mesh, "final_ln", params_global["final_ln.gamma"],
                    params_global["final_ln.beta"], cfg.ln_eps, self.buffers,
                )
            )
            self.lm_head = LMHead2D(mesh, self.embedding, self.buffers)
            self.register_module(self.lm_head)
            self.loss_fn = CrossEntropy2D(mesh, self.buffers)
            if "cls_head.weight" in params_global:
                from repro.core.cls_head import ClassificationHead2D

                self.cls_head = self.register_module(
                    ClassificationHead2D(
                        mesh, cfg, params_global["cls_head.weight"],
                        params_global["cls_head.bias"], self.buffers,
                    )
                )

        self._ckpt_inputs: List[DTensor] = []
        self._batch_size: Optional[int] = None
        self._labels: Optional[DTensor] = None
        self._stem_out: Optional[DTensor] = None

    # ------------------------------------------------------------------
    # input handling
    # ------------------------------------------------------------------
    def distribute_tokens(self, ids) -> DTensor:
        """Partition a global [b, s] integer array (or ShapeArray) row-wise."""
        return distribute_row_blocked(self.mesh, ids)

    def synthetic_batch(self, batch_size: int, seed: int = 0):
        """A reproducible (ids, labels) pair matching the simulator backend."""
        b, s, v = batch_size, self.cfg.seq_len, self.cfg.vocab_size
        if self.mesh.backend == "shape":
            return ShapeArray((b, s), "int64"), ShapeArray((b, s), "int64")
        rng = np.random.default_rng(seed)
        return (
            rng.integers(0, v, size=(b, s)),
            rng.integers(0, v, size=(b, s)),
        )

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def forward(self, ids, labels=None):
        """ids/labels are global [b, s] arrays (numeric or ShapeArray).

        Returns the scalar mean loss when labels are given, else the logits
        DTensor.
        """
        cfg = self.cfg
        b, s = ids.shape
        if s != cfg.seq_len:
            raise ValueError(f"sequence length {s} != config seq_len {cfg.seq_len}")
        cfg.validate_for_optimus(self.mesh.q, b)
        self._batch_size = b
        ids_dt = self.distribute_tokens(ids)

        tr = self.mesh.sim.tracer
        x = self.embedding.forward(ids_dt)
        self._ckpt_inputs = []
        for layer in self.layers:
            if self.checkpoint:
                self._hold_checkpoint(x)
                self._ckpt_inputs.append(x)
            with tr.span("layer", self.mesh.ranks, "layer", index=layer.index,
                         phase="forward") if tr.enabled else NULL_SPAN:
                x = layer.forward(x, b)
            if self.checkpoint:
                layer.drop_caches()
                self.buffers.reset_region("forward")

        out = self.final_ln.forward(x)
        logits = self.lm_head.forward(out)
        if labels is None:
            return logits
        labels_dt = distribute_row_blocked(self.mesh, labels)
        self._labels = labels_dt
        return self.loss_fn.forward(logits, labels_dt)

    def backward(self, on_layer_backward=None) -> None:
        """Backward from the loss; parameter gradients accumulate in place.

        ``on_layer_backward(layer)``, when given, fires right after each
        transformer layer's backward completes — the hook behind §3.2.3
        option 2 (immediate per-layer parameter updates, which let the
        parameter-gradient buffer be reset layer by layer instead of
        accumulating all N layers' gradients).
        """
        if self._batch_size is None:
            raise RuntimeError("backward before forward")
        b = self._batch_size
        dlogits = self.loss_fn.backward()
        dx = self.lm_head.backward(dlogits)
        dx = self.final_ln.backward(dx)
        if self.checkpoint and self.buffers.skip_matmul_outputs:
            # option 3: re-size the forward buffer for the leaner recompute
            self.buffers.reset_region("forward")
            self.buffers.trim_region("forward")
        tr = self.mesh.sim.tracer
        for layer in reversed(self.layers):
            with tr.span("layer", self.mesh.ranks, "layer", index=layer.index,
                         phase="backward") if tr.enabled else NULL_SPAN:
                if self.checkpoint:
                    x_in = self._ckpt_inputs.pop()
                    self.buffers.in_recompute = True
                    layer.forward(x_in, b)  # recompute (paper's 3× backward cost)
                    self.buffers.in_recompute = False
                dx = self._to_conjunction(layer.backward(dx))
            if on_layer_backward is not None:
                on_layer_backward(layer)
            if self.checkpoint:
                self.buffers.reset_region("forward")
                self.buffers.reset_region("backward")
        self.embedding.backward(dx)
        if self.checkpoint:
            self._release_checkpoints()
        self._batch_size = None

    def loss_and_grads(self, ids, labels):
        """Convenience: one forward+backward; returns (loss, named grads)."""
        loss = self.forward(ids, labels)
        self.backward()
        return loss, {p.name: p.grad for p in self.parameters()}

    # ------------------------------------------------------------------
    # classification branch (paper Fig. 1, right side)
    # ------------------------------------------------------------------
    def forward_classification(self, ids, cls_labels=None):
        """Sequence classification via token-0 pooling (Fig. 1).

        ``cls_labels`` is a global [b] integer array; returns the mean loss
        (or the class-logits DTensor when labels are omitted).
        """
        if self.cls_head is None:
            raise RuntimeError(
                "model built without cls_head.* parameters "
                "(init_transformer_params(num_classes=...))"
            )
        cfg = self.cfg
        b, s = ids.shape
        if s != cfg.seq_len:
            raise ValueError(f"sequence length {s} != config seq_len {cfg.seq_len}")
        cfg.validate_for_optimus(self.mesh.q, b)
        self._batch_size = b
        x = self.embedding.forward(self.distribute_tokens(ids))
        self._ckpt_inputs = []
        for layer in self.layers:
            if self.checkpoint:
                self._hold_checkpoint(x)
                self._ckpt_inputs.append(x)
            x = layer.forward(x, b)
            if self.checkpoint:
                layer.drop_caches()
                self.buffers.reset_region("forward")
        out = self.final_ln.forward(x)
        if cls_labels is None:
            return self.cls_head.forward(out)
        labels_dt = distribute_row_blocked(self.mesh, cls_labels)
        return self.cls_head.forward(out, labels_dt)

    def backward_classification(self) -> None:
        if self._batch_size is None:
            raise RuntimeError("backward before forward")
        b = self._batch_size
        dx = self.final_ln.backward(self.cls_head.backward())
        for layer in reversed(self.layers):
            if self.checkpoint:
                x_in = self._ckpt_inputs.pop()
                self.buffers.in_recompute = True
                layer.forward(x_in, b)
                self.buffers.in_recompute = False
            dx = self._to_conjunction(layer.backward(dx))
            if self.checkpoint:
                self.buffers.reset_region("forward")
                self.buffers.reset_region("backward")
        self.embedding.backward(dx)
        if self.checkpoint:
            self._release_checkpoints()
        self._batch_size = None

    # ------------------------------------------------------------------
    # stem-only execution (the paper's §5 measurement workload)
    # ------------------------------------------------------------------
    def _synthetic_activation(self, batch_size: int) -> DTensor:
        """A BLOCKED_2D [b·s, h] activation on the simulator's backend."""
        from repro.mesh.layouts import BLOCKED_2D

        mesh, cfg = self.mesh, self.cfg
        T, h = batch_size * cfg.seq_len, cfg.hidden_size
        q = mesh.q
        shards = {}
        rng = np.random.default_rng(0)
        for rank in mesh.ranks:
            if mesh.backend == "shape":
                shards[rank] = ShapeArray((T // q, h // q), "float32")
            else:
                shards[rank] = rng.normal(size=(T // q, h // q))
        return DTensor(mesh, BLOCKED_2D, shards, (T, h))

    def stem_forward(self, batch_size: int) -> DTensor:
        """Run only the N transformer layers (Tables 2–3 workload)."""
        self.cfg.validate_for_optimus(self.mesh.q, batch_size, include_vocab=False)
        self._batch_size = batch_size
        tr = self.mesh.sim.tracer
        x = self._synthetic_activation(batch_size)
        self._ckpt_inputs = []
        for layer in self.layers:
            if self.checkpoint:
                self._hold_checkpoint(x)
                self._ckpt_inputs.append(x)
            with tr.span("layer", self.mesh.ranks, "layer", index=layer.index,
                         phase="forward") if tr.enabled else NULL_SPAN:
                x = layer.forward(x, batch_size)
            if self.checkpoint:
                layer.drop_caches()
                self.buffers.reset_region("forward")
        self._stem_out = x
        return x

    def stem_backward(self) -> DTensor:
        """Backward through the stem from a synthetic output gradient."""
        if self._stem_out is None:
            raise RuntimeError("stem_backward before stem_forward")
        b = self._batch_size
        tr = self.mesh.sim.tracer
        dx = self._stem_out.map(ops.zeros_like)
        if self.checkpoint and self.buffers.skip_matmul_outputs:
            self.buffers.reset_region("forward")
            self.buffers.trim_region("forward")
        for layer in reversed(self.layers):
            with tr.span("layer", self.mesh.ranks, "layer", index=layer.index,
                         phase="backward") if tr.enabled else NULL_SPAN:
                if self.checkpoint:
                    x_in = self._ckpt_inputs.pop()
                    self.buffers.in_recompute = True
                    layer.forward(x_in, b)
                    self.buffers.in_recompute = False
                dx = self._to_conjunction(layer.backward(dx))
            if self.checkpoint:
                self.buffers.reset_region("forward")
                self.buffers.reset_region("backward")
        if self.checkpoint:
            self._release_checkpoints()
        self._stem_out = None
        self._batch_size = None
        return dx

    # ------------------------------------------------------------------
    # memory-region bookkeeping
    # ------------------------------------------------------------------
    def _hold_checkpoint(self, x: DTensor) -> None:
        for rank, shard in x.shards.items():
            self.buffers.hold("checkpoint", rank, ops.nbytes(shard))

    def _release_checkpoints(self) -> None:
        self.buffers.reset_region("checkpoint")
        self.buffers.reset_region("conjunction")

    def _to_conjunction(self, dx: DTensor) -> DTensor:
        """Clone the inter-layer gradient into the conjunction region (Fig 6).

        The region holds exactly one inter-layer gradient at a time — the
        previous layer's copy is dropped when the next one is cloned in.
        """
        self.buffers.reset_region("conjunction")
        for rank, shard in dx.shards.items():
            self.buffers.hold("conjunction", rank, ops.nbytes(shard))
        return dx
