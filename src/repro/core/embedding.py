"""2-D-partitioned embedding layer and weight-tied LM head (paper §3.2.1).

The embedding table ``[v, h]`` is ``BLOCKED_2D`` like every other SUMMA
operand.  Token indices ``[b, s]`` are ``ROW_BLOCKED``: row i's devices all
hold the b/q sequences of batch block i.  The lookup is the paper's
"one-hot × table" product executed in SUMMA pattern — at step l the table
block ``E_{l,j}`` is broadcast down column j and each device gathers the
rows whose token ids fall in vocabulary stripe l.  The LM head reuses the
same table via Algorithm 2 (``logits = X·Eᵀ``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm import collectives as coll
from repro.config import ModelConfig
from repro.core.buffers import BufferManager
from repro.core.param import DistModule, DistParam, charge_param_memory
from repro.core.summa import summa_ab, summa_abt, summa_atb
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D, ROW_BLOCKED
from repro.mesh.mesh import Mesh
from repro.mesh.partition import distribute_blocked_2d


class Embedding2D(DistModule):
    """Token embedding with a 2-D blocked table."""

    _cache_attrs = ("_ids",)

    def __init__(
        self,
        mesh: Mesh,
        cfg: ModelConfig,
        table_global,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.mesh = mesh
        self.cfg = cfg
        self.buffers = buffers
        self.table = self.register_param(
            DistParam("embedding.table", distribute_blocked_2d(mesh, table_global))
        )
        charge_param_memory(self.table, mesh.sim)
        self._ids: Optional[DTensor] = None

    # ------------------------------------------------------------------
    def forward(self, ids: DTensor) -> DTensor:
        """ids ROW_BLOCKED [b, s] → activations BLOCKED_2D [b·s, h]."""
        if ids.layout != ROW_BLOCKED:
            raise ValueError(f"ids must be ROW_BLOCKED, got {ids.layout}")
        mesh, q = self.mesh, self.mesh.q
        v, h = self.table.data.global_shape
        b, s = ids.global_shape
        v_loc, h_loc = v // q, h // q
        T_loc = (b // q) * s
        self._ids = ids

        out = {
            rank: ops.zeros((T_loc, h_loc), dtype=self.table.data.dtype,
                            backend=mesh.backend)
            for rank in mesh.ranks
        }
        for l in range(q):
            lo = l * v_loc
            for j in range(q):
                root = mesh.rank(l, j)
                bcast = coll.broadcast(
                    mesh.col_group(j), self.table.data.local(root), root
                )
                for i in range(q):
                    rank = mesh.rank(i, j)
                    block = bcast[rank]
                    idvec = ids.local(rank).reshape((T_loc,))
                    self._gather_stripe(out[rank], block, idvec, lo, v_loc)
                    mesh.device(rank).compute(T_loc * h_loc, kind="elementwise")
        out_dt = DTensor(mesh, BLOCKED_2D, out, (b * s, h))
        if self.buffers is not None:
            for rank, shard in out_dt.shards.items():
                self.buffers.hold("forward", rank, ops.nbytes(shard))
        return out_dt

    @staticmethod
    def _gather_stripe(out, block, idvec, lo: int, v_loc: int) -> None:
        """out[t] += block[ids[t] − lo] for tokens whose id is in the stripe."""
        if is_shape_array(out):
            return  # dryrun: shapes already correct, data-dependent mask skipped
        ids = np.asarray(idvec)
        mask = (ids >= lo) & (ids < lo + v_loc)
        if not mask.any():
            return
        rows = np.nonzero(mask)[0]
        out[rows] += np.asarray(block)[ids[rows] - lo]

    # ------------------------------------------------------------------
    def backward(self, d_out: DTensor) -> None:
        """Scatter-add token gradients into the table (column reductions)."""
        if self._ids is None:
            raise RuntimeError("embedding backward before forward")
        mesh, q = self.mesh, self.mesh.q
        v, h = self.table.data.global_shape
        v_loc, h_loc = v // q, h // q
        grad_shards = {}
        for l in range(q):
            lo = l * v_loc
            for j in range(q):
                partials = {}
                for i in range(q):
                    rank = mesh.rank(i, j)
                    d = d_out.local(rank)
                    idvec = self._ids.local(rank).reshape((d.shape[0],))
                    partials[rank] = self._scatter_stripe(
                        d, idvec, lo, v_loc, h_loc, mesh.backend
                    )
                    mesh.device(rank).compute(d.size, kind="elementwise")
                root = mesh.rank(l, j)
                reduced = coll.reduce(mesh.col_group(j), partials, root)
                grad_shards[root] = reduced[root]
        self.table.add_grad(DTensor(mesh, BLOCKED_2D, grad_shards, (v, h)))
        self._ids = None

    @staticmethod
    def _scatter_stripe(d, idvec, lo, v_loc, h_loc, backend):
        if is_shape_array(d):
            return ShapeArray((v_loc, h_loc), d.dtype)
        g = np.zeros((v_loc, h_loc), dtype=np.asarray(d).dtype)
        ids = np.asarray(idvec)
        mask = (ids >= lo) & (ids < lo + v_loc)
        rows = np.nonzero(mask)[0]
        if rows.size:
            np.add.at(g, ids[rows] - lo, np.asarray(d)[rows])
        return g


class LMHead2D(DistModule):
    """Weight-tied language-model head: ``logits = X·Eᵀ`` (Algorithm 2)."""

    _cache_attrs = ("_x",)

    def __init__(
        self,
        mesh: Mesh,
        embedding: Embedding2D,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.mesh = mesh
        self.embedding = embedding  # not registered: the table is shared
        self.buffers = buffers
        self._x: Optional[DTensor] = None

    def forward(self, x: DTensor) -> DTensor:
        self._x = x
        logits = summa_abt(self.mesh, x, self.embedding.table.data, self.buffers)
        if self.buffers is not None:
            for rank, shard in logits.shards.items():
                self.buffers.hold("forward", rank, ops.nbytes(shard))
        return logits

    def backward(self, dlogits: DTensor) -> DTensor:
        if self._x is None:
            raise RuntimeError("lm-head backward before forward")
        # C = A·Bᵀ (Eq. 3): dA = dC·B, dB = dCᵀ·A
        dx = summa_ab(self.mesh, dlogits, self.embedding.table.data, self.buffers)
        d_table = summa_atb(self.mesh, dlogits, self._x, self.buffers)
        self.embedding.table.add_grad(d_table)
        if self.buffers is not None:
            for rank, shard in dx.shards.items():
                self.buffers.hold("backward", rank, ops.nbytes(shard))
        self._x = None
        return dx
