"""Vocabulary-2D softmax cross-entropy (paper §3.2.2).

Logits arrive ``BLOCKED_2D`` with global shape ``[T, v]``: each mesh row
holds a token block, each mesh column a vocabulary stripe.  Per the paper,
``Σᵢ eˣⁱ`` is summed locally then all-reduced along the SUMMA row; we add
the standard max-subtraction (one extra row all-reduce of [T_loc, 1]) for
float stability — it changes no values, only conditioning.  The picked
logit ``x_l`` lives in exactly one column stripe per token, so a masked
gather + row all-reduce recovers it everywhere.  The final scalar is the
token mean, combined across rows with a single column all-reduce of a
1-element buffer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm import collectives as coll
from repro.core.buffers import BufferManager
from repro.core.param import DistModule
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D, ROW_BLOCKED
from repro.mesh.mesh import Mesh


class CrossEntropy2D(DistModule):
    """Mean-token cross-entropy over 2-D-partitioned logits."""

    _cache_attrs = ("_saved",)

    def __init__(self, mesh: Mesh, buffers: Optional[BufferManager] = None):
        super().__init__()
        self.mesh = mesh
        self.buffers = buffers
        self._saved = None

    # ------------------------------------------------------------------
    def forward(self, logits: DTensor, labels: DTensor):
        """Returns the scalar mean loss (float in numeric mode)."""
        if logits.layout != BLOCKED_2D:
            raise ValueError(f"logits must be BLOCKED_2D, got {logits.layout}")
        if labels.layout != ROW_BLOCKED:
            raise ValueError(f"labels must be ROW_BLOCKED, got {labels.layout}")
        mesh, q = self.mesh, self.mesh.q
        T, v = logits.global_shape
        v_loc = v // q

        # 1) stabilizing max along each row
        mx = {r: ops.max(logits.local(r), axis=1, keepdims=True) for r in mesh.ranks}
        mx = self._row_all_reduce(mx, op="max")

        # 2) exp and row-sum
        e, ssum = {}, {}
        for rank in mesh.ranks:
            z = logits.local(rank) - mx[rank]
            ez = ops.exp(z)
            e[rank] = ez
            ssum[rank] = ops.sum(ez, axis=1, keepdims=True)
            mesh.device(rank).compute(8.0 * ez.size, kind="elementwise")
        ssum = self._row_all_reduce(ssum, op="sum")

        # 3) pick the label logit from its owning stripe
        picked = {}
        for rank in mesh.ranks:
            _, j = mesh.coords(rank)
            z = logits.local(rank) - mx[rank]
            lab = labels.local(rank).reshape((z.shape[0],))
            picked[rank] = self._masked_pick(z, lab, j * v_loc, v_loc)
        picked = self._row_all_reduce(picked, op="sum")

        # 4) per-token loss and global mean
        probs, part = {}, {}
        for rank in mesh.ranks:
            probs[rank] = e[rank] / ssum[rank]
            loss_tok = ops.log(ssum[rank]).reshape((e[rank].shape[0],)) - picked[rank]
            part[rank] = ops.sum(loss_tok, keepdims=True).reshape((1,))
            if self.buffers is not None:
                self.buffers.hold("forward", rank, ops.nbytes(probs[rank]))
        for j in range(q):
            grp = mesh.col_group(j)
            reduced = coll.all_reduce(grp, {r: part[r] for r in grp.ranks})
            part.update(reduced)

        self._saved = (probs, labels, T, v_loc)
        total = part[mesh.rank(0, 0)]
        if is_shape_array(total):
            return ShapeArray((), total.dtype)
        return float(np.asarray(total)[0]) / T

    @staticmethod
    def _masked_pick(z, lab, lo: int, v_loc: int):
        """Per-token z[t, lab[t]−lo] where the label falls in this stripe."""
        if is_shape_array(z):
            return ShapeArray((z.shape[0],), z.dtype)
        zl = np.asarray(z)
        ids = np.asarray(lab)
        mask = (ids >= lo) & (ids < lo + v_loc)
        out = np.zeros(zl.shape[0], dtype=zl.dtype)
        rows = np.nonzero(mask)[0]
        if rows.size:
            out[rows] = zl[rows, ids[rows] - lo]
        return out

    def _row_all_reduce(self, shards, op: str):
        mesh = self.mesh
        out = dict(shards)
        for i in range(mesh.q):
            grp = mesh.row_group(i)
            reduced = coll.all_reduce(grp, {r: out[r] for r in grp.ranks}, op=op)
            out.update(reduced)
        return out

    # ------------------------------------------------------------------
    def backward(self) -> DTensor:
        """d logits of the mean loss: (qⱼ − 1[j = label]) / T per token."""
        if self._saved is None:
            raise RuntimeError("cross-entropy backward before forward")
        mesh, q = self.mesh, self.mesh.q
        probs, labels, T, v_loc = self._saved
        scale = 1.0 / T
        shards = {}
        for rank in mesh.ranks:
            _, j = mesh.coords(rank)
            p = probs[rank]
            g = p * scale
            shards[rank] = self._subtract_labels(g, labels.local(rank), j * v_loc, v_loc, scale)
            mesh.device(rank).compute(2.0 * p.size, kind="elementwise")
            if self.buffers is not None:
                self.buffers.hold("backward", rank, ops.nbytes(shards[rank]))
        dlogits = DTensor(mesh, BLOCKED_2D, shards, (T, v_loc * q))
        self._saved = None
        return dlogits

    @staticmethod
    def _subtract_labels(g, lab, lo: int, v_loc: int, scale: float):
        if is_shape_array(g):
            return g
        g = np.asarray(g)
        ids = np.asarray(lab).reshape(-1)
        mask = (ids >= lo) & (ids < lo + v_loc)
        rows = np.nonzero(mask)[0]
        if rows.size:
            g[rows, ids[rows] - lo] -= scale
        return g
