"""Optimus: the paper's 2D tensor-parallel transformer.

Everything here operates on ``q × q`` meshes of simulated devices:

* :mod:`repro.core.summa` — Algorithms 1–3 (``C=AB``, ``C=ABᵀ``, ``C=AᵀB``)
  with the closed-set backward identities (Eqs. 1–3);
* :mod:`repro.core.buffers` — the §3.2.3 memory-management scheme
  (workspace / forward / backward / parameter-gradient / conjunction
  buffers) with the three ablation options;
* layer modules — ``Linear2D``, ``LayerNorm2D``, ``SelfAttention2D``,
  ``MLP2D``, ``Embedding2D``, ``LMHead2D``, ``CrossEntropy2D``,
  ``TransformerLayer2D``;
* :mod:`repro.core.model` — the full :class:`OptimusModel` with distributed
  activation checkpointing.
"""

from repro.core.buffers import BufferManager
from repro.core.cls_head import ClassificationHead2D
from repro.core.embedding import Embedding2D, LMHead2D
from repro.core.layers import MLP2D, LayerNorm2D, Linear2D, SelfAttention2D, TransformerLayer2D
from repro.core.loss import CrossEntropy2D
from repro.core.model import OptimusModel
from repro.core.moe import MoE2D
from repro.core.summa import summa_ab, summa_abt, summa_atb

__all__ = [
    "ClassificationHead2D",
    "MoE2D",
    "BufferManager",
    "summa_ab",
    "summa_abt",
    "summa_atb",
    "Linear2D",
    "LayerNorm2D",
    "SelfAttention2D",
    "MLP2D",
    "TransformerLayer2D",
    "Embedding2D",
    "LMHead2D",
    "CrossEntropy2D",
    "OptimusModel",
]
