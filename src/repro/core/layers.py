"""Optimus transformer layers on a q×q mesh (paper §3.2, Fig. 4).

Every activation DTensor here is ``BLOCKED_2D`` with global shape
``[T, h'] = [b·s, h']``: mesh row i owns the tokens of batch block i (b/q
whole sequences, since T/q = (b/q)·s), mesh column j owns feature block j.
Parameters of SUMMA-style matmuls are ``BLOCKED_2D``; vector parameters
(biases, LN affine) live on mesh row 0 in ``ROW0_COLS`` layout and move via
column broadcasts / reductions (Fig. 5).
"""

from __future__ import annotations

from typing import Optional

from repro.backend import ops
from repro.comm import collectives as coll
from repro.config import ModelConfig
from repro.core.buffers import BufferManager
from repro.core.param import DistModule, DistParam, charge_param_memory
from repro.core.summa import grads_of_ab, summa_ab
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D, ROW0_COLS
from repro.mesh.mesh import Mesh
from repro.mesh.partition import distribute_blocked_2d, distribute_row0_cols
from repro.reference import functional as F
from repro.reference.attention import (
    attention_bwd,
    attention_fwd,
    fused_attention_bwd,
    fused_attention_fwd,
)

#: clock-model cost (FLOPs per element) of fused elementwise kernels
_ELEMWISE_COST = {"add": 1.0, "gelu": 10.0, "softmax": 8.0, "layernorm": 8.0}


def _hold(buffers: Optional[BufferManager], region: str, dt: DTensor) -> None:
    if buffers is None:
        return
    for rank, shard in dt.shards.items():
        buffers.hold(region, rank, ops.nbytes(shard))


def _charge_elementwise(mesh: Mesh, dt: DTensor, kind: str) -> None:
    cost = _ELEMWISE_COST[kind]
    for rank, shard in dt.shards.items():
        mesh.device(rank).compute(cost * shard.size, kind="elementwise")


# ======================================================================
# Linear2D — SUMMA matmul + row-0-hosted bias
# ======================================================================
class Linear2D(DistModule):
    """``y = x·W + bias`` with W 2-D blocked and bias on mesh row 0."""

    _cache_attrs = ("_x",)

    def __init__(
        self,
        mesh: Mesh,
        name: str,
        weight_global,
        bias_global=None,
        buffers: Optional[BufferManager] = None,
        weight_name: Optional[str] = None,
        bias_name: Optional[str] = None,
    ):
        super().__init__()
        self.mesh = mesh
        self.name = name
        self.buffers = buffers
        self.weight = self.register_param(
            DistParam(
                weight_name or f"{name}.weight",
                distribute_blocked_2d(mesh, weight_global),
            )
        )
        charge_param_memory(self.weight, mesh.sim)
        self.bias: Optional[DistParam] = None
        if bias_global is not None:
            self.bias = self.register_param(
                DistParam(
                    bias_name or f"{name}.bias",
                    distribute_row0_cols(mesh, bias_global),
                )
            )
            charge_param_memory(self.bias, mesh.sim)
        self._x: Optional[DTensor] = None

    # ------------------------------------------------------------------
    def forward(self, x: DTensor) -> DTensor:
        self._x = x
        y = summa_ab(self.mesh, x, self.weight.data, self.buffers)
        if self.bias is not None:
            y = self._bias_add(y)
        # §3.2.3 option 3: a matmul's output is never needed for its own
        # backward, so during checkpoint recomputation it need not be
        # re-buffered (downstream ops that do need their inputs — GELU,
        # LayerNorm, attention — hold their own copies).
        if not (
            self.buffers is not None
            and self.buffers.skip_matmul_outputs
            and self.buffers.in_recompute
        ):
            _hold(self.buffers, "forward", y)
        return y

    def _bias_add(self, y: DTensor) -> DTensor:
        """Broadcast each bias block down its column and add (Fig. 5a)."""
        mesh = self.mesh
        shards = {}
        for j in range(mesh.q):
            root = mesh.rank(0, j)
            bcast = coll.broadcast(mesh.col_group(j), self.bias.data.local(root), root)
            for i in range(mesh.q):
                rank = mesh.rank(i, j)
                shards[rank] = y.local(rank) + bcast[rank]
        out = DTensor(mesh, BLOCKED_2D, shards, y.global_shape)
        _charge_elementwise(mesh, out, "add")
        return out

    # ------------------------------------------------------------------
    def backward(self, dy: DTensor) -> DTensor:
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        if self.bias is not None:
            self._bias_backward(dy)
        dx, dw = grads_of_ab(self.mesh, self._x, self.weight.data, dy, self.buffers)
        self.weight.add_grad(dw)
        _hold(self.buffers, "backward", dx)
        if self.buffers is not None:
            for rank, shard in dw.shards.items():
                self.buffers.hold("param_grad", rank, ops.nbytes(shard))
        self._x = None
        return dx

    def _bias_backward(self, dy: DTensor) -> None:
        """Column-reduce the local bias gradients to row 0 (Fig. 5b)."""
        mesh = self.mesh
        shards = {}
        for j in range(mesh.q):
            partials = {}
            for i in range(mesh.q):
                rank = mesh.rank(i, j)
                partials[rank] = ops.sum(dy.local(rank), axis=0)
            root = mesh.rank(0, j)
            reduced = coll.reduce(mesh.col_group(j), partials, root)
            shards[root] = reduced[root]
        self.bias.add_grad(
            DTensor(mesh, ROW0_COLS, shards, self.bias.data.global_shape)
        )


# ======================================================================
# LayerNorm2D — paper §3.2.2
# ======================================================================
class LayerNorm2D(DistModule):
    """Layer normalization over the feature axis split across mesh columns.

    Forward: Σx and Σx² are computed locally and all-reduced along each mesh
    row (one fused buffer), then x̂ is formed locally; γ and β are broadcast
    down columns from row 0.  Backward follows the paper's formula with two
    more row all-reduces (Σ dŷ and Σ x̂·dŷ) and a column reduction for
    dγ/dβ.
    """

    _cache_attrs = ("_saved",)

    def __init__(
        self,
        mesh: Mesh,
        name: str,
        gamma_global,
        beta_global,
        eps: float = 1e-5,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.mesh = mesh
        self.name = name
        self.eps = eps
        self.buffers = buffers
        self.gamma = self.register_param(
            DistParam(f"{name}.gamma", distribute_row0_cols(mesh, gamma_global))
        )
        self.beta = self.register_param(
            DistParam(f"{name}.beta", distribute_row0_cols(mesh, beta_global))
        )
        charge_param_memory(self.gamma, mesh.sim)
        charge_param_memory(self.beta, mesh.sim)
        self._saved = None

    def _broadcast_param(self, param: DistParam):
        mesh = self.mesh
        local = {}
        for j in range(mesh.q):
            root = mesh.rank(0, j)
            bcast = coll.broadcast(mesh.col_group(j), param.data.local(root), root)
            local.update(bcast)
        return local

    # ------------------------------------------------------------------
    def forward(self, x: DTensor) -> DTensor:
        mesh = self.mesh
        h = x.global_shape[1]
        # fused [Σx, Σx²] row all-reduce
        stats = {}
        for rank in mesh.ranks:
            xl = x.local(rank)
            s1 = ops.sum(xl, axis=1, keepdims=True)
            s2 = ops.sum(xl * xl, axis=1, keepdims=True)
            stats[rank] = ops.concatenate([s1, s2], axis=1)  # [T_loc, 2]
        for i in range(mesh.q):
            grp = mesh.row_group(i)
            reduced = coll.all_reduce(grp, {r: stats[r] for r in grp.ranks})
            stats.update(reduced)

        gamma_l = self._broadcast_param(self.gamma)
        beta_l = self._broadcast_param(self.beta)

        out_shards, xhat_shards, inv_shards = {}, {}, {}
        for rank in mesh.ranks:
            xl = x.local(rank)
            st = stats[rank]
            mean = st[:, 0:1] / h
            var = st[:, 1:2] / h - mean * mean
            inv_std = 1.0 / ops.sqrt(var + self.eps)
            x_hat = (xl - mean) * inv_std
            out_shards[rank] = x_hat * gamma_l[rank] + beta_l[rank]
            xhat_shards[rank] = x_hat
            inv_shards[rank] = inv_std
        out = DTensor(mesh, BLOCKED_2D, out_shards, x.global_shape)
        _charge_elementwise(mesh, out, "layernorm")
        x_hat_dt = DTensor(mesh, BLOCKED_2D, xhat_shards, x.global_shape)
        self._saved = (x_hat_dt, inv_shards, gamma_l)
        _hold(self.buffers, "forward", x_hat_dt)
        _hold(self.buffers, "forward", out)
        return out

    # ------------------------------------------------------------------
    def backward(self, dy: DTensor) -> DTensor:
        if self._saved is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        mesh = self.mesh
        x_hat_dt, inv_shards, gamma_l = self._saved
        h = dy.global_shape[1]

        dy_hat, sums = {}, {}
        for rank in mesh.ranks:
            d = dy.local(rank) * gamma_l[rank]
            dy_hat[rank] = d
            t1 = ops.sum(d, axis=1, keepdims=True)
            t2 = ops.sum(d * x_hat_dt.local(rank), axis=1, keepdims=True)
            sums[rank] = ops.concatenate([t1, t2], axis=1)
        for i in range(mesh.q):
            grp = mesh.row_group(i)
            reduced = coll.all_reduce(grp, {r: sums[r] for r in grp.ranks})
            sums.update(reduced)

        dx_shards = {}
        for rank in mesh.ranks:
            st = sums[rank]
            x_hat = x_hat_dt.local(rank)
            dx_shards[rank] = inv_shards[rank] * (
                dy_hat[rank] - st[:, 0:1] / h - x_hat * (st[:, 1:2] / h)
            )
        dx = DTensor(mesh, BLOCKED_2D, dx_shards, dy.global_shape)
        _charge_elementwise(mesh, dx, "layernorm")
        _hold(self.buffers, "backward", dx)

        # dγ, dβ: fuse into one [2, h/q] column reduction to row 0
        dg_shards, db_shards = {}, {}
        for j in range(mesh.q):
            partials = {}
            for i in range(mesh.q):
                rank = mesh.rank(i, j)
                dg = ops.sum(dy.local(rank) * x_hat_dt.local(rank), axis=0, keepdims=True)
                db = ops.sum(dy.local(rank), axis=0, keepdims=True)
                partials[rank] = ops.concatenate([dg, db], axis=0)  # [2, h/q]
            root = mesh.rank(0, j)
            reduced = coll.reduce(mesh.col_group(j), partials, root)
            dg_shards[root] = reduced[root][0]
            db_shards[root] = reduced[root][1]
        shape = self.gamma.data.global_shape
        self.gamma.add_grad(DTensor(mesh, ROW0_COLS, dg_shards, shape))
        self.beta.add_grad(DTensor(mesh, ROW0_COLS, db_shards, shape))
        self._saved = None
        return dx


# ======================================================================
# SelfAttention2D — paper §3.2.1, partitioned along b and h
# ======================================================================
class SelfAttention2D(DistModule):
    """Self-attention with b and h partitioned: each device owns b/q
    sequences × n/q heads, so the quadratic ``softmax(QKᵀ)V`` is fully local
    (s is never partitioned — the paper's key design choice avoiding the
    O(b·n·s²) communication of the s/h partition it first considers)."""

    def __init__(
        self,
        mesh: Mesh,
        cfg: ModelConfig,
        name: str,
        wqkv,
        bqkv,
        wo,
        bo,
        buffers: Optional[BufferManager] = None,
        fused: bool = False,
        attention_chunk: int = 64,
    ):
        super().__init__()
        self.mesh = mesh
        self.cfg = cfg
        self.name = name
        self.buffers = buffers
        self.fused = fused
        self.attention_chunk = attention_chunk
        self.qkv_linear = self.register_module(
            Linear2D(
                mesh, f"{name}.qkv", wqkv, bqkv, buffers,
                weight_name=f"{name}.wqkv", bias_name=f"{name}.bqkv",
            )
        )
        self.out_linear = self.register_module(
            Linear2D(
                mesh, f"{name}.out", wo, bo, buffers,
                weight_name=f"{name}.wo", bias_name=f"{name}.bo",
            )
        )
        self._saved = None

    def forward(self, x: DTensor, batch_size: int) -> DTensor:
        mesh, cfg = self.mesh, self.cfg
        q_mesh = mesh.q
        b_loc = batch_size // q_mesh
        s = cfg.seq_len
        n_loc = cfg.num_heads // q_mesh
        d = cfg.head_dim
        T, h = x.global_shape

        qkv = self.qkv_linear.forward(x)  # [T, 3h] blocked
        qs, ks, vs, saved_s, ctx_shards = {}, {}, {}, {}, {}
        for rank in mesh.ranks:
            local = qkv.local(rank).reshape((b_loc, s, n_loc, 3, d))
            qh = local[:, :, :, 0, :].transpose(0, 2, 1, 3)  # [b_loc, n_loc, s, d]
            kh = local[:, :, :, 1, :].transpose(0, 2, 1, 3)
            vh = local[:, :, :, 2, :].transpose(0, 2, 1, 3)
            dev = mesh.device(rank)
            if self.fused:
                ctx, m_stat, l_stat = fused_attention_fwd(
                    qh, kh, vh, chunk=self.attention_chunk
                )
                saved_s[rank] = (ctx, m_stat, l_stat)
                held = ops.nbytes(m_stat) + ops.nbytes(l_stat)
            else:
                ctx, probs = attention_fwd(qh, kh, vh)
                saved_s[rank] = probs
                held = ops.nbytes(probs)
                dev.compute(_ELEMWISE_COST["softmax"] * probs.size, kind="elementwise")
            dev.compute(2.0 * b_loc * n_loc * s * s * d)  # QKᵀ
            dev.compute(2.0 * b_loc * n_loc * s * s * d)  # probs·V
            qs[rank], ks[rank], vs[rank] = qh, kh, vh
            ctx_shards[rank] = ctx.transpose(0, 2, 1, 3).reshape(
                (b_loc * s, n_loc * d)
            )
            if self.buffers is not None:
                self.buffers.hold("forward", rank, held)
                self.buffers.hold("forward", rank, ops.nbytes(ctx_shards[rank]))
        ctx_dt = DTensor(mesh, BLOCKED_2D, ctx_shards, (T, h))
        self._saved = (qs, ks, vs, saved_s, ctx_dt, b_loc, s, n_loc, d)
        return self.out_linear.forward(ctx_dt)

    def backward(self, dy: DTensor) -> DTensor:
        if self._saved is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        mesh = self.mesh
        qs, ks, vs, saved_s, ctx_dt, b_loc, s, n_loc, d = self._saved
        T, h = dy.global_shape

        d_ctx = self.out_linear.backward(dy)  # [T, h] blocked
        dqkv_shards = {}
        for rank in mesh.ranks:
            dc = d_ctx.local(rank).reshape((b_loc, s, n_loc, d)).transpose(0, 2, 1, 3)
            qh, kh, vh = qs[rank], ks[rank], vs[rank]
            dev = mesh.device(rank)
            if self.fused:
                ctx, m_stat, l_stat = saved_s[rank]
                d_q, d_k, d_v = fused_attention_bwd(
                    qh, kh, vh, ctx, m_stat, l_stat, dc, chunk=self.attention_chunk
                )
                n_gemms = 5  # score recompute + four gradient products
            else:
                probs = saved_s[rank]
                d_q, d_k, d_v = attention_bwd(qh, kh, vh, probs, dc)
                n_gemms = 4
                dev.compute(
                    _ELEMWISE_COST["softmax"] * probs.size, kind="elementwise"
                )
            for _ in range(n_gemms):
                dev.compute(2.0 * b_loc * n_loc * s * s * d)

            def _undo(t):  # [b,n,s,d] -> [b,s,n,d]
                return t.transpose(0, 2, 1, 3)

            dqkv_r = ops.stack([_undo(d_q), _undo(d_k), _undo(d_v)], axis=3)
            dqkv_shards[rank] = dqkv_r.reshape((b_loc * s, n_loc * 3 * d))
            if self.buffers is not None:
                self.buffers.hold("backward", rank, ops.nbytes(dqkv_shards[rank]))
        dqkv = DTensor(mesh, BLOCKED_2D, dqkv_shards, (T, 3 * h))
        self._saved = None
        return self.qkv_linear.backward(dqkv)


# ======================================================================
# MLP2D
# ======================================================================
class MLP2D(DistModule):
    """``h → 4h → h`` perceptron; both matmuls are SUMMA, GELU is local."""

    _cache_attrs = ("_pre",)

    def __init__(
        self,
        mesh: Mesh,
        name: str,
        w1,
        b1,
        w2,
        b2,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.mesh = mesh
        self.name = name
        self.buffers = buffers
        self.fc1 = self.register_module(
            Linear2D(
                mesh, f"{name}.fc1", w1, b1, buffers,
                weight_name=f"{name}.w1", bias_name=f"{name}.b1",
            )
        )
        self.fc2 = self.register_module(
            Linear2D(
                mesh, f"{name}.fc2", w2, b2, buffers,
                weight_name=f"{name}.w2", bias_name=f"{name}.b2",
            )
        )
        self._pre: Optional[DTensor] = None

    def forward(self, x: DTensor) -> DTensor:
        pre = self.fc1.forward(x)
        self._pre = pre
        act = pre.map(F.gelu)
        _charge_elementwise(self.mesh, act, "gelu")
        _hold(self.buffers, "forward", act)
        return self.fc2.forward(act)

    def backward(self, dy: DTensor) -> DTensor:
        if self._pre is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        d_act = self.fc2.backward(dy)
        d_pre = self._pre.zip_map(d_act, lambda pre, da: F.gelu_bwd(pre, da))
        _charge_elementwise(self.mesh, d_pre, "gelu")
        self._pre = None
        return self.fc1.backward(d_pre)


# ======================================================================
# TransformerLayer2D
# ======================================================================
class TransformerLayer2D(DistModule):
    """Pre-LN transformer layer: x + Attn(LN1(x)), then x + MLP(LN2(x))."""

    def __init__(
        self,
        mesh: Mesh,
        cfg: ModelConfig,
        layer_index: int,
        params: dict,
        buffers: Optional[BufferManager] = None,
        fused_attention: bool = False,
        attention_chunk: int = 64,
    ):
        super().__init__()
        self.mesh = mesh
        self.cfg = cfg
        self.index = layer_index
        self.buffers = buffers
        pre = f"layer{layer_index}"
        self.ln1 = self.register_module(
            LayerNorm2D(
                mesh, f"{pre}.ln1", params[f"{pre}.ln1.gamma"],
                params[f"{pre}.ln1.beta"], cfg.ln_eps, buffers,
            )
        )
        self.attn = self.register_module(
            SelfAttention2D(
                mesh, cfg, f"{pre}.attn",
                params[f"{pre}.attn.wqkv"], params[f"{pre}.attn.bqkv"],
                params[f"{pre}.attn.wo"], params[f"{pre}.attn.bo"], buffers,
                fused=fused_attention, attention_chunk=attention_chunk,
            )
        )
        self.ln2 = self.register_module(
            LayerNorm2D(
                mesh, f"{pre}.ln2", params[f"{pre}.ln2.gamma"],
                params[f"{pre}.ln2.beta"], cfg.ln_eps, buffers,
            )
        )
        self.mlp = self.register_module(
            MLP2D(
                mesh, f"{pre}.mlp",
                params[f"{pre}.mlp.w1"], params[f"{pre}.mlp.b1"],
                params[f"{pre}.mlp.w2"], params[f"{pre}.mlp.b2"], buffers,
            )
        )

    def forward(self, x: DTensor, batch_size: int) -> DTensor:
        attn_out = self.attn.forward(self.ln1.forward(x), batch_size)
        x_mid = x + attn_out
        _charge_elementwise(self.mesh, x_mid, "add")
        _hold(self.buffers, "forward", x_mid)
        mlp_out = self.mlp.forward(self.ln2.forward(x_mid))
        out = x_mid + mlp_out
        _charge_elementwise(self.mesh, out, "add")
        _hold(self.buffers, "forward", out)
        return out

    def backward(self, dy: DTensor) -> DTensor:
        d_ln2_out = self.mlp.backward(dy)
        d_xmid = dy + self.ln2.backward(d_ln2_out)
        d_ln1_out = self.attn.backward(d_xmid)
        dx = d_xmid + self.ln1.backward(d_ln1_out)
        _charge_elementwise(self.mesh, dx, "add")
        return dx
