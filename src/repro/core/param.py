"""Distributed parameters and the module base class shared by both schemes."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.backend import ops
from repro.mesh.dtensor import DTensor


class DistParam:
    """A named distributed parameter with an accumulated gradient.

    Gradient accumulation is shard-local addition: every scheme arranges (via
    its collectives) that the shards being added represent the same global
    layout, so ``grad`` always has the parameter's own layout.
    """

    def __init__(self, name: str, data: DTensor):
        self.name = name
        self.data = data
        self.grad: Optional[DTensor] = None

    def add_grad(self, g: DTensor) -> None:
        if g.layout != self.data.layout or g.global_shape != self.data.global_shape:
            raise ValueError(
                f"{self.name}: gradient layout {g.layout}/{g.global_shape} does not "
                f"match parameter {self.data.layout}/{self.data.global_shape}"
            )
        self.grad = g if self.grad is None else self.grad + g

    def zero_grad(self) -> None:
        self.grad = None

    @property
    def nbytes_per_shard(self) -> int:
        return self.data.shard_nbytes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistParam({self.name}, {self.data.layout}, {self.data.global_shape})"


class DistModule:
    """Minimal explicit-backward module protocol.

    Sub-classes implement ``forward`` and ``backward`` (which must be called
    in LIFO order, as the trainer and checkpointing logic do) and register
    parameters via :meth:`register_param`.
    """

    #: attribute names holding saved activations, cleared by drop_caches()
    _cache_attrs: tuple = ()

    def __init__(self):
        self._params: List[DistParam] = []
        self._submodules: List["DistModule"] = []

    def drop_caches(self) -> None:
        """Release saved-activation references (checkpointing support)."""
        for attr in self._cache_attrs:
            setattr(self, attr, None)
        for m in self._submodules:
            m.drop_caches()

    def register_param(self, p: DistParam) -> DistParam:
        self._params.append(p)
        return p

    def register_module(self, m: "DistModule") -> "DistModule":
        self._submodules.append(m)
        return m

    def parameters(self) -> List[DistParam]:
        out = list(self._params)
        for m in self._submodules:
            out.extend(m.parameters())
        return out

    def named_parameters(self) -> Dict[str, DistParam]:
        return {p.name: p for p in self.parameters()}

    def zero_grads(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def validate_invariants(self) -> None:
        """Check every parameter (and gradient) against its layout contract.

        Raises :class:`repro.check.invariants.InvariantViolation` on the
        first shard whose shape, ownership, or replication is inconsistent.
        Used by the ``repro check`` fuzz runner between steps and available
        to tests for targeted corruption probes.
        """
        from repro.check.invariants import validate_dtensor

        for p in self.parameters():
            validate_dtensor(p.data, name=p.name)
            if p.grad is not None:
                validate_dtensor(p.grad, name=f"{p.name}.grad")


def charge_param_memory(param: DistParam, sim, tag: str = "params") -> None:
    """Account a parameter's shard bytes on each hosting device."""
    for rank, shard in param.data.shards.items():
        sim.device(rank).memory.alloc(ops.nbytes(shard), tag)
