"""Sequence-classification head (the paper's Fig. 1 right branch) in 2D.

"The other branch selects the embedding at certain token position, and
predicts a binary label for each input sequence."  With Optimus layouts:

* the per-sequence embedding ``x₀`` (token position 0) is a strided row
  selection of the BLOCKED_2D activations — row block i holds its own b/q
  sequences, column block j its h/q features, so the selection is local;
* the tiny classifier weight ``[h, C]`` is hosted by mesh row 0, split
  along h across columns (the Fig. 5 pattern for non-SUMMA parameters) and
  broadcast down columns in forward;
* each device forms a partial ``x₀·W`` and a row all-reduce completes the
  contraction over h, leaving class logits replicated within each row —
  exactly where that row's sequence labels live (ROW_BLOCKED).

Cross-entropy over the C classes is then local per row, with one scalar
column all-reduce for the batch mean.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ops
from repro.backend.shape_array import ShapeArray, is_shape_array
from repro.comm import collectives as coll
from repro.config import ModelConfig
from repro.core.buffers import BufferManager
from repro.core.param import DistModule, DistParam, charge_param_memory
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D, RANK0, ROW0_BLOCKROWS, ROW_BLOCKED
from repro.mesh.mesh import Mesh
from repro.mesh.partition import (  # re-exported for backward compatibility
    assemble_row0_blockrows,  # noqa: F401
    distribute_row0_blockrows,
)
from repro.reference import functional as F


class ClassificationHead2D(DistModule):
    """token-0 pooling → dense [h, C] → softmax cross-entropy."""

    _cache_attrs = ("_saved",)

    def __init__(
        self,
        mesh: Mesh,
        cfg: ModelConfig,
        weight_global,
        bias_global,
        buffers: Optional[BufferManager] = None,
    ):
        super().__init__()
        self.mesh = mesh
        self.cfg = cfg
        self.buffers = buffers
        self.num_classes = weight_global.shape[1]
        self.weight = self.register_param(
            DistParam("cls_head.weight", distribute_row0_blockrows(mesh, weight_global))
        )
        self.bias = self.register_param(
            DistParam(
                "cls_head.bias",
                DTensor(mesh, RANK0, {mesh.rank(0, 0): bias_global}, bias_global.shape),
            )
        )
        charge_param_memory(self.weight, mesh.sim)
        charge_param_memory(self.bias, mesh.sim)
        self._saved = None

    # ------------------------------------------------------------------
    def forward(self, ln_out: DTensor, cls_labels: Optional[DTensor] = None):
        """ln_out BLOCKED_2D [b·s, h]; cls_labels ROW_BLOCKED [b] or None."""
        mesh, q, s = self.mesh, self.mesh.q, self.cfg.seq_len

        # broadcast W_j down each column (Fig. 5a) and the bias to everyone
        w_local = {}
        for j in range(q):
            root = mesh.rank(0, j)
            w_local.update(
                coll.broadcast(mesh.col_group(j), self.weight.data.local(root), root)
            )
        root00 = mesh.rank(0, 0)
        bias_local = coll.broadcast(mesh.world, self.bias.data.local(root00), root00)

        x0, partial = {}, {}
        for rank in mesh.ranks:
            x0[rank] = ln_out.local(rank)[::s]  # [b/q, h/q]
            partial[rank] = x0[rank] @ w_local[rank]
            mesh.device(rank).compute(
                2.0 * x0[rank].shape[0] * x0[rank].shape[1] * self.num_classes
            )
        logits = {}
        for i in range(q):
            grp = mesh.row_group(i)
            logits.update(coll.all_reduce(grp, {r: partial[r] for r in grp.ranks}))
        for rank in mesh.ranks:
            logits[rank] = logits[rank] + bias_local[rank]

        if cls_labels is None:
            self._saved = None
            b = ln_out.global_shape[0] // s
            return DTensor(mesh, ROW_BLOCKED, logits, (b, self.num_classes))

        if cls_labels.layout != ROW_BLOCKED:
            raise ValueError(f"cls labels must be ROW_BLOCKED, got {cls_labels.layout}")
        b = cls_labels.global_shape[0]
        probs, part = {}, {}
        for rank in mesh.ranks:
            lab = cls_labels.local(rank)
            loss_seq, p = F.cross_entropy_fwd(logits[rank], lab)
            probs[rank] = p
            part[rank] = ops.sum(loss_seq, keepdims=True).reshape((1,))
            if self.buffers is not None:
                self.buffers.hold("forward", rank, ops.nbytes(p))
        for j in range(q):
            grp = mesh.col_group(j)
            part.update(coll.all_reduce(grp, {r: part[r] for r in grp.ranks}))
        self._saved = (x0, w_local, probs, cls_labels, b, ln_out)
        total = part[mesh.rank(0, 0)]
        if is_shape_array(total):
            return ShapeArray((), total.dtype)
        return float(np.asarray(total)[0]) / b

    # ------------------------------------------------------------------
    def backward(self) -> DTensor:
        """Returns d(ln_out) as a BLOCKED_2D DTensor."""
        if self._saved is None:
            raise RuntimeError("classification backward before forward with labels")
        mesh, q, s = self.mesh, self.mesh.q, self.cfg.seq_len
        x0, w_local, probs, cls_labels, b, ln_out = self._saved
        scale = 1.0 / b

        dlogits = {}
        for rank in mesh.ranks:
            lab = cls_labels.local(rank)
            dl = ops.full(
                (lab.shape[0],), scale, dtype="float64",
                backend=ops.backend_of(probs[rank]),
            )
            dlogits[rank] = F.cross_entropy_bwd(probs[rank], lab, dl)

        # dW: partial per device, column-reduce to row 0 (Fig. 5b)
        dw_shards = {}
        for j in range(q):
            partials = {}
            for i in range(q):
                rank = mesh.rank(i, j)
                partials[rank] = ops.transpose(x0[rank]) @ dlogits[rank]
                mesh.device(rank).compute(
                    2.0 * x0[rank].shape[1] * x0[rank].shape[0] * self.num_classes
                )
            root = mesh.rank(0, j)
            dw_shards[root] = coll.reduce(mesh.col_group(j), partials, root)[root]
        self.weight.add_grad(
            DTensor(mesh, ROW0_BLOCKROWS, dw_shards, self.weight.data.global_shape)
        )

        # dbias: sum over each row's sequences, then over rows (column 0)
        db_partials = {
            r: ops.sum(dlogits[r], axis=0) for r in mesh.col_group(0).ranks
        }
        root00 = mesh.rank(0, 0)
        db = coll.reduce(mesh.col_group(0), db_partials, root00)
        self.bias.add_grad(
            DTensor(mesh, RANK0, {root00: db[root00]}, self.bias.data.global_shape)
        )

        # d(ln_out): scatter dx0 back into token position 0 of each sequence
        out_shards = {}
        for rank in mesh.ranks:
            dx0 = dlogits[rank] @ ops.transpose(w_local[rank])
            mesh.device(rank).compute(
                2.0 * dx0.shape[0] * self.num_classes * dx0.shape[1]
            )
            d_out = ops.zeros_like(ln_out.local(rank))
            d_out[::s] = dx0
            out_shards[rank] = d_out
            if self.buffers is not None:
                self.buffers.hold("backward", rank, ops.nbytes(d_out))
        self._saved = None
        return DTensor(mesh, BLOCKED_2D, out_shards, ln_out.global_shape)
