"""Checkpoint save/load: gather across every layout, cross-scheme restore,
atomic writes, and corruption detection."""

import os

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core import OptimusModel
from repro.megatron import MegatronModel
from repro.nn import init_transformer_params
from repro.pipeline import PipelineModel
from repro.reference import ReferenceTransformer
from repro.runtime import Simulator
from repro.serialization import (
    CheckpointCorruptError,
    gather_parameters,
    load_checkpoint,
    save_checkpoint,
)
from repro.training import SGD
from tests.conftest import make_mesh


class TestGather:
    def test_gather_optimus_roundtrips_init(self, cfg, params, batch):
        model = OptimusModel(make_mesh(2), cfg, params)
        gathered = gather_parameters(model)
        assert set(gathered) == set(params)
        for name in params:
            np.testing.assert_array_equal(gathered[name], params[name])

    def test_gather_megatron(self, cfg, params):
        model = MegatronModel(Simulator.for_flat(p=3), cfg, params)
        gathered = gather_parameters(model)
        for name in params:
            np.testing.assert_array_equal(gathered[name], params[name])

    def test_gather_with_classifier_and_rank0_layout(self, cfg):
        params = init_transformer_params(cfg, seed=1, num_classes=2)
        model = OptimusModel(make_mesh(2), cfg, params)
        gathered = gather_parameters(model)
        np.testing.assert_array_equal(gathered["cls_head.weight"], params["cls_head.weight"])
        np.testing.assert_array_equal(gathered["cls_head.bias"], params["cls_head.bias"])

    def test_gather_reference_and_dict(self, cfg, params):
        ref = ReferenceTransformer(cfg, params)
        assert set(gather_parameters(ref)) == set(params)
        assert set(gather_parameters(params)) == set(params)

    def test_gather_rejects_garbage(self):
        with pytest.raises(TypeError):
            gather_parameters(42)


class TestSaveLoad:
    def test_roundtrip_with_metadata(self, cfg, params, tmp_path):
        model = OptimusModel(make_mesh(2), cfg, params)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, step=17, extra={"note": "hello"})
        loaded, meta = load_checkpoint(path)
        assert meta["step"] == 17
        assert meta["extra"]["note"] == "hello"
        assert meta["config"] == cfg
        for name in params:
            np.testing.assert_array_equal(loaded[name], params[name])

    def test_trained_weights_survive(self, cfg, batch, tmp_path):
        ids, labels = batch
        params = init_transformer_params(cfg, seed=1)
        model = OptimusModel(make_mesh(2), cfg, params)
        opt = SGD(model.parameters(), lr=0.1)
        for _ in range(2):
            opt.zero_grad()
            model.forward(ids, labels)
            model.backward()
            opt.step()
        loss_trained = model.forward(ids, labels)

        path = tmp_path / "trained.npz"
        save_checkpoint(path, model, step=2)
        loaded, meta = load_checkpoint(path)

        # restore into a *different* scheme at a different device count
        restored = MegatronModel(Simulator.for_flat(p=3), meta["config"], loaded)
        assert restored.forward(ids, labels) == pytest.approx(loss_trained, abs=1e-10)

    def test_restore_into_pipeline(self, tmp_path, rng):
        cfg = tiny_config(num_layers=4)
        params = init_transformer_params(cfg, seed=2)
        ids = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
        labels = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
        ref_loss = float(ReferenceTransformer(cfg, params).forward(ids, labels))

        path = tmp_path / "p.npz"
        save_checkpoint(path, params, config=cfg)
        loaded, meta = load_checkpoint(path)
        pm = PipelineModel(
            Simulator.for_flat(p=2), meta["config"], loaded, num_micro_batches=2
        )
        assert pm.forward_backward(ids, labels) == pytest.approx(ref_loss, abs=1e-10)

    def test_checkpoint_without_config(self, params, tmp_path):
        path = tmp_path / "bare.npz"
        save_checkpoint(path, params)
        loaded, meta = load_checkpoint(path)
        assert "config" not in meta
        assert set(loaded) == set(params)


class TestDurability:
    def test_save_normalizes_suffix_and_leaves_no_temp_files(self, params, tmp_path):
        written = save_checkpoint(tmp_path / "bare", params)
        assert written.endswith("bare.npz") and os.path.exists(written)
        # atomic write: the .ckpt-* staging file was renamed away
        assert os.listdir(tmp_path) == ["bare.npz"]

    def test_truncated_file_raises(self, params, tmp_path):
        path = save_checkpoint(tmp_path / "t.npz", params)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError, match="truncated or corrupt"):
            load_checkpoint(path)

    def test_flipped_byte_raises(self, params, tmp_path):
        path = save_checkpoint(tmp_path / "f.npz", params)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 3] ^= 0x40
        open(path, "wb").write(bytes(data))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_doctored_array_fails_digest(self, params, tmp_path):
        # rewrite one array with valid zip framing but stale digest: only
        # the sha256 check can notice
        path = save_checkpoint(tmp_path / "d.npz", params)
        with np.load(path) as z:
            arrays = {k: z[k] for k in z.files}
        name = next(k for k in arrays if not k.startswith("__"))
        arrays[name] = arrays[name] + 1.0
        np.savez(path, **arrays)
        with pytest.raises(CheckpointCorruptError, match="sha256"):
            load_checkpoint(path)
